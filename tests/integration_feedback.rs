//! Invariants of SAFARA's iterative feedback loop (§III-B.2), checked
//! across the whole SPEC-like suite:
//!
//! * the loop never leaves a kernel spilling (a spilling round reverts);
//! * register usage never exceeds the hardware cap;
//! * scalar replacement trades registers monotonically: the optimized
//!   build never uses fewer than zero extra temps, and its registers stay
//!   within the cap the device imposes;
//! * when the cap is artificially tightened, SAFARA admits fewer (or
//!   equal) temporaries — the "moderation of register pressure".

use safara_core::{compile, CompilerConfig, DeviceConfig};
use safara_workloads::{spec_suite, Workload};

#[test]
fn feedback_never_leaves_spills() {
    for w in spec_suite() {
        let p = compile(&w.source(), &CompilerConfig::safara_clauses())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        for f in &p.functions {
            for k in &f.kernels {
                assert!(
                    k.alloc.fits(),
                    "{}::{} spills {} vregs after feedback",
                    w.name(),
                    k.kernel.name,
                    k.alloc.spilled.len()
                );
            }
        }
    }
}

#[test]
fn registers_respect_the_hardware_cap() {
    let dev = DeviceConfig::k20xm();
    for w in spec_suite() {
        for cfg in [CompilerConfig::base(), CompilerConfig::safara_only()] {
            let p = compile(&w.source(), &cfg).unwrap();
            for f in &p.functions {
                assert!(
                    f.max_regs() <= dev.max_regs_per_thread,
                    "{} under {}: {} regs",
                    w.name(),
                    cfg.name,
                    f.max_regs()
                );
            }
        }
    }
}

#[test]
fn tighter_cap_admits_fewer_temps() {
    let src = safara_workloads::spec::seismic::Seismic.source();
    let mut last = u32::MAX;
    for cap in [255u32, 64, 40, 24] {
        let cfg = CompilerConfig { reg_cap: cap, ..CompilerConfig::safara_clauses() };
        let p = compile(&src, &cfg).unwrap();
        let f = p.function("seismic_step").unwrap();
        assert!(
            f.sr_outcome.temps_added <= last,
            "cap {cap}: {} temps > previous {last}",
            f.sr_outcome.temps_added
        );
        last = f.sr_outcome.temps_added;
    }
    // The tightest cap must have cut something relative to the loosest.
    let loose = compile(&src, &CompilerConfig::safara_clauses()).unwrap();
    let tight = compile(
        &src,
        &CompilerConfig { reg_cap: 24, ..CompilerConfig::safara_clauses() },
    )
    .unwrap();
    assert!(
        tight.function("seismic_step").unwrap().sr_outcome.temps_added
            < loose.function("seismic_step").unwrap().sr_outcome.temps_added
    );
}

#[test]
fn feedback_loop_terminates_within_bound() {
    for w in spec_suite() {
        let cfg = CompilerConfig::safara_clauses();
        let p = compile(&w.source(), &cfg).unwrap();
        for f in &p.functions {
            assert!(
                f.feedback_rounds <= cfg.max_feedback_iters,
                "{}: {} rounds",
                w.name(),
                f.feedback_rounds
            );
        }
    }
}

#[test]
fn safara_transformed_source_reparses() {
    // Source-to-source output must always be valid MiniACC (the paper's
    // transformation is source-level in OpenUH too).
    for w in spec_suite() {
        let p = compile(&w.source(), &CompilerConfig::safara_clauses()).unwrap();
        for f in &p.functions {
            let txt = f.transformed_source();
            safara_core::ir::parse_program(&txt)
                .unwrap_or_else(|e| panic!("{}: invalid output: {e}\n{txt}", w.name()));
        }
    }
}
