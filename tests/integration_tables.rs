//! Shape assertions for the paper's tables and figures, at test scale:
//! the qualitative claims the evaluation section makes must hold in the
//! reproduction (absolute numbers differ — see EXPERIMENTS.md).

use safara_core::report::register_table;
use safara_core::{compile, CompilerConfig, DeviceConfig};
use safara_workloads::spec::{seismic::Seismic, sp::SpecSp};
use safara_workloads::{nas_suite, run_workload, Scale, Workload};

/// Table I: every seismic kernel satisfies Base ≥ +small ≥ w dim, with a
/// strictly positive total saving.
#[test]
fn table1_shape_base_small_dim_monotone() {
    let src = Seismic.source();
    let base = compile(&src, &CompilerConfig::base()).unwrap();
    let small = compile(&src, &CompilerConfig::small()).unwrap();
    let dim = compile(&src, &CompilerConfig::small_dim()).unwrap();
    let rows = register_table("seismic_step", &[&base, &small, &dim]);
    assert_eq!(rows.len(), 7, "seismic must have 7 hot kernels");
    let mut saved = 0i64;
    for r in &rows {
        let (b, s, d) = (r.regs[0].unwrap(), r.regs[1].unwrap(), r.regs[2].unwrap());
        assert!(s <= b, "{}: +small {s} > base {b}", r.label);
        assert!(d <= s, "{}: w dim {d} > +small {s}", r.label);
        saved += b as i64 - d as i64;
    }
    assert!(saved > 20, "total saving {saved} too small for the Table I claim");
}

/// Table II: sp has 10 hot kernels; multi-array kernels save more with
/// `dim` than single-array ones (which the paper reports as NA).
#[test]
fn table2_shape_multi_array_kernels_benefit_most() {
    let src = SpecSp.source();
    let base = compile(&src, &CompilerConfig::base()).unwrap();
    let dim = compile(&src, &CompilerConfig::small_dim()).unwrap();
    let rows = register_table("sp_step", &[&base, &dim]);
    assert_eq!(rows.len(), 10, "sp must have 10 hot kernels");
    // HOT5/HOT7/HOT8 are the multi-array kernels; HOT1/HOT3/HOT6/HOT10
    // use one allocatable array each.
    let saving = |i: usize| {
        rows[i].regs[0].unwrap() as i64 - rows[i].regs[1].unwrap() as i64
    };
    let multi = saving(4) + saving(6) + saving(7);
    let single = saving(0) + saving(2) + saving(5) + saving(9);
    assert!(
        multi > single,
        "multi-array kernels must benefit more: {multi} vs {single}"
    );
}

/// Fig. 9/10 shape: the full pipeline never loses to the baseline on any
/// workload, and wins clearly somewhere.
#[test]
fn full_pipeline_dominates_baseline() {
    // Never-lose holds at every scale; the clear-win check needs bench
    // sizes (at tiny test sizes warps are mostly empty, so coalescing and
    // occupancy effects vanish) — check it on the two line-solver apps.
    let dev = DeviceConfig::k20xm();
    for w in nas_suite() {
        let (b, _) = run_workload(w.as_ref(), &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let (o, _) =
            run_workload(w.as_ref(), &CompilerConfig::safara_small(), Scale::Test, &dev).unwrap();
        let sp = b.total_cycles() / o.total_cycles();
        assert!(
            sp > 0.98,
            "{}: SAFARA+small lost to base ({sp:.3}x)",
            w.name()
        );
    }
    let mut best = 1.0f64;
    for w in nas_suite() {
        if !matches!(w.name(), "BT" | "SP") {
            continue;
        }
        let (b, _) = run_workload(w.as_ref(), &CompilerConfig::base(), Scale::Bench, &dev).unwrap();
        let (o, _) =
            run_workload(w.as_ref(), &CompilerConfig::safara_small(), Scale::Bench, &dev).unwrap();
        best = best.max(b.total_cycles() / o.total_cycles());
    }
    assert!(best > 1.05, "no line-solver showed a clear win ({best:.3}x)");
}

/// Fig. 11/12 shape: the optimized OpenUH beats the simulated PGI-like
/// comparator on the geometric mean.
#[test]
fn optimized_openuh_beats_pgi_like_on_average() {
    let dev = DeviceConfig::k20xm();
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for w in nas_suite() {
        let (pgi, _) =
            run_workload(w.as_ref(), &CompilerConfig::pgi_like(), Scale::Test, &dev).unwrap();
        let (opt, _) =
            run_workload(w.as_ref(), &CompilerConfig::safara_small(), Scale::Test, &dev).unwrap();
        log_sum += (pgi.total_cycles() / opt.total_cycles()).ln();
        n += 1;
    }
    let geo = (log_sum / n as f64).exp();
    assert!(geo > 1.0, "optimized OpenUH vs PGI-like geomean {geo:.3} ≤ 1");
}

/// §V-C: BT benefits from `small` (the paper singles it out).
#[test]
fn bt_benefits_from_small() {
    let src = safara_workloads::nas::bt::NasBt.source();
    let base = compile(&src, &CompilerConfig::base()).unwrap();
    let small = compile(&src, &CompilerConfig::small()).unwrap();
    assert!(
        small.function("bt_sweep").unwrap().max_regs()
            < base.function("bt_sweep").unwrap().max_regs()
    );
}
