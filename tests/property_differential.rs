//! Property-based differential testing of the whole compiler: random
//! MiniACC kernels are compiled under the baseline, the full SAFARA
//! pipeline, the Carr–Kennedy strategy and the PGI-like profile, and all
//! four executions must produce **bit-identical** results (scalar
//! replacement and clause lowering never reassociate arithmetic).
//!
//! Generated programs are race-free by construction (written arrays are
//! only accessed at `[i]`, the thread's own element), so results cannot
//! depend on thread count — which Carr–Kennedy changes when it
//! sequentializes a loop.

use proptest::prelude::*;
use safara_core::{compile, Args, CompilerConfig, DeviceConfig};
use std::fmt::Write as _;

/// A generated expression (rendered to MiniACC text).
#[derive(Debug, Clone)]
enum GenExpr {
    /// Float literal.
    Lit(i8),
    /// One of the scalar params s0/s1.
    Scalar(bool),
    /// Read-only array `a` at `i + delta` (delta in −2..=2).
    ReadA(i8),
    /// Read-only array `a` at `i + k` (only valid inside the seq loop).
    ReadAK,
    /// Own element of a written array (`b[i]` or `c[i]`).
    ReadOwn(bool),
    /// The seq loop variable as a float (0 outside the loop).
    KAsFloat,
    /// Binary node.
    Bin(u8, Box<GenExpr>, Box<GenExpr>),
}

impl GenExpr {
    fn render(&self, in_seq: bool, out: &mut String) {
        match self {
            GenExpr::Lit(v) => write!(out, "{}.0", *v as i32).unwrap(),
            GenExpr::Scalar(a) => out.push_str(if *a { "s0" } else { "s1" }),
            GenExpr::ReadA(d) => match *d as i32 {
                0 => out.push_str("a[i]"),
                d if d > 0 => write!(out, "a[i + {d}]").unwrap(),
                d => write!(out, "a[i - {}]", -d).unwrap(),
            },
            GenExpr::ReadAK => {
                if in_seq {
                    out.push_str("a[i + k]")
                } else {
                    out.push_str("a[i]")
                }
            }
            GenExpr::ReadOwn(b) => out.push_str(if *b { "b[i]" } else { "c[i]" }),
            GenExpr::KAsFloat => {
                if in_seq {
                    out.push_str("(float) k")
                } else {
                    out.push_str("0.0")
                }
            }
            GenExpr::Bin(op, l, r) => {
                out.push('(');
                l.render(in_seq, out);
                out.push_str(match op % 3 {
                    0 => " + ",
                    1 => " - ",
                    _ => " * ",
                });
                r.render(in_seq, out);
                out.push(')');
            }
        }
    }
}

/// A generated statement.
#[derive(Debug, Clone)]
enum GenStmt {
    /// `b[i] op= expr;` / `c[i] op= expr;`
    Assign {
        to_b: bool,
        compound: bool,
        rhs: GenExpr,
    },
}

fn expr_strategy() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        (-4i8..=4).prop_map(GenExpr::Lit),
        any::<bool>().prop_map(GenExpr::Scalar),
        (-2i8..=2).prop_map(GenExpr::ReadA),
        Just(GenExpr::ReadAK),
        any::<bool>().prop_map(GenExpr::ReadOwn),
        Just(GenExpr::KAsFloat),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (any::<u8>(), inner.clone(), inner)
            .prop_map(|(op, l, r)| GenExpr::Bin(op, Box::new(l), Box::new(r)))
    })
}

fn stmt_strategy() -> impl Strategy<Value = GenStmt> {
    (any::<bool>(), any::<bool>(), expr_strategy())
        .prop_map(|(to_b, compound, rhs)| GenStmt::Assign { to_b, compound, rhs })
}

/// Render a whole program.
fn render(par_stmts: &[GenStmt], seq_stmts: &[GenStmt], seq_trip: u8, small: bool) -> String {
    let mut s = String::new();
    s.push_str(
        "void gen(int n, float s0, float s1, const float a[n], float b[n], float c[n]) {\n",
    );
    write!(
        s,
        "  #pragma acc kernels copyin(a) copy(b, c){}\n  {{\n",
        if small { " small(a, b, c)" } else { "" }
    )
    .unwrap();
    s.push_str("    #pragma acc loop gang vector\n    for (int i = 2; i < n - 6; i++) {\n");
    for st in par_stmts {
        render_stmt(st, false, &mut s);
    }
    if seq_trip > 0 && !seq_stmts.is_empty() {
        writeln!(s, "      #pragma acc loop seq\n      for (int k = 0; k < {seq_trip}; k++) {{")
            .unwrap();
        for st in seq_stmts {
            render_stmt(st, true, &mut s);
        }
        s.push_str("      }\n");
    }
    s.push_str("    }\n  }\n}\n");
    s
}

fn render_stmt(st: &GenStmt, in_seq: bool, out: &mut String) {
    let GenStmt::Assign { to_b, compound, rhs } = st;
    out.push_str("        ");
    out.push_str(if *to_b { "b[i]" } else { "c[i]" });
    out.push_str(if *compound { " += " } else { " = " });
    rhs.render(in_seq, out);
    out.push_str(";\n");
}

fn run_config(src: &str, cfg: &CompilerConfig, n: usize) -> (Vec<u32>, Vec<u32>) {
    let p = compile(src, cfg).unwrap_or_else(|e| panic!("{}: {e}\n{src}", cfg.name));
    let a: Vec<f32> = (0..n).map(|i| ((i * 7 + 3) % 23) as f32 * 0.25 - 2.0).collect();
    let b: Vec<f32> = (0..n).map(|i| ((i * 5 + 1) % 17) as f32 * 0.5 - 3.0).collect();
    let c: Vec<f32> = (0..n).map(|i| ((i * 11 + 4) % 13) as f32 * 0.75 - 4.0).collect();
    let mut args = Args::new()
        .i32("n", n as i32)
        .f32("s0", 1.25)
        .f32("s1", -0.5)
        .array_f32("a", &a)
        .array_f32("b", &b)
        .array_f32("c", &c);
    p.run("gen", &mut args, &DeviceConfig::k20xm())
        .unwrap_or_else(|e| panic!("{}: {e}\n{src}", cfg.name));
    // Compare as bit patterns so NaNs (possible under inf−inf) still
    // compare meaningfully.
    let bits = |name: &str| -> Vec<u32> {
        args.array(name).unwrap().as_f32().iter().map(|v| v.to_bits()).collect()
    };
    (bits("b"), bits("c"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// All compiler configurations agree bit-for-bit on random kernels.
    #[test]
    fn all_profiles_agree(
        par in prop::collection::vec(stmt_strategy(), 1..4),
        seq in prop::collection::vec(stmt_strategy(), 0..4),
        trip in 0u8..5,
        small in any::<bool>(),
    ) {
        let src = render(&par, &seq, trip, small);
        let n = 64usize;
        let reference = run_config(&src, &CompilerConfig::base(), n);
        for cfg in [
            CompilerConfig::safara_clauses(),
            CompilerConfig::safara_only(),
            CompilerConfig::carr_kennedy(),
            CompilerConfig::pgi_like(),
            CompilerConfig::safara_no_feedback(),
            CompilerConfig::safara_unroll(2),
            CompilerConfig::safara_unroll(4),
        ] {
            let got = run_config(&src, &cfg, n);
            prop_assert_eq!(
                &got, &reference,
                "{} diverged from base on:\n{}", cfg.name, src
            );
        }
    }

    /// The transformed source under SAFARA always re-parses and, when
    /// re-compiled from text, still matches the baseline.
    #[test]
    fn transformed_source_is_stable(
        par in prop::collection::vec(stmt_strategy(), 1..3),
        seq in prop::collection::vec(stmt_strategy(), 1..3),
        trip in 2u8..5,
    ) {
        let src = render(&par, &seq, trip, true);
        let n = 64usize;
        let reference = run_config(&src, &CompilerConfig::base(), n);
        let p = compile(&src, &CompilerConfig::safara_clauses()).unwrap();
        let txt = p.function("gen").unwrap().transformed_source();
        // Recompile the *transformed* text with SR disabled: semantics
        // must be unchanged (round-trip through the printer included).
        let got = run_config(&txt, &CompilerConfig::base(), n);
        prop_assert_eq!(&got, &reference, "reparsed transform diverged:\n{}", txt);
    }
}
