//! Randomized property tests of the front-end and the core analyses:
//!
//! * printer round-trips are fixed points (parse → print → parse → print);
//! * `affine_of` recovers coefficients of randomly *constructed* affine
//!   expressions exactly, and the affine form evaluates equal to the
//!   expression at random points;
//! * the GCD dependence test is sound (never reports "independent" when a
//!   brute-force search finds a solution);
//! * the lexer never panics on arbitrary ASCII input.
//!
//! All inputs are drawn from the in-tree [`SplitMix64`] generator (no
//! crates.io dependency); each case is a pure function of its index, so
//! failures reproduce exactly. Build with `--features heavy-tests` for a
//! much larger case count.

use safara_core::analysis::affine::{affine_of, AffineExpr};
use safara_core::analysis::depend::{gcd, gcd_test};
use safara_core::ir::printer::print_program;
use safara_core::ir::{lexer, parse_program, BinOp, Expr, Ident, UnOp};
use safara_core::SplitMix64;
use std::collections::BTreeMap;

fn cases() -> u64 {
    if cfg!(feature = "heavy-tests") {
        2048
    } else {
        128
    }
}

/// Random string over the printable-ASCII + `\n` + `\t` alphabet.
fn ascii_soup(rng: &mut SplitMix64, max_len: usize) -> String {
    let len = rng.gen_index(max_len + 1);
    (0..len)
        .map(|_| match rng.gen_index(96) {
            94 => '\n',
            95 => '\t',
            c => (b' ' + c as u8) as char,
        })
        .collect()
}

// ---------------------------------------------------------------- affine

/// Build a random *known-affine* expression and its expected form.
fn affine_pair(rng: &mut SplitMix64) -> (Expr, AffineExpr) {
    // Terms over variables i, j, k with small coefficients plus constant.
    let ci = rng.gen_range_i64(-5, 6);
    let cj = rng.gen_range_i64(-5, 6);
    let ck = rng.gen_range_i64(-5, 6);
    let c0 = rng.gen_range_i64(-20, 21);
    let shuffle: Vec<usize> = (0..rng.gen_index(4)).map(|_| rng.gen_index(3)).collect();

    let vars = ["i", "j", "k"];
    let coeffs = [ci, cj, ck];
    let mut expr = Expr::IntLit(c0);
    for (v, &c) in vars.iter().zip(&coeffs) {
        // c * v, built a few different ways for syntactic variety.
        let term = Expr::bin(BinOp::Mul, Expr::IntLit(c), Expr::var(*v));
        expr = Expr::bin(BinOp::Add, expr, term);
    }
    // Extra no-op shuffles: add then subtract a variable.
    for s in shuffle {
        let v = Expr::var(vars[s]);
        expr = Expr::bin(BinOp::Sub, Expr::bin(BinOp::Add, expr, v.clone()), v);
    }
    let mut want = AffineExpr::constant(c0);
    for (v, &c) in vars.iter().zip(&coeffs) {
        want = want.add(&AffineExpr::variable(Ident::new(*v)).scale(c));
    }
    (expr, want)
}

fn eval_expr(e: &Expr, env: &BTreeMap<&str, i64>) -> i64 {
    match e {
        Expr::IntLit(v) => *v,
        Expr::Var(v) => env[v.as_str()],
        Expr::Unary(UnOp::Neg, x) => -eval_expr(x, env),
        Expr::Binary(BinOp::Add, l, r) => eval_expr(l, env) + eval_expr(r, env),
        Expr::Binary(BinOp::Sub, l, r) => eval_expr(l, env) - eval_expr(r, env),
        Expr::Binary(BinOp::Mul, l, r) => eval_expr(l, env) * eval_expr(r, env),
        other => panic!("unexpected node {other:?}"),
    }
}

#[test]
fn affine_of_recovers_constructed_coefficients() {
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0xAFF1_0000 + case);
        let (expr, want) = affine_pair(&mut rng);
        let got = affine_of(&expr);
        assert!(!got.nonaffine);
        assert_eq!(got, want, "case {case}, expr: {expr:?}");
    }
}

#[test]
fn affine_form_evaluates_like_the_expression() {
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0xAFF2_0000 + case);
        let (expr, _) = affine_pair(&mut rng);
        let i = rng.gen_range_i64(-10, 10);
        let j = rng.gen_range_i64(-10, 10);
        let k = rng.gen_range_i64(-10, 10);
        let env: BTreeMap<&str, i64> = [("i", i), ("j", j), ("k", k)].into();
        let form = affine_of(&expr);
        let by_form: i64 =
            form.konst + form.terms.iter().map(|(v, c)| c * env[v.as_str()]).sum::<i64>();
        assert_eq!(by_form, eval_expr(&expr, &env), "case {case}");
    }
}

/// GCD-test soundness: if a brute-force search finds `a1·x + c1 ==
/// a2·y + c2`, the test must not have ruled a dependence out.
#[test]
fn gcd_test_is_sound() {
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0x6CD0_0000 + case);
        let a1 = rng.gen_range_i64(-6, 7);
        let c1 = rng.gen_range_i64(-30, 31);
        let a2 = rng.gen_range_i64(-6, 7);
        let c2 = rng.gen_range_i64(-30, 31);
        let mut found = false;
        'outer: for x in -60..=60i64 {
            for y in -60..=60i64 {
                if a1 * x + c1 == a2 * y + c2 {
                    found = true;
                    break 'outer;
                }
            }
        }
        if found {
            assert!(gcd_test(a1, c1, a2, c2), "missed dependence: {a1}x+{c1} == {a2}y+{c2}");
        }
    }
}

#[test]
fn gcd_agrees_with_euclid_properties() {
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0x6CD1_0000 + case);
        let a = rng.gen_range_i64(0, 1000) as u64;
        let b = rng.gen_range_i64(0, 1000) as u64;
        let g = gcd(a, b);
        if a != 0 || b != 0 {
            assert!(g > 0);
            assert_eq!(a % g, 0);
            assert_eq!(b % g, 0);
        } else {
            assert_eq!(g, 0);
        }
    }
}

/// The lexer terminates without panicking on arbitrary ASCII soup.
#[test]
fn lexer_never_panics() {
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0x1E0F_0000 + case);
        let src = ascii_soup(&mut rng, 200);
        let _ = lexer::lex(&src);
    }
}

/// The whole front-end (lex + parse + sema) returns `Err` rather than
/// panicking on arbitrary input.
#[test]
fn frontend_never_panics() {
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0xF404_0000 + case);
        let src = ascii_soup(&mut rng, 300);
        let _ = parse_program(&src);
    }
}

/// Mutated-but-plausible source: splice random punctuation into a
/// valid program; the front-end must still never panic.
#[test]
fn frontend_survives_mutations() {
    const PUNCT: &[u8] = b"(){};:,+*-";
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0x3071_0000 + case);
        let base = "void f(int n, float a[n]) {\n  #pragma acc kernels copy(a)\n  {\n    #pragma acc loop gang vector\n    for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }\n  }\n}\n";
        let cut = rng.gen_index(200).min(base.len());
        let punct: String = (0..1 + rng.gen_index(4))
            .map(|_| PUNCT[rng.gen_index(PUNCT.len())] as char)
            .collect();
        // The base is ASCII, so any byte offset is a char boundary.
        let mutated = format!("{}{}{}", &base[..cut], punct, &base[cut..]);
        let _ = parse_program(&mutated);
    }
}

// ------------------------------------------------------------- roundtrip

/// Random-but-valid MiniACC program for printer round-trips, built from
/// string templates (statement bodies come from a tiny grammar).
fn random_program(rng: &mut SplitMix64) -> String {
    const EXPRS: &[&str] = &[
        "a[i]",
        "a[i + 1]",
        "b[i]",
        "s0 * 2.0",
        "(a[i] - s1) / (s0 + 4.0)",
        "min(a[i], b[i]) + fabs(s1)",
        "(float) (i % 7)",
    ];
    let n_stmts = 1 + rng.gen_index(4);
    let mut body = String::new();
    for _ in 0..n_stmts {
        let to_b = rng.gen_bool();
        body.push_str(if to_b { "        b[i] = " } else { "        b[i] += " });
        body.push_str(EXPRS[rng.gen_index(EXPRS.len())]);
        body.push_str(";\n");
    }
    let with_seq = rng.gen_bool();
    let trip = 1 + rng.gen_index(3);
    let seq = if with_seq {
        format!(
            "        #pragma acc loop seq\n        for (int k = 0; k < {trip}; k++) \
             {{ b[i] += a[i] * 0.5; }}\n"
        )
    } else {
        String::new()
    };
    format!(
        "void f(int n, float s0, float s1, const float a[n], float b[n]) {{\n\
         #pragma acc kernels copyin(a) copy(b) small(a, b)\n{{\n\
         #pragma acc loop gang vector\nfor (int i = 0; i < n - 2; i++) {{\n\
         {body}{seq}}}\n}}\n}}\n"
    )
}

#[test]
fn printer_roundtrip_is_fixed_point() {
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0x4074_0000 + case);
        let src = random_program(&mut rng);
        let p1 = parse_program(&src).expect("generated source parses");
        let t1 = print_program(&p1);
        let p2 = parse_program(&t1).expect("printed source parses");
        let t2 = print_program(&p2);
        assert_eq!(t1, t2, "case {case}");
    }
}
