//! Property tests of the front-end and the core analyses:
//!
//! * printer round-trips are fixed points (parse → print → parse → print);
//! * `affine_of` recovers coefficients of randomly *constructed* affine
//!   expressions exactly, and the affine form evaluates equal to the
//!   expression at random points;
//! * the GCD dependence test is sound (never reports "independent" when a
//!   brute-force search finds a solution);
//! * the lexer never panics on arbitrary ASCII input.

use proptest::prelude::*;
use safara_core::analysis::affine::{affine_of, AffineExpr};
use safara_core::analysis::depend::{gcd, gcd_test};
use safara_core::ir::printer::print_program;
use safara_core::ir::{lexer, parse_program, BinOp, Expr, Ident, UnOp};
use std::collections::BTreeMap;

// ---------------------------------------------------------------- affine

/// Build a random *known-affine* expression and its expected form.
fn affine_pair() -> impl Strategy<Value = (Expr, AffineExpr)> {
    // Terms over variables i, j, k with small coefficients plus constant.
    (
        -5i64..=5,
        -5i64..=5,
        -5i64..=5,
        -20i64..=20,
        prop::collection::vec(0usize..3, 0..4),
    )
        .prop_map(|(ci, cj, ck, c0, shuffle)| {
            let vars = ["i", "j", "k"];
            let coeffs = [ci, cj, ck];
            let mut expr = Expr::IntLit(c0);
            for (v, &c) in vars.iter().zip(&coeffs) {
                // c * v, built a few different ways for syntactic variety.
                let term = Expr::bin(BinOp::Mul, Expr::IntLit(c), Expr::var(*v));
                expr = Expr::bin(BinOp::Add, expr, term);
            }
            // Extra no-op shuffles: add then subtract a variable.
            for s in shuffle {
                let v = Expr::var(vars[s]);
                expr = Expr::bin(
                    BinOp::Sub,
                    Expr::bin(BinOp::Add, expr, v.clone()),
                    v,
                );
            }
            let mut want = AffineExpr::constant(c0);
            for (v, &c) in vars.iter().zip(&coeffs) {
                want = want.add(&AffineExpr::variable(Ident::new(*v)).scale(c));
            }
            (expr, want)
        })
}

fn eval_expr(e: &Expr, env: &BTreeMap<&str, i64>) -> i64 {
    match e {
        Expr::IntLit(v) => *v,
        Expr::Var(v) => env[v.as_str()],
        Expr::Unary(UnOp::Neg, x) => -eval_expr(x, env),
        Expr::Binary(BinOp::Add, l, r) => eval_expr(l, env) + eval_expr(r, env),
        Expr::Binary(BinOp::Sub, l, r) => eval_expr(l, env) - eval_expr(r, env),
        Expr::Binary(BinOp::Mul, l, r) => eval_expr(l, env) * eval_expr(r, env),
        other => panic!("unexpected node {other:?}"),
    }
}

proptest! {
    #[test]
    fn affine_of_recovers_constructed_coefficients((expr, want) in affine_pair()) {
        let got = affine_of(&expr);
        prop_assert!(!got.nonaffine);
        prop_assert_eq!(&got, &want, "expr: {:?}", expr);
    }

    #[test]
    fn affine_form_evaluates_like_the_expression(
        (expr, _) in affine_pair(),
        i in -10i64..10, j in -10i64..10, k in -10i64..10,
    ) {
        let env: BTreeMap<&str, i64> = [("i", i), ("j", j), ("k", k)].into();
        let form = affine_of(&expr);
        let by_form: i64 = form.konst
            + form.terms.iter().map(|(v, c)| c * env[v.as_str()]).sum::<i64>();
        prop_assert_eq!(by_form, eval_expr(&expr, &env));
    }

    /// GCD-test soundness: if a brute-force search finds `a1·x + c1 ==
    /// a2·y + c2`, the test must not have ruled a dependence out.
    #[test]
    fn gcd_test_is_sound(a1 in -6i64..=6, c1 in -30i64..=30, a2 in -6i64..=6, c2 in -30i64..=30) {
        let mut found = false;
        'outer: for x in -60..=60i64 {
            for y in -60..=60i64 {
                if a1 * x + c1 == a2 * y + c2 {
                    found = true;
                    break 'outer;
                }
            }
        }
        if found {
            prop_assert!(gcd_test(a1, c1, a2, c2), "missed dependence: {a1}x+{c1} == {a2}y+{c2}");
        }
    }

    #[test]
    fn gcd_agrees_with_euclid_properties(a in 0u64..1000, b in 0u64..1000) {
        let g = gcd(a, b);
        if a != 0 || b != 0 {
            prop_assert!(g > 0);
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!(g, 0);
        }
    }

    /// The lexer terminates without panicking on arbitrary ASCII soup.
    #[test]
    fn lexer_never_panics(src in "[ -~\\n\\t]{0,200}") {
        let _ = lexer::lex(&src);
    }

    /// The whole front-end (lex + parse + sema) returns `Err` rather than
    /// panicking on arbitrary input.
    #[test]
    fn frontend_never_panics(src in "[ -~\\n\\t]{0,300}") {
        let _ = parse_program(&src);
    }

    /// Mutated-but-plausible source: splice random punctuation into a
    /// valid program; the front-end must still never panic.
    #[test]
    fn frontend_survives_mutations(pos in 0usize..200, punct in "[(){};:,+*-]{1,4}") {
        let base = "void f(int n, float a[n]) {\n  #pragma acc kernels copy(a)\n  {\n    #pragma acc loop gang vector\n    for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }\n  }\n}\n";
        let cut = pos.min(base.len());
        // The base is ASCII, so any byte offset is a char boundary.
        let mutated = format!("{}{}{}", &base[..cut], punct, &base[cut..]);
        let _ = parse_program(&mutated);
    }
}

// ------------------------------------------------------------- roundtrip

/// Random-but-valid MiniACC programs for printer round-trips, built from
/// string templates (statement bodies come from a tiny grammar).
fn program_strategy() -> impl Strategy<Value = String> {
    let expr = prop_oneof![
        Just("a[i]".to_string()),
        Just("a[i + 1]".to_string()),
        Just("b[i]".to_string()),
        Just("s0 * 2.0".to_string()),
        Just("(a[i] - s1) / (s0 + 4.0)".to_string()),
        Just("min(a[i], b[i]) + fabs(s1)".to_string()),
        Just("(float) (i % 7)".to_string()),
    ];
    (
        prop::collection::vec((any::<bool>(), expr), 1..5),
        any::<bool>(),
        1u8..4,
    )
        .prop_map(|(stmts, with_seq, trip)| {
            let mut body = String::new();
            for (to_b, e) in &stmts {
                body.push_str(if *to_b { "        b[i] = " } else { "        b[i] += " });
                body.push_str(e);
                body.push_str(";\n");
            }
            let seq = if with_seq {
                format!(
                    "        #pragma acc loop seq\n        for (int k = 0; k < {trip}; k++) \
                     {{ b[i] += a[i] * 0.5; }}\n"
                )
            } else {
                String::new()
            };
            format!(
                "void f(int n, float s0, float s1, const float a[n], float b[n]) {{\n\
                 #pragma acc kernels copyin(a) copy(b) small(a, b)\n{{\n\
                 #pragma acc loop gang vector\nfor (int i = 0; i < n - 2; i++) {{\n\
                 {body}{seq}}}\n}}\n}}\n"
            )
        })
}

proptest! {
    #[test]
    fn printer_roundtrip_is_fixed_point(src in program_strategy()) {
        let p1 = parse_program(&src).expect("generated source parses");
        let t1 = print_program(&p1);
        let p2 = parse_program(&t1).expect("printed source parses");
        let t2 = print_program(&p2);
        prop_assert_eq!(t1, t2);
    }
}
