//! Cross-crate integration: every workload of both suites, compiled under
//! every compiler configuration, must run on the simulator and validate
//! against its pure-Rust reference. This is the repository's master
//! differential test — any unsound transformation in any pass fails it.

use safara_core::{CompilerConfig, DeviceConfig};
use safara_workloads::{all_workloads, nas_suite, run_workload, spec_suite, Scale};

fn all_correct_under(cfg: CompilerConfig) {
    let dev = DeviceConfig::k20xm();
    for w in all_workloads() {
        run_workload(w.as_ref(), &cfg, Scale::Test, &dev)
            .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name(), cfg.name));
    }
}

#[test]
fn every_workload_correct_under_base() {
    all_correct_under(CompilerConfig::base());
}

#[test]
fn every_workload_correct_under_safara_only() {
    all_correct_under(CompilerConfig::safara_only());
}

#[test]
fn every_workload_correct_under_small() {
    all_correct_under(CompilerConfig::small());
}

#[test]
fn every_workload_correct_under_small_dim() {
    all_correct_under(CompilerConfig::small_dim());
}

#[test]
fn every_workload_correct_under_full_pipeline() {
    all_correct_under(CompilerConfig::safara_clauses());
}

#[test]
fn every_workload_correct_under_safara_small() {
    all_correct_under(CompilerConfig::safara_small());
}

#[test]
fn every_workload_correct_under_pgi_like() {
    all_correct_under(CompilerConfig::pgi_like());
}

#[test]
fn every_workload_correct_under_count_only_ablation() {
    all_correct_under(CompilerConfig::safara_count_only());
}

#[test]
fn every_workload_correct_under_no_feedback_ablation() {
    all_correct_under(CompilerConfig::safara_no_feedback());
}

#[test]
fn every_workload_correct_under_unrolling_extension() {
    // The §VII future-work extension must preserve semantics everywhere.
    all_correct_under(CompilerConfig::safara_unroll(2));
    all_correct_under(CompilerConfig::safara_unroll(4));
}

#[test]
fn carr_kennedy_is_slower_but_correct() {
    // The classical algorithm must still produce right answers even when
    // it sequentializes parallel loops (Fig. 4); it just pays for it.
    let dev = DeviceConfig::k20xm();
    for w in all_workloads() {
        run_workload(w.as_ref(), &CompilerConfig::carr_kennedy(), Scale::Test, &dev)
            .unwrap_or_else(|e| panic!("{} under CK: {e}", w.name()));
    }
}

#[test]
fn suites_have_the_papers_benchmark_counts() {
    assert_eq!(spec_suite().len(), 10);
    assert_eq!(nas_suite().len(), 6);
    let names: Vec<&str> = nas_suite().iter().map(|w| w.name()).collect();
    assert_eq!(names, ["EP", "CG", "MG", "SP", "LU", "BT"]);
}

#[test]
fn dim_marked_workloads_are_the_fortran_modeled_ones() {
    let with_dim: Vec<&str> = spec_suite()
        .iter()
        .filter(|w| w.uses_dim())
        .map(|w| w.name())
        .collect();
    assert_eq!(with_dim, ["355.seismic", "356.sp", "363.swim"]);
    // The paper: NAS benchmarks are C without VLAs — no dim anywhere.
    assert!(nas_suite().iter().all(|w| !w.uses_dim()));
}
