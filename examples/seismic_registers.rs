//! The paper's motivating example, end to end: compile the
//! 355.seismic-like workload under Base / +small / +small+dim /
//! +SAFARA, print the Table-I-style register usage, and run each
//! configuration on the simulator.
//!
//! ```sh
//! cargo run --release -p safara-core --example seismic_registers
//! ```

use safara_core::report::{format_register_table, register_table};
use safara_core::{compile, CompilerConfig, DeviceConfig};
use safara_workloads::spec::seismic::Seismic;
use safara_workloads::{run_workload, Scale, Workload};

fn main() {
    let src = Seismic.source();
    let configs = [
        CompilerConfig::base(),
        CompilerConfig::small(),
        CompilerConfig::small_dim(),
        CompilerConfig::safara_clauses(),
    ];
    let programs: Vec<_> = configs
        .iter()
        .map(|c| compile(&src, c).expect("seismic compiles"))
        .collect();
    let refs: Vec<&safara_core::CompiledProgram> = programs.iter().collect();
    println!("355.seismic — registers per hot kernel, per configuration\n");
    let rows = register_table("seismic_step", &refs);
    print!(
        "{}",
        format_register_table(&["Base", "+small", "+small+dim", "+SAFARA"], &rows)
    );

    println!("\nmodelled execution (validated against the Rust reference):");
    let dev = DeviceConfig::k20xm();
    let mut base_cycles = None;
    for cfg in &configs {
        let (report, _) =
            run_workload(&Seismic, cfg, Scale::Bench, &dev).expect("runs and validates");
        let c = report.total_cycles();
        let speedup = base_cycles.get_or_insert(c);
        println!("  {:<28} {:>12.0} cycles   {:>5.2}x", cfg.name, c, *speedup / c);
    }
}
