//! How a programmer would actually use the proposed clauses: take one
//! kernel, try it with and without `small`/`dim`, and read the register
//! and occupancy consequences off the compile reports — the workflow the
//! paper's §IV envisions.
//!
//! ```sh
//! cargo run --release -p safara-core --example clause_tuning
//! ```

use safara_core::{compile, Args, CompilerConfig, DeviceConfig};

/// The same physics kernel written three ways.
fn variant(clauses: &str) -> String {
    format!(
        r#"
void update(int nx, int ny, int nz,
            double p[1:nz][1:ny][1:nx], double q[1:nz][1:ny][1:nx],
            double r[1:nz][1:ny][1:nx]) {{
  #pragma acc kernels copy(p, q, r) {clauses}
  {{
    #pragma acc loop gang
    for (int j = 1; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 1; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          r[k][j][i] = p[k][j][i] - p[k - 1][j][i]
                     + q[k][j][i] - q[k - 1][j][i]
                     + 0.5 * r[k][j][i];
        }}
      }}
    }}
  }}
}}
"#
    )
}

fn main() {
    let dev = DeviceConfig::k20xm();
    let n = 16usize;
    println!("clause tuning on a 3-array Fortran-style kernel ({})\n", dev.name);
    println!(
        "{:<44}{:>8}{:>12}{:>14}",
        "clauses", "regs", "warps/SM", "cycles"
    );
    let cases = [
        ("", "(none)"),
        ("small(p, q, r)", "small"),
        ("small(p, q, r) dim((1:nz, 1:ny, 1:nx)(p, q, r))", "small + dim"),
    ];
    let mut results = Vec::new();
    for (clauses, label) in cases {
        let src = variant(clauses);
        // The compiler honors whatever clauses appear in the source; the
        // profile just has to allow them.
        let p = compile(&src, &CompilerConfig::safara_clauses()).expect("compiles");
        let f = p.function("update").expect("exists");
        let regs = f.max_regs();
        let occ = dev.occupancy(regs.max(16), 256);
        let mut args = Args::new().i32("nx", n as i32).i32("ny", n as i32).i32("nz", n as i32);
        for name in ["p", "q", "r"] {
            let data: Vec<f64> = (0..n * n * n).map(|i| (i % 11) as f64 * 0.25).collect();
            args = args.array_f64(name, &data);
        }
        let rep = p.run("update", &mut args, &dev).expect("runs");
        println!(
            "{:<44}{:>8}{:>12}{:>14.0}",
            label,
            regs,
            occ.active_warps_per_sm,
            rep.total_cycles()
        );
        results.push((label, args.array("r").unwrap().as_f64()));
    }
    // All three variants compute identical results.
    for (label, r) in &results[1..] {
        assert_eq!(r, &results[0].1, "{label} changed the numerics!");
    }
    println!("\nall three variants produce bit-identical results;");
    println!("the clauses only change the registers the kernel needs.");
}
