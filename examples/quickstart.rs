//! Quickstart: compile a MiniACC kernel with the full SAFARA pipeline,
//! run it on the simulated K20Xm, and inspect what the compiler did.
//!
//! ```sh
//! cargo run --release -p safara-core --example quickstart
//! ```

use safara_core::{compile, Args, CompilerConfig, DeviceConfig};

const SRC: &str = r#"
// A 2-D five-point stencil with a sequential sweep over time-steps.
void stencil(int n, int steps, const float w[n][n], float grid[n][n]) {
  #pragma acc kernels copyin(w) copy(grid) small(w, grid)
  {
    #pragma acc loop gang
    for (int j = 1; j < n - 1; j++) {
      #pragma acc loop vector
      for (int i = 1; i < n - 1; i++) {
        #pragma acc loop seq
        for (int t = 0; t < steps; t++) {
          grid[j][i] = 0.6 * grid[j][i]
                     + 0.1 * (grid[j][i - 1] + grid[j][i + 1])
                     + 0.1 * (w[j][i] + w[j][i]);
        }
      }
    }
  }
}
"#;

fn main() {
    let dev = DeviceConfig::k20xm();

    // Compile twice: baseline and the full pipeline (small + dim honored,
    // SAFARA with the iterative register feedback loop).
    let base = compile(SRC, &CompilerConfig::base()).expect("baseline compiles");
    let opt = compile(SRC, &CompilerConfig::safara_clauses()).expect("optimized compiles");

    let n = 130usize;
    let run = |program: &safara_core::CompiledProgram| {
        let mut args = Args::new()
            .i32("n", n as i32)
            .i32("steps", 16)
            .array_f32("w", &vec![0.5; n * n])
            .array_f32("grid", &vec![1.0; n * n]);
        let report = program.run("stencil", &mut args, &dev).expect("runs");
        (report, args)
    };
    let (rb, ab) = run(&base);
    let (ro, ao) = run(&opt);

    // Same numbers either way — scalar replacement is semantics-preserving.
    assert_eq!(ab.array("grid").unwrap().as_f32(), ao.array("grid").unwrap().as_f32());

    println!("device: {}\n", dev.name);
    println!("what SAFARA did to the source:");
    println!("{}", opt.function("stencil").unwrap().transformed_source());
    let fb = base.function("stencil").unwrap();
    let fo = opt.function("stencil").unwrap();
    println!("baseline:  {:3} regs/thread, {:>10.0} modelled cycles", fb.max_regs(), rb.total_cycles());
    println!(
        "optimized: {:3} regs/thread, {:>10.0} modelled cycles ({:.2}x, {} temps, {} feedback rounds)",
        fo.max_regs(),
        ro.total_cycles(),
        rb.total_cycles() / ro.total_cycles(),
        fo.sr_outcome.temps_added,
        fo.feedback_rounds,
    );
    println!(
        "memory loads: {} -> {}",
        rb.kernels[0].stats.global_ld_requests + rb.kernels[0].stats.readonly_requests,
        ro.kernels[0].stats.global_ld_requests + ro.kernels[0].stats.readonly_requests,
    );
}
