//! A tour of the compiler's intermediate artifacts: transformed source
//! (Fig. 6 style), VIR disassembly (the PTX stand-in), the PTXAS-sim
//! register report, and the dynamic statistics a run produces — the
//! observability a compiler engineer would want from the real OpenUH
//! pipeline.
//!
//! ```sh
//! cargo run --release -p safara-core --example inspect_compiler
//! ```

use safara_core::{compile, Args, CompilerConfig, DeviceConfig};

const SRC: &str = r#"
void fig5(int jsize, int isize, float a[260][260], float b[260][260],
          float c[260], float d[260]) {
  #pragma acc kernels copy(a, b, c, d)
  {
    #pragma acc loop gang vector
    for (int j = 1; j <= jsize; j++) {
      c[j] = b[j][0] + b[j][1];
      d[j] = c[j] * b[j][0];
      #pragma acc loop seq
      for (int i = 1; i <= isize; i++) {
        a[i][j] += a[i - 1][j] + b[j][i - 1] + a[i + 1][j] + b[j][i + 1];
      }
    }
  }
}
"#;

fn main() {
    // The paper's Fig. 5 program, through the full pipeline.
    let p = compile(SRC, &CompilerConfig::safara_only()).expect("compiles");
    let f = p.function("fig5").expect("exists");

    println!("=== transformed source (compare the paper's Fig. 6) ===\n");
    println!("{}", f.transformed_source());

    println!("=== VIR disassembly of the kernel (PTX stand-in) ===\n");
    println!("{}", f.kernels[0].kernel.vir.disassemble());

    println!("=== PTXAS-sim report (the static feedback) ===\n");
    let a = &f.kernels[0].alloc;
    println!("registers used : {}", a.regs_used);
    println!("demand         : {}", a.demand);
    println!("spilled vregs  : {}", a.spilled.len());
    println!("feedback rounds: {}", f.feedback_rounds);
    println!("temps added    : {}", f.sr_outcome.temps_added);

    println!("\n=== dynamic statistics from one run ===\n");
    let dev = DeviceConfig::k20xm();
    let n = 34usize;
    let mut args = Args::new()
        .i32("jsize", n as i32)
        .i32("isize", n as i32)
        .array_f32("a", &vec![0.25; 260 * 260])
        .array_f32("b", &vec![0.5; 260 * 260])
        .array_f32("c", &vec![0.0; 260])
        .array_f32("d", &vec![0.0; 260]);
    let rep = p.run("fig5", &mut args, &dev).expect("runs");
    let k = &rep.kernels[0];
    println!("{:?}", k.stats);
    println!(
        "\nmodelled: {:.0} cycles ({:.3} ms), bound by {}, occupancy {:.0}%",
        k.timing.total_cycles,
        k.timing.millis(&dev),
        k.timing.bound(),
        k.timing.occupancy * 100.0
    );
}
