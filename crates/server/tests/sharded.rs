//! Scale-out smoke: `safara-serve --shards 2` spawns two real server
//! processes, each owning a private cache partition. Requests routed by
//! consistent hash of the content key (`protocol::run_key` +
//! `protocol::shard_for` — the same pair `safara-client` uses) must
//! produce responses byte-identical to a cold single-process run, and
//! a repeated key must land on the same shard and replay its cache.

use safara_server::json::Json;
use safara_server::protocol::{build_run_request, parse_request, run_key, shard_for, Op};
use safara_server::service::{Engine, EngineConfig};
use safara_server::Submit;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::process::CommandExt;
use std::sync::mpsc;
use std::time::Duration;

const SCALE: &str = r#"
void scale(int n, float alpha, float x[n]) {
  #pragma acc kernels copy(x)
  {
    #pragma acc loop gang vector
    for (int i = 0; i < n; i++) { x[i] = x[i] * alpha + 1.0f; }
  }
}"#;

fn request_line(id: i64, seed: f32) -> String {
    let args = safara_core::Args::new()
        .i32("n", 32)
        .f32("alpha", 1.5)
        .array_f32("x", &(0..32).map(|i| seed + i as f32 * 0.5).collect::<Vec<_>>());
    build_run_request(id, SCALE, "scale", "base", &args, true)
}

/// The cold single-process reference for one request line.
fn cold_reference(line: &str) -> String {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_depth: 4,
        ..EngineConfig::default()
    });
    let (tx, rx) = mpsc::channel();
    match engine.submit(parse_request(line).unwrap(), tx) {
        Submit::Queued => {}
        Submit::Rejected { response, .. } => panic!("rejected: {response}"),
    }
    let response = rx.recv_timeout(Duration::from_secs(30)).expect("cold run answers");
    engine.shutdown();
    response
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect shard");
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Conn { writer: stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("read");
        assert!(n > 0, "shard closed before answering");
        response.trim_end().to_string()
    }
}

/// Kills the whole shard process group on drop, so a failed assertion
/// mid-test never leaves orphaned `safara-serve` processes listening.
struct ShardGroup(std::process::Child);

impl Drop for ShardGroup {
    fn drop(&mut self) {
        if matches!(self.0.try_wait(), Ok(Some(_))) {
            return; // clean exit already observed
        }
        let _ = std::process::Command::new("kill")
            .args(["-9", "--", &format!("-{}", self.0.id())])
            .status();
        let _ = self.0.wait();
    }
}

#[test]
fn two_shards_serve_byte_identical_responses_and_partition_the_cache() {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_safara-serve"));
    cmd.args(["--shards", "2", "--workers", "1"])
        .stdout(std::process::Stdio::piped())
        .process_group(0); // parent + shards share a pgid we can kill on failure
    let mut parent = ShardGroup(cmd.spawn().expect("spawn --shards 2"));
    let mut lines = BufReader::new(parent.0.stdout.take().expect("stdout piped")).lines();
    let addrs: Vec<String> = loop {
        let line = lines
            .next()
            .expect("parent printed the summary before exiting")
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix("shards ") {
            break rest.split(' ').map(str::to_string).collect();
        }
        assert!(line.starts_with("shard "), "unexpected parent output: {line}");
    };
    assert_eq!(addrs.len(), 2, "two shard addresses: {addrs:?}");
    let mut conns: Vec<Conn> = addrs.iter().map(|a| Conn::open(a)).collect();

    // 8 distinct keys, routed like the client routes, each compared
    // bytewise against a cold single-process run.
    let mut routed = [0usize; 2];
    let mut repeat = None;
    for id in 0..8 {
        let line = request_line(id, id as f32);
        let req = parse_request(&line).unwrap();
        let Op::Run(r) = &req.op else { panic!("run request") };
        let shard = shard_for(run_key(r), 2) as usize;
        routed[shard] += 1;
        let got = conns[shard].roundtrip(&line);
        assert_eq!(got, cold_reference(&line), "id {id} on shard {shard}");
        if repeat.is_none() {
            repeat = Some((line, shard));
        }
    }
    assert_eq!(routed[0] + routed[1], 8);
    assert!(routed[0] > 0 && routed[1] > 0, "both shards saw work: {routed:?}");

    // Consistent routing: the same key goes back to the same shard and
    // replays that shard's cache partition.
    let (line, shard) = repeat.expect("at least one request routed");
    let again = conns[shard].roundtrip(&line);
    assert_eq!(again, cold_reference(&line), "replay is byte-identical");
    let stats = Json::parse(&conns[shard].roundtrip(r#"{"id":900,"op":"stats"}"#)).unwrap();
    let cache = stats.get("cache").expect("cache section");
    assert!(
        cache.get("hits").and_then(Json::as_i64).unwrap() >= 1,
        "the repeat hit shard {shard}'s cache: {stats}"
    );
    // The other shard never saw this key (its cache holds only its own
    // partition's entries). Stats ops are answered inline by the
    // dispatcher, so `submitted` counts exactly the routed runs.
    let other = Json::parse(&conns[1 - shard].roundtrip(r#"{"id":901,"op":"stats"}"#)).unwrap();
    let other_runs = other
        .get("server")
        .and_then(|s| s.get("submitted"))
        .and_then(Json::as_i64)
        .unwrap();
    assert_eq!(other_runs, routed[1 - shard] as i64, "only its own routed work");

    // Tear down: each shard exits on its own shutdown op, then the
    // parent reaps them and exits too.
    for conn in &mut conns {
        let bye = conn.roundtrip(r#"{"op":"shutdown"}"#);
        assert!(bye.contains("shutting_down"), "{bye}");
    }
    let status = parent.0.wait().expect("parent exits after its shards");
    assert!(status.success(), "parent exit: {status}");
}
