//! Differential stampede test: the cache-stampede fix, end to end.
//!
//! The bug this pins down: the launch memo cache only helps *after* a
//! simulation completes, so N concurrent identical requests all missed
//! and each ran the full compile+simulate pipeline. With single-flight
//! dedup, a 32-request stampede must collapse to exactly one pipeline
//! execution — one cache insert, one compiled program — with the other
//! 31 counted `coalesced`, and every response must be bitwise equal to
//! what a cold single-threaded server produces (v1 and v2 shapes; v1
//! stays byte-stable per `tests/v1_compat.rs`). Errors stampede too:
//! a failing leader fans its typed error out to every waiter.

use safara_server::json::Json;
use safara_server::protocol::{build_run_request, build_run_request_v, parse_request};
use safara_server::service::{Engine, EngineConfig};
use safara_server::Submit;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Duration;

const SCALE: &str = r#"
void scale(int n, float alpha, float x[n]) {
  #pragma acc kernels copy(x)
  {
    #pragma acc loop gang vector
    for (int i = 0; i < n; i++) { x[i] = x[i] * alpha + 1.0f; }
  }
}"#;

fn scale_args() -> safara_core::Args {
    safara_core::Args::new()
        .i32("n", 64)
        .f32("alpha", 1.5)
        .array_f32("x", &(0..64).map(|i| i as f32 * 0.25).collect::<Vec<_>>())
}

fn submit(engine: &Engine, line: &str, tx: &mpsc::Sender<String>) {
    match engine.submit(parse_request(line).unwrap(), tx.clone()) {
        Submit::Queued => {}
        Submit::Rejected { response, .. } => panic!("rejected: {response}"),
    }
}

/// The reference: one request against a cold single-worker engine.
fn cold_reference(line: &str) -> String {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_depth: 4,
        ..EngineConfig::default()
    });
    let (tx, rx) = mpsc::channel();
    submit(&engine, line, &tx);
    let response = rx.recv_timeout(Duration::from_secs(30)).expect("cold run answers");
    engine.shutdown();
    response
}

/// Stampede `line` 32× (one leader + 31 parked duplicates) against a
/// single-worker engine held busy, so every duplicate deterministically
/// arrives while the leader is in flight.
fn stampede(line: &str) -> (Vec<String>, Arc<safara_server::service::EngineShared>) {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_depth: 64,
        ..EngineConfig::default()
    });
    let (hold_tx, hold_rx) = mpsc::channel();
    submit(&engine, r#"{"id":0,"op":"sleep","ms":300}"#, &hold_tx);
    std::thread::sleep(Duration::from_millis(100)); // worker now asleep
    let channels: Vec<(mpsc::Sender<String>, mpsc::Receiver<String>)> =
        (0..32).map(|_| mpsc::channel()).collect();
    for (tx, _) in &channels {
        submit(&engine, line, tx);
    }
    assert_eq!(
        Json::parse(&hold_rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("ok"),
        "the hold sleep finished"
    );
    let responses = channels
        .iter()
        .map(|(_, rx)| rx.recv_timeout(Duration::from_secs(30)).expect("fan-out delivers"))
        .collect();
    let shared = Arc::clone(engine.shared());
    engine.shutdown();
    (responses, shared)
}

#[test]
fn a_32_request_stampede_runs_the_pipeline_once_and_fans_out_bitwise() {
    for v in [1u8, 2u8] {
        let line = if v == 1 {
            build_run_request(7, SCALE, "scale", "base", &scale_args(), true)
        } else {
            build_run_request_v(2, 7, SCALE, "scale", "base", &scale_args(), true)
        };
        let want = cold_reference(&line);
        assert!(want.contains(r#""status":"ok""#), "v{v} reference: {want}");
        let (responses, shared) = stampede(&line);
        for (i, got) in responses.iter().enumerate() {
            assert_eq!(
                got, &want,
                "v{v} response {i} must be bitwise equal to the cold single-threaded run"
            );
        }
        let n = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        assert_eq!(n(&shared.coalesced), 31, "v{v}: one leader, 31 parked");
        assert_eq!(shared.cache.misses(), 1, "v{v}: exactly one cache insert");
        assert_eq!(shared.cache.hits(), 0, "v{v}: no duplicate reached the cache");
        assert_eq!(shared.cache.len(), 1, "v{v}: one entry");
        assert_eq!(shared.programs_cached(), 1, "v{v}: one compile");
        assert_eq!(n(&shared.completed), 2, "v{v}: the hold sleep + the leader");
        assert_eq!(n(&shared.replies_dropped), 0, "v{v}");
        // The extended accounting invariant, exactly.
        assert_eq!(
            n(&shared.submitted),
            n(&shared.completed)
                + n(&shared.errors)
                + n(&shared.timed_out)
                + n(&shared.timed_out_late)
                + n(&shared.shed)
                + n(&shared.coalesced),
            "v{v} accounting"
        );
    }
}

#[test]
fn an_error_stampede_fans_the_leaders_typed_failure_to_every_waiter() {
    // A kernel that fails *simulation-side* would need fault injection;
    // a compile failure is the plain deterministic path: the leader's
    // typed `CompileError` must propagate to all 31 waiters.
    let line = build_run_request_v(2, 9, "void broken(", "broken", "base", &scale_args(), false);
    let want = cold_reference(&line);
    assert!(want.contains(r#""status":"error""#), "reference fails: {want}");
    let (responses, shared) = stampede(&line);
    for (i, got) in responses.iter().enumerate() {
        assert_eq!(got, &want, "waiter {i} gets the leader's typed error bitwise");
    }
    let code = Json::parse(&responses[0])
        .unwrap()
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .map(str::to_string);
    assert_eq!(code.as_deref(), Some("parse"));
    assert_eq!(shared.coalesced.load(Ordering::Relaxed), 31);
    assert_eq!(shared.errors.load(Ordering::Relaxed), 1, "one leader error, no waiter errors");
    assert_eq!(shared.errors_by_code.get("parse"), 1);
}
