//! End-to-end acceptance test: a live TCP server under concurrent
//! client load, with every response checked bitwise against
//! single-threaded reference runs made through `safara_core` directly.
//!
//! 4 client threads × 25 pipelined requests each, over 6 distinct
//! (program, profile, inputs) combinations — so most requests repeat an
//! earlier one and the shared launch cache must take warm hits. Zero
//! dropped responses allowed; every array must match the reference
//! bit for bit.

use safara_core::gpusim::device::DeviceConfig;
use safara_core::{run_compiled, Args};
use safara_server::json::Json;
use safara_server::protocol::{build_run_request, digest, resolve_profile};
use safara_server::service::EngineConfig;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const SCALE: &str = r#"
void scale(int n, float alpha, float x[n]) {
  #pragma acc kernels copy(x)
  {
    #pragma acc loop gang vector
    for (int i = 0; i < n; i++) { x[i] = x[i] * alpha + 1.0f; }
  }
}"#;

const STENCIL: &str = r#"
void stencil(int m, float a[66][66], float b[66][66]) {
  #pragma acc kernels copyin(a) copy(b)
  {
    #pragma acc loop gang vector
    for (int j = 1; j <= m; j++) {
      #pragma acc loop seq
      for (int i = 1; i <= m; i++) {
        b[i][j] = a[i - 1][j] + a[i + 1][j] + a[i][j - 1] + a[i][j + 1];
      }
    }
  }
}"#;

const SUMSQ: &str = r#"
void sumsq(int n, const float x[n], float s) {
  #pragma acc kernels copyin(x)
  {
    #pragma acc loop gang vector reduction(+:s)
    for (int i = 0; i < n; i++) { s += x[i] * x[i]; }
  }
}"#;

/// One distinct request shape: program + profile + inputs.
struct Combo {
    source: &'static str,
    entry: &'static str,
    profile: &'static str,
    args: Args,
}

fn combos() -> Vec<Combo> {
    let scale_args = |seed: f32| {
        Args::new()
            .i32("n", 64)
            .f32("alpha", 1.5)
            .array_f32("x", &(0..64).map(|i| seed + i as f32 * 0.25).collect::<Vec<_>>())
    };
    let grid: Vec<f32> = (0..66 * 66).map(|i| (i % 31) as f32 * 0.5 - 3.0).collect();
    let stencil_args = Args::new()
        .i32("m", 64)
        .array_f32("a", &grid)
        .array_f32("b", &vec![0.0f32; 66 * 66]);
    let sumsq_args = Args::new()
        .i32("n", 96)
        .f32("s", 0.0)
        .array_f32("x", &(0..96).map(|i| (i as f32 * 0.125).sin()).collect::<Vec<_>>());
    vec![
        Combo { source: SCALE, entry: "scale", profile: "base", args: scale_args(0.0) },
        Combo { source: SCALE, entry: "scale", profile: "safara_only", args: scale_args(0.0) },
        Combo { source: SCALE, entry: "scale", profile: "base", args: scale_args(100.0) },
        Combo { source: STENCIL, entry: "stencil", profile: "safara_only", args: stencil_args.clone() },
        Combo { source: STENCIL, entry: "stencil", profile: "carr_kennedy", args: stencil_args },
        Combo { source: SUMSQ, entry: "sumsq", profile: "safara_clauses", args: sumsq_args },
    ]
}

/// The single-threaded reference: run each combo through the core
/// pipeline directly and keep the post-run arrays (bit patterns).
fn reference_outputs(combos: &[Combo]) -> Vec<HashMap<String, Vec<u32>>> {
    let dev = DeviceConfig::k20xm();
    combos
        .iter()
        .map(|c| {
            let config = resolve_profile(c.profile).expect("known profile");
            let program = safara_core::compile(c.source, &config).expect("compiles");
            let mut args = c.args.clone();
            run_compiled(&program, c.entry, &mut args, &dev, None).expect("runs");
            args.arrays
                .iter()
                .map(|(k, a)| (k.to_string(), a.as_f32_bits()))
                .collect()
        })
        .collect()
}

#[test]
fn concurrent_clients_get_bitwise_identical_results_with_warm_cache() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 25;

    let combos = combos();
    let reference = reference_outputs(&combos);

    let handle = safara_server::serve(
        "127.0.0.1:0",
        // Coalescing off: this test pins the *warm cache* path — every
        // duplicate must reach the launch cache rather than park on an
        // in-flight leader (single-flight has its own stampede tests).
        EngineConfig { workers: 2, queue_depth: 256, coalesce: false, ..EngineConfig::default() },
    )
    .expect("bind ephemeral port");
    let addr = handle.addr;

    // Pre-build every request line: client t sends requests with ids
    // t*1000+i, cycling through the combos (25 % 6 != 0, so clients
    // start at different offsets and collide on the cache).
    let lines: Vec<Vec<(i64, usize, String)>> = (0..CLIENTS)
        .map(|t| {
            (0..PER_CLIENT)
                .map(|i| {
                    let combo_idx = (t + i) % combos.len();
                    let c = &combos[combo_idx];
                    let id = (t * 1000 + i) as i64;
                    let line =
                        build_run_request(id, c.source, c.entry, c.profile, &c.args, true);
                    (id, combo_idx, line)
                })
                .collect()
        })
        .collect();

    let per_client_responses: Vec<HashMap<i64, Json>> = std::thread::scope(|s| {
        let handles: Vec<_> = lines
            .iter()
            .map(|batch| {
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut writer = stream.try_clone().expect("clone");
                    let mut reader = BufReader::new(stream);
                    // Pipeline: write everything, then read all replies.
                    for (_, _, line) in batch {
                        writer.write_all(line.as_bytes()).expect("write");
                        writer.write_all(b"\n").expect("write");
                    }
                    writer.flush().expect("flush");
                    let mut got = HashMap::new();
                    let mut buf = String::new();
                    while got.len() < batch.len() {
                        buf.clear();
                        let n = reader.read_line(&mut buf).expect("read response");
                        assert!(n > 0, "server closed before all responses arrived");
                        let v = Json::parse(buf.trim()).expect("response parses");
                        let id = v.get("id").and_then(Json::as_i64).expect("id echoed");
                        got.insert(id, v);
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Zero dropped responses, all ok, all bitwise equal to the
    // single-threaded reference.
    let mut checked = 0usize;
    for (t, responses) in per_client_responses.iter().enumerate() {
        assert_eq!(responses.len(), PER_CLIENT, "client {t} lost responses");
        for (id, combo_idx, _) in &lines[t] {
            let v = &responses[id];
            assert_eq!(
                v.get("status").and_then(Json::as_str),
                Some("ok"),
                "client {t} id {id}: {v}"
            );
            let want = &reference[*combo_idx];
            let arrays = v.get("arrays").expect("return_arrays was set");
            for (name, want_bits) in want {
                let got_bits: Vec<u32> = arrays
                    .get(name)
                    .and_then(|a| a.get("bits"))
                    .and_then(Json::as_arr)
                    .unwrap_or_else(|| panic!("array `{name}` missing"))
                    .iter()
                    .map(|b| b.as_i64().expect("bit int") as u32)
                    .collect();
                assert_eq!(&got_bits, want_bits, "client {t} id {id} array `{name}`");
                // Digests must agree with the arrays they summarize.
                let want_digest = digest(&safara_core::runtime::HostArray::from_f32_bits(want_bits));
                assert_eq!(
                    v.get("digests").and_then(|d| d.get(name)).and_then(Json::as_str),
                    Some(want_digest.as_str()),
                    "client {t} id {id} digest `{name}`"
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= CLIENTS * PER_CLIENT, "every response carried arrays");

    // The shared cache must have taken warm hits: 100 requests over 6
    // distinct launch keys.
    let stream = TcpStream::connect(addr).expect("connect for stats");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"id\":9000,\"op\":\"stats\"}\n").expect("write stats");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("stats response");
    let stats = Json::parse(line.trim()).expect("stats parses");
    let cache = stats.get("cache").expect("cache section");
    let hits = cache.get("hits").and_then(Json::as_i64).expect("hits");
    let misses = cache.get("misses").and_then(Json::as_i64).expect("misses");
    assert!(hits > 0, "shared cache took no warm hits: {stats}");
    assert_eq!(hits + misses, (CLIENTS * PER_CLIENT) as i64, "every run hit or missed");
    let server = stats.get("server").expect("server section");
    assert_eq!(
        server.get("completed").and_then(Json::as_i64),
        Some((CLIENTS * PER_CLIENT) as i64)
    );
    assert_eq!(server.get("rejected_overload").and_then(Json::as_i64), Some(0));

    // Counter invariant: every admitted request is accounted for exactly
    // once, and no reply was lost to a hung-up client.
    let counter = |name: &str| server.get(name).and_then(Json::as_i64).expect(name);
    assert_eq!(
        counter("submitted"),
        counter("completed")
            + counter("errors")
            + counter("timed_out")
            + counter("timed_out_late")
            + counter("shed")
            + counter("coalesced"),
        "{server}"
    );
    assert_eq!(counter("coalesced"), 0, "coalescing disabled for this test");
    assert_eq!(counter("replies_dropped"), 0, "{server}");

    // The latency section saw every request: queue-wait and service
    // histograms cover all 100 runs, and responses were written back.
    let latency = stats.get("latency").expect("latency section");
    let hist_count = |name: &str| {
        latency.get(name).and_then(|h| h.get("count")).and_then(Json::as_i64).expect(name)
    };
    assert_eq!(hist_count("queue_wait"), (CLIENTS * PER_CLIENT) as i64);
    assert_eq!(hist_count("service"), (CLIENTS * PER_CLIENT) as i64);
    assert!(hist_count("reply_write") >= (CLIENTS * PER_CLIENT) as i64, "{latency}");
    let run_hist = latency.get("per_op").and_then(|p| p.get("run")).expect("per-op run");
    assert_eq!(run_hist.get("count").and_then(Json::as_i64), Some((CLIENTS * PER_CLIENT) as i64));

    handle.stop();
}

#[test]
fn shutdown_request_stops_the_server() {
    let handle = safara_server::serve(
        "127.0.0.1:0",
        EngineConfig { workers: 1, queue_depth: 4, ..EngineConfig::default() },
    )
    .expect("bind");
    let addr = handle.addr;
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"id\":1,\"op\":\"ping\"}\n").expect("write");
    writer.write_all(b"{\"id\":2,\"op\":\"shutdown\"}\n").expect("write");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("ping reply");
    assert!(line.contains("\"ok\""), "{line}");
    line.clear();
    reader.read_line(&mut line).expect("shutdown reply");
    assert!(line.contains("shutting_down"), "{line}");
    // The accept loop notices the flag and exits on its own.
    handle.join();
    // And the port is released: a fresh connect now fails (or is
    // refused after the listener closes).
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(TcpStream::connect(addr).is_err(), "listener should be gone");
}
