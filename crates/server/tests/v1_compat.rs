//! Protocol-compat acceptance: requests without `"v"` (or with
//! `"v":1`) keep the exact legacy response shapes — `message` strings
//! on `error`, bare status lines for `timeout`/`overloaded`, no
//! `error` objects, no `v` field — while `"v":2` on the same engine
//! opts into structured errors. Existing v1 clients must never notice
//! this server learned a second dialect.

use safara_server::json::Json;
use safara_server::protocol::{build_run_request, build_run_request_v, parse_request};
use safara_server::service::{Engine, EngineConfig};
use safara_server::Submit;
use std::sync::mpsc;
use std::time::Duration;

fn submit(engine: &Engine, line: &str) -> String {
    let (tx, rx) = mpsc::channel();
    match engine.submit(parse_request(line).expect("request parses"), tx) {
        Submit::Queued => rx.recv_timeout(Duration::from_secs(10)).expect("reply"),
        Submit::Rejected { response, .. } => response,
    }
}

#[test]
fn v1_failures_keep_the_legacy_message_shape() {
    let engine = Engine::start(EngineConfig { workers: 1, queue_depth: 8, ..EngineConfig::default() });

    let v1 = submit(&engine, r#"{"id":1,"op":"compile","source":"void f(","profile":"base"}"#);
    let parsed = Json::parse(&v1).expect("parses");
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("error"));
    assert!(parsed.get("message").and_then(Json::as_str).is_some(), "legacy message: {v1}");
    assert!(parsed.get("error").is_none(), "no structured object in v1: {v1}");
    assert!(parsed.get("v").is_none(), "no version echo in v1: {v1}");

    // The identical request, explicit `"v":1`: byte-identical reply.
    let explicit =
        submit(&engine, r#"{"id":1,"v":1,"op":"compile","source":"void f(","profile":"base"}"#);
    assert_eq!(v1, explicit);

    // And with `"v":2`: the same failure, structured.
    let v2 = submit(&engine, r#"{"id":1,"v":2,"op":"compile","source":"void f(","profile":"base"}"#);
    let parsed = Json::parse(&v2).expect("parses");
    assert_eq!(parsed.get("v").and_then(Json::as_i64), Some(2));
    assert!(parsed.get("message").is_none(), "v2 replaces the bare message: {v2}");
    let err = parsed.get("error").expect("structured error");
    assert_eq!(err.get("code").and_then(Json::as_str), Some("parse"));
    assert_eq!(err.get("retryable").and_then(Json::as_bool), Some(false));
    // Same human-readable text in both dialects.
    assert_eq!(
        err.get("message").and_then(Json::as_str),
        Json::parse(&v1).unwrap().get("message").and_then(Json::as_str).map(|s| s.to_string()).as_deref()
    );

    engine.shutdown();
}

#[test]
fn v1_timeout_and_overload_stay_bare_status_lines() {
    let engine = Engine::start(EngineConfig { workers: 1, queue_depth: 1, ..EngineConfig::default() });
    let (tx, rx) = mpsc::channel();

    // Occupy the worker, fill the queue, then overflow it (v1).
    let hold = parse_request(r#"{"id":1,"op":"sleep","ms":300}"#).unwrap();
    assert!(matches!(engine.submit(hold, tx.clone()), Submit::Queued));
    std::thread::sleep(Duration::from_millis(100));
    let fill = parse_request(r#"{"id":2,"op":"sleep","ms":0,"timeout_ms":50}"#).unwrap();
    assert!(matches!(engine.submit(fill, tx.clone()), Submit::Queued));
    let spill = parse_request(r#"{"id":3,"op":"ping"}"#).unwrap();
    let Submit::Rejected { response, .. } = engine.submit(spill, tx.clone()) else {
        panic!("queue of 1 with a held worker must reject");
    };
    assert_eq!(response, r#"{"id":3,"status":"overloaded"}"#, "legacy overload line");

    // Request 2 expires in the queue while the worker sleeps: the v1
    // timeout is a bare status line too. (Request 1's ok lands first —
    // the expiry is only noticed at dequeue.)
    let replies: Vec<String> =
        (0..2).map(|_| rx.recv_timeout(Duration::from_secs(5)).expect("reply")).collect();
    assert!(replies.contains(&r#"{"id":1,"status":"ok"}"#.to_string()), "{replies:?}");
    assert!(
        replies.contains(&r#"{"id":2,"status":"timeout"}"#.to_string()),
        "legacy timeout line: {replies:?}"
    );

    engine.shutdown();
}

#[test]
fn ok_responses_are_identical_across_protocol_versions() {
    let engine = Engine::start(EngineConfig { workers: 1, queue_depth: 8, ..EngineConfig::default() });
    let args = safara_core::Args::new().i32("n", 8).f32("alpha", 2.0).array_f32(
        "x",
        &(0..8).map(|i| i as f32).collect::<Vec<_>>(),
    );
    let src = "void scale(int n, float alpha, float x[n]) {\
        #pragma acc kernels copy(x)\n{\
        #pragma acc loop gang vector\n\
        for (int i = 0; i < n; i++) { x[i] = x[i] * alpha; } } }";
    let v1 = submit(&engine, &build_run_request(7, src, "scale", "base", &args, true));
    let v2 = submit(&engine, &build_run_request_v(2, 7, src, "scale", "base", &args, true));
    assert!(v1.contains(r#""status":"ok""#), "{v1}");
    assert_eq!(v1, v2, "success shapes are version-independent");
    engine.shutdown();
}
