//! The engine: a fixed worker pool executing requests from a bounded
//! queue against one process-wide shared launch cache.
//!
//! Transports (TCP, stdin) parse lines into [`Request`]s and call
//! [`Engine::submit`]; each job carries an `mpsc::Sender<String>` the
//! worker answers on, so a transport can multiplex many in-flight
//! requests per connection and write responses as they finish.
//! Admission control happens in `submit` (bounded queue, non-blocking
//! push → `overloaded`); deadlines are checked when a worker *dequeues*
//! a job — a request that waited past its timeout is answered `timeout`
//! without touching the pipeline — and re-checked between compile and
//! simulate and after simulate, so a request that *started* in time but
//! ran long is answered `timeout` too (counted `timed_out_late`).
//!
//! Every request feeds the engine's [`Metrics`]: queue-wait,
//! service-time (total and per-op), and reply-write latency histograms,
//! surfaced by the `stats` op.

use crate::protocol::{
    self, error_line_v, failure_line, status_line, Op, Request, WireError, DEFAULT_TIMEOUT_MS,
};
use crate::queue::{Bounded, PushError};
use safara_core::chaos::{FaultAction, FaultPlan, InjectionPoint};
use safara_core::gpusim::device::DeviceConfig;
use safara_core::gpusim::memo::DEFAULT_ENTRY_CAP;
use safara_core::obs::{Histogram, HistogramSnapshot, Tracer};
use safara_core::{CompiledProgram, SharedLaunchCache};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine sizing and policy.
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bounded queue depth (≥ 1) — jobs admitted but not yet running.
    pub queue_depth: usize,
    /// Deadline for requests that set no `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Shard count for the shared launch cache.
    pub cache_shards: usize,
    /// Load-shedding watermark: refuse new work (retryable `shed`)
    /// once the queue holds this many jobs, *before* the hard queue cap
    /// kicks in. `None` disables early shedding.
    pub shed_watermark: Option<usize>,
    /// Consecutive pipeline failures per profile before the circuit
    /// breaker opens. 0 disables the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before allowing a probe.
    pub breaker_cooldown_ms: u64,
    /// Deterministic fault-injection plan threaded through admission,
    /// workers, the compile/run pipeline, and reply delivery.
    /// [`FaultPlan::none`] (the default) is inert.
    pub fault_plan: Arc<FaultPlan>,
    /// Verify launch-cache entry checksums on replay, dropping and
    /// re-simulating corrupted entries instead of replaying them.
    pub verify_cache: bool,
    /// Single-flight dedup: an untraced run whose content key
    /// ([`protocol::run_key`]) matches an in-flight request parks as a
    /// waiter and receives the leader's response instead of re-running
    /// the pipeline. On by default; off makes every request a leader
    /// (the pre-dedup stampede behavior, kept for benchmarking).
    pub coalesce: bool,
    /// Batched admission: a worker drains up to this many queued jobs
    /// sharing one program key (source ‖ profile) per dequeue, so a
    /// batch compiles once and simulates many. 1 disables batching.
    pub max_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue_depth: 64,
            default_timeout_ms: DEFAULT_TIMEOUT_MS,
            cache_shards: 16,
            shed_watermark: None,
            breaker_threshold: 0,
            breaker_cooldown_ms: 500,
            fault_plan: Arc::new(FaultPlan::none()),
            verify_cache: false,
            coalesce: true,
            max_batch: 8,
        }
    }
}

/// One admitted unit of work.
pub struct Job {
    /// The parsed request.
    pub request: Request,
    /// When admission control accepted it (queue-wait starts here).
    pub admitted: Instant,
    /// Absolute deadline (admission time + effective timeout).
    pub deadline: Instant,
    /// Where the worker sends the response line.
    pub reply: mpsc::Sender<String>,
    /// Single-flight key: set on untraced runs admitted as leaders.
    /// The worker fans this job's outcome out to every waiter parked
    /// under the key.
    pub flight_key: Option<u64>,
    /// Batch key (FNV over source ‖ profile): jobs sharing it may be
    /// drained together so a worker compiles once and simulates many.
    pub program_key: Option<u64>,
}

/// A request parked on an in-flight leader: everything needed to
/// render the leader's outcome as this request's own response.
struct Waiter {
    id: Option<i64>,
    v: u8,
    return_arrays: bool,
    deadline: Instant,
    reply: mpsc::Sender<String>,
}

/// Latency histograms the engine aggregates across all requests.
/// Everything is atomic ([`Histogram`] is lock-free), so workers record
/// without coordination.
pub struct Metrics {
    /// Admission → dequeue.
    pub queue_wait: Histogram,
    /// Dequeue → response line built, all ops.
    pub service: Histogram,
    /// Response handed to the transport → written to the peer.
    pub reply_write: Histogram,
    /// Jobs per dequeue under batched admission (a plain count, not
    /// microseconds — rendered without the `_us` suffix in stats).
    pub batch_size: Histogram,
    per_op: Vec<(&'static str, Histogram)>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            queue_wait: Histogram::new(),
            service: Histogram::new(),
            reply_write: Histogram::new(),
            batch_size: Histogram::new(),
            per_op: ["ping", "stats", "sleep", "compile", "run", "shutdown"]
                .iter()
                .map(|name| (*name, Histogram::new()))
                .collect(),
        }
    }
}

impl Metrics {
    fn op_name(op: &Op) -> &'static str {
        match op {
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Sleep { .. } => "sleep",
            Op::Compile(_) => "compile",
            Op::Run(_) => "run",
            Op::Shutdown => "shutdown",
        }
    }

    fn record_service(&self, op: &Op, us: u64) {
        self.service.record(us);
        let name = Self::op_name(op);
        if let Some((_, h)) = self.per_op.iter().find(|(n, _)| *n == name) {
            h.record(us);
        }
    }

    /// Per-op service-time snapshots, ops that saw traffic only.
    pub fn per_op_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        self.per_op
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(n, h)| (*n, h.snapshot()))
            .collect()
    }
}

/// Error codes the engine tallies per response (`stats` →
/// `errors_by_code`): the pipeline codes plus the server-level ones.
pub const ERROR_CODES: [&str; 14] = [
    "parse",
    "sema",
    "analysis",
    "regalloc_spill",
    "budget",
    "sim",
    "internal",
    "bad_request",
    "unknown_profile",
    "invalid_engine",
    "invalid_sim_threads",
    "invalid_sb_threshold",
    "breaker_open",
    "shed",
];

/// Lock-free per-code error counters (fixed code set, atomic cells).
#[derive(Default)]
pub struct ErrorCodeCounts {
    counts: [AtomicU64; ERROR_CODES.len()],
}

impl ErrorCodeCounts {
    fn record(&self, code: &str) {
        // Unknown codes land in `internal`: losing a count would break
        // the per-code sum ≤ errors invariant silently.
        let i = ERROR_CODES
            .iter()
            .position(|c| *c == code)
            .unwrap_or_else(|| ERROR_CODES.iter().position(|c| *c == "internal").expect("internal"));
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// `(code, count)` for every code that saw traffic.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        ERROR_CODES
            .iter()
            .zip(&self.counts)
            .map(|(c, n)| (*c, n.load(Ordering::Relaxed)))
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// The count for one code.
    pub fn get(&self, code: &str) -> u64 {
        ERROR_CODES
            .iter()
            .position(|c| *c == code)
            .map(|i| self.counts[i].load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Per-profile circuit breaker: `threshold` consecutive pipeline
/// failures open the circuit; while open, requests for that profile are
/// refused at admission (retryable `breaker_open`). After the cooldown
/// one probe request is admitted — success closes the circuit, failure
/// re-opens it for another cooldown.
struct Breaker {
    threshold: u32,
    cooldown: Duration,
    states: Mutex<HashMap<String, BreakerState>>,
}

#[derive(Default)]
struct BreakerState {
    consecutive_failures: u32,
    open_until: Option<Instant>,
    probing: bool,
}

impl Breaker {
    fn enabled(&self) -> bool {
        self.threshold > 0
    }

    /// Admission check. Open + cooldown elapsed transitions to
    /// half-open: this request goes through as the probe.
    fn admit(&self, profile: &str) -> bool {
        if !self.enabled() {
            return true;
        }
        let mut states = self.states.lock().unwrap_or_else(|p| p.into_inner());
        let s = states.entry(profile.to_string()).or_default();
        match s.open_until {
            Some(t) if Instant::now() < t => false,
            Some(_) => {
                s.open_until = None;
                s.probing = true;
                true
            }
            None => true,
        }
    }

    /// Record a pipeline outcome. Returns true when this record tripped
    /// the circuit open (closed → open or probe failure).
    fn record(&self, profile: &str, ok: bool) -> bool {
        if !self.enabled() {
            return false;
        }
        let mut states = self.states.lock().unwrap_or_else(|p| p.into_inner());
        let s = states.entry(profile.to_string()).or_default();
        if ok {
            *s = BreakerState::default();
            return false;
        }
        s.consecutive_failures += 1;
        if s.probing || s.consecutive_failures >= self.threshold {
            s.open_until = Some(Instant::now() + self.cooldown);
            s.probing = false;
            s.consecutive_failures = 0;
            return true;
        }
        false
    }

    /// Profiles currently open (cooldown not yet elapsed).
    fn open_count(&self) -> usize {
        let now = Instant::now();
        self.states
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .filter(|s| s.open_until.is_some_and(|t| now < t))
            .count()
    }
}

/// State shared by workers and transports.
pub struct EngineShared {
    /// Pool size (fixed at start; panics respawn, so it stays the live
    /// worker count).
    pub workers: usize,
    /// The process-wide launch cache all workers memoize through.
    pub cache: SharedLaunchCache,
    /// Compiled programs keyed by FNV(source ‖ profile name).
    programs: Mutex<HashMap<u64, Arc<CompiledProgram>>>,
    /// Every submission attempt, admitted or not.
    pub submitted: AtomicU64,
    /// Requests answered `ok`.
    pub completed: AtomicU64,
    /// Requests refused by queue-capacity admission control (watermark
    /// or hard cap) — the subset of `shed` answered `overloaded`.
    pub rejected_overload: AtomicU64,
    /// Requests that expired waiting in the queue.
    pub timed_out: AtomicU64,
    /// Requests that started in time but finished past their deadline
    /// (caught by the post-compile / post-simulate re-checks).
    pub timed_out_late: AtomicU64,
    /// Requests answered `error`.
    pub errors: AtomicU64,
    /// Requests refused before queueing (watermark, hard cap, or
    /// shutdown). Together with the outcome counters this closes the
    /// accounting: `submitted == completed + errors + timed_out +
    /// timed_out_late + shed`.
    pub shed: AtomicU64,
    /// Requests parked on an in-flight identical request (single-flight
    /// dedup) instead of running the pipeline themselves. A coalesced
    /// request is terminal for accounting: `submitted == completed +
    /// errors + timed_out + timed_out_late + shed + coalesced`.
    pub coalesced: AtomicU64,
    /// Responses that could not be delivered because the client hung up
    /// (the reply channel was closed). Kept separate from the outcome
    /// counters so the accounting invariant stays checkable. Includes
    /// parked waiters that hung up before the leader's fan-out.
    pub replies_dropped: AtomicU64,
    /// Errors by wire code (see [`ERROR_CODES`]).
    pub errors_by_code: ErrorCodeCounts,
    /// Worker panics caught and isolated (each also counts one
    /// `internal` error for its job).
    pub worker_panics: AtomicU64,
    /// Replacement workers spawned after a panic.
    pub worker_respawns: AtomicU64,
    /// Circuit-breaker open transitions.
    pub breaker_trips: AtomicU64,
    /// Requests refused because a breaker was open.
    pub breaker_rejections: AtomicU64,
    /// Latency histograms (queue-wait, service, reply-write, per-op).
    pub metrics: Metrics,
    /// Set by a `shutdown` request; transports watch it.
    pub shutdown_requested: AtomicBool,
    /// Single-flight table: content key → waiters parked on its leader.
    /// An entry exists exactly while the leader's job is queued or
    /// running; fan-out removes it.
    inflight: Mutex<HashMap<u64, Vec<Waiter>>>,
    /// Batch ceiling workers pass to [`Bounded::pop_batch`].
    max_batch: usize,
    faults: Arc<FaultPlan>,
    breaker: Breaker,
}

/// Evaluate an engine injection point. `Delay`/`Hang` are absorbed here
/// (the sleep is the fault); other actions come back for the call site.
fn fault(shared: &EngineShared, point: InjectionPoint) -> Option<FaultAction> {
    let action = shared.faults.check(point)?;
    if shared.faults.apply_delay(&action) {
        return None;
    }
    Some(action)
}

impl EngineShared {
    fn program_for(
        &self,
        source: &str,
        profile_key: &str,
    ) -> Result<Arc<CompiledProgram>, WireError> {
        let config = protocol::resolve_profile(profile_key)?;
        let key = fnv_pair(source, config.name);
        if let Some(p) = self.programs.lock().unwrap_or_else(|p| p.into_inner()).get(&key) {
            return Ok(Arc::clone(p));
        }
        // Compile outside the lock: compilation is the expensive half
        // and two workers racing on the same source just do it twice.
        // Injected compile faults surface here as typed errors and are
        // never stored, so a retry compiles clean.
        let program =
            safara_core::compile_with_faults(source, &config, &mut Tracer::disabled(), &self.faults)
                .map_err(|e| WireError::from_compile(&e))?;
        let program = Arc::new(program);
        self.programs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(key)
            .or_insert_with(|| Arc::clone(&program));
        Ok(program)
    }

    /// Distinct compiled programs currently cached.
    pub fn programs_cached(&self) -> usize {
        self.programs.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// The engine's fault plan (inert unless configured for chaos).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    fn record_error(&self, err: &WireError) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.errors_by_code.record(err.code);
    }
}

fn fnv_pair(a: &str, b: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in a.as_bytes().iter().chain([0xffu8].iter()).chain(b.as_bytes()) {
        h ^= *byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// What [`Engine::submit`] did with a request.
pub enum Submit {
    /// Admitted; the response will arrive on the job's reply channel.
    Queued,
    /// Shed. The request is handed back (so a transport that *can*
    /// wait, like stdin batch mode, may retry) together with the
    /// ready-made `overloaded`/`shutting_down` response line.
    Rejected {
        /// The request admission control refused (boxed: requests embed
        /// full argument payloads and would dominate the enum's size).
        request: Box<Request>,
        /// The response line to send if the caller does not retry.
        response: String,
    },
}

/// The running service: worker pool + queue + shared state.
pub struct Engine {
    shared: Arc<EngineShared>,
    queue: Arc<Bounded<Job>>,
    /// Live worker handles. A worker that respawns after a panic
    /// registers its replacement here before exiting, so `shutdown` can
    /// always join the whole (possibly regenerated) pool.
    pool: Arc<Mutex<Vec<JoinHandle<()>>>>,
    default_timeout_ms: u64,
    shed_watermark: Option<usize>,
    coalesce: bool,
}

/// The compiler-profile key a request pins, when its op has one — the
/// circuit breaker's partition key.
fn profile_key(op: &Op) -> Option<&str> {
    match op {
        Op::Compile(c) => Some(&c.profile),
        Op::Run(r) => Some(&r.profile),
        _ => None,
    }
}

fn spawn_worker(
    shared: &Arc<EngineShared>,
    queue: &Arc<Bounded<Job>>,
    pool: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    name: String,
) {
    let shared_w = Arc::clone(shared);
    let queue_w = Arc::clone(queue);
    let pool_w = Arc::clone(pool);
    let h = std::thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(&shared_w, &queue_w, &pool_w))
        .expect("spawn worker");
    // Register on the spawning side, before any exit path: shutdown's
    // join loop must always observe the replacement.
    pool.lock().unwrap_or_else(|p| p.into_inner()).push(h);
}

impl Engine {
    /// Spawn the worker pool.
    pub fn start(config: EngineConfig) -> Engine {
        let shared = Arc::new(EngineShared {
            workers: config.workers.max(1),
            cache: SharedLaunchCache::with_options(
                config.cache_shards,
                DEFAULT_ENTRY_CAP,
                config.verify_cache,
            ),
            programs: Mutex::new(HashMap::new()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            timed_out_late: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            replies_dropped: AtomicU64::new(0),
            errors_by_code: ErrorCodeCounts::default(),
            worker_panics: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_rejections: AtomicU64::new(0),
            metrics: Metrics::default(),
            shutdown_requested: AtomicBool::new(false),
            inflight: Mutex::new(HashMap::new()),
            max_batch: config.max_batch.max(1),
            faults: Arc::clone(&config.fault_plan),
            breaker: Breaker {
                threshold: config.breaker_threshold,
                cooldown: Duration::from_millis(config.breaker_cooldown_ms),
                states: Mutex::new(HashMap::new()),
            },
        });
        let queue = Arc::new(Bounded::new(config.queue_depth));
        let pool = Arc::new(Mutex::new(Vec::new()));
        for i in 0..config.workers.max(1) {
            spawn_worker(&shared, &queue, &pool, format!("safara-worker-{i}"));
        }
        Engine {
            shared,
            queue,
            pool,
            default_timeout_ms: config.default_timeout_ms,
            shed_watermark: config.shed_watermark,
            coalesce: config.coalesce,
        }
    }

    /// The shared state (cache, counters, shutdown flag).
    pub fn shared(&self) -> &Arc<EngineShared> {
        &self.shared
    }

    /// Submit a parsed request. Non-blocking; every attempt counts
    /// toward `submitted`, and a refusal (breaker, watermark, full
    /// queue, shutdown) comes straight back with its response line.
    pub fn submit(&self, request: Request, reply: mpsc::Sender<String>) -> Submit {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let (id, v) = (request.id, request.v);
        let timeout =
            Duration::from_millis(request.timeout_ms.unwrap_or(self.default_timeout_ms));
        // Untraced runs carry content keys: `flight` for single-flight
        // dedup, `program_key` for batched admission.
        let (flight, program_key) = match (&request.op, request.trace) {
            (Op::Run(r), false) => (
                if self.coalesce { Some((protocol::run_key(r), r.return_arrays)) } else { None },
                Some(fnv_pair(&r.source, &r.profile)),
            ),
            _ => (None, None),
        };
        // Single-flight: hold the inflight lock from the duplicate
        // check through the queue push, so two identical requests
        // racing through submit cannot both become leaders. Workers
        // take this lock only on its own (fan-out), so the
        // inflight → breaker/queue lock order cannot deadlock.
        let mut inflight = None;
        if let Some((key, return_arrays)) = flight {
            let mut table = self.shared.inflight.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(waiters) = table.get_mut(&key) {
                // A leader is already in flight: park. Deliberately no
                // breaker or queue-capacity check — a waiter costs no
                // queue slot and receives the leader's own verdict, so
                // a breaker tripped by the leader's failures cannot
                // reclassify it as a blanket rejection.
                waiters.push(Waiter {
                    id,
                    v,
                    return_arrays,
                    deadline: Instant::now() + timeout,
                    reply,
                });
                self.shared.coalesced.fetch_add(1, Ordering::Relaxed);
                return Submit::Queued;
            }
            inflight = Some((table, key));
        }
        // Circuit breaker: refuse work for a profile whose pipeline
        // keeps failing, before it costs a queue slot.
        if let Some(key) = profile_key(&request.op) {
            if !self.shared.breaker.admit(key) {
                self.shared.breaker_rejections.fetch_add(1, Ordering::Relaxed);
                let err = WireError::breaker_open(key);
                self.shared.record_error(&err);
                return Submit::Rejected { response: error_line_v(v, id, &err), request: Box::new(request) };
            }
        }
        // Load shedding: refuse retryable work early, below the hard
        // cap, so latency degrades before delivery does.
        if self.shed_watermark.is_some_and(|w| self.queue.len() >= w) {
            self.shared.shed.fetch_add(1, Ordering::Relaxed);
            self.shared.rejected_overload.fetch_add(1, Ordering::Relaxed);
            let err = WireError::shed("queue past the shed watermark; retry with backoff");
            return Submit::Rejected {
                response: failure_line(v, id, "overloaded", &err),
                request: Box::new(request),
            };
        }
        let admitted = Instant::now();
        let flight_key = inflight.as_ref().map(|(_, key)| *key);
        let job =
            Job { request, admitted, deadline: admitted + timeout, reply, flight_key, program_key };
        match self.queue.try_push(job) {
            Ok(()) => {
                // Register the leader only once its job is queued:
                // rejected leaders leave no entry for later duplicates
                // to park on (they would be stranded).
                if let Some((mut table, key)) = inflight {
                    table.insert(key, Vec::new());
                }
                Submit::Queued
            }
            Err(PushError::Full(job)) => {
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                self.shared.rejected_overload.fetch_add(1, Ordering::Relaxed);
                let err = WireError::shed("queue full");
                let response = failure_line(v, job.request.id, "overloaded", &err);
                Submit::Rejected { request: Box::new(job.request), response }
            }
            Err(PushError::Closed(job)) => {
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                let err = WireError::shutting_down();
                let response = failure_line(v, job.request.id, "shutting_down", &err);
                Submit::Rejected { request: Box::new(job.request), response }
            }
        }
    }

    /// The deadline `submit` applies when a request sets no timeout.
    pub fn default_timeout_ms(&self) -> u64 {
        self.default_timeout_ms
    }

    /// Render the `stats` response (also available as the `stats` op).
    pub fn stats_line(&self, id: Option<i64>) -> String {
        stats_line_for(&self.shared, self.queue.len(), id)
    }

    /// Stop admitting, drain admitted jobs, join the pool (including
    /// any workers respawned after panics).
    pub fn shutdown(self) {
        self.queue.close();
        loop {
            let h = self.pool.lock().unwrap_or_else(|p| p.into_inner()).pop();
            match h {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

fn hist_json(snap: HistogramSnapshot) -> crate::json::Json {
    use crate::json::{obj, Json};
    obj(vec![
        ("count", Json::Int(snap.count as i64)),
        ("p50_us", Json::Int(snap.p50_us as i64)),
        ("p95_us", Json::Int(snap.p95_us as i64)),
        ("max_us", Json::Int(snap.max_us as i64)),
        ("mean_us", Json::Int(snap.mean_us as i64)),
    ])
}

fn stats_line_for(shared: &EngineShared, queue_len: usize, id: Option<i64>) -> String {
    use crate::json::{obj, Json};
    let mut base = protocol::response_base(id, "ok");
    let Json::Obj(fields) = &mut base else { unreachable!("response_base builds an object") };
    fields.push(("op".into(), Json::Str("stats".into())));
    fields.push((
        "server".into(),
        obj(vec![
            ("workers", Json::Int(shared.workers as i64)),
            ("queue_len", Json::Int(queue_len as i64)),
            ("submitted", Json::Int(shared.submitted.load(Ordering::Relaxed) as i64)),
            ("completed", Json::Int(shared.completed.load(Ordering::Relaxed) as i64)),
            (
                "rejected_overload",
                Json::Int(shared.rejected_overload.load(Ordering::Relaxed) as i64),
            ),
            ("timed_out", Json::Int(shared.timed_out.load(Ordering::Relaxed) as i64)),
            (
                "timed_out_late",
                Json::Int(shared.timed_out_late.load(Ordering::Relaxed) as i64),
            ),
            ("errors", Json::Int(shared.errors.load(Ordering::Relaxed) as i64)),
            ("shed", Json::Int(shared.shed.load(Ordering::Relaxed) as i64)),
            ("coalesced", Json::Int(shared.coalesced.load(Ordering::Relaxed) as i64)),
            (
                "replies_dropped",
                Json::Int(shared.replies_dropped.load(Ordering::Relaxed) as i64),
            ),
            ("worker_panics", Json::Int(shared.worker_panics.load(Ordering::Relaxed) as i64)),
            (
                "worker_respawns",
                Json::Int(shared.worker_respawns.load(Ordering::Relaxed) as i64),
            ),
            ("programs_cached", Json::Int(shared.programs_cached() as i64)),
        ]),
    ));
    fields.push((
        "errors_by_code".into(),
        Json::Obj(
            shared
                .errors_by_code
                .nonzero()
                .into_iter()
                .map(|(code, n)| (code.to_string(), Json::Int(n as i64)))
                .collect(),
        ),
    ));
    let fc = safara_core::gpusim::fusion_counters();
    fields.push((
        "fusion".into(),
        obj(vec![
            ("launches", Json::Int(fc.launches as i64)),
            ("delegated", Json::Int(fc.delegated as i64)),
            ("hot_blocks", Json::Int(fc.hot_blocks as i64)),
            ("superblocks", Json::Int(fc.superblocks as i64)),
            ("fused_blocks", Json::Int(fc.fused_blocks as i64)),
            ("hoisted", Json::Int(fc.hoisted as i64)),
            ("scalar_execs", Json::Int(fc.scalar_execs as i64)),
            ("vector_execs", Json::Int(fc.vector_execs as i64)),
            ("peels", Json::Int(fc.peels as i64)),
        ]),
    ));
    fields.push((
        "breaker".into(),
        obj(vec![
            ("trips", Json::Int(shared.breaker_trips.load(Ordering::Relaxed) as i64)),
            (
                "rejections",
                Json::Int(shared.breaker_rejections.load(Ordering::Relaxed) as i64),
            ),
            ("open_profiles", Json::Int(shared.breaker.open_count() as i64)),
        ]),
    ));
    if !shared.faults.is_inert() {
        fields.push((
            "faults".into(),
            obj(vec![
                ("seed", Json::Int(shared.faults.seed() as i64)),
                ("fired", Json::Int(shared.faults.fired_total() as i64)),
            ]),
        ));
    }
    let per_op: Vec<(String, Json)> = shared
        .metrics
        .per_op_snapshots()
        .into_iter()
        .map(|(name, snap)| (name.to_string(), hist_json(snap)))
        .collect();
    fields.push((
        "latency".into(),
        obj(vec![
            ("queue_wait", hist_json(shared.metrics.queue_wait.snapshot())),
            ("service", hist_json(shared.metrics.service.snapshot())),
            ("reply_write", hist_json(shared.metrics.reply_write.snapshot())),
            ("per_op", Json::Obj(per_op)),
        ]),
    ));
    // Batch sizes are plain counts; reuse the histogram but drop the
    // `_us` suffix the latency sections carry.
    let bs = shared.metrics.batch_size.snapshot();
    fields.push((
        "batches".into(),
        obj(vec![
            ("count", Json::Int(bs.count as i64)),
            ("p50", Json::Int(bs.p50_us as i64)),
            ("p95", Json::Int(bs.p95_us as i64)),
            ("max", Json::Int(bs.max_us as i64)),
            ("mean", Json::Int(bs.mean_us as i64)),
        ]),
    ));
    fields.push((
        "cache".into(),
        obj(vec![
            ("hits", Json::Int(shared.cache.hits() as i64)),
            ("misses", Json::Int(shared.cache.misses() as i64)),
            ("entries", Json::Int(shared.cache.len() as i64)),
            ("evictions", Json::Int(shared.cache.evictions() as i64)),
            ("contention", Json::Int(shared.cache.contention() as i64)),
            ("integrity_failures", Json::Int(shared.cache.integrity_failures() as i64)),
        ]),
    ));
    base.dump()
}

/// What a worker's [`execute`] produced.
enum ExecOutcome {
    /// A complete response line (counted `completed`).
    Reply(String),
    /// An untraced run's structured result — the outcome plus the
    /// post-run arguments, kept unrendered so single-flight fan-out can
    /// serialize one response per waiter with the waiter's own id and
    /// array-return preference (counted `completed`).
    Run(Box<(safara_core::RunOutcome, safara_core::Args)>),
    /// A typed failure (counted `errors` + per-code, answered `error`).
    Fail(WireError),
    /// The pipeline finished past the job's deadline (counted
    /// `timed_out_late`, answered `timeout`).
    DeadlineExceeded,
}

/// Deliver the leader's outcome to every waiter parked under `key`,
/// each rendered with the waiter's own id, protocol version, and
/// array-return preference — byte-for-byte what the waiter would have
/// received had it run alone. A waiter whose deadline passed while
/// parked gets `timeout` instead (it was counted `coalesced` at park
/// time; no other counter moves). Hung-up waiters count
/// `replies_dropped`, same as hung-up leaders.
fn fan_out(shared: &EngineShared, key: u64, outcome: &ExecOutcome) {
    let waiters = shared
        .inflight
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&key)
        .unwrap_or_default();
    let now = Instant::now();
    for w in waiters {
        let line = if now > w.deadline {
            failure_line(w.v, w.id, "timeout", &WireError::timeout())
        } else {
            match outcome {
                ExecOutcome::Run(done) => {
                    protocol::run_response(w.id, &done.0, &done.1, w.return_arrays, None)
                }
                ExecOutcome::Fail(err) => error_line_v(w.v, w.id, err),
                ExecOutcome::DeadlineExceeded => {
                    failure_line(w.v, w.id, "timeout", &WireError::timeout())
                }
                // Leaders that coalesce are always untraced runs, which
                // produce `Run` or `Fail`; answer defensively.
                ExecOutcome::Reply(_) => {
                    error_line_v(w.v, w.id, &WireError::internal("coalesced onto a non-run leader"))
                }
            }
        };
        if w.reply.send(line).is_err() {
            shared.replies_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop(
    shared: &Arc<EngineShared>,
    queue: &Arc<Bounded<Job>>,
    pool: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    // Batched admission: drain same-program jobs together so the batch
    // resolves one compiled program and then simulates many. Jobs
    // without a program key (pings, compiles, traced runs) never batch.
    while let Some(batch) = queue.pop_batch(shared.max_batch, |a, b| {
        a.program_key.is_some() && a.program_key == b.program_key
    }) {
        shared.metrics.batch_size.record(batch.len() as u64);
        let mut panicked = false;
        for job in batch {
            panicked |= process_job(shared, queue, job);
        }
        if panicked {
            // A panicking job may leave this thread's stack tainted:
            // finish the batch (done above — every job got its typed
            // answer), then hand over to a replacement.
            shared.worker_respawns.fetch_add(1, Ordering::Relaxed);
            spawn_worker(shared, queue, pool, "safara-worker-respawn".into());
            return;
        }
    }
}

/// Execute one dequeued job end to end: deadline check, pipeline,
/// counters, reply delivery, and single-flight fan-out on every
/// outcome path. Returns true when the job's pipeline panicked (the
/// caller must respawn this worker after finishing its batch).
fn process_job(shared: &Arc<EngineShared>, queue: &Arc<Bounded<Job>>, job: Job) -> bool {
    let id = job.request.id;
    let v = job.request.v;
    let dequeued = Instant::now();
    shared
        .metrics
        .queue_wait
        .record(dequeued.duration_since(job.admitted).as_micros() as u64);
    if dequeued > job.deadline {
        shared.timed_out.fetch_add(1, Ordering::Relaxed);
        let line = failure_line(v, id, "timeout", &WireError::timeout());
        if job.reply.send(line).is_err() {
            shared.replies_dropped.fetch_add(1, Ordering::Relaxed);
        }
        // The leader expired in the queue; its waiters expire with it
        // (they parked no earlier than the leader was admitted).
        if let Some(key) = job.flight_key {
            fan_out(shared, key, &ExecOutcome::DeadlineExceeded);
        }
        return false;
    }
    // Panic isolation: a panicking pipeline (or an injected `worker`
    // fault) takes down this job, not the pool. The job still gets a
    // typed, retryable answer, and the worker replaces itself.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        execute(shared, queue, &job.request, job.deadline)
    }));
    let (outcome, panicked) = match caught {
        Ok(outcome) => (outcome, false),
        Err(_) => {
            shared.worker_panics.fetch_add(1, Ordering::Relaxed);
            let err = WireError::internal(
                "worker panicked while executing the request; a replacement was spawned",
            );
            (ExecOutcome::Fail(err), true)
        }
    };
    shared
        .metrics
        .record_service(&job.request.op, dequeued.elapsed().as_micros() as u64);
    // Waiters get the leader's verdict before the leader's own reply is
    // rendered: the same typed error (retryability intact) or the same
    // run outcome re-serialized per waiter.
    if let Some(key) = job.flight_key {
        fan_out(shared, key, &outcome);
    }
    let breaker_key = profile_key(&job.request.op);
    let line = match outcome {
        ExecOutcome::Reply(line) => {
            shared.completed.fetch_add(1, Ordering::Relaxed);
            if let Some(key) = breaker_key {
                shared.breaker.record(key, true);
            }
            line
        }
        ExecOutcome::Run(done) => {
            shared.completed.fetch_add(1, Ordering::Relaxed);
            if let Some(key) = breaker_key {
                shared.breaker.record(key, true);
            }
            let return_arrays = match &job.request.op {
                Op::Run(r) => r.return_arrays,
                _ => false,
            };
            protocol::run_response(id, &done.0, &done.1, return_arrays, None)
        }
        ExecOutcome::Fail(err) => {
            shared.record_error(&err);
            if let Some(key) = breaker_key {
                if shared.breaker.record(key, false) {
                    shared.breaker_trips.fetch_add(1, Ordering::Relaxed);
                }
            }
            error_line_v(v, id, &err)
        }
        ExecOutcome::DeadlineExceeded => {
            shared.timed_out_late.fetch_add(1, Ordering::Relaxed);
            failure_line(v, id, "timeout", &WireError::timeout())
        }
    };
    // Injected client hangup: the reply is built, then dropped —
    // exactly what a closed connection looks like to the worker.
    if matches!(fault(shared, InjectionPoint::Reply), Some(FaultAction::Hangup)) {
        shared.replies_dropped.fetch_add(1, Ordering::Relaxed);
    } else if job.reply.send(line).is_err() {
        // A send error means the client hung up; count the lost reply.
        shared.replies_dropped.fetch_add(1, Ordering::Relaxed);
    }
    panicked
}

/// Resolve a run request's optional engine override to a simulator
/// engine, or the typed `invalid_engine` failure.
fn resolve_engine(
    name: Option<&str>,
) -> Result<Option<safara_core::gpusim::Engine>, WireError> {
    match name {
        None => Ok(None),
        Some(n) => safara_core::gpusim::Engine::parse(n)
            .map(Some)
            .ok_or_else(|| WireError::invalid_engine(n)),
    }
}

/// Resolve a run request's optional `sim_threads` override (raw token
/// from the wire) to a thread count, or the typed `invalid_sim_threads`
/// failure. `"auto"` maps to 0 (one worker per available core).
fn resolve_sim_threads(raw: Option<&str>) -> Result<Option<u32>, WireError> {
    match raw {
        None => Ok(None),
        Some(s) => safara_core::gpusim::parse_sim_threads(s)
            .map(Some)
            .ok_or_else(|| WireError::invalid_sim_threads(s)),
    }
}

/// Resolve a run request's optional `sb_threshold` override (raw token
/// from the wire) to a superblock-promotion threshold, or the typed
/// `invalid_sb_threshold` failure. `"inf"` disables promotion.
fn resolve_sb_threshold(raw: Option<&str>) -> Result<Option<u64>, WireError> {
    match raw {
        None => Ok(None),
        Some(s) => safara_core::gpusim::parse_superblock_threshold(s)
            .map(Some)
            .ok_or_else(|| WireError::invalid_sb_threshold(s)),
    }
}

/// Map a run request's execution knobs — `engine`, `sim_threads`,
/// `sb_threshold`, all raw wire tokens — onto one [`ExecOptions`]
/// value, or the first typed validation failure. `ExecOptions::scope`
/// then applies exactly the knobs the request set, leaving the rest to
/// the server's environment-level defaults (the documented
/// per-launch > scoped > env > default resolution order).
fn resolve_exec_options(
    r: &protocol::RunRequest,
) -> Result<safara_core::gpusim::ExecOptions, WireError> {
    let mut opts = safara_core::gpusim::ExecOptions::inherit();
    if let Some(e) = resolve_engine(r.engine.as_deref())? {
        opts = opts.engine(e);
    }
    if let Some(n) = resolve_sim_threads(r.sim_threads.as_deref())? {
        opts = opts.sim_threads(n);
    }
    if let Some(t) = resolve_sb_threshold(r.sb_threshold.as_deref())? {
        opts = opts.superblock_threshold(t);
    }
    Ok(opts)
}

fn execute(
    shared: &EngineShared,
    queue: &Bounded<Job>,
    request: &Request,
    deadline: Instant,
) -> ExecOutcome {
    let id = request.id;
    // Injected worker faults: a `panic` action unwinds into the
    // worker's catch_unwind (exercising isolation + respawn); a `fail`
    // is a plain retryable internal error.
    if let Some(action) = fault(shared, InjectionPoint::WorkerJob) {
        match action {
            FaultAction::Panic => panic!("injected worker panic"),
            _ => return ExecOutcome::Fail(WireError::internal("injected worker fault")),
        }
    }
    match &request.op {
        Op::Ping => ExecOutcome::Reply(status_line(id, "ok")),
        Op::Stats => ExecOutcome::Reply(stats_line_for(shared, queue.len(), id)),
        Op::Sleep { ms } => {
            // Diagnostic op for exercising admission control: clamp so a
            // stray request cannot wedge a worker for long.
            std::thread::sleep(Duration::from_millis((*ms).min(2_000)));
            if Instant::now() > deadline {
                return ExecOutcome::DeadlineExceeded;
            }
            ExecOutcome::Reply(status_line(id, "ok"))
        }
        Op::Shutdown => {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            ExecOutcome::Reply(status_line(id, "shutting_down"))
        }
        Op::Compile(c) if request.trace => {
            let config = match protocol::resolve_profile(&c.profile) {
                Ok(config) => config,
                Err(e) => return ExecOutcome::Fail(e),
            };
            // Traced compiles bypass the program store: the point is to
            // observe the pipeline, so compile fresh every time.
            let mut tracer = Tracer::new();
            let program = match safara_core::compile_traced(&c.source, &config, &mut tracer) {
                Ok(p) => p,
                Err(e) => return ExecOutcome::Fail(WireError::from_compile(&e)),
            };
            if Instant::now() > deadline {
                return ExecOutcome::DeadlineExceeded;
            }
            let spans = tracer.finish();
            match protocol::compile_response(id, &program, c.entry.as_deref(), Some(&spans)) {
                Ok(line) => ExecOutcome::Reply(line),
                Err(e) => ExecOutcome::Fail(e),
            }
        }
        Op::Compile(c) => {
            let program = match shared.program_for(&c.source, &c.profile) {
                Ok(p) => p,
                Err(e) => return ExecOutcome::Fail(e),
            };
            match protocol::compile_response(id, &program, c.entry.as_deref(), None) {
                Ok(line) => ExecOutcome::Reply(line),
                Err(e) => ExecOutcome::Fail(e),
            }
        }
        Op::Run(r) if request.trace => {
            let config = match protocol::resolve_profile(&r.profile) {
                Ok(config) => config,
                Err(e) => return ExecOutcome::Fail(e),
            };
            // Traced runs also compile fresh (bypassing the program
            // store) so the span tree always shows the compile phases.
            let mut tracer = Tracer::new();
            let program = match safara_core::compile_traced(&r.source, &config, &mut tracer) {
                Ok(p) => p,
                Err(e) => return ExecOutcome::Fail(WireError::from_compile(&e)),
            };
            if Instant::now() > deadline {
                return ExecOutcome::DeadlineExceeded;
            }
            let opts = match resolve_exec_options(r) {
                Ok(o) => o,
                Err(e) => return ExecOutcome::Fail(e),
            };
            let mut args = r.args.clone();
            let outcome = opts.scope(|| {
                safara_core::run_compiled_traced(
                    &program,
                    &r.entry,
                    &mut args,
                    &DeviceConfig::k20xm(),
                    Some(&shared.cache),
                    &mut tracer,
                )
            });
            let outcome = match outcome {
                Ok(o) => o,
                Err(e) => return ExecOutcome::Fail(WireError::from_compile(&e)),
            };
            if Instant::now() > deadline {
                return ExecOutcome::DeadlineExceeded;
            }
            let spans = tracer.finish();
            ExecOutcome::Reply(protocol::run_response(
                id,
                &outcome,
                &args,
                r.return_arrays,
                Some(&spans),
            ))
        }
        Op::Run(r) => {
            let program = match shared.program_for(&r.source, &r.profile) {
                Ok(p) => p,
                Err(e) => return ExecOutcome::Fail(e),
            };
            // Compilation can be slow; a request may start in time and
            // still blow its deadline here. Re-check before simulating.
            if Instant::now() > deadline {
                return ExecOutcome::DeadlineExceeded;
            }
            // Injected cache poisoning: corrupt one cached entry
            // without touching its checksum. With `verify_cache` on the
            // replay path detects it, drops the entry, and re-simulates
            // — the slow correct answer instead of the fast wrong one.
            if let Some(FaultAction::Poison) = fault(shared, InjectionPoint::CacheRead) {
                shared.cache.poison_one();
            }
            let opts = match resolve_exec_options(r) {
                Ok(o) => o,
                Err(e) => return ExecOutcome::Fail(e),
            };
            let mut args = r.args.clone();
            let outcome = opts.scope(|| {
                safara_core::run_compiled_with_faults(
                    &program,
                    &r.entry,
                    &mut args,
                    &DeviceConfig::k20xm(),
                    Some(&shared.cache),
                    &shared.faults,
                )
            });
            let outcome = match outcome {
                Ok(o) => o,
                Err(e) => return ExecOutcome::Fail(WireError::from_compile(&e)),
            };
            if Instant::now() > deadline {
                return ExecOutcome::DeadlineExceeded;
            }
            // Unrendered: the worker serializes one line per recipient
            // (the leader and any coalesced waiters).
            ExecOutcome::Run(Box::new((outcome, args)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::protocol::parse_request;
    use safara_core::chaos::Fire;

    fn status_of(line: &str) -> String {
        Json::parse(line)
            .unwrap()
            .get("status")
            .and_then(Json::as_str)
            .unwrap()
            .to_string()
    }

    fn submit_line(engine: &Engine, line: &str, tx: &mpsc::Sender<String>) -> Option<String> {
        match engine.submit(parse_request(line).unwrap(), tx.clone()) {
            Submit::Queued => None,
            Submit::Rejected { response, .. } => Some(response),
        }
    }

    #[test]
    fn ping_compile_and_run_roundtrip() {
        let engine = Engine::start(EngineConfig {
            workers: 2,
            queue_depth: 8,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let src = "void axpy(int n, float alpha, const float x[n], float y[n]) {\
                   #pragma acc kernels copyin(x) copy(y)\n{\
                   #pragma acc loop gang vector\n\
                   for (int i = 0; i < n; i++) { y[i] = y[i] + alpha * x[i]; } } }";
        let run = protocol::build_run_request(
            2,
            src,
            "axpy",
            "safara_only",
            &safara_core::Args::new()
                .i32("n", 16)
                .f32("alpha", 3.0)
                .array_f32("x", &[1.0; 16])
                .array_f32("y", &[0.5; 16]),
            true,
        );
        for line in [r#"{"id":1,"op":"ping"}"#, run.as_str()] {
            assert!(submit_line(&engine, line, &tx).is_none());
        }
        let mut got = HashMap::new();
        for _ in 0..2 {
            let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            let v = Json::parse(&line).unwrap();
            got.insert(v.get("id").and_then(Json::as_i64).unwrap(), line);
        }
        assert_eq!(status_of(&got[&1]), "ok");
        let run_resp = Json::parse(&got[&2]).unwrap();
        assert_eq!(run_resp.get("status").and_then(Json::as_str), Some("ok"));
        let y_bits = run_resp
            .get("arrays")
            .and_then(|a| a.get("y"))
            .and_then(|y| y.get("bits"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(y_bits.len(), 16);
        assert_eq!(y_bits[0].as_i64().unwrap() as u32, 3.5f32.to_bits());
        assert!(run_resp.get("max_regs").and_then(Json::as_i64).unwrap() > 0);
        engine.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        // One worker held by a sleep + depth-1 queue: the third request
        // must be shed deterministically.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 1,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        assert!(submit_line(&engine, r#"{"id":1,"op":"sleep","ms":300}"#, &tx).is_none());
        // Give the worker time to dequeue job 1 so job 2 occupies the
        // queue slot; then job 3 must bounce.
        std::thread::sleep(Duration::from_millis(100));
        assert!(submit_line(&engine, r#"{"id":2,"op":"ping"}"#, &tx).is_none());
        let rejected = submit_line(&engine, r#"{"id":3,"op":"ping"}"#, &tx).unwrap();
        assert_eq!(status_of(&rejected), "overloaded");
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(5)).unwrap()), "ok");
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(5)).unwrap()), "ok");
        assert_eq!(engine.shared().rejected_overload.load(Ordering::Relaxed), 1);
        engine.shutdown();
    }

    #[test]
    fn stale_requests_time_out_at_dequeue() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 4,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        assert!(submit_line(&engine, r#"{"id":1,"op":"sleep","ms":300}"#, &tx).is_none());
        // Queued behind the sleep with a 10 ms deadline: expired by the
        // time the worker frees up.
        assert!(
            submit_line(&engine, r#"{"id":2,"op":"ping","timeout_ms":10}"#, &tx).is_none()
        );
        let first = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(status_of(&first), "ok");
        let second = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(status_of(&second), "timeout");
        assert_eq!(Json::parse(&second).unwrap().get("id").and_then(Json::as_i64), Some(2));
        assert_eq!(engine.shared().timed_out.load(Ordering::Relaxed), 1);
        engine.shutdown();
    }

    #[test]
    fn requests_that_start_in_time_but_finish_late_get_timeout() {
        // A sleep that starts well inside its deadline but finishes past
        // it: the pre-2026 server would answer `ok` because the deadline
        // was only checked at dequeue.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 4,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        assert!(
            submit_line(&engine, r#"{"id":1,"op":"sleep","ms":300,"timeout_ms":100}"#, &tx)
                .is_none()
        );
        let line = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(status_of(&line), "timeout");
        assert_eq!(engine.shared().timed_out.load(Ordering::Relaxed), 0, "started in time");
        assert_eq!(engine.shared().timed_out_late.load(Ordering::Relaxed), 1);
        engine.shutdown();
    }

    #[test]
    fn slow_pipeline_work_respects_the_deadline_too() {
        // A real compile+simulate request with a 1 ms budget: whether it
        // expires in the queue or mid-pipeline, the answer must be
        // `timeout` and exactly one timeout counter must move.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 4,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        // 64 lanes × 20k sequential iterations: slow enough that even a
        // release-mode simulator cannot finish inside 1 ms.
        let src = "void grind(int n, float x[n]) {\
                   #pragma acc kernels copy(x)\n{\
                   #pragma acc loop gang vector\n\
                   for (int i = 0; i < n; i++) {\
                   #pragma acc loop seq\n\
                   for (int k = 0; k < 20000; k++) { x[i] = x[i] * 1.0001f + 0.5f; } } } }";
        let mut line = protocol::build_run_request(
            7,
            src,
            "grind",
            "safara_only",
            &safara_core::Args::new().i32("n", 64).array_f32("x", &[1.0; 64]),
            false,
        );
        line = line.replacen("{", r#"{"timeout_ms":1,"#, 1);
        assert!(submit_line(&engine, &line, &tx).is_none());
        let resp = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(status_of(&resp), "timeout");
        let shared = engine.shared();
        let early = shared.timed_out.load(Ordering::Relaxed);
        let late = shared.timed_out_late.load(Ordering::Relaxed);
        assert_eq!(early + late, 1, "one request, one timeout ({early} early, {late} late)");
        assert_eq!(shared.completed.load(Ordering::Relaxed), 0);
        engine.shutdown();
    }

    #[test]
    fn hung_up_clients_count_as_replies_dropped() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 4,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        assert!(submit_line(&engine, r#"{"id":1,"op":"ping"}"#, &tx).is_none());
        drop(rx); // client hangs up before the worker answers
        drop(tx);
        let shared = Arc::clone(engine.shared());
        engine.shutdown(); // drains the queue: the send must have failed by now
        assert_eq!(shared.replies_dropped.load(Ordering::Relaxed), 1);
        // The outcome counters still balance: the request completed,
        // only its delivery failed.
        assert_eq!(shared.completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn engine_override_runs_identically_and_rejects_unknown_names() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 8,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let src = "void axpy(int n, float alpha, const float x[n], float y[n]) {\
                   #pragma acc kernels copyin(x) copy(y)\n{\
                   #pragma acc loop gang vector\n\
                   for (int i = 0; i < n; i++) { y[i] = y[i] + alpha * x[i]; } } }";
        let args = safara_core::Args::new()
            .i32("n", 64)
            .f32("alpha", 2.0)
            .array_f32("x", &[1.5; 64])
            .array_f32("y", &[0.25; 64]);
        // Superblock goes first, against a cold launch cache, so the
        // request genuinely exercises the engine rather than replaying a
        // memoized result.
        let mut digests = Vec::new();
        for (id, eng) in
            [(1, Some("superblock")), (2, Some("decoded")), (3, Some("reference")), (4, None)]
        {
            let line = protocol::build_run_request_with_engine(
                2,
                id,
                src,
                "axpy",
                "safara_only",
                eng,
                &args,
                false,
            );
            assert!(submit_line(&engine, &line, &tx).is_none());
            let resp = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(status_of(&resp), "ok", "{resp}");
            let v = Json::parse(&resp).unwrap();
            digests.push(v.get("digests").expect("digests").dump());
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "per-engine digests must match: {digests:?}"
        );
        // Unknown engine name: typed v2 failure, not retryable, tallied
        // under its own code.
        let bad = protocol::build_run_request_with_engine(
            2,
            9,
            src,
            "axpy",
            "safara_only",
            Some("warp9"),
            &args,
            false,
        );
        assert!(submit_line(&engine, &bad, &tx).is_none());
        let resp = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(status_of(&resp), "error");
        let e = Json::parse(&resp).unwrap();
        let e = e.get("error").expect("v2 error object");
        assert_eq!(e.get("code").and_then(Json::as_str), Some("invalid_engine"));
        assert_eq!(e.get("retryable").and_then(Json::as_bool), Some(false));
        assert_eq!(engine.shared().errors_by_code.get("invalid_engine"), 1);
        // `stats` reports the process-wide fusion counters, and the
        // superblock request above moved them.
        assert!(submit_line(&engine, r#"{"id":10,"op":"stats"}"#, &tx).is_none());
        let stats = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let v = Json::parse(&stats).unwrap();
        let fusion = v.get("fusion").expect("fusion block");
        assert!(fusion.get("launches").and_then(Json::as_i64).unwrap() >= 1, "{stats}");
        engine.shutdown();
    }

    #[test]
    fn sim_threads_override_runs_identically_and_rejects_bad_values() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 8,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let src = "void axpy(int n, float alpha, const float x[n], float y[n]) {\
                   #pragma acc kernels copyin(x) copy(y)\n{\
                   #pragma acc loop gang vector\n\
                   for (int i = 0; i < n; i++) { y[i] = y[i] + alpha * x[i]; } } }";
        let args = safara_core::Args::new()
            .i32("n", 256)
            .f32("alpha", 2.0)
            .array_f32("x", &[1.5; 256])
            .array_f32("y", &[0.25; 256]);
        // Parallel settings go first, against a cold launch cache, so
        // the request genuinely exercises the pool rather than replaying
        // a memoized result; digests must match the serial run exactly.
        let mut digests = Vec::new();
        for (id, threads) in [(1, Some("2")), (2, Some("auto")), (3, Some("1")), (4, None)] {
            let line = protocol::build_run_request_with_sim_threads(
                2,
                id,
                src,
                "axpy",
                "safara_only",
                None,
                threads,
                &args,
                false,
            );
            assert!(submit_line(&engine, &line, &tx).is_none());
            let resp = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(status_of(&resp), "ok", "{resp}");
            let v = Json::parse(&resp).unwrap();
            digests.push(v.get("digests").expect("digests").dump());
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "per-thread-count digests must match: {digests:?}"
        );
        // Ill-valued sim_threads: typed v2 failure, not retryable,
        // tallied under its own code.
        for (id, bad) in [(8, "0"), (9, "-3"), (10, "many")] {
            let line = protocol::build_run_request_with_sim_threads(
                2,
                id,
                src,
                "axpy",
                "safara_only",
                None,
                Some(bad),
                &args,
                false,
            );
            assert!(submit_line(&engine, &line, &tx).is_none());
            let resp = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(status_of(&resp), "error");
            let e = Json::parse(&resp).unwrap();
            let e = e.get("error").expect("v2 error object");
            assert_eq!(e.get("code").and_then(Json::as_str), Some("invalid_sim_threads"));
            assert_eq!(e.get("retryable").and_then(Json::as_bool), Some(false));
        }
        assert_eq!(engine.shared().errors_by_code.get("invalid_sim_threads"), 3);
        engine.shutdown();
    }

    #[test]
    fn sb_threshold_override_runs_identically_and_rejects_bad_values() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 8,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let src = "void axpy(int n, float alpha, const float x[n], float y[n]) {\
                   #pragma acc kernels copyin(x) copy(y)\n{\
                   #pragma acc loop gang vector\n\
                   for (int i = 0; i < n; i++) { y[i] = y[i] + alpha * x[i]; } } }";
        let args = safara_core::Args::new()
            .i32("n", 256)
            .f32("alpha", 2.0)
            .array_f32("x", &[1.5; 256])
            .array_f32("y", &[0.25; 256]);
        // Promotion is a performance knob, never a results knob: every
        // threshold (eager, default, disabled) must digest identically,
        // on the superblock engine where the threshold actually gates.
        let mut digests = Vec::new();
        for (id, sb) in [(1, Some("1")), (2, Some("inf")), (3, Some("64")), (4, None)] {
            let line = protocol::build_run_request_with_exec_options(
                2,
                id,
                src,
                "axpy",
                "safara_only",
                Some("superblock"),
                None,
                sb,
                &args,
                false,
            );
            assert!(submit_line(&engine, &line, &tx).is_none());
            let resp = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(status_of(&resp), "ok", "{resp}");
            let v = Json::parse(&resp).unwrap();
            digests.push(v.get("digests").expect("digests").dump());
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "per-threshold digests must match: {digests:?}"
        );
        // Ill-valued sb_threshold: typed v2 failure, not retryable,
        // tallied under its own code.
        for (id, bad) in [(8, "0"), (9, "-2"), (10, "sometimes")] {
            let line = protocol::build_run_request_with_exec_options(
                2,
                id,
                src,
                "axpy",
                "safara_only",
                None,
                None,
                Some(bad),
                &args,
                false,
            );
            assert!(submit_line(&engine, &line, &tx).is_none());
            let resp = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(status_of(&resp), "error");
            let e = Json::parse(&resp).unwrap();
            let e = e.get("error").expect("v2 error object");
            assert_eq!(e.get("code").and_then(Json::as_str), Some("invalid_sb_threshold"));
            assert_eq!(e.get("retryable").and_then(Json::as_bool), Some(false));
        }
        assert_eq!(engine.shared().errors_by_code.get("invalid_sb_threshold"), 3);
        engine.shutdown();
    }

    #[test]
    fn traced_run_response_carries_a_well_formed_span_tree() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 4,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let src = "void axpy(int n, float alpha, const float x[n], float y[n]) {\
                   #pragma acc kernels copyin(x) copy(y)\n{\
                   #pragma acc loop gang vector\n\
                   for (int i = 0; i < n; i++) { y[i] = y[i] + alpha * x[i]; } } }";
        let args = safara_core::Args::new()
            .i32("n", 32)
            .f32("alpha", 2.0)
            .array_f32("x", &[1.0; 32])
            .array_f32("y", &[0.0; 32]);
        // Warm the program store first so the test proves traced runs
        // compile fresh (the compile phases must still appear).
        let warm = protocol::build_run_request(1, src, "axpy", "safara_only", &args, false);
        assert!(submit_line(&engine, &warm, &tx).is_none());
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(30)).unwrap()), "ok");

        let mut traced = Json::parse(
            &protocol::build_run_request(2, src, "axpy", "safara_only", &args, false),
        )
        .unwrap();
        let Json::Obj(fields) = &mut traced else { unreachable!() };
        fields.push(("trace".into(), Json::Bool(true)));
        assert!(submit_line(&engine, &traced.dump(), &tx).is_none());
        let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"), "{line}");
        let trace = v.get("trace").and_then(Json::as_arr).expect("trace span array");
        let names: Vec<&str> =
            trace.iter().map(|s| s.get("name").and_then(Json::as_str).unwrap()).collect();
        for phase in ["parse", "sema", "analysis", "opt", "codegen", "regalloc", "sim"] {
            assert_eq!(
                names.iter().filter(|n| **n == phase).count(),
                1,
                "phase `{phase}` must appear exactly once in {names:?}"
            );
        }
        for span in trace {
            assert!(span.get("start_us").and_then(Json::as_i64).unwrap() >= 0);
            assert!(span.get("dur_us").and_then(Json::as_i64).unwrap() >= 0);
        }
        // The sim span has the h2d → launch → d2h children.
        let sim = trace.iter().find(|s| s.get("name").and_then(Json::as_str) == Some("sim"));
        let kids = sim.unwrap().get("children").and_then(Json::as_arr).expect("sim children");
        let kid_names: Vec<&str> =
            kids.iter().map(|s| s.get("name").and_then(Json::as_str).unwrap()).collect();
        assert_eq!(kid_names, ["h2d", "launch", "d2h"]);

        // Untraced responses carry no trace field.
        let plain = protocol::build_run_request(3, src, "axpy", "safara_only", &args, false);
        assert!(submit_line(&engine, &plain, &tx).is_none());
        let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(Json::parse(&line).unwrap().get("trace").is_none());
        engine.shutdown();
    }

    #[test]
    fn stats_reports_latency_histograms_and_cache_counters() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 8,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..3 {
            let line = format!(r#"{{"id":{i},"op":"ping"}}"#);
            assert!(submit_line(&engine, &line, &tx).is_none());
        }
        for _ in 0..3 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let stats = Json::parse(&engine.stats_line(Some(99))).unwrap();
        let latency = stats.get("latency").expect("latency section");
        let qw = latency.get("queue_wait").expect("queue_wait");
        assert_eq!(qw.get("count").and_then(Json::as_i64), Some(3));
        assert!(qw.get("p50_us").and_then(Json::as_i64).is_some());
        assert!(qw.get("p95_us").and_then(Json::as_i64).is_some());
        assert!(qw.get("max_us").and_then(Json::as_i64).is_some());
        assert_eq!(latency.get("service").and_then(|s| s.get("count")).and_then(Json::as_i64), Some(3));
        let ping = latency.get("per_op").and_then(|p| p.get("ping")).expect("per-op ping");
        assert_eq!(ping.get("count").and_then(Json::as_i64), Some(3));
        assert!(latency.get("per_op").and_then(|p| p.get("run")).is_none(), "no runs yet");
        let cache = stats.get("cache").expect("cache section");
        assert_eq!(cache.get("evictions").and_then(Json::as_i64), Some(0));
        assert!(cache.get("contention").and_then(Json::as_i64).is_some());
        let server = stats.get("server").expect("server section");
        assert_eq!(server.get("timed_out_late").and_then(Json::as_i64), Some(0));
        assert_eq!(server.get("replies_dropped").and_then(Json::as_i64), Some(0));
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 8,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..5 {
            let line = format!(r#"{{"id":{i},"op":"ping"}}"#);
            assert!(submit_line(&engine, &line, &tx).is_none());
        }
        engine.shutdown(); // closes the queue, then joins: must drain all 5
        let mut ok = 0;
        while let Ok(line) = rx.try_recv() {
            assert_eq!(status_of(&line), "ok");
            ok += 1;
        }
        assert_eq!(ok, 5);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 4,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let bad = r#"{"id":1,"op":"run","source":"void f(","entry":"f","profile":"base"}"#;
        assert!(submit_line(&engine, bad, &tx).is_none());
        let unknown_profile =
            r#"{"id":2,"op":"compile","source":"void f() {}","profile":"gcc"}"#;
        assert!(submit_line(&engine, unknown_profile, &tx).is_none());
        for _ in 0..2 {
            let line = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(status_of(&line), "error");
            assert!(Json::parse(&line).unwrap().get("message").is_some());
        }
        assert_eq!(engine.shared().errors.load(Ordering::Relaxed), 2);
        engine.shutdown();
    }

    fn counters_balance(shared: &EngineShared) {
        let n = |c: &AtomicU64| c.load(Ordering::Relaxed);
        assert_eq!(
            n(&shared.submitted),
            n(&shared.completed)
                + n(&shared.errors)
                + n(&shared.timed_out)
                + n(&shared.timed_out_late)
                + n(&shared.shed)
                + n(&shared.coalesced),
            "accounting invariant"
        );
    }

    #[test]
    fn watermark_sheds_before_the_hard_cap() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 8,
            shed_watermark: Some(1),
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        assert!(submit_line(&engine, r#"{"id":1,"op":"sleep","ms":300}"#, &tx).is_none());
        std::thread::sleep(Duration::from_millis(100)); // worker holds job 1
        assert!(submit_line(&engine, r#"{"id":2,"op":"ping"}"#, &tx).is_none());
        // Queue now holds one job — at the watermark, far below the
        // hard cap of 8. The next request must shed.
        let shed = submit_line(&engine, r#"{"id":3,"v":2,"op":"ping"}"#, &tx).unwrap();
        let v = Json::parse(&shed).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(
            v.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("shed")
        );
        assert_eq!(
            v.get("error").and_then(|e| e.get("retryable")).and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(5)).unwrap()), "ok");
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(5)).unwrap()), "ok");
        let shared = engine.shared();
        assert_eq!(shared.shed.load(Ordering::Relaxed), 1);
        assert_eq!(shared.rejected_overload.load(Ordering::Relaxed), 1);
        counters_balance(shared);
        engine.shutdown();
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_recovers() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 8,
            breaker_threshold: 2,
            breaker_cooldown_ms: 100,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let bad = |id: i64| format!(r#"{{"id":{id},"op":"compile","source":"void f(","profile":"base"}}"#);
        for id in 1..=2 {
            assert!(submit_line(&engine, &bad(id), &tx).is_none());
            assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(10)).unwrap()), "error");
        }
        // Two consecutive `base` pipeline failures: the breaker is open.
        let rejected = submit_line(&engine, &bad(3), &tx).expect("refused at admission");
        assert_eq!(status_of(&rejected), "error");
        assert!(rejected.contains("circuit breaker"), "{rejected}");
        // Other profiles are unaffected.
        let good =
            r#"{"id":4,"op":"compile","source":"void g() {}","profile":"safara_only"}"#;
        assert!(submit_line(&engine, good, &tx).is_none());
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(10)).unwrap()), "ok");
        // After the cooldown one probe is admitted; success closes it.
        std::thread::sleep(Duration::from_millis(120));
        let probe = r#"{"id":5,"op":"compile","source":"void h() {}","profile":"base"}"#;
        assert!(submit_line(&engine, probe, &tx).is_none(), "probe admitted");
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(10)).unwrap()), "ok");
        let after = r#"{"id":6,"op":"compile","source":"void h() {}","profile":"base"}"#;
        assert!(submit_line(&engine, after, &tx).is_none(), "breaker closed again");
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(10)).unwrap()), "ok");
        let shared = engine.shared();
        assert_eq!(shared.breaker_trips.load(Ordering::Relaxed), 1);
        assert_eq!(shared.breaker_rejections.load(Ordering::Relaxed), 1);
        assert_eq!(shared.errors_by_code.get("parse"), 2);
        assert_eq!(shared.errors_by_code.get("breaker_open"), 1);
        counters_balance(shared);
        engine.shutdown();
    }

    #[test]
    fn worker_panics_are_isolated_and_respawned() {
        let plan = Arc::new(
            FaultPlan::seeded(1).with(InjectionPoint::WorkerJob, FaultAction::Panic, Fire::First(2)),
        );
        let engine = Engine::start(EngineConfig {
            workers: 2,
            queue_depth: 16,
            fault_plan: plan,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        for i in 1..=6 {
            let line = format!(r#"{{"id":{i},"v":2,"op":"ping"}}"#);
            assert!(submit_line(&engine, &line, &tx).is_none());
        }
        let mut ok = 0;
        let mut internal = 0;
        for _ in 0..6 {
            let line = rx.recv_timeout(Duration::from_secs(10)).expect("pool must survive");
            match status_of(&line).as_str() {
                "ok" => ok += 1,
                "error" => {
                    let v = Json::parse(&line).unwrap();
                    let e = v.get("error").expect("v2 error object");
                    assert_eq!(e.get("code").and_then(Json::as_str), Some("internal"));
                    assert_eq!(e.get("retryable").and_then(Json::as_bool), Some(true));
                    internal += 1;
                }
                other => panic!("unexpected status {other}: {line}"),
            }
        }
        assert_eq!((ok, internal), (4, 2));
        let shared = Arc::clone(engine.shared());
        counters_balance(&shared);
        // Shutdown joins the regenerated pool — this hanging would mean
        // a respawned worker was never registered.
        engine.shutdown();
        assert_eq!(shared.worker_panics.load(Ordering::Relaxed), 2);
        assert_eq!(shared.worker_respawns.load(Ordering::Relaxed), 2);
        assert_eq!(shared.errors_by_code.get("internal"), 2);
    }

    #[test]
    fn injected_client_hangups_drop_replies_not_accounting() {
        let plan = Arc::new(
            FaultPlan::seeded(3).with(InjectionPoint::Reply, FaultAction::Hangup, Fire::First(1)),
        );
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 8,
            fault_plan: plan,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        assert!(submit_line(&engine, r#"{"id":1,"op":"ping"}"#, &tx).is_none());
        assert!(submit_line(&engine, r#"{"id":2,"op":"ping"}"#, &tx).is_none());
        // Only the second reply arrives; the first was dropped mid-send.
        let line = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(Json::parse(&line).unwrap().get("id").and_then(Json::as_i64), Some(2));
        let shared = Arc::clone(engine.shared());
        engine.shutdown();
        assert!(rx.try_recv().is_err(), "first reply must have been dropped");
        assert_eq!(shared.replies_dropped.load(Ordering::Relaxed), 1);
        assert_eq!(shared.completed.load(Ordering::Relaxed), 2, "work still completed");
        counters_balance(&shared);
    }

    #[test]
    fn v2_requests_get_structured_pipeline_errors() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 4,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let bad =
            r#"{"id":1,"v":2,"op":"run","source":"void f(","entry":"f","profile":"base"}"#;
        assert!(submit_line(&engine, bad, &tx).is_none());
        let v = Json::parse(&rx.recv_timeout(Duration::from_secs(10)).unwrap()).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(v.get("v").and_then(Json::as_i64), Some(2));
        assert!(v.get("message").is_none(), "v2 replaces the message string");
        let e = v.get("error").expect("error object");
        assert_eq!(e.get("code").and_then(Json::as_str), Some("parse"));
        assert_eq!(e.get("phase").and_then(Json::as_str), Some("parse"));
        assert_eq!(e.get("retryable").and_then(Json::as_bool), Some(false));
        let unknown =
            r#"{"id":2,"v":2,"op":"compile","source":"void f() {}","profile":"gcc"}"#;
        assert!(submit_line(&engine, unknown, &tx).is_none());
        let v = Json::parse(&rx.recv_timeout(Duration::from_secs(10)).unwrap()).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("unknown_profile")
        );
        assert_eq!(engine.shared().errors_by_code.get("unknown_profile"), 1);
        engine.shutdown();
    }

    #[test]
    fn poisoned_cache_entries_are_detected_and_resimulated() {
        // First arrival poisons an empty cache (no-op); the second
        // corrupts the entry recorded by request 1, right before
        // request 2 replays it.
        let plan = Arc::new(
            FaultPlan::seeded(9).with(InjectionPoint::CacheRead, FaultAction::Poison, Fire::First(2)),
        );
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 8,
            fault_plan: plan,
            verify_cache: true,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let src = "void dbl(int n, float x[n]) {\
                   #pragma acc kernels copy(x)\n{\
                   #pragma acc loop gang vector\n\
                   for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }";
        let args = safara_core::Args::new().i32("n", 8).array_f32("x", &[1.5; 8]);
        let mut digests = Vec::new();
        for i in 1..=3 {
            let line = protocol::build_run_request(i, src, "dbl", "base", &args, false);
            assert!(submit_line(&engine, &line, &tx).is_none());
            let resp = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"), "{resp}");
            digests.push(
                v.get("digests")
                    .and_then(|d| d.get("x"))
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
        assert!(digests.windows(2).all(|w| w[0] == w[1]), "bit-identical despite poisoning: {digests:?}");
        let shared = engine.shared();
        assert_eq!(shared.cache.integrity_failures(), 1, "the corruption was caught");
        assert_eq!(shared.cache.hits(), 1, "request 3 replays the re-recorded entry");
        assert_eq!(shared.cache.misses(), 2, "the detected poisoning re-simulated");
        counters_balance(shared);
        engine.shutdown();
    }

    const DBL: &str = "void dbl(int n, float x[n]) {\
                       #pragma acc kernels copy(x)\n{\
                       #pragma acc loop gang vector\n\
                       for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }";

    fn dbl_args() -> safara_core::Args {
        safara_core::Args::new().i32("n", 8).array_f32("x", &[1.5; 8])
    }

    /// Hold the single worker with a sleep so subsequently submitted
    /// jobs are deterministically queued (and duplicates parked).
    fn hold_worker(engine: &Engine, tx: &mpsc::Sender<String>, ms: u64) {
        let line = format!(r#"{{"id":0,"op":"sleep","ms":{ms}}}"#);
        assert!(submit_line(engine, &line, tx).is_none());
        std::thread::sleep(Duration::from_millis(100));
    }

    #[test]
    fn duplicate_requests_coalesce_onto_one_leader() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 16,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        hold_worker(&engine, &tx, 300);
        let line = protocol::build_run_request(7, DBL, "dbl", "base", &dbl_args(), true);
        // Leader + 3 duplicates, all parked while the worker sleeps.
        let mut waiter_rxs = Vec::new();
        assert!(submit_line(&engine, &line, &tx).is_none());
        for _ in 0..3 {
            let (wtx, wrx) = mpsc::channel();
            assert!(submit_line(&engine, &line, &wtx).is_none());
            waiter_rxs.push(wrx);
        }
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(5)).unwrap()), "ok"); // sleep
        let leader = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(status_of(&leader), "ok");
        for wrx in &waiter_rxs {
            let got = wrx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(got, leader, "same id, so fan-out lines are byte-identical");
        }
        let shared = engine.shared();
        assert_eq!(shared.coalesced.load(Ordering::Relaxed), 3);
        assert_eq!(shared.completed.load(Ordering::Relaxed), 2, "sleep + one run");
        assert_eq!(shared.cache.misses(), 1, "exactly one pipeline execution");
        assert_eq!(shared.cache.hits(), 0);
        counters_balance(shared);
        engine.shutdown();
    }

    #[test]
    fn coalesce_off_runs_every_duplicate() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 16,
            coalesce: false,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        hold_worker(&engine, &tx, 200);
        let line = protocol::build_run_request(7, DBL, "dbl", "base", &dbl_args(), false);
        for _ in 0..3 {
            assert!(submit_line(&engine, &line, &tx).is_none());
        }
        for _ in 0..4 {
            assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(30)).unwrap()), "ok");
        }
        let shared = engine.shared();
        assert_eq!(shared.coalesced.load(Ordering::Relaxed), 0);
        assert_eq!(shared.cache.hits() + shared.cache.misses(), 3, "every duplicate simulated");
        counters_balance(shared);
        engine.shutdown();
    }

    #[test]
    fn parked_waiter_hangup_counts_replies_dropped_not_accounting() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 16,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        hold_worker(&engine, &tx, 300);
        let line = protocol::build_run_request(7, DBL, "dbl", "base", &dbl_args(), false);
        assert!(submit_line(&engine, &line, &tx).is_none()); // leader
        let (wtx, wrx) = mpsc::channel();
        assert!(submit_line(&engine, &line, &wtx).is_none()); // waiter
        drop(wrx); // ...which hangs up while parked
        drop(wtx);
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(5)).unwrap()), "ok"); // sleep
        let leader = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(status_of(&leader), "ok", "leader unaffected by the waiter hangup");
        let shared = Arc::clone(engine.shared());
        engine.shutdown();
        assert_eq!(shared.coalesced.load(Ordering::Relaxed), 1);
        assert_eq!(shared.replies_dropped.load(Ordering::Relaxed), 1);
        assert!(
            shared.inflight.lock().unwrap().is_empty(),
            "fan-out must not leak the waiter-list entry"
        );
        counters_balance(&shared);
    }

    #[test]
    fn coalesced_waiters_get_the_leaders_verdict_not_the_breaker() {
        // The leader's simulation fails (injected, retryable). That
        // failure trips a threshold-1 breaker — but the waiter parked on
        // the leader must still receive the leader's typed `sim` error
        // with its retryable contract, not a `breaker_open` rejection.
        for seed in [1, 7, 42] {
            let plan = Arc::new(
                FaultPlan::seeded(seed).with(InjectionPoint::Sim, FaultAction::Fail, Fire::First(1)),
            );
            let engine = Engine::start(EngineConfig {
                workers: 1,
                queue_depth: 16,
                breaker_threshold: 1,
                breaker_cooldown_ms: 60_000,
                fault_plan: plan,
                ..EngineConfig::default()
            });
            let (tx, rx) = mpsc::channel();
            hold_worker(&engine, &tx, 300);
            let line =
                protocol::build_run_request_v(2, 7, DBL, "dbl", "base", &dbl_args(), false);
            assert!(submit_line(&engine, &line, &tx).is_none()); // leader
            let (wtx, wrx) = mpsc::channel();
            assert!(submit_line(&engine, &line, &wtx).is_none()); // waiter
            assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(5)).unwrap()), "ok");
            let leader = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(status_of(&leader), "error", "seed {seed}: {leader}");
            let waiter = wrx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(waiter, leader, "same id: identical typed error, seed {seed}");
            let e = Json::parse(&waiter).unwrap();
            let e = e.get("error").expect("v2 error object");
            assert_eq!(e.get("code").and_then(Json::as_str), Some("sim"));
            assert_eq!(e.get("retryable").and_then(Json::as_bool), Some(true));
            // The breaker did trip on the leader's failure: a *new*
            // submission (no leader in flight anymore) is refused.
            let rejected = submit_line(&engine, &line, &tx).expect("breaker open");
            assert!(rejected.contains("breaker_open"), "{rejected}");
            let shared = engine.shared();
            assert_eq!(shared.coalesced.load(Ordering::Relaxed), 1, "seed {seed}");
            assert_eq!(shared.breaker_trips.load(Ordering::Relaxed), 1);
            assert_eq!(shared.errors_by_code.get("sim"), 1, "waiter adds no error count");
            counters_balance(shared);
            engine.shutdown();
        }
    }

    #[test]
    fn same_program_jobs_drain_as_one_batch() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 16,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        hold_worker(&engine, &tx, 300);
        // Four distinct-args runs of one program (distinct flight keys,
        // shared program key) with a ping wedged in the middle: the
        // batch gathers the runs past it.
        for i in 0..2 {
            let args = safara_core::Args::new().i32("n", 8).array_f32("x", &[i as f32; 8]);
            let line = protocol::build_run_request(i, DBL, "dbl", "base", &args, false);
            assert!(submit_line(&engine, &line, &tx).is_none());
        }
        assert!(submit_line(&engine, r#"{"id":99,"op":"ping"}"#, &tx).is_none());
        for i in 2..4 {
            let args = safara_core::Args::new().i32("n", 8).array_f32("x", &[i as f32; 8]);
            let line = protocol::build_run_request(i, DBL, "dbl", "base", &args, false);
            assert!(submit_line(&engine, &line, &tx).is_none());
        }
        for _ in 0..6 {
            assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(30)).unwrap()), "ok");
        }
        let shared = engine.shared();
        let bs = shared.metrics.batch_size.snapshot();
        assert_eq!(bs.max_us, 4, "the four same-program runs drained together");
        assert_eq!(shared.programs_cached(), 1);
        assert_eq!(shared.completed.load(Ordering::Relaxed), 6);
        counters_balance(shared);
        engine.shutdown();
    }

    #[test]
    fn identical_runs_share_the_cache_and_program_store() {
        // Coalescing off: this test is about the launch cache taking
        // warm hits across workers, so every duplicate must reach it.
        let engine = Engine::start(EngineConfig {
            workers: 2,
            queue_depth: 16,
            coalesce: false,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let src = "void dbl(int n, float x[n]) {\
                   #pragma acc kernels copy(x)\n{\
                   #pragma acc loop gang vector\n\
                   for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }";
        let args = safara_core::Args::new().i32("n", 8).array_f32("x", &[1.5; 8]);
        let mut digests = Vec::new();
        for i in 0..6 {
            let line = protocol::build_run_request(i, src, "dbl", "base", &args, false);
            assert!(submit_line(&engine, &line, &tx).is_none());
        }
        for _ in 0..6 {
            let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            let v = Json::parse(&line).unwrap();
            assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"), "{line}");
            digests.push(
                v.get("digests")
                    .and_then(|d| d.get("x"))
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
        assert!(digests.windows(2).all(|w| w[0] == w[1]), "{digests:?}");
        let shared = engine.shared();
        assert_eq!(shared.cache.hits() + shared.cache.misses(), 6);
        assert!(shared.cache.hits() >= 4, "at least n-workers hits");
        assert_eq!(shared.programs_cached(), 1);
        engine.shutdown();
    }
}
