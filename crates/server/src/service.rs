//! The engine: a fixed worker pool executing requests from a bounded
//! queue against one process-wide shared launch cache.
//!
//! Transports (TCP, stdin) parse lines into [`Request`]s and call
//! [`Engine::submit`]; each job carries an `mpsc::Sender<String>` the
//! worker answers on, so a transport can multiplex many in-flight
//! requests per connection and write responses as they finish.
//! Admission control happens in `submit` (bounded queue, non-blocking
//! push → `overloaded`); deadlines are checked when a worker *dequeues*
//! a job — a request that waited past its timeout is answered `timeout`
//! without touching the pipeline.

use crate::protocol::{
    self, error_line, status_line, Op, Request, DEFAULT_TIMEOUT_MS,
};
use crate::queue::{Bounded, PushError};
use safara_core::gpusim::device::DeviceConfig;
use safara_core::{CompiledProgram, SharedLaunchCache};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine sizing and policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bounded queue depth (≥ 1) — jobs admitted but not yet running.
    pub queue_depth: usize,
    /// Deadline for requests that set no `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Shard count for the shared launch cache.
    pub cache_shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue_depth: 64,
            default_timeout_ms: DEFAULT_TIMEOUT_MS,
            cache_shards: 16,
        }
    }
}

/// One admitted unit of work.
pub struct Job {
    /// The parsed request.
    pub request: Request,
    /// Absolute deadline (admission time + effective timeout).
    pub deadline: Instant,
    /// Where the worker sends the response line.
    pub reply: mpsc::Sender<String>,
}

/// State shared by workers and transports.
pub struct EngineShared {
    /// Pool size (fixed at start).
    pub workers: usize,
    /// The process-wide launch cache all workers memoize through.
    pub cache: SharedLaunchCache,
    /// Compiled programs keyed by FNV(source ‖ profile name).
    programs: Mutex<HashMap<u64, Arc<CompiledProgram>>>,
    /// Requests admitted to the queue.
    pub submitted: AtomicU64,
    /// Requests answered `ok`.
    pub completed: AtomicU64,
    /// Requests shed by admission control.
    pub rejected_overload: AtomicU64,
    /// Requests that expired waiting in the queue.
    pub timed_out: AtomicU64,
    /// Requests answered `error`.
    pub errors: AtomicU64,
    /// Set by a `shutdown` request; transports watch it.
    pub shutdown_requested: AtomicBool,
}

impl EngineShared {
    fn program_for(
        &self,
        source: &str,
        profile_key: &str,
    ) -> Result<Arc<CompiledProgram>, String> {
        let config = protocol::resolve_profile(profile_key)?;
        let key = fnv_pair(source, config.name);
        if let Some(p) = self.programs.lock().unwrap_or_else(|p| p.into_inner()).get(&key) {
            return Ok(Arc::clone(p));
        }
        // Compile outside the lock: compilation is the expensive half
        // and two workers racing on the same source just do it twice.
        let program = safara_core::compile(source, &config).map_err(|e| e.to_string())?;
        let program = Arc::new(program);
        self.programs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(key)
            .or_insert_with(|| Arc::clone(&program));
        Ok(program)
    }

    /// Distinct compiled programs currently cached.
    pub fn programs_cached(&self) -> usize {
        self.programs.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

fn fnv_pair(a: &str, b: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in a.as_bytes().iter().chain([0xffu8].iter()).chain(b.as_bytes()) {
        h ^= *byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// What [`Engine::submit`] did with a request.
pub enum Submit {
    /// Admitted; the response will arrive on the job's reply channel.
    Queued,
    /// Shed. The request is handed back (so a transport that *can*
    /// wait, like stdin batch mode, may retry) together with the
    /// ready-made `overloaded`/`shutting_down` response line.
    Rejected {
        /// The request admission control refused.
        request: Request,
        /// The response line to send if the caller does not retry.
        response: String,
    },
}

/// The running service: worker pool + queue + shared state.
pub struct Engine {
    shared: Arc<EngineShared>,
    queue: Arc<Bounded<Job>>,
    workers: Vec<JoinHandle<()>>,
    default_timeout_ms: u64,
}

impl Engine {
    /// Spawn the worker pool.
    pub fn start(config: EngineConfig) -> Engine {
        let shared = Arc::new(EngineShared {
            workers: config.workers.max(1),
            cache: SharedLaunchCache::new(config.cache_shards),
            programs: Mutex::new(HashMap::new()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shutdown_requested: AtomicBool::new(false),
        });
        let queue = Arc::new(Bounded::new(config.queue_depth));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("safara-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &queue))
                    .expect("spawn worker")
            })
            .collect();
        Engine { shared, queue, workers, default_timeout_ms: config.default_timeout_ms }
    }

    /// The shared state (cache, counters, shutdown flag).
    pub fn shared(&self) -> &Arc<EngineShared> {
        &self.shared
    }

    /// Submit a parsed request. Non-blocking: at capacity the request
    /// comes straight back with an `overloaded` response line.
    pub fn submit(&self, request: Request, reply: mpsc::Sender<String>) -> Submit {
        let timeout =
            Duration::from_millis(request.timeout_ms.unwrap_or(self.default_timeout_ms));
        let job = Job { request, deadline: Instant::now() + timeout, reply };
        match self.queue.try_push(job) {
            Ok(()) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                Submit::Queued
            }
            Err(PushError::Full(job)) => {
                self.shared.rejected_overload.fetch_add(1, Ordering::Relaxed);
                let response = status_line(job.request.id, "overloaded");
                Submit::Rejected { request: job.request, response }
            }
            Err(PushError::Closed(job)) => {
                let response = status_line(job.request.id, "shutting_down");
                Submit::Rejected { request: job.request, response }
            }
        }
    }

    /// The deadline `submit` applies when a request sets no timeout.
    pub fn default_timeout_ms(&self) -> u64 {
        self.default_timeout_ms
    }

    /// Render the `stats` response (also available as the `stats` op).
    pub fn stats_line(&self, id: Option<i64>) -> String {
        stats_line_for(&self.shared, self.queue.len(), id)
    }

    /// Stop admitting, drain admitted jobs, join the pool.
    pub fn shutdown(self) {
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn stats_line_for(shared: &EngineShared, queue_len: usize, id: Option<i64>) -> String {
    use crate::json::{obj, Json};
    let mut base = protocol::response_base(id, "ok");
    let Json::Obj(fields) = &mut base else { unreachable!("response_base builds an object") };
    fields.push(("op".into(), Json::Str("stats".into())));
    fields.push((
        "server".into(),
        obj(vec![
            ("workers", Json::Int(shared.workers as i64)),
            ("queue_len", Json::Int(queue_len as i64)),
            ("submitted", Json::Int(shared.submitted.load(Ordering::Relaxed) as i64)),
            ("completed", Json::Int(shared.completed.load(Ordering::Relaxed) as i64)),
            (
                "rejected_overload",
                Json::Int(shared.rejected_overload.load(Ordering::Relaxed) as i64),
            ),
            ("timed_out", Json::Int(shared.timed_out.load(Ordering::Relaxed) as i64)),
            ("errors", Json::Int(shared.errors.load(Ordering::Relaxed) as i64)),
            ("programs_cached", Json::Int(shared.programs_cached() as i64)),
        ]),
    ));
    fields.push((
        "cache".into(),
        obj(vec![
            ("hits", Json::Int(shared.cache.hits() as i64)),
            ("misses", Json::Int(shared.cache.misses() as i64)),
            ("entries", Json::Int(shared.cache.len() as i64)),
        ]),
    ));
    base.dump()
}

fn worker_loop(shared: &EngineShared, queue: &Bounded<Job>) {
    while let Some(job) = queue.pop() {
        let id = job.request.id;
        if Instant::now() > job.deadline {
            shared.timed_out.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(status_line(id, "timeout"));
            continue;
        }
        let line = execute(shared, queue, &job.request);
        match &line {
            Ok(_) => shared.completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => shared.errors.fetch_add(1, Ordering::Relaxed),
        };
        let line = line.unwrap_or_else(|m| error_line(id, &m));
        // A send error means the client hung up; nothing to do.
        let _ = job.reply.send(line);
    }
}

fn execute(shared: &EngineShared, queue: &Bounded<Job>, request: &Request) -> Result<String, String> {
    let id = request.id;
    match &request.op {
        Op::Ping => Ok(status_line(id, "ok")),
        Op::Stats => Ok(stats_line_for(shared, queue.len(), id)),
        Op::Sleep { ms } => {
            // Diagnostic op for exercising admission control: clamp so a
            // stray request cannot wedge a worker for long.
            std::thread::sleep(Duration::from_millis((*ms).min(2_000)));
            Ok(status_line(id, "ok"))
        }
        Op::Shutdown => {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            Ok(status_line(id, "shutting_down"))
        }
        Op::Compile(c) => {
            let program = shared.program_for(&c.source, &c.profile)?;
            protocol::compile_response(id, &program, c.entry.as_deref())
        }
        Op::Run(r) => {
            let program = shared.program_for(&r.source, &r.profile)?;
            let mut args = r.args.clone();
            let outcome = safara_core::run_compiled(
                &program,
                &r.entry,
                &mut args,
                &DeviceConfig::k20xm(),
                Some(&shared.cache),
            )
            .map_err(|e| e.to_string())?;
            Ok(protocol::run_response(id, &outcome, &args, r.return_arrays))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::protocol::parse_request;

    fn status_of(line: &str) -> String {
        Json::parse(line)
            .unwrap()
            .get("status")
            .and_then(Json::as_str)
            .unwrap()
            .to_string()
    }

    fn submit_line(engine: &Engine, line: &str, tx: &mpsc::Sender<String>) -> Option<String> {
        match engine.submit(parse_request(line).unwrap(), tx.clone()) {
            Submit::Queued => None,
            Submit::Rejected { response, .. } => Some(response),
        }
    }

    #[test]
    fn ping_compile_and_run_roundtrip() {
        let engine = Engine::start(EngineConfig {
            workers: 2,
            queue_depth: 8,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let src = "void axpy(int n, float alpha, const float x[n], float y[n]) {\
                   #pragma acc kernels copyin(x) copy(y)\n{\
                   #pragma acc loop gang vector\n\
                   for (int i = 0; i < n; i++) { y[i] = y[i] + alpha * x[i]; } } }";
        let run = protocol::build_run_request(
            2,
            src,
            "axpy",
            "safara_only",
            &safara_core::Args::new()
                .i32("n", 16)
                .f32("alpha", 3.0)
                .array_f32("x", &[1.0; 16])
                .array_f32("y", &[0.5; 16]),
            true,
        );
        for line in [r#"{"id":1,"op":"ping"}"#, run.as_str()] {
            assert!(submit_line(&engine, line, &tx).is_none());
        }
        let mut got = HashMap::new();
        for _ in 0..2 {
            let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            let v = Json::parse(&line).unwrap();
            got.insert(v.get("id").and_then(Json::as_i64).unwrap(), line);
        }
        assert_eq!(status_of(&got[&1]), "ok");
        let run_resp = Json::parse(&got[&2]).unwrap();
        assert_eq!(run_resp.get("status").and_then(Json::as_str), Some("ok"));
        let y_bits = run_resp
            .get("arrays")
            .and_then(|a| a.get("y"))
            .and_then(|y| y.get("bits"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(y_bits.len(), 16);
        assert_eq!(y_bits[0].as_i64().unwrap() as u32, 3.5f32.to_bits());
        assert!(run_resp.get("max_regs").and_then(Json::as_i64).unwrap() > 0);
        engine.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        // One worker held by a sleep + depth-1 queue: the third request
        // must be shed deterministically.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 1,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        assert!(submit_line(&engine, r#"{"id":1,"op":"sleep","ms":300}"#, &tx).is_none());
        // Give the worker time to dequeue job 1 so job 2 occupies the
        // queue slot; then job 3 must bounce.
        std::thread::sleep(Duration::from_millis(100));
        assert!(submit_line(&engine, r#"{"id":2,"op":"ping"}"#, &tx).is_none());
        let rejected = submit_line(&engine, r#"{"id":3,"op":"ping"}"#, &tx).unwrap();
        assert_eq!(status_of(&rejected), "overloaded");
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(5)).unwrap()), "ok");
        assert_eq!(status_of(&rx.recv_timeout(Duration::from_secs(5)).unwrap()), "ok");
        assert_eq!(engine.shared().rejected_overload.load(Ordering::Relaxed), 1);
        engine.shutdown();
    }

    #[test]
    fn stale_requests_time_out_at_dequeue() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 4,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        assert!(submit_line(&engine, r#"{"id":1,"op":"sleep","ms":300}"#, &tx).is_none());
        // Queued behind the sleep with a 10 ms deadline: expired by the
        // time the worker frees up.
        assert!(
            submit_line(&engine, r#"{"id":2,"op":"ping","timeout_ms":10}"#, &tx).is_none()
        );
        let first = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(status_of(&first), "ok");
        let second = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(status_of(&second), "timeout");
        assert_eq!(Json::parse(&second).unwrap().get("id").and_then(Json::as_i64), Some(2));
        assert_eq!(engine.shared().timed_out.load(Ordering::Relaxed), 1);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 8,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..5 {
            let line = format!(r#"{{"id":{i},"op":"ping"}}"#);
            assert!(submit_line(&engine, &line, &tx).is_none());
        }
        engine.shutdown(); // closes the queue, then joins: must drain all 5
        let mut ok = 0;
        while let Ok(line) = rx.try_recv() {
            assert_eq!(status_of(&line), "ok");
            ok += 1;
        }
        assert_eq!(ok, 5);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_depth: 4,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let bad = r#"{"id":1,"op":"run","source":"void f(","entry":"f","profile":"base"}"#;
        assert!(submit_line(&engine, bad, &tx).is_none());
        let unknown_profile =
            r#"{"id":2,"op":"compile","source":"void f() {}","profile":"gcc"}"#;
        assert!(submit_line(&engine, unknown_profile, &tx).is_none());
        for _ in 0..2 {
            let line = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(status_of(&line), "error");
            assert!(Json::parse(&line).unwrap().get("message").is_some());
        }
        assert_eq!(engine.shared().errors.load(Ordering::Relaxed), 2);
        engine.shutdown();
    }

    #[test]
    fn identical_runs_share_the_cache_and_program_store() {
        let engine = Engine::start(EngineConfig {
            workers: 2,
            queue_depth: 16,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let src = "void dbl(int n, float x[n]) {\
                   #pragma acc kernels copy(x)\n{\
                   #pragma acc loop gang vector\n\
                   for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }";
        let args = safara_core::Args::new().i32("n", 8).array_f32("x", &[1.5; 8]);
        let mut digests = Vec::new();
        for i in 0..6 {
            let line = protocol::build_run_request(i, src, "dbl", "base", &args, false);
            assert!(submit_line(&engine, &line, &tx).is_none());
        }
        for _ in 0..6 {
            let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            let v = Json::parse(&line).unwrap();
            assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"), "{line}");
            digests.push(
                v.get("digests")
                    .and_then(|d| d.get("x"))
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
        assert!(digests.windows(2).all(|w| w[0] == w[1]), "{digests:?}");
        let shared = engine.shared();
        assert_eq!(shared.cache.hits() + shared.cache.misses(), 6);
        assert!(shared.cache.hits() >= 4, "at least n-workers hits");
        assert_eq!(shared.programs_cached(), 1);
        engine.shutdown();
    }
}
