//! `safara-serve` — front the compile-and-simulate engine over TCP or
//! stdin/stdout.
//!
//! ```text
//! safara-serve [--listen ADDR] [--stdin] [--workers N]
//!              [--queue-depth N] [--timeout-ms N]
//!              [--shed-watermark N] [--breaker-threshold N]
//!              [--breaker-cooldown-ms N] [--verify-cache]
//!              [--no-coalesce] [--max-batch N] [--shards N]
//!              [--fault POINT:ACTION[:COUNT][:MS]] [--fault-seed N]
//! ```
//!
//! TCP mode (default) prints the bound address (useful with port 0)
//! and serves until a client sends `{"op":"shutdown"}`. Stdin mode
//! reads one request per line, answers on stdout in *submission*
//! order, and exits at EOF — handy for smoke tests:
//!
//! ```text
//! echo '{"id":1,"op":"ping"}' | safara-serve --stdin
//! ```
//!
//! `--no-coalesce` disables single-flight dedup (every duplicate runs
//! the pipeline — the pre-dedup stampede behavior, kept for A/B
//! benchmarking); `--max-batch` caps how many same-program jobs a
//! worker drains per dequeue (1 disables batched admission).
//!
//! `--shards N` (N ≥ 2) spawns N child `safara-serve` processes, each
//! a full engine owning a private cache partition, bound to its own
//! ephemeral port. The parent prints one `shard I listening on ADDR`
//! line per child plus a final `shards ADDR0 ADDR1 ...` summary, then
//! waits for the children (each exits on its own `{"op":"shutdown"}`).
//! Clients route by consistent hash of the run content key — see
//! `safara_server::protocol::shard_for` and `safara-send`.
//!
//! `--fault` (repeatable) installs a deterministic fault-injection
//! plan — e.g. `--fault sim:fail:1` fails the first simulation with a
//! retryable `sim` error, `--fault worker:panic:0.05` panics ~5% of
//! jobs (seeded by `--fault-seed`, so reruns fault identically). See
//! `safara_chaos::FaultSpec::parse` for the grammar.

use safara_core::chaos::{FaultPlan, FaultSpec};
use safara_server::service::{Engine, EngineConfig, Submit};
use safara_server::protocol::{error_line, parse_request, Op};
use std::io::{BufRead, Write};
use std::sync::mpsc;

fn main() {
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:4860".to_string();
    let mut stdin_mode = false;
    let mut shards: usize = 1;
    let mut config = EngineConfig::default();
    let mut fault_specs: Vec<FaultSpec> = Vec::new();
    let mut fault_seed: u64 = 0;

    let mut argv = raw_args.clone().into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--listen" => listen = argv.next().unwrap_or_else(|| die("--listen needs ADDR")),
            "--stdin" => stdin_mode = true,
            "--workers" => config.workers = num(argv.next(), "--workers").max(1),
            "--queue-depth" => config.queue_depth = num(argv.next(), "--queue-depth").max(1),
            "--timeout-ms" => config.default_timeout_ms = num(argv.next(), "--timeout-ms") as u64,
            "--shed-watermark" => {
                config.shed_watermark = Some(num(argv.next(), "--shed-watermark"))
            }
            "--breaker-threshold" => {
                config.breaker_threshold = num(argv.next(), "--breaker-threshold") as u32
            }
            "--breaker-cooldown-ms" => {
                config.breaker_cooldown_ms = num(argv.next(), "--breaker-cooldown-ms") as u64
            }
            "--verify-cache" => config.verify_cache = true,
            "--no-coalesce" => config.coalesce = false,
            "--max-batch" => config.max_batch = num(argv.next(), "--max-batch").max(1),
            "--shards" => shards = num(argv.next(), "--shards").max(1),
            "--fault" => {
                let spec = argv.next().unwrap_or_else(|| die("--fault needs POINT:ACTION[:COUNT]"));
                fault_specs
                    .push(FaultSpec::parse(&spec).unwrap_or_else(|e| die(&format!("--fault: {e}"))));
            }
            "--fault-seed" => fault_seed = num(argv.next(), "--fault-seed") as u64,
            "--help" | "-h" => {
                println!(
                    "usage: safara-serve [--listen ADDR] [--stdin] [--workers N] \
                     [--queue-depth N] [--timeout-ms N] [--shed-watermark N] \
                     [--breaker-threshold N] [--breaker-cooldown-ms N] [--verify-cache] \
                     [--no-coalesce] [--max-batch N] [--shards N] \
                     [--fault POINT:ACTION[:COUNT][:MS]]... [--fault-seed N]"
                );
                return;
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    if !fault_specs.is_empty() {
        let mut plan = FaultPlan::seeded(fault_seed);
        for spec in fault_specs {
            plan = plan.with_spec(spec);
        }
        config.fault_plan = std::sync::Arc::new(plan);
    }

    if shards > 1 {
        if stdin_mode {
            die("--shards needs TCP mode (drop --stdin)");
        }
        run_shards(shards, &raw_args);
    } else if stdin_mode {
        run_stdin(config);
    } else {
        run_tcp(&listen, config);
    }
}

/// Scale-out mode: spawn `shards` child processes, each a full
/// single-shard `safara-serve` on an ephemeral port with a private
/// cache, and print where they landed. The parent passes its own flags
/// through (minus `--shards`/`--listen`) so every shard runs the same
/// engine policy, then waits for the children to exit (each stops on
/// its own `{"op":"shutdown"}`).
fn run_shards(shards: usize, raw_args: &[String]) {
    let exe = std::env::current_exe().unwrap_or_else(|e| die(&format!("cannot find own binary: {e}")));
    // Strip the flags a shard must not inherit; both take one value.
    let mut passthrough: Vec<String> = Vec::new();
    let mut args = raw_args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" | "--listen" => {
                let _ = args.next();
            }
            other => passthrough.push(other.to_string()),
        }
    }
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..shards {
        let mut child = std::process::Command::new(&exe)
            .args(&passthrough)
            .args(["--listen", "127.0.0.1:0"])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| die(&format!("cannot spawn shard {i}: {e}")));
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .unwrap_or_else(|e| die(&format!("shard {i} produced no address: {e}")));
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| die(&format!("shard {i} printed `{}`", line.trim())))
            .to_string();
        println!("shard {i} listening on {addr}");
        addrs.push(addr);
        children.push(child);
    }
    println!("shards {}", addrs.join(" "));
    // Stdout is block-buffered when piped: flush so a parent process
    // polling for the `shards` line sees it before the children exit.
    let _ = std::io::stdout().flush();
    for (i, mut child) in children.into_iter().enumerate() {
        match child.wait() {
            Ok(status) if !status.success() => eprintln!("safara-serve: shard {i} exited {status}"),
            Err(e) => eprintln!("safara-serve: shard {i} wait failed: {e}"),
            Ok(_) => {}
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("safara-serve: {msg}");
    std::process::exit(2);
}

fn num(v: Option<String>, name: &str) -> usize {
    v.and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{name} needs a positive integer")))
}

fn run_tcp(listen: &str, config: EngineConfig) {
    let handle = safara_server::serve(listen, config)
        .unwrap_or_else(|e| die(&format!("cannot bind {listen}: {e}")));
    println!("listening on {}", handle.addr);
    handle.join();
}

/// Batch mode: submit every line, retrying `overloaded` rejections
/// (stdin has no other backpressure channel), then print responses in
/// submission order.
fn run_stdin(config: EngineConfig) {
    let engine = Engine::start(config);
    let stdin = std::io::stdin();
    let mut pending: Vec<mpsc::Receiver<String>> = Vec::new();
    let mut immediate: Vec<(usize, String)> = Vec::new();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim().to_string();
        if line.is_empty() {
            continue;
        }
        let (tx, rx) = mpsc::channel();
        match parse_request(&line) {
            Err(m) => immediate.push((pending.len(), error_line(None, &m))),
            Ok(req) if matches!(req.op, Op::Stats) => {
                immediate.push((pending.len(), engine.stats_line(req.id)));
            }
            Ok(mut req) => loop {
                match engine.submit(req, tx.clone()) {
                    Submit::Queued => {
                        pending.push(rx);
                        break;
                    }
                    Submit::Rejected { request, response } => {
                        let shutting_down = response.contains("shutting_down");
                        if shutting_down {
                            immediate.push((pending.len(), response));
                            break;
                        }
                        req = *request;
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                }
            },
        }
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut extra = immediate.into_iter().peekable();
    for (i, rx) in pending.into_iter().enumerate() {
        while extra.peek().is_some_and(|(at, _)| *at == i) {
            let (_, line) = extra.next().expect("peeked");
            let _ = writeln!(out, "{line}");
        }
        let line = rx.recv().unwrap_or_else(|_| error_line(None, "worker dropped the request"));
        let _ = writeln!(out, "{line}");
    }
    for (_, line) in extra {
        let _ = writeln!(out, "{line}");
    }
    let _ = out.flush();
    engine.shutdown();
}
