//! The TCP transport: newline-delimited JSON over `std::net`.
//!
//! The accept loop runs nonblocking and polls so it can notice shutdown
//! (a `shutdown` request, or [`ServerHandle::stop`]) promptly. Each
//! connection gets a reader thread (parses lines, submits to the
//! engine) and a writer thread (drains the connection's reply channel);
//! responses stream back as workers finish, so a pipelined client may
//! see them out of submission order and must match on `id`.

use crate::protocol::{error_line_v, parse_request, request_meta, WireError};
use crate::service::{Engine, EngineConfig, Submit};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Control handle for a running server.
pub struct ServerHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: JoinHandle<()>,
}

impl ServerHandle {
    /// Ask the accept loop to wind down and wait for a clean exit:
    /// connections close, the engine drains admitted jobs, workers join.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.accept.join();
    }

    /// Block until the server exits on its own (a `shutdown` request).
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`), start the engine, and serve.
pub fn serve(addr: &str, config: EngineConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let accept = std::thread::Builder::new()
        .name("safara-accept".into())
        .spawn(move || accept_loop(listener, config, &stop_flag))
        .expect("spawn accept loop");
    Ok(ServerHandle { addr, stop, accept })
}

fn accept_loop(listener: TcpListener, config: EngineConfig, stop: &AtomicBool) {
    let engine = Arc::new(Engine::start(config));
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst)
            || engine.shared().shutdown_requested.load(Ordering::SeqCst)
        {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = Arc::clone(&engine);
                let h = std::thread::Builder::new()
                    .name("safara-conn".into())
                    .spawn(move || handle_connection(stream, &engine))
                    .expect("spawn connection handler");
                connections.push(h);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        connections.retain(|h| !h.is_finished());
    }
    // Drain. Readers poll the flag (100 ms read timeout) and exit; the
    // still-running workers finish each connection's in-flight jobs, so
    // joining a connection waits for its responses to be written. Only
    // then is the engine Arc unique and the pool can be joined.
    engine.shared().shutdown_requested.store(true, Ordering::SeqCst);
    for h in connections {
        let _ = h.join();
    }
    if let Ok(engine) = Arc::try_unwrap(engine) {
        engine.shutdown();
    }
}

fn handle_connection(stream: TcpStream, engine: &Engine) {
    // Short read timeout: the reader must notice shutdown even when the
    // client keeps the connection open but idle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<String>();
    let shared = Arc::clone(engine.shared());
    let writer = std::thread::Builder::new()
        .name("safara-conn-writer".into())
        .spawn(move || writer_loop(write_half, &rx, &shared))
        .expect("spawn connection writer");

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if engine.shared().shutdown_requested.load(Ordering::SeqCst) {
            break;
        }
        // `read_line` appends, so a line split across read-timeout
        // ticks accumulates in `line` until its `\n` arrives (a
        // timeout surfaces as `WouldBlock` below with the partial
        // bytes retained). `Ok` with no trailing `\n` means EOF cut
        // the final line short — still process it, then exit on the
        // `Ok(0)` that follows.
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    dispatch(engine, trimmed, &tx);
                }
                line.clear();
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                // Idle poll tick; loop to re-check the shutdown flag.
                continue;
            }
            Err(_) => break,
        }
    }
    drop(tx); // writer exits once workers drop their senders too
    let _ = writer.join();
}

/// Parse one line and submit it; failures answer immediately on `tx`.
pub fn dispatch(engine: &Engine, line: &str, tx: &mpsc::Sender<String>) {
    match parse_request(line) {
        Ok(req) => {
            // Answer `stats` inline: it must reflect queue state even
            // (especially) when the queue is full.
            if matches!(req.op, crate::protocol::Op::Stats) {
                let _ = tx.send(engine.stats_line(req.id));
                return;
            }
            if let Submit::Rejected { response, .. } = engine.submit(req, tx.clone()) {
                let _ = tx.send(response);
            }
        }
        Err(m) => {
            // Best-effort id/version so even a bad_request reply routes.
            let (id, v) = request_meta(line);
            let _ = tx.send(error_line_v(v, id, &WireError::bad_request(&m)));
        }
    }
}

fn writer_loop(
    mut stream: TcpStream,
    rx: &mpsc::Receiver<String>,
    shared: &crate::service::EngineShared,
) {
    while let Ok(line) = rx.recv() {
        let start = std::time::Instant::now();
        if stream.write_all(line.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
            return;
        }
        let _ = stream.flush();
        shared.metrics.reply_write.record(start.elapsed().as_micros() as u64);
    }
}
