//! A bounded multi-producer multi-consumer job queue.
//!
//! This is the admission-control point of the service: producers
//! (connection readers) use [`Bounded::try_push`], which *never blocks*
//! — when the queue is at capacity the job is handed straight back so
//! the caller can answer `overloaded` instead of stacking unbounded
//! work behind a slow simulator. Consumers (workers) block in
//! [`Bounded::pop`] until a job or shutdown arrives; after
//! [`Bounded::close`] they drain whatever was already admitted, so an
//! accepted request is never silently dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_push`] handed the value back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Queue at capacity — admission control says shed this request.
    Full(T),
    /// Queue closed — the service is shutting down.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. Share it via `Arc`.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `cap` (≥ 1) undequeued jobs.
    pub fn new(cap: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admit a job without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Take the oldest job, blocking while the queue is open and empty.
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Take the oldest job plus up to `max - 1` more for which
    /// `same(&oldest, &candidate)` holds — scanning the whole queue,
    /// not just the front, so one interleaved stranger does not break a
    /// batch. Non-matching jobs keep their relative order for the next
    /// consumer. Blocks like [`Bounded::pop`]; `None` once the queue is
    /// closed *and* drained.
    pub fn pop_batch(&self, max: usize, same: impl Fn(&T, &T) -> bool) -> Option<Vec<T>> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(first) = g.items.pop_front() {
                let mut batch = vec![first];
                let mut i = 0;
                while i < g.items.len() && batch.len() < max {
                    if same(&batch[0], &g.items[i]) {
                        let item = g.items.remove(i).expect("index checked in bounds");
                        batch.push(item);
                    } else {
                        i += 1;
                    }
                }
                return Some(batch);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Close the queue: reject new pushes, wake all consumers. Jobs
    /// already admitted remain poppable.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.closed = true;
        drop(g);
        self.ready.notify_all();
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).items.len()
    }

    /// True when no jobs wait.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_is_enforced_without_blocking() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_pushes_but_drains_admitted_jobs() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn pop_batch_gathers_matching_jobs_from_anywhere_in_the_queue() {
        // Keyed items: (key, seq). Strangers interleave the batch.
        let q = Bounded::new(16);
        for item in [("a", 0), ("b", 1), ("a", 2), ("c", 3), ("a", 4)] {
            q.try_push(item).unwrap();
        }
        let batch = q.pop_batch(8, |x, y| x.0 == y.0).unwrap();
        assert_eq!(batch, vec![("a", 0), ("a", 2), ("a", 4)]);
        // Strangers keep their relative order.
        assert_eq!(q.pop_batch(8, |x, y| x.0 == y.0).unwrap(), vec![("b", 1)]);
        assert_eq!(q.pop_batch(8, |x, y| x.0 == y.0).unwrap(), vec![("c", 3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_respects_max_and_close_semantics() {
        let q = Bounded::new(16);
        for i in 0..5 {
            q.try_push(("k", i)).unwrap();
        }
        let batch = q.pop_batch(3, |x: &(&str, i32), y| x.0 == y.0).unwrap();
        assert_eq!(batch.len(), 3);
        q.close();
        assert_eq!(q.pop_batch(3, |x, y| x.0 == y.0).unwrap().len(), 2, "drains after close");
        assert_eq!(q.pop_batch(3, |x, y| x.0 == y.0), None);
        // max = 1 degenerates to pop().
        let q1 = Bounded::new(4);
        q1.try_push(1).unwrap();
        q1.try_push(1).unwrap();
        assert_eq!(q1.pop_batch(1, |_, _| true).unwrap(), vec![1]);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(Bounded::new(8));
        let produced = 4 * 100;
        let consumed = std::thread::scope(|s| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut got = 0usize;
                        while q.pop().is_some() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            let producers: Vec<_> = (0..4)
                .map(|t| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut sent = 0usize;
                        for i in 0..100 {
                            let mut item = t * 1000 + i;
                            // Spin on Full — a real producer would shed
                            // load; here we want exact conservation.
                            loop {
                                match q.try_push(item) {
                                    Ok(()) => break,
                                    Err(PushError::Full(v)) => {
                                        item = v;
                                        std::thread::yield_now();
                                    }
                                    Err(PushError::Closed(_)) => panic!("closed early"),
                                }
                            }
                            sent += 1;
                        }
                        sent
                    })
                })
                .collect();
            let sent: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(sent, produced);
            q.close();
            consumers.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
        });
        assert_eq!(consumed, produced);
    }
}
