//! A minimal JSON layer for the wire protocol.
//!
//! The build is offline (no serde), so this module hand-rolls exactly
//! what newline-delimited JSON needs: a recursive-descent parser with a
//! depth bound and full string-escape handling, and a writer whose
//! float formatting uses Rust's shortest-roundtrip `Display` (so a
//! value survives serialize → parse unchanged). Integers and floats are
//! distinct variants — the protocol cares whether `3` or `3.0` arrived.
//! Objects preserve insertion order, which keeps responses byte-stable.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number with no fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

/// A parse error with a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: u32 = 128;

impl Json {
    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { b: input.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer value, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean value, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object fields, if an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize to a compact single-line string.
    pub fn dump(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_i64(*v, &mut buf));
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // `Display` for floats is shortest-roundtrip; force a
                    // fraction marker so the value re-parses as Float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

fn fmt_i64(v: i64, buf: &mut [u8; 20]) -> &str {
    use std::io::Write as _;
    let mut cur = std::io::Cursor::new(&mut buf[..]);
    write!(cur, "{v}").expect("20 bytes fit any i64");
    let n = cur.position() as usize;
    std::str::from_utf8(&buf[..n]).expect("ascii")
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, m: impl Into<String>) -> JsonError {
        JsonError { at: self.i, message: m.into() }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Json::Obj(fields));
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.i;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.raw_str(run_start, self.i)?);
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.raw_str(run_start, self.i)?);
                    self.i += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.eat(b'\\') && self.eat(b'u') {
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                    } else {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        c => return Err(self.err(format!("bad escape `\\{}`", c as char))),
                    }
                    run_start = self.i;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn raw_str(&self, from: usize, to: usize) -> Result<&'a str, JsonError> {
        std::str::from_utf8(&self.b[from..to])
            .map_err(|_| JsonError { at: from, message: "invalid utf-8 in string".into() })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        let _ = self.eat(b'-');
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.i += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = self.raw_str(start, self.i)?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError { at: start, message: format!("bad number `{text}`") })
    }
}

/// Convenience constructor: an object from key/value pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for s in ["null", "true", "false", "0", "-42", "3.25", "1e3"] {
            let v = Json::parse(s).unwrap();
            assert_eq!(Json::parse(&v.dump()).unwrap(), v, "{s}");
        }
        assert_eq!(Json::parse("3").unwrap(), Json::Int(3));
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(Json::parse("9223372036854775807").unwrap(), Json::Int(i64::MAX));
        // Out-of-range integers fall back to float rather than failing.
        assert!(matches!(Json::parse("18446744073709551615").unwrap(), Json::Float(_)));
    }

    #[test]
    fn floats_survive_roundtrip_exactly() {
        for v in [0.1f64, -1.0e-300, std::f64::consts::PI, 1.5e300, -0.0] {
            let dumped = Json::Float(v).dump();
            match Json::parse(&dumped).unwrap() {
                Json::Float(w) => assert_eq!(v.to_bits(), w.to_bits(), "{dumped}"),
                other => panic!("expected float from {dumped}, got {other:?}"),
            }
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{8}\u{c}\r — ünïcode 😀";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.dump()).unwrap(), v);
        // Escapes parse from foreign producers too.
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud83d\ude00\/""#).unwrap(),
            Json::Str("Aé😀/".into())
        );
    }

    #[test]
    fn nested_structures_roundtrip_and_lookup() {
        let src = r#"{"op":"run","n":3,"xs":[1,2.5,null],"inner":{"ok":true},"op":"last-wins"}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("last-wins"));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("inner").and_then(|i| i.get("ok")).and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("xs").and_then(Json::as_arr).map(|a| a.len()), Some(3));
        assert_eq!(Json::parse(&v.dump()).unwrap(), v);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "\"unterminated", "01x", "{\"a\":1}trailing",
            "\"\\q\"", "\"\\ud800\"", "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
        // Depth bound holds instead of blowing the stack.
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn source_with_pragma_newlines_roundtrips() {
        let src = "void f(int n) {\n  #pragma acc kernels\n  { }\n}";
        let line = obj(vec![("source", Json::Str(src.into()))]).dump();
        assert!(!line.contains('\n'), "newline-delimited transport needs single lines");
        let back = Json::parse(&line).unwrap();
        assert_eq!(back.get("source").and_then(Json::as_str), Some(src));
    }
}
