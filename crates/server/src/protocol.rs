//! The request/response wire protocol.
//!
//! One request or response per line, each a JSON object. Requests:
//!
//! ```json
//! {"id":1,"op":"ping"}
//! {"id":2,"op":"stats"}
//! {"id":3,"op":"compile","source":"…","profile":"safara_only"}
//! {"id":4,"op":"run","source":"…","entry":"axpy","profile":"base",
//!  "scalars":{"n":8,"alpha":2.0},
//!  "arrays":{"x":{"elem":"f32","data":[1,2,3]},
//!            "y":{"elem":"f32","bits":[1065353216]}},
//!  "return_arrays":true,"timeout_ms":5000}
//! {"id":5,"op":"shutdown"}
//! ```
//!
//! Array payloads carry either `data` (plain JSON numbers — convenient
//! by hand) or `bits` (raw IEEE-754 bit patterns — lossless; `f64` bits
//! are hex strings like `"0x3fb999999999999a"` since they overflow JSON
//! integers). `compile` and `run` requests may add `"trace": true` to
//! receive a `trace` span tree (see [`spans_to_json`]) covering every
//! pipeline phase. Responses echo `id` and carry `"status"`: `ok`, `error`,
//! `overloaded` (admission control rejected the request), `timeout`
//! (the request expired waiting in the queue, or its pipeline finished
//! past the deadline — the stale result is discarded), or
//! `shutting_down`. Run responses always include per-array content
//! digests; full array contents (bits encoding) are returned when the
//! request set `"return_arrays": true`.

//!
//! ## Protocol versions
//!
//! Requests may carry `"v": 2` to opt into protocol v2. The only
//! difference is the failure shape: a v1 failure is a bare status (plus
//! a `message` string when `status` is `error`), while every v2 failure
//! carries a structured [`WireError`] object —
//!
//! ```json
//! {"id":4,"v":2,"status":"error",
//!  "error":{"code":"sim","message":"sim: injected simulator fault",
//!           "phase":"sim","retryable":true}}
//! ```
//!
//! `code` is stable and machine-matchable (see [`WireError`]);
//! `retryable` tells a client whether resending the identical request
//! can succeed. Requests without `"v"` (or with `"v": 1`) get the
//! legacy shapes unchanged.

use crate::json::{obj, Json};
use safara_core::obs::{MetaValue, Span};
use safara_core::{Args, CompileError, CompilerConfig, RunOutcome};
use safara_core::runtime::HostArray;
use safara_core::ir::ScalarTy;

/// Default per-request timeout when the request does not set one.
pub const DEFAULT_TIMEOUT_MS: u64 = 30_000;

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed on the response (responses may arrive
    /// out of submission order on a pipelined connection).
    pub id: Option<i64>,
    /// Per-request deadline override (milliseconds from admission).
    pub timeout_ms: Option<u64>,
    /// Opt-in pipeline tracing (`"trace": true`): the response carries a
    /// `trace` span tree covering every pipeline phase. Traced compiles
    /// bypass the compiled-program store so the compile phases are
    /// always measured, not skipped.
    pub trace: bool,
    /// Protocol version (`"v"` field; 1 when absent). Version 2 renders
    /// failures as structured [`WireError`] objects.
    pub v: u8,
    /// The operation.
    pub op: Op,
}

/// Request operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Liveness check.
    Ping,
    /// Server counters + cache statistics.
    Stats,
    /// Diagnostic: hold a worker for `ms` milliseconds (testing
    /// admission control and timeouts).
    Sleep {
        /// How long to hold the worker (clamped server-side).
        ms: u64,
    },
    /// Compile only; reports register counts per kernel.
    Compile(CompileRequest),
    /// The full compile-and-simulate pipeline.
    Run(RunRequest),
    /// Ask the server to drain and exit.
    Shutdown,
}

/// `op: "compile"` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileRequest {
    /// MiniACC source.
    pub source: String,
    /// Profile key (see [`CompilerConfig::by_name`]).
    pub profile: String,
    /// Restrict the report to one function (default: all).
    pub entry: Option<String>,
}

/// `op: "run"` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// MiniACC source.
    pub source: String,
    /// Function to execute.
    pub entry: String,
    /// Profile key (see [`CompilerConfig::by_name`]).
    pub profile: String,
    /// Marshaled scalar and array arguments.
    pub args: Args,
    /// Return full post-run array contents (bits encoding), not just
    /// digests.
    pub return_arrays: bool,
    /// Per-request simulator engine override (`"engine"` field:
    /// `reference`, `decoded`, or `superblock`). `None` keeps the
    /// server's default engine. Unknown names fail with the typed
    /// `invalid_engine` error.
    pub engine: Option<String>,
    /// Per-request simulator thread-count override (`"sim_threads"`
    /// field: a positive integer, or the string `"auto"` for one worker
    /// per available core). `None` keeps the server's default. Values
    /// that are neither fail with the typed `invalid_sim_threads`
    /// error. Kept as the raw token so validation happens in the
    /// service layer, mirroring `engine`.
    pub sim_threads: Option<String>,
    /// Per-request superblock-promotion threshold override
    /// (`"sb_threshold"` field: a positive integer, or the string
    /// `"inf"` to disable promotion). `None` keeps the server's
    /// default. Anything else fails with the typed
    /// `invalid_sb_threshold` error. Raw token, validated in the
    /// service layer like the other two knobs.
    pub sb_threshold: Option<String>,
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    let id = v.get("id").and_then(Json::as_i64);
    let timeout_ms = match v.get("timeout_ms") {
        None | Some(Json::Null) => None,
        Some(t) => Some(
            t.as_i64()
                .filter(|ms| *ms >= 0)
                .ok_or("`timeout_ms` must be a non-negative integer")? as u64,
        ),
    };
    let op_key = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field `op`")?;
    let op = match op_key {
        "ping" => Op::Ping,
        "stats" => Op::Stats,
        "sleep" => Op::Sleep {
            ms: v.get("ms").and_then(Json::as_i64).unwrap_or(0).max(0) as u64,
        },
        "compile" => Op::Compile(CompileRequest {
            source: required_str(&v, "source")?,
            profile: required_str(&v, "profile")?,
            entry: v.get("entry").and_then(Json::as_str).map(str::to_string),
        }),
        "run" => Op::Run(RunRequest {
            source: required_str(&v, "source")?,
            entry: required_str(&v, "entry")?,
            profile: required_str(&v, "profile")?,
            args: parse_args(&v)?,
            return_arrays: v.get("return_arrays").and_then(Json::as_bool).unwrap_or(false),
            engine: match v.get("engine") {
                None | Some(Json::Null) => None,
                Some(t) => {
                    Some(t.as_str().ok_or("`engine` must be a string")?.to_string())
                }
            },
            sim_threads: match v.get("sim_threads") {
                None | Some(Json::Null) => None,
                Some(t) => {
                    // Keep the raw token; the service layer rejects
                    // anything that is not a positive integer or "auto"
                    // with the typed `invalid_sim_threads` error.
                    if let Some(n) = t.as_i64() {
                        Some(n.to_string())
                    } else if let Some(s) = t.as_str() {
                        Some(s.to_string())
                    } else {
                        return Err("`sim_threads` must be an integer or string".into());
                    }
                }
            },
            sb_threshold: match v.get("sb_threshold") {
                None | Some(Json::Null) => None,
                Some(t) => {
                    // Raw token; the service layer rejects anything that
                    // is not a positive integer or "inf" with the typed
                    // `invalid_sb_threshold` error.
                    if let Some(n) = t.as_i64() {
                        Some(n.to_string())
                    } else if let Some(s) = t.as_str() {
                        Some(s.to_string())
                    } else {
                        return Err("`sb_threshold` must be an integer or string".into());
                    }
                }
            },
        }),
        "shutdown" => Op::Shutdown,
        other => return Err(format!("unknown op `{other}`")),
    };
    let trace = match v.get("trace") {
        None | Some(Json::Null) => false,
        Some(t) => t.as_bool().ok_or("`trace` must be a boolean")?,
    };
    let version = match v.get("v") {
        None | Some(Json::Null) => 1,
        Some(t) => t
            .as_i64()
            .filter(|n| (1..=2).contains(n))
            .ok_or("`v` must be 1 or 2")? as u8,
    };
    Ok(Request { id, timeout_ms, trace, v: version, op })
}

/// Best-effort `(id, v)` extraction from a possibly malformed request
/// line, so even a `bad_request` reply can echo the id and speak the
/// client's protocol version. Unparseable input defaults to `(None, 1)`.
pub fn request_meta(line: &str) -> (Option<i64>, u8) {
    match Json::parse(line) {
        Ok(v) => {
            let id = v.get("id").and_then(Json::as_i64);
            let version = match v.get("v").and_then(Json::as_i64) {
                Some(2) => 2,
                _ => 1,
            };
            (id, version)
        }
        Err(_) => (None, 1),
    }
}

fn required_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn parse_args(v: &Json) -> Result<Args, String> {
    let mut args = Args::new();
    if let Some(scalars) = v.get("scalars") {
        let fields = scalars.as_obj().ok_or("`scalars` must be an object")?;
        for (name, val) in fields {
            args = match val {
                Json::Int(i) => args.i64(name, *i),
                Json::Float(f) => args.f64(name, *f),
                _ => return Err(format!("scalar `{name}` must be a number")),
            };
        }
    }
    if let Some(arrays) = v.get("arrays") {
        let fields = arrays.as_obj().ok_or("`arrays` must be an object")?;
        for (name, payload) in fields {
            let arr = parse_array(payload).map_err(|m| format!("array `{name}`: {m}"))?;
            args.arrays.insert(safara_core::ir::Ident::new(name), arr);
        }
    }
    Ok(args)
}

fn parse_array(payload: &Json) -> Result<HostArray, String> {
    let elem = payload
        .get("elem")
        .and_then(Json::as_str)
        .ok_or("missing `elem` (one of f32, f64, i32)")?;
    let data = payload.get("data").and_then(Json::as_arr);
    let bits = payload.get("bits").and_then(Json::as_arr);
    match (elem, data, bits) {
        ("f32", Some(d), None) => {
            let vals = numeric(d)?;
            Ok(HostArray::from_f32(&vals.iter().map(|v| *v as f32).collect::<Vec<_>>()))
        }
        ("f64", Some(d), None) => Ok(HostArray::from_f64(&numeric(d)?)),
        ("i32", Some(d), None) => {
            let vals: Result<Vec<i32>, String> = d
                .iter()
                .map(|v| v.as_i64().map(|i| i as i32).ok_or("non-integer element".to_string()))
                .collect();
            Ok(HostArray::from_i32(&vals?))
        }
        ("f32", None, Some(b)) => {
            let raw: Result<Vec<u32>, String> =
                b.iter().map(|v| bits_u64(v).map(|x| x as u32)).collect();
            Ok(HostArray::from_f32_bits(&raw?))
        }
        ("f64", None, Some(b)) => {
            let raw: Result<Vec<u64>, String> = b.iter().map(bits_u64).collect();
            Ok(HostArray::from_f64_bits(&raw?))
        }
        ("i32", None, Some(b)) => {
            // i32 "bits" are just the values; negatives are legal.
            let raw: Result<Vec<i32>, String> = b
                .iter()
                .map(|v| {
                    v.as_i64()
                        .filter(|x| i32::try_from(*x).is_ok())
                        .map(|x| x as i32)
                        .ok_or_else(|| "i32 out of range".to_string())
                })
                .collect();
            Ok(HostArray::from_i32(&raw?))
        }
        ("f32" | "f64" | "i32", None, None) => Err("missing `data` or `bits`".into()),
        ("f32" | "f64" | "i32", Some(_), Some(_)) => Err("give `data` or `bits`, not both".into()),
        (other, _, _) => Err(format!("unknown element type `{other}`")),
    }
}

fn numeric(items: &[Json]) -> Result<Vec<f64>, String> {
    items
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| "non-numeric element".to_string()))
        .collect()
}

/// A bit pattern: a JSON integer, or a `"0x…"` hex string for values
/// that overflow `i64` (any `f64` with the sign bit set).
fn bits_u64(v: &Json) -> Result<u64, String> {
    match v {
        Json::Int(i) if *i >= 0 => Ok(*i as u64),
        Json::Str(s) => {
            let hex = s.strip_prefix("0x").ok_or("bit strings must start with 0x")?;
            u64::from_str_radix(hex, 16).map_err(|e| format!("bad bit string `{s}`: {e}"))
        }
        _ => Err("bits must be non-negative integers or 0x-hex strings".into()),
    }
}

/// Serialize a [`HostArray`] as a lossless `bits` payload.
pub fn array_to_json(arr: &HostArray) -> Json {
    let (elem, bits) = match arr.elem {
        ScalarTy::F32 => (
            "f32",
            Json::Arr(arr.as_f32_bits().iter().map(|b| Json::Int(*b as i64)).collect()),
        ),
        ScalarTy::F64 => (
            "f64",
            Json::Arr(
                arr.as_f64_bits().iter().map(|b| Json::Str(format!("0x{b:016x}"))).collect(),
            ),
        ),
        ScalarTy::I32 | ScalarTy::I64 => (
            "i32",
            Json::Arr(arr.as_i32().iter().map(|v| Json::Int(*v as i64)).collect()),
        ),
    };
    obj(vec![("elem", Json::Str(elem.into())), ("bits", bits)])
}

/// Incremental FNV-1a, shared by [`digest`] and [`run_key`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    /// A length-delimited field: the bytes, then a separator that no
    /// UTF-8 string contains, so `("ab","c")` never collides with
    /// `("a","bc")`.
    fn field(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
        self.byte(0xff);
    }

    fn word(&mut self, v: u64) {
        self.field(&v.to_le_bytes());
    }
}

/// Content hash of a run request — the single-flight dedup key and the
/// shard-routing key. Two requests share a key iff they ask for
/// identical work: source, entry, profile, engine override, and every
/// argument (scalar bit patterns and raw array bytes, in `Args`' stable
/// `BTreeMap` order) all match.
///
/// Deliberately excluded, mirroring the launch-memo key rule:
/// `sim_threads` and `sb_threshold` (simulation results are independent
/// of worker count and superblock promotion, so keying on them would
/// split identical work), `return_arrays` (response shaping, not work),
/// and the envelope fields `id`, `v`, `trace`, `timeout_ms`.
pub fn run_key(r: &RunRequest) -> u64 {
    run_key_parts(&r.source, &r.entry, &r.profile, r.engine.as_deref(), &r.args)
}

/// [`run_key`] from loose parts — for callers (routing clients) that
/// have not built a [`RunRequest`].
pub fn run_key_parts(
    source: &str,
    entry: &str,
    profile: &str,
    engine: Option<&str>,
    args: &Args,
) -> u64 {
    let mut h = Fnv::new();
    h.field(source.as_bytes());
    h.field(entry.as_bytes());
    h.field(profile.as_bytes());
    h.field(engine.unwrap_or("").as_bytes());
    for (name, value) in &args.scalars {
        h.field(name.as_str().as_bytes());
        let (tag, bits) = match value {
            safara_core::runtime::ArgValue::I32(i) => (1u8, *i as i64 as u64),
            safara_core::runtime::ArgValue::I64(i) => (2, *i as u64),
            safara_core::runtime::ArgValue::F32(f) => (3, f.to_bits() as u64),
            safara_core::runtime::ArgValue::F64(f) => (4, f.to_bits()),
        };
        h.byte(tag);
        h.word(bits);
    }
    for (name, arr) in &args.arrays {
        h.field(name.as_str().as_bytes());
        h.byte(arr.elem as u8);
        h.field(&arr.bytes);
    }
    h.0
}

/// Jump consistent hash (Lamport & Lamping): map `key` to a shard in
/// `0..shards`. Keys spread evenly, and growing the shard count moves
/// only ~`1/shards` of the keys — so a redeployed fleet keeps most of
/// its cache partitions warm.
pub fn shard_for(key: u64, shards: u32) -> u32 {
    let shards = shards.max(1) as i64;
    let mut k = key;
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < shards {
        b = j;
        k = k.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = ((b + 1) as f64 * ((1u64 << 31) as f64 / ((k >> 33) + 1) as f64)) as i64;
    }
    b as u32
}

/// Content digest of an array: FNV-1a over the element tag and raw
/// bytes, printed as 16 hex digits. Two arrays digest equal iff their
/// bytes (and element type) are identical.
pub fn digest(arr: &HostArray) -> String {
    let mut h = Fnv::new();
    h.byte(arr.elem as u8);
    for &b in &arr.bytes {
        h.byte(b);
    }
    format!("{:016x}", h.0)
}

/// Build a run request line — the client-side counterpart of
/// [`parse_request`], used by `server_bench` and the integration tests.
/// Arrays are encoded losslessly (`bits`).
pub fn build_run_request(
    id: i64,
    source: &str,
    entry: &str,
    profile: &str,
    args: &Args,
    return_arrays: bool,
) -> String {
    build_run_request_v(1, id, source, entry, profile, args, return_arrays)
}

/// [`build_run_request`] with an explicit protocol version: `v: 2`
/// requests structured [`WireError`] failures. Version 1 omits the `v`
/// field, keeping v1 request lines byte-identical to the legacy builder.
pub fn build_run_request_v(
    v: u8,
    id: i64,
    source: &str,
    entry: &str,
    profile: &str,
    args: &Args,
    return_arrays: bool,
) -> String {
    build_run_request_with_engine(v, id, source, entry, profile, None, args, return_arrays)
}

/// [`build_run_request_v`] with an optional per-request simulator engine
/// override. `engine: None` omits the field, keeping the line
/// byte-identical to the engine-less builders.
#[allow(clippy::too_many_arguments)]
pub fn build_run_request_with_engine(
    v: u8,
    id: i64,
    source: &str,
    entry: &str,
    profile: &str,
    engine: Option<&str>,
    args: &Args,
    return_arrays: bool,
) -> String {
    build_run_request_with_sim_threads(
        v,
        id,
        source,
        entry,
        profile,
        engine,
        None,
        args,
        return_arrays,
    )
}

/// [`build_run_request_with_engine`] with an optional per-request
/// `sim_threads` override (a positive integer rendered as a string, or
/// `"auto"`). `sim_threads: None` omits the field, keeping the line
/// byte-identical to the other builders.
#[allow(clippy::too_many_arguments)]
pub fn build_run_request_with_sim_threads(
    v: u8,
    id: i64,
    source: &str,
    entry: &str,
    profile: &str,
    engine: Option<&str>,
    sim_threads: Option<&str>,
    args: &Args,
    return_arrays: bool,
) -> String {
    build_run_request_with_exec_options(
        v,
        id,
        source,
        entry,
        profile,
        engine,
        sim_threads,
        None,
        args,
        return_arrays,
    )
}

/// [`build_run_request_with_sim_threads`] with an optional per-request
/// `sb_threshold` override (a positive integer rendered as a string, or
/// `"inf"`). All three execution knobs omit their field when `None`,
/// keeping the line byte-identical to the narrower builders.
#[allow(clippy::too_many_arguments)]
pub fn build_run_request_with_exec_options(
    v: u8,
    id: i64,
    source: &str,
    entry: &str,
    profile: &str,
    engine: Option<&str>,
    sim_threads: Option<&str>,
    sb_threshold: Option<&str>,
    args: &Args,
    return_arrays: bool,
) -> String {
    let scalars = Json::Obj(
        args.scalars
            .iter()
            .map(|(k, v)| {
                let jv = match v {
                    safara_core::runtime::ArgValue::I32(i) => Json::Int(*i as i64),
                    safara_core::runtime::ArgValue::I64(i) => Json::Int(*i),
                    safara_core::runtime::ArgValue::F32(f) => Json::Float(*f as f64),
                    safara_core::runtime::ArgValue::F64(f) => Json::Float(*f),
                };
                (k.to_string(), jv)
            })
            .collect(),
    );
    let arrays =
        Json::Obj(args.arrays.iter().map(|(k, a)| (k.to_string(), array_to_json(a))).collect());
    let mut fields = vec![("id", Json::Int(id))];
    if v >= 2 {
        fields.push(("v", Json::Int(v as i64)));
    }
    fields.extend([
        ("op", Json::Str("run".into())),
        ("source", Json::Str(source.into())),
        ("entry", Json::Str(entry.into())),
        ("profile", Json::Str(profile.into())),
        ("scalars", scalars),
        ("arrays", arrays),
        ("return_arrays", Json::Bool(return_arrays)),
    ]);
    if let Some(e) = engine {
        fields.push(("engine", Json::Str(e.into())));
    }
    if let Some(t) = sim_threads {
        fields.push(("sim_threads", Json::Str(t.into())));
    }
    if let Some(t) = sb_threshold {
        fields.push(("sb_threshold", Json::Str(t.into())));
    }
    obj(fields).dump()
}

/// A minimal status response line.
pub fn status_line(id: Option<i64>, status: &str) -> String {
    response_base(id, status).dump()
}

/// An error response line (v1 legacy shape: `message` string).
pub fn error_line(id: Option<i64>, message: &str) -> String {
    let mut base = response_base(id, "error");
    if let Json::Obj(fields) = &mut base {
        fields.push(("message".into(), Json::Str(message.into())));
    }
    base.dump()
}

/// A structured failure, as carried on the v2 wire.
///
/// `code` is the stable machine-matchable taxonomy — the pipeline codes
/// from [`CompileError::code`] (`parse`, `sema`, `analysis`,
/// `regalloc_spill`, `budget`, `sim`, `internal`) plus the server-level
/// codes `bad_request`, `unknown_profile`, `shed`, `breaker_open`,
/// `timeout`, and `shutting_down`. `retryable` is the client contract:
/// resending the identical request can succeed iff it is true.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Pipeline phase provenance, when the failure came from the
    /// pipeline.
    pub phase: Option<&'static str>,
    /// Whether resending the identical request can succeed.
    pub retryable: bool,
}

impl WireError {
    /// A pipeline failure, carrying the typed error's code, phase, and
    /// retryability.
    pub fn from_compile(e: &CompileError) -> WireError {
        WireError {
            code: e.code(),
            message: e.to_string(),
            phase: Some(e.phase().name()),
            retryable: e.retryable(),
        }
    }

    /// A malformed request (unparseable line, missing/ill-typed field).
    pub fn bad_request(message: &str) -> WireError {
        WireError { code: "bad_request", message: message.into(), phase: None, retryable: false }
    }

    /// An unknown compiler-profile key.
    pub fn unknown_profile(message: String) -> WireError {
        WireError { code: "unknown_profile", message, phase: None, retryable: false }
    }

    /// An unknown simulator-engine name in a run request.
    pub fn invalid_engine(name: &str) -> WireError {
        WireError {
            code: "invalid_engine",
            message: format!(
                "unknown engine `{name}` (expected one of: reference, decoded, superblock)"
            ),
            phase: None,
            retryable: false,
        }
    }

    /// A `sim_threads` value that is neither a positive integer nor
    /// `"auto"` in a run request.
    pub fn invalid_sim_threads(value: &str) -> WireError {
        WireError {
            code: "invalid_sim_threads",
            message: format!(
                "invalid sim_threads `{value}` (expected a positive integer or \"auto\")"
            ),
            phase: None,
            retryable: false,
        }
    }

    /// An `sb_threshold` value that is neither a positive integer nor
    /// `"inf"` in a run request.
    pub fn invalid_sb_threshold(value: &str) -> WireError {
        WireError {
            code: "invalid_sb_threshold",
            message: format!(
                "invalid sb_threshold `{value}` (expected a positive integer or \"inf\")"
            ),
            phase: None,
            retryable: false,
        }
    }

    /// An unexpected server-side failure (worker panic, poisoned state).
    pub fn internal(message: &str) -> WireError {
        WireError { code: "internal", message: message.into(), phase: None, retryable: true }
    }

    /// Admission control shed the request before queueing it.
    pub fn shed(message: &str) -> WireError {
        WireError { code: "shed", message: message.into(), phase: None, retryable: true }
    }

    /// The per-profile circuit breaker is open.
    pub fn breaker_open(profile: &str) -> WireError {
        WireError {
            code: "breaker_open",
            message: format!(
                "circuit breaker open for profile `{profile}` after consecutive pipeline \
                 failures; retry after the cooldown"
            ),
            phase: None,
            retryable: true,
        }
    }

    /// The request expired (in the queue or mid-pipeline).
    pub fn timeout() -> WireError {
        WireError {
            code: "timeout",
            message: "deadline exceeded".into(),
            phase: None,
            retryable: true,
        }
    }

    /// The server is draining and admits no new work.
    pub fn shutting_down() -> WireError {
        WireError {
            code: "shutting_down",
            message: "server is shutting down".into(),
            phase: None,
            retryable: false,
        }
    }

    /// The v2 wire object: `{"code":…,"message":…,"phase":…,"retryable":…}`
    /// (`phase` omitted when unknown).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("code", Json::Str(self.code.into())),
            ("message", Json::Str(self.message.clone())),
        ];
        if let Some(p) = self.phase {
            fields.push(("phase", Json::Str(p.into())));
        }
        fields.push(("retryable", Json::Bool(self.retryable)));
        obj(fields)
    }
}

/// Render a failure in the client's protocol version.
///
/// v1 keeps the legacy shapes byte-compatible: `status: "error"` plus a
/// `message` string, or a bare status line for `timeout` / `overloaded`
/// / `shutting_down`. v2 always attaches the structured `error` object
/// (and a `"v": 2` marker) alongside the same `status` value.
pub fn failure_line(v: u8, id: Option<i64>, status: &str, err: &WireError) -> String {
    if v < 2 {
        return if status == "error" {
            error_line(id, &err.message)
        } else {
            status_line(id, status)
        };
    }
    let mut base = response_base(id, status);
    if let Json::Obj(fields) = &mut base {
        fields.push(("v".into(), Json::Int(2)));
        fields.push(("error".into(), err.to_json()));
    }
    base.dump()
}

/// [`failure_line`] with `status: "error"` — the common case.
pub fn error_line_v(v: u8, id: Option<i64>, err: &WireError) -> String {
    failure_line(v, id, "error", err)
}

/// Serialize a span tree for the wire: an array of
/// `{"name":…,"start_us":…,"dur_us":…,"meta":{…}?,"children":[…]?}`
/// objects (`meta`/`children` omitted when empty).
pub fn spans_to_json(spans: &[Span]) -> Json {
    fn one(s: &Span) -> Json {
        let mut fields = vec![
            ("name", Json::Str(s.name.clone())),
            ("start_us", Json::Int(s.start_us as i64)),
            ("dur_us", Json::Int(s.dur_us as i64)),
        ];
        if !s.meta.is_empty() {
            fields.push((
                "meta",
                Json::Obj(
                    s.meta
                        .iter()
                        .map(|(k, v)| {
                            let jv = match v {
                                MetaValue::Int(i) => Json::Int(*i),
                                MetaValue::Float(f) => Json::Float(*f),
                                MetaValue::Str(t) => Json::Str(t.clone()),
                            };
                            (k.clone(), jv)
                        })
                        .collect(),
                ),
            ));
        }
        if !s.children.is_empty() {
            fields.push(("children", spans_to_json(&s.children)));
        }
        obj(fields)
    }
    Json::Arr(spans.iter().map(one).collect())
}

/// The common response skeleton: `{"id":…,"status":…}`.
pub fn response_base(id: Option<i64>, status: &str) -> Json {
    let id_json = match id {
        Some(i) => Json::Int(i),
        None => Json::Null,
    };
    obj(vec![("id", id_json), ("status", Json::Str(status.into()))])
}

/// Render a [`RunOutcome`] + post-run [`Args`] as an `ok` response,
/// attaching a `trace` span tree when the request opted in.
pub fn run_response(
    id: Option<i64>,
    outcome: &RunOutcome,
    args: &Args,
    return_arrays: bool,
    trace: Option<&[Span]>,
) -> String {
    let mut base = response_base(id, "ok");
    let Json::Obj(fields) = &mut base else { unreachable!("response_base builds an object") };
    fields.push(("op".into(), Json::Str("run".into())));
    fields.push(("function".into(), Json::Str(outcome.function.clone())));
    fields.push(("profile".into(), Json::Str(outcome.profile.into())));
    let kernels = outcome
        .kernels
        .iter()
        .map(|k| {
            obj(vec![
                ("name", Json::Str(k.name.clone())),
                ("regs", Json::Int(k.regs_used as i64)),
                ("spills", Json::Int(k.spills as i64)),
                (
                    "grid",
                    Json::Arr(
                        [k.grid.0, k.grid.1, k.grid.2]
                            .iter()
                            .map(|v| Json::Int(*v as i64))
                            .collect(),
                    ),
                ),
                (
                    "block",
                    Json::Arr(
                        [k.block.0, k.block.1, k.block.2]
                            .iter()
                            .map(|v| Json::Int(*v as i64))
                            .collect(),
                    ),
                ),
                ("cycles", Json::Float(k.cycles)),
            ])
        })
        .collect();
    fields.push(("kernels".into(), Json::Arr(kernels)));
    fields.push(("total_cycles".into(), Json::Float(outcome.total_cycles)));
    fields.push(("max_regs".into(), Json::Int(outcome.max_regs as i64)));
    fields.push(("sr_temps".into(), Json::Int(outcome.sr_temps_added as i64)));
    fields.push(("feedback_rounds".into(), Json::Int(outcome.feedback_rounds as i64)));
    fields.push((
        "scalars".into(),
        Json::Obj(
            args.scalars
                .iter()
                .map(|(k, v)| {
                    let jv = match v {
                        safara_core::runtime::ArgValue::I32(i) => Json::Int(*i as i64),
                        safara_core::runtime::ArgValue::I64(i) => Json::Int(*i),
                        safara_core::runtime::ArgValue::F32(f) => {
                            obj(vec![("bits", Json::Int(f.to_bits() as i64))])
                        }
                        safara_core::runtime::ArgValue::F64(f) => {
                            obj(vec![("bits", Json::Str(format!("0x{:016x}", f.to_bits())))])
                        }
                    };
                    (k.to_string(), jv)
                })
                .collect(),
        ),
    ));
    fields.push((
        "digests".into(),
        Json::Obj(args.arrays.iter().map(|(k, a)| (k.to_string(), Json::Str(digest(a)))).collect()),
    ));
    if return_arrays {
        fields.push((
            "arrays".into(),
            Json::Obj(args.arrays.iter().map(|(k, a)| (k.to_string(), array_to_json(a))).collect()),
        ));
    }
    if let Some(spans) = trace {
        fields.push(("trace".into(), spans_to_json(spans)));
    }
    base.dump()
}

/// Render a compile-only report as an `ok` response, attaching a
/// `trace` span tree when the request opted in.
pub fn compile_response(
    id: Option<i64>,
    program: &safara_core::CompiledProgram,
    entry: Option<&str>,
    trace: Option<&[Span]>,
) -> Result<String, WireError> {
    let mut base = response_base(id, "ok");
    let Json::Obj(fields) = &mut base else { unreachable!("response_base builds an object") };
    fields.push(("op".into(), Json::Str("compile".into())));
    fields.push(("profile".into(), Json::Str(program.config.name.into())));
    let mut funcs = Vec::new();
    for f in &program.functions {
        if entry.is_some_and(|e| e != f.name) {
            continue;
        }
        funcs.push(obj(vec![
            ("name", Json::Str(f.name.clone())),
            (
                "kernels",
                Json::Arr(
                    f.kernels
                        .iter()
                        .map(|k| {
                            obj(vec![
                                ("name", Json::Str(k.kernel.name.clone())),
                                ("regs", Json::Int(k.alloc.regs_used as i64)),
                                ("demand", Json::Int(k.alloc.demand as i64)),
                                ("spills", Json::Int(k.alloc.spilled.len() as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("max_regs", Json::Int(f.max_regs() as i64)),
            ("sr_temps", Json::Int(f.sr_outcome.temps_added as i64)),
            ("feedback_rounds", Json::Int(f.feedback_rounds as i64)),
        ]));
    }
    if funcs.is_empty() {
        return Err(match entry {
            Some(e) => WireError::from_compile(&CompileError::no_such_function(e)),
            None => WireError::from_compile(&CompileError::Sema {
                message: "program has no functions".into(),
                span: None,
            }),
        });
    }
    fields.push(("functions".into(), Json::Arr(funcs)));
    if let Some(spans) = trace {
        fields.push(("trace".into(), spans_to_json(spans)));
    }
    Ok(base.dump())
}

/// Resolve a profile key or build the standard `unknown_profile` error.
///
/// This is the wire-facing name resolution the `by_name` deprecation
/// note points at — the one sanctioned string-keyed call site.
pub fn resolve_profile(key: &str) -> Result<CompilerConfig, WireError> {
    #[allow(deprecated)]
    CompilerConfig::by_name(key).ok_or_else(|| {
        WireError::unknown_profile(format!(
            "unknown profile `{key}` (expected one of: {})",
            CompilerConfig::PROFILE_KEYS.join(", ")
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_core::runtime::ArgValue;

    #[test]
    fn run_request_roundtrips_through_builder_and_parser() {
        let args = Args::new()
            .i32("n", 8)
            .f32("alpha", 0.1) // 0.1f32 is inexact in decimal — bits keep it
            .array_f32("x", &[1.0, 0.1, -0.0])
            .array_i32("idx", &[3, -1]);
        let line = build_run_request(7, "void f() {}", "f", "base", &args, true);
        let req = parse_request(&line).unwrap();
        assert_eq!(req.id, Some(7));
        match req.op {
            Op::Run(r) => {
                assert_eq!(r.entry, "f");
                assert_eq!(r.profile, "base");
                assert!(r.return_arrays);
                assert_eq!(r.args.array("x"), args.array("x"), "bit-exact arrays");
                assert_eq!(r.args.array("idx"), args.array("idx"));
                assert_eq!(r.args.scalar("n"), Some(ArgValue::I64(8)));
                match r.args.scalar("alpha") {
                    Some(ArgValue::F64(v)) => assert_eq!(v, 0.1f32 as f64),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn f64_bits_roundtrip_via_hex_strings() {
        let args = Args::new().array_f64("d", &[-0.1, 1.0e308]);
        let line = build_run_request(1, "s", "e", "base", &args, false);
        let req = parse_request(&line).unwrap();
        let Op::Run(r) = req.op else { panic!() };
        assert_eq!(r.args.array("d"), args.array("d"));
    }

    #[test]
    fn decimal_data_arrays_parse() {
        let req = parse_request(
            r#"{"op":"run","source":"s","entry":"e","profile":"base",
                "arrays":{"x":{"elem":"f32","data":[1,2.5]},"k":{"elem":"i32","data":[4]}}}"#
                .replace('\n', " ")
                .as_str(),
        )
        .unwrap();
        assert_eq!(req.timeout_ms, None);
        let Op::Run(r) = req.op else { panic!() };
        assert_eq!(r.args.array("x").unwrap().as_f32(), vec![1.0, 2.5]);
        assert_eq!(r.args.array("k").unwrap().as_i32(), vec![4]);
        assert!(!r.return_arrays);
    }

    #[test]
    fn malformed_requests_report_errors() {
        for bad in [
            "not json",
            "{}",
            r#"{"op":"dance"}"#,
            r#"{"op":"run","entry":"e","profile":"base"}"#,
            r#"{"op":"run","source":"s","entry":"e","profile":"base","arrays":{"x":{"elem":"f99","data":[]}}}"#,
            r#"{"op":"run","source":"s","entry":"e","profile":"base","arrays":{"x":{"elem":"f32"}}}"#,
            r#"{"op":"ping","timeout_ms":-5}"#,
            r#"{"op":"run","source":"s","entry":"e","profile":"base","scalars":{"n":"x"}}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn ops_parse() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap().op, Op::Ping);
        assert_eq!(parse_request(r#"{"op":"stats","id":9}"#).unwrap().id, Some(9));
        assert_eq!(parse_request(r#"{"op":"sleep","ms":50}"#).unwrap().op, Op::Sleep { ms: 50 });
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#).unwrap().op, Op::Shutdown);
        let c = parse_request(r#"{"op":"compile","source":"s","profile":"base"}"#).unwrap();
        assert!(matches!(c.op, Op::Compile(_)));
        assert_eq!(
            parse_request(r#"{"op":"ping","timeout_ms":250}"#).unwrap().timeout_ms,
            Some(250)
        );
    }

    #[test]
    fn digests_discriminate_content_and_type() {
        let a = HostArray::from_f32(&[1.0, 2.0]);
        let b = HostArray::from_f32(&[1.0, 2.0]);
        let c = HostArray::from_f32(&[1.0, 2.5]);
        assert_eq!(digest(&a), digest(&b));
        assert_ne!(digest(&a), digest(&c));
        let as_ints = HostArray::from_i32(&[1065353216, 1073741824]); // same bytes, different elem
        assert_ne!(digest(&a), digest(&as_ints));
    }

    #[test]
    fn status_and_error_lines_are_single_line_json() {
        let s = status_line(Some(3), "overloaded");
        assert_eq!(Json::parse(&s).unwrap().get("status").and_then(Json::as_str), Some("overloaded"));
        let e = error_line(None, "boom\nwith newline");
        assert!(!e.contains('\n'));
        let v = Json::parse(&e).unwrap();
        assert_eq!(v.get("id"), Some(&Json::Null));
        assert_eq!(v.get("message").and_then(Json::as_str), Some("boom\nwith newline"));
    }

    #[test]
    fn unknown_profile_message_lists_keys() {
        let e = resolve_profile("nvcc").unwrap_err();
        assert_eq!(e.code, "unknown_profile");
        assert!(!e.retryable);
        assert!(e.message.contains("safara_only") && e.message.contains("carr_kennedy"), "{}", e.message);
        assert!(resolve_profile("safara_clauses").is_ok());
    }

    #[test]
    fn saturated_profile_resolves_over_the_wire() {
        let cfg = resolve_profile("safara_saturated").unwrap();
        assert_eq!(cfg.name, "SAFARA(saturated)");
        assert!(cfg.saturate);
        // Every other wire profile keeps the e-graph phase off, so the
        // pre-existing response corpus stays byte-identical.
        for key in CompilerConfig::PROFILE_KEYS {
            if key != "safara_saturated" {
                assert!(!resolve_profile(key).unwrap().saturate, "{key}");
            }
        }
    }

    #[test]
    fn protocol_version_parses_and_defaults_to_v1() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap().v, 1);
        assert_eq!(parse_request(r#"{"op":"ping","v":1}"#).unwrap().v, 1);
        assert_eq!(parse_request(r#"{"op":"ping","v":2}"#).unwrap().v, 2);
        for bad in [r#"{"op":"ping","v":0}"#, r#"{"op":"ping","v":3}"#, r#"{"op":"ping","v":"2"}"#] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
        let v2 = build_run_request_v(2, 5, "s", "e", "base", &Args::new(), false);
        assert_eq!(parse_request(&v2).unwrap().v, 2);
        // v1 builder output is byte-identical to the legacy builder.
        assert_eq!(
            build_run_request(5, "s", "e", "base", &Args::new(), false),
            build_run_request_v(1, 5, "s", "e", "base", &Args::new(), false),
        );
        assert!(!build_run_request(5, "s", "e", "base", &Args::new(), false).contains("\"v\""));
    }

    #[test]
    fn failure_lines_speak_both_protocol_versions() {
        let err = WireError::from_compile(&CompileError::Sim { message: "boom".into() });
        // v1: legacy message-string shape, no error object.
        let v1 = Json::parse(&error_line_v(1, Some(4), &err)).unwrap();
        assert_eq!(v1.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(v1.get("message").and_then(Json::as_str), Some("sim: boom"));
        assert!(v1.get("error").is_none());
        // v2: structured object, no bare message.
        let v2 = Json::parse(&error_line_v(2, Some(4), &err)).unwrap();
        assert_eq!(v2.get("v").and_then(Json::as_i64), Some(2));
        assert!(v2.get("message").is_none());
        let e = v2.get("error").expect("error object");
        assert_eq!(e.get("code").and_then(Json::as_str), Some("sim"));
        assert_eq!(e.get("phase").and_then(Json::as_str), Some("sim"));
        assert_eq!(e.get("retryable").and_then(Json::as_bool), Some(true));
        assert_eq!(e.get("message").and_then(Json::as_str), Some("sim: boom"));
        // Non-error statuses: v1 stays a bare status line, v2 explains.
        let t1 = Json::parse(&failure_line(1, Some(9), "timeout", &WireError::timeout())).unwrap();
        assert_eq!(t1.get("status").and_then(Json::as_str), Some("timeout"));
        assert!(t1.get("error").is_none());
        let t2 = Json::parse(&failure_line(2, Some(9), "timeout", &WireError::timeout())).unwrap();
        assert_eq!(t2.get("status").and_then(Json::as_str), Some("timeout"));
        assert_eq!(
            t2.get("error").and_then(|e| e.get("retryable")).and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn engine_field_parses_and_roundtrips() {
        let line = build_run_request_with_engine(
            2, 1, "s", "e", "base", Some("superblock"), &Args::new(), false,
        );
        let Op::Run(r) = parse_request(&line).unwrap().op else { panic!() };
        assert_eq!(r.engine.as_deref(), Some("superblock"));
        // Engine-less builders stay byte-identical to the legacy shape
        // and parse to no override.
        let plain = build_run_request(1, "s", "e", "base", &Args::new(), false);
        assert!(!plain.contains("\"engine\""));
        let Op::Run(r) = parse_request(&plain).unwrap().op else { panic!() };
        assert_eq!(r.engine, None);
        assert!(parse_request(
            r#"{"op":"run","source":"s","entry":"e","profile":"base","engine":7}"#
        )
        .is_err());
    }

    #[test]
    fn sim_threads_field_parses_and_roundtrips() {
        // String and integer wire forms both surface as the raw token.
        let line = build_run_request_with_sim_threads(
            2,
            1,
            "s",
            "e",
            "base",
            None,
            Some("auto"),
            &Args::new(),
            false,
        );
        let Op::Run(r) = parse_request(&line).unwrap().op else { panic!() };
        assert_eq!(r.sim_threads.as_deref(), Some("auto"));
        let Op::Run(r) = parse_request(
            r#"{"op":"run","source":"s","entry":"e","profile":"base","sim_threads":4}"#,
        )
        .unwrap()
        .op
        else {
            panic!()
        };
        assert_eq!(r.sim_threads.as_deref(), Some("4"));
        // Omitting the field keeps the line byte-identical to the other
        // builders and parses to no override.
        let plain = build_run_request(1, "s", "e", "base", &Args::new(), false);
        assert!(!plain.contains("\"sim_threads\""));
        let Op::Run(r) = parse_request(&plain).unwrap().op else { panic!() };
        assert_eq!(r.sim_threads, None);
        // Structurally wrong type: parse-level bad_request, not a typed
        // invalid_sim_threads (that is for well-typed bad values).
        assert!(parse_request(
            r#"{"op":"run","source":"s","entry":"e","profile":"base","sim_threads":true}"#
        )
        .is_err());
    }

    #[test]
    fn run_key_matches_work_not_envelope() {
        let args = Args::new().i32("n", 8).f32("a", 0.5).array_f32("x", &[1.0, 2.0]);
        let base = RunRequest {
            source: "void f() {}".into(),
            entry: "f".into(),
            profile: "base".into(),
            args: args.clone(),
            return_arrays: false,
            engine: None,
            sim_threads: None,
            sb_threshold: None,
        };
        let key = run_key(&base);
        // Response shaping and thread count do not change the work.
        let mut same = base.clone();
        same.return_arrays = true;
        same.sim_threads = Some("4".into());
        assert_eq!(run_key(&same), key);
        assert_eq!(
            run_key_parts(&base.source, &base.entry, &base.profile, None, &base.args),
            key
        );
        // Source, entry, profile, engine, and argument bits all do.
        let mut other = base.clone();
        other.source = "void f() { }".into();
        assert_ne!(run_key(&other), key);
        let mut other = base.clone();
        other.profile = "safara_only".into();
        assert_ne!(run_key(&other), key);
        let mut other = base.clone();
        other.engine = Some("reference".into());
        assert_ne!(run_key(&other), key);
        let mut other = base.clone();
        other.args = args.clone().i32("n", 9);
        assert_ne!(run_key(&other), key);
        let mut other = base.clone();
        other.args = Args::new().i32("n", 8).f32("a", 0.5).array_f32("x", &[1.0, 2.5]);
        assert_ne!(run_key(&other), key);
        // -0.0 and 0.0 are distinct bit patterns, hence distinct work.
        let neg = RunRequest { args: Args::new().f32("a", -0.0), ..base.clone() };
        let pos = RunRequest { args: Args::new().f32("a", 0.0), ..base.clone() };
        assert_ne!(run_key(&neg), run_key(&pos));
    }

    #[test]
    fn shard_routing_is_stable_balanced_and_monotone() {
        // Stable and in range.
        for key in [0u64, 1, u64::MAX, 0xdead_beef] {
            let s = shard_for(key, 4);
            assert!(s < 4);
            assert_eq!(s, shard_for(key, 4));
        }
        assert_eq!(shard_for(123, 1), 0, "single shard takes everything");
        // Roughly balanced over many keys.
        let mut counts = [0usize; 4];
        for i in 0..4000u64 {
            counts[shard_for(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), 4) as usize] += 1;
        }
        for c in counts {
            assert!((600..=1400).contains(&c), "skewed: {counts:?}");
        }
        // Jump consistency: growing 4 → 5 shards moves only keys that
        // land on the new shard; nothing reshuffles between old shards.
        for i in 0..2000u64 {
            let key = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let (old, new) = (shard_for(key, 4), shard_for(key, 5));
            assert!(old == new || new == 4, "key {key} moved {old} -> {new}");
        }
    }

    #[test]
    fn request_meta_is_best_effort() {
        assert_eq!(request_meta(r#"{"id":7,"v":2,"op":"nope"}"#), (Some(7), 2));
        assert_eq!(request_meta(r#"{"id":3}"#), (Some(3), 1));
        assert_eq!(request_meta("not json"), (None, 1));
    }
}
