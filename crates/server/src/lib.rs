//! # safara-server — a concurrent compile-and-simulate service
//!
//! Wraps the whole SAFARA pipeline (ir → analysis → opt → codegen →
//! gpusim) as a long-running service: clients send MiniACC source, a
//! compiler-profile key, and launch arguments; the server compiles,
//! simulates, and replies with register counts, modelled cycles, and
//! output digests (or full bit-exact arrays).
//!
//! The pieces, bottom-up:
//!
//! - [`json`] — a hand-rolled JSON parser/writer (the build is offline;
//!   no serde), careful about float round-trips.
//! - [`protocol`] — the newline-delimited request/response schema and
//!   the lossless `bits` array encoding.
//! - [`queue`] — a bounded MPMC queue: the admission-control point.
//! - [`service`] — the [`Engine`](service::Engine): a fixed worker pool
//!   sharing one process-wide [`safara_core::SharedLaunchCache`] and a compiled-
//!   program store, with per-request deadlines and live counters.
//! - [`server`] — the TCP transport (`std::net`, nonblocking accept).
//!
//! The `safara-serve` binary fronts both transports; see the README's
//! "Running as a service" section for the wire format.

pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;

pub use protocol::{build_run_request, build_run_request_v, parse_request, Op, Request, WireError};
pub use server::{dispatch, serve, ServerHandle};
pub use service::{Engine, EngineConfig, Submit};
