//! A lock-cheap latency histogram.
//!
//! Values (microseconds) land in log₂ buckets held in `AtomicU64`s, so
//! many worker threads can record concurrently with one relaxed
//! fetch-add each — no mutex on the hot path. Bucket `i` covers
//! `[2^(i-1), 2^i)`; percentiles are read back as the geometric
//! midpoint of the bucket holding the target rank (≤ 2× error by
//! construction), clamped to the exact tracked maximum. That trade —
//! bounded relative error for a fixed 64-word footprint — is the same
//! one production latency recorders make.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 48; // 2^47 µs ≈ 4.5 years: every real latency fits

/// Concurrent log₂ histogram of `u64` microsecond samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time read of a [`Histogram`], in plain integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Estimated median (µs).
    pub p50_us: u64,
    /// Estimated 95th percentile (µs).
    pub p95_us: u64,
    /// Exact maximum (µs).
    pub max_us: u64,
    /// Exact mean (µs, integer division).
    pub mean_us: u64,
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Geometric-ish midpoint of bucket `i` (`[2^(i-1), 2^i)`).
fn bucket_mid(i: usize) -> u64 {
    if i == 0 {
        return 0;
    }
    let lo = 1u64 << (i - 1);
    let hi = (1u64 << i).saturating_sub(1);
    lo.midpoint(hi)
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample. Lock-free; safe from any thread.
    pub fn record(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the midpoint of the
    /// bucket containing the target rank, clamped to the exact max.
    /// Returns 0 for an empty histogram; `q >= 1` returns the exact max.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        let max = self.max.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return max;
        }
        // Rank of the target sample, 1-based, at least 1.
        let target = ((q.max(0.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_mid(i).min(max);
            }
        }
        max
    }

    /// Fold another histogram into this one (used when aggregating
    /// per-shard or per-thread recorders).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Read the whole summary at once.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            max_us: self.max.load(Ordering::Relaxed),
            mean_us: self.sum.load(Ordering::Relaxed).checked_div(count).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.quantile_us(1.0), 0);
        assert_eq!(
            h.snapshot(),
            HistogramSnapshot { count: 0, p50_us: 0, p95_us: 0, max_us: 0, mean_us: 0 }
        );
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::new();
        h.record(300);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_us, 300);
        assert_eq!(s.mean_us, 300);
        // 300 lives in [256, 512): the estimate must stay in-bucket and
        // never exceed the exact max.
        for q in [0.0, 0.5, 0.95, 1.0] {
            let v = h.quantile_us(q);
            assert!((256..=300).contains(&v) || v == 300, "q={q} -> {v}");
        }
    }

    #[test]
    fn zero_samples_land_in_the_zero_bucket() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(1);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.quantile_us(1.0), 1);
    }

    #[test]
    fn percentiles_track_the_distribution_within_bucket_error() {
        let h = Histogram::new();
        // 90 fast samples at ~100 µs, 10 slow at ~100 ms.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 100_000);
        // p50 must sit in the fast bucket [64, 128), p95 in the slow
        // bucket [65536, 131072).
        assert!((64..128).contains(&s.p50_us), "{}", s.p50_us);
        assert!((65_536..131_072).contains(&s.p95_us), "{}", s.p95_us);
        assert!(s.p50_us < s.p95_us);
        assert_eq!(s.mean_us, (90 * 100 + 10 * 100_000) / 100);
    }

    #[test]
    fn merge_is_additive_and_keeps_the_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [10, 20, 30] {
            a.record(v);
        }
        for v in [1_000_000, 5] {
            b.record(v);
        }
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.max_us, 1_000_000);
        assert_eq!(s.mean_us, (10 + 20 + 30 + 1_000_000 + 5) / 5);
        // Merging an empty histogram changes nothing.
        a.merge(&Histogram::new());
        assert_eq!(a.snapshot(), s);
    }

    #[test]
    fn huge_values_clamp_into_the_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
        // The mid-bucket estimate lands in the last bucket: huge, but
        // never above the exact tracked max.
        let mid = h.quantile_us(0.5);
        assert!(mid >= 1 << 46, "expected last-bucket estimate, got {mid}");
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
