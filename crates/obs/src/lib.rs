//! # safara-obs — zero-dependency observability primitives
//!
//! The paper's whole premise is *measurement-driven* compilation: SAFARA
//! iterates against register-allocator feedback, so the reproduction
//! needs to see where time and registers go. This crate provides the two
//! primitives the rest of the workspace instruments itself with:
//!
//! * [`Tracer`] / [`Span`] — a per-request span tree covering the
//!   compile pipeline (parse → sema → analysis → opt feedback rounds →
//!   codegen → regalloc → sim), built to be threaded through call stacks
//!   as `&mut Tracer`. A [`Tracer::disabled`] tracer makes every call a
//!   branch-predicted no-op, so untraced requests pay nothing
//!   measurable.
//! * [`Histogram`] — a lock-cheap (atomic, log₂-bucketed) latency
//!   histogram for long-lived aggregation: queue-wait, service-time,
//!   reply-write, per-op breakdowns.
//!
//! Everything here is hand-rolled in the spirit of `server/src/json.rs`:
//! the build is offline, so no `tracing`, no `hdrhistogram`, no serde —
//! consumers serialize [`Span`]s themselves.

pub mod hist;

pub use hist::{Histogram, HistogramSnapshot};

use std::time::Instant;

/// A metadata value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaValue {
    /// An integer (counts, register numbers, byte totals).
    Int(i64),
    /// A float (cycles, ratios).
    Float(f64),
    /// A short string (cache outcome, kernel name).
    Str(String),
}

/// One closed span: a named phase with a start offset and duration
/// (microseconds, relative to the tracer's epoch), optional metadata,
/// and nested children.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Phase name (`parse`, `opt`, `round`, `sim`, …).
    pub name: String,
    /// Start, µs since the tracer was created.
    pub start_us: u64,
    /// Duration in µs (never negative by construction).
    pub dur_us: u64,
    /// Attached key/value metadata, in insertion order.
    pub meta: Vec<(String, MetaValue)>,
    /// Nested sub-spans, in start order.
    pub children: Vec<Span>,
}

impl Span {
    /// Look up a metadata value by key.
    pub fn meta_get(&self, key: &str) -> Option<&MetaValue> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Depth-first count of spans named `name` in this subtree.
    pub fn count_named(&self, name: &str) -> usize {
        usize::from(self.name == name)
            + self.children.iter().map(|c| c.count_named(name)).sum::<usize>()
    }
}

/// Sum of root-span durations — the traced portion of a request.
pub fn total_us(spans: &[Span]) -> u64 {
    spans.iter().map(|s| s.dur_us).sum()
}

struct OpenSpan {
    name: String,
    start: Instant,
    start_us: u64,
    meta: Vec<(String, MetaValue)>,
    children: Vec<Span>,
}

/// Records a span tree. Create one per traced request ([`Tracer::new`])
/// or pass [`Tracer::disabled`] to make instrumented code paths free.
///
/// Spans close in LIFO order: [`Tracer::begin`]/[`Tracer::end`] pairs
/// nest, and the scoped [`Tracer::span`] helper keeps them balanced.
pub struct Tracer {
    enabled: bool,
    epoch: Instant,
    stack: Vec<OpenSpan>,
    roots: Vec<Span>,
}

impl Tracer {
    /// A recording tracer.
    pub fn new() -> Tracer {
        Tracer { enabled: true, epoch: Instant::now(), stack: Vec::new(), roots: Vec::new() }
    }

    /// A no-op tracer: every method returns immediately.
    pub fn disabled() -> Tracer {
        Tracer { enabled: false, epoch: Instant::now(), stack: Vec::new(), roots: Vec::new() }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span. Pair with [`Tracer::end`].
    pub fn begin(&mut self, name: &str) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        self.stack.push(OpenSpan {
            name: name.to_string(),
            start: now,
            start_us: now.duration_since(self.epoch).as_micros() as u64,
            meta: Vec::new(),
            children: Vec::new(),
        });
    }

    /// Close the innermost open span. A stray `end` with nothing open is
    /// ignored rather than panicking — tracing must never take down the
    /// pipeline it observes.
    pub fn end(&mut self) {
        if !self.enabled {
            return;
        }
        let Some(open) = self.stack.pop() else { return };
        let span = Span {
            name: open.name,
            start_us: open.start_us,
            dur_us: open.start.elapsed().as_micros() as u64,
            meta: open.meta,
            children: open.children,
        };
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => self.roots.push(span),
        }
    }

    /// Run `f` inside a span named `name`.
    pub fn span<R>(&mut self, name: &str, f: impl FnOnce(&mut Tracer) -> R) -> R {
        self.begin(name);
        let r = f(self);
        self.end();
        r
    }

    /// Attach integer metadata to the innermost open span.
    pub fn meta_int(&mut self, key: &str, v: i64) {
        self.meta(key, MetaValue::Int(v));
    }

    /// Attach float metadata to the innermost open span.
    pub fn meta_float(&mut self, key: &str, v: f64) {
        self.meta(key, MetaValue::Float(v));
    }

    /// Attach string metadata to the innermost open span.
    pub fn meta_str(&mut self, key: &str, v: impl Into<String>) {
        self.meta(key, MetaValue::Str(v.into()));
    }

    fn meta(&mut self, key: &str, v: MetaValue) {
        if !self.enabled {
            return;
        }
        if let Some(open) = self.stack.last_mut() {
            open.meta.push((key.to_string(), v));
        }
    }

    /// Close any spans left open (in LIFO order) and return the root
    /// spans in start order.
    pub fn finish(mut self) -> Vec<Span> {
        while !self.stack.is_empty() {
            self.end();
        }
        self.roots
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_in_lifo_order() {
        let mut t = Tracer::new();
        t.begin("compile");
        t.meta_int("functions", 2);
        t.begin("parse");
        t.end();
        t.span("opt", |t| {
            t.span("round", |t| t.meta_int("regs_used", 21));
            t.span("round", |t| t.meta_int("regs_used", 30));
        });
        t.end();
        let roots = t.finish();
        assert_eq!(roots.len(), 1);
        let compile = &roots[0];
        assert_eq!(compile.name, "compile");
        assert_eq!(compile.meta_get("functions"), Some(&MetaValue::Int(2)));
        assert_eq!(compile.children.len(), 2);
        assert_eq!(compile.children[0].name, "parse");
        let opt = &compile.children[1];
        assert_eq!(opt.count_named("round"), 2);
        assert_eq!(opt.children[1].meta_get("regs_used"), Some(&MetaValue::Int(30)));
        // start offsets are monotone within a level.
        assert!(opt.start_us >= compile.children[0].start_us);
    }

    #[test]
    fn disabled_tracer_records_nothing_but_still_runs_closures() {
        let mut t = Tracer::disabled();
        let mut ran = false;
        t.begin("x");
        t.meta_str("k", "v");
        let v = t.span("y", |t| {
            t.meta_int("n", 1);
            ran = true;
            42
        });
        t.end();
        assert_eq!(v, 42);
        assert!(ran);
        assert!(t.finish().is_empty());
    }

    #[test]
    fn finish_closes_dangling_spans_and_stray_end_is_ignored() {
        let mut t = Tracer::new();
        t.end(); // stray: nothing open
        t.begin("a");
        t.begin("b"); // left open deliberately
        let roots = t.finish();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "a");
        assert_eq!(roots[0].children[0].name, "b");
    }

    #[test]
    fn total_us_sums_roots_only() {
        let mk = |d: u64| Span {
            name: "p".into(),
            start_us: 0,
            dur_us: d,
            meta: vec![],
            children: vec![Span {
                name: "c".into(),
                start_us: 0,
                dur_us: 999,
                meta: vec![],
                children: vec![],
            }],
        };
        assert_eq!(total_us(&[mk(3), mk(4)]), 7);
        assert_eq!(total_us(&[]), 0);
    }

    #[test]
    fn durations_are_measured_not_negative() {
        let mut t = Tracer::new();
        t.span("sleep", |_| std::thread::sleep(std::time::Duration::from_millis(2)));
        let roots = t.finish();
        assert!(roots[0].dur_us >= 2_000, "{}", roots[0].dur_us);
    }
}
