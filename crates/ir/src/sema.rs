//! Semantic analysis: name resolution, type checking, directive checking.
//!
//! Beyond ordinary checks (no undeclared variables, array rank matches the
//! declaration, `%` only on integers, ...), this module validates the
//! paper's proposed clauses:
//!
//! * every array named in `small` / `dim` must be an array parameter;
//! * `dim` groups must contain arrays of equal rank;
//! * if a `dim` group provides explicit bounds, the bound count must match
//!   the arrays' rank;
//! * an array may appear in at most one `dim` group;
//! * reductions must name scalar variables.

use crate::ast::*;
use crate::directive::*;
use std::collections::HashMap;
use std::fmt;

/// Semantic errors.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaError {
    /// Human-readable message.
    pub message: String,
}

impl SemaError {
    fn new(m: impl Into<String>) -> Self {
        SemaError { message: m.into() }
    }
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SemaError {}

/// What a name refers to.
#[derive(Debug, Clone, PartialEq)]
enum Binding {
    Scalar(ScalarTy),
    Array(ArrayTy),
}

/// Check a whole program.
pub fn check_program(p: &Program) -> Result<(), SemaError> {
    let mut seen = Vec::new();
    for f in &p.functions {
        if seen.contains(&f.name) {
            return Err(SemaError::new(format!("duplicate function `{}`", f.name)));
        }
        seen.push(f.name.clone());
        check_function(f)?;
    }
    Ok(())
}

/// Check one function.
pub fn check_function(f: &Function) -> Result<(), SemaError> {
    let mut ck = Checker { scopes: vec![HashMap::new()], func: f.name.clone() };
    for p in &f.params {
        let (name, binding) = match p {
            Param::Scalar { name, ty } => (name, Binding::Scalar(*ty)),
            Param::Array { name, ty, .. } => {
                if ty.dims.is_empty() {
                    return Err(SemaError::new(format!(
                        "array parameter `{name}` must have at least one dimension"
                    )));
                }
                (name, Binding::Array(ty.clone()))
            }
        };
        if ck.scopes[0].insert(name.clone(), binding).is_some() {
            return Err(SemaError::new(format!("duplicate parameter `{name}` in `{}`", f.name)));
        }
    }
    // Dimension expressions may only use earlier integer scalar params.
    for p in &f.params {
        if let Param::Array { name, ty, .. } = p {
            for d in &ty.dims {
                for e in d.lower.iter().chain(match &d.extent {
                    Extent::Dynamic(e) => Some(e),
                    Extent::Const(_) => None,
                }) {
                    let t = ck.type_of(e)?;
                    if !t.is_int() {
                        return Err(SemaError::new(format!(
                            "dimension of `{name}` must be an integer expression"
                        )));
                    }
                }
            }
        }
    }
    ck.check_stmts(&f.body, false)?;
    Ok(())
}

struct Checker {
    scopes: Vec<HashMap<Ident, Binding>>,
    func: Ident,
}

impl Checker {
    fn lookup(&self, name: &Ident) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn declare(&mut self, name: &Ident, b: Binding) -> Result<(), SemaError> {
        let top = self.scopes.last_mut().expect("scope stack never empty");
        if top.insert(name.clone(), b).is_some() {
            return Err(SemaError::new(format!(
                "`{name}` redeclared in the same scope in `{}`",
                self.func
            )));
        }
        Ok(())
    }

    fn check_stmts(&mut self, stmts: &[Stmt], in_region: bool) -> Result<(), SemaError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.check_stmt(s, in_region)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt, in_region: bool) -> Result<(), SemaError> {
        match s {
            Stmt::DeclScalar { name, ty, init } => {
                if let Some(e) = init {
                    self.type_of(e)?;
                }
                self.declare(name, Binding::Scalar(*ty))
            }
            Stmt::Assign { lhs, op, rhs } => {
                let lt = match lhs {
                    LValue::Var(v) => match self.lookup(v) {
                        Some(Binding::Scalar(t)) => *t,
                        Some(Binding::Array(_)) => {
                            return Err(SemaError::new(format!(
                                "cannot assign to whole array `{v}`"
                            )))
                        }
                        None => {
                            return Err(SemaError::new(format!("undeclared variable `{v}`")))
                        }
                    },
                    LValue::ArrayRef(a) => self.check_array_ref(a)?,
                };
                let rt = self.type_of(rhs)?;
                if op.bin_op() == Some(BinOp::Div) && lt.is_int() && rt.is_float() {
                    return Err(SemaError::new(
                        "compound `/=` of a float into an integer element".to_string(),
                    ));
                }
                Ok(())
            }
            Stmt::For(l) => {
                self.scopes.push(HashMap::new());
                if l.declares_var {
                    self.declare(&l.var, Binding::Scalar(ScalarTy::I32))?;
                } else {
                    match self.lookup(&l.var) {
                        Some(Binding::Scalar(t)) if t.is_int() => {}
                        Some(_) => {
                            return Err(SemaError::new(format!(
                                "loop variable `{}` must be an integer scalar",
                                l.var
                            )))
                        }
                        None => {
                            return Err(SemaError::new(format!(
                                "loop variable `{}` is not declared (use `for (int {} = ...)`)",
                                l.var, l.var
                            )))
                        }
                    }
                }
                let lot = self.type_of(&l.lo)?;
                let bt = self.type_of(&l.bound)?;
                if !lot.is_int() || !bt.is_int() {
                    return Err(SemaError::new(format!(
                        "bounds of loop over `{}` must be integers",
                        l.var
                    )));
                }
                if let Some(d) = &l.directive {
                    if d.seq && (d.gang.is_some() || d.vector.is_some()) {
                        return Err(SemaError::new(format!(
                            "loop over `{}` cannot be both `seq` and gang/vector",
                            l.var
                        )));
                    }
                    for r in &d.reductions {
                        match self.lookup(&r.var) {
                            Some(Binding::Scalar(_)) => {}
                            _ => {
                                return Err(SemaError::new(format!(
                                    "reduction variable `{}` must be a declared scalar",
                                    r.var
                                )))
                            }
                        }
                    }
                }
                self.check_stmts(&l.body, in_region)?;
                self.scopes.pop();
                Ok(())
            }
            Stmt::If { cond, then_body, else_body } => {
                self.type_of(cond)?;
                self.check_stmts(then_body, in_region)?;
                self.check_stmts(else_body, in_region)
            }
            Stmt::Block(b) => self.check_stmts(b, in_region),
            Stmt::Region(r) => {
                if in_region {
                    return Err(SemaError::new("offload regions cannot nest"));
                }
                self.check_region_clauses(&r.directive.clauses)?;
                self.check_stmts(&r.body, true)
            }
        }
    }

    fn check_region_clauses(&self, c: &RegionClauses) -> Result<(), SemaError> {
        let array_ty = |name: &Ident| -> Result<ArrayTy, SemaError> {
            match self.lookup(name) {
                Some(Binding::Array(t)) => Ok(t.clone()),
                Some(Binding::Scalar(_)) => Err(SemaError::new(format!(
                    "`{name}` in clause must be an array, but is a scalar"
                ))),
                None => Err(SemaError::new(format!("`{name}` in clause is not declared"))),
            }
        };
        for d in &c.data {
            for v in &d.vars {
                array_ty(v)?;
            }
        }
        for v in &c.small {
            array_ty(v)?;
        }
        if let Some(lb) = &c.launch_bounds {
            match lb.max_threads.as_const() {
                Some(t) if t > 0 => {}
                Some(_) => {
                    return Err(SemaError::new(
                        "`launch_bounds` max threads must be a positive constant",
                    ))
                }
                None => {
                    return Err(SemaError::new(
                        "`launch_bounds` max threads must be a compile-time constant",
                    ))
                }
            }
            if let Some(b) = &lb.min_blocks {
                match b.as_const() {
                    Some(n) if n > 0 => {}
                    Some(_) => {
                        return Err(SemaError::new(
                            "`launch_bounds` min blocks must be a positive constant",
                        ))
                    }
                    None => {
                        return Err(SemaError::new(
                            "`launch_bounds` min blocks must be a compile-time constant",
                        ))
                    }
                }
            }
        }
        let mut grouped: Vec<&Ident> = Vec::new();
        for g in &c.dim_groups {
            if g.arrays.len() < 2 {
                return Err(SemaError::new(
                    "a `dim` group must name at least two arrays to be meaningful",
                ));
            }
            let first = array_ty(&g.arrays[0])?;
            for v in &g.arrays {
                let t = array_ty(v)?;
                if t.rank() != first.rank() {
                    return Err(SemaError::new(format!(
                        "`dim` group mixes ranks: `{}` has rank {}, `{v}` has rank {}",
                        g.arrays[0],
                        first.rank(),
                        t.rank()
                    )));
                }
                if grouped.contains(&v) {
                    return Err(SemaError::new(format!(
                        "array `{v}` appears in more than one `dim` group"
                    )));
                }
                grouped.push(v);
            }
            if let Some(bounds) = &g.bounds {
                if bounds.len() != first.rank() {
                    return Err(SemaError::new(format!(
                        "`dim` group bounds count {} does not match array rank {}",
                        bounds.len(),
                        first.rank()
                    )));
                }
            }
        }
        Ok(())
    }

    fn check_array_ref(&self, a: &ArrayRef) -> Result<ScalarTy, SemaError> {
        let ty = match self.lookup(&a.array) {
            Some(Binding::Array(t)) => t.clone(),
            Some(Binding::Scalar(_)) => {
                return Err(SemaError::new(format!("`{}` is a scalar, not an array", a.array)))
            }
            None => return Err(SemaError::new(format!("undeclared array `{}`", a.array))),
        };
        if a.indices.len() != ty.rank() {
            return Err(SemaError::new(format!(
                "array `{}` has rank {} but is indexed with {} subscripts",
                a.array,
                ty.rank(),
                a.indices.len()
            )));
        }
        for ix in &a.indices {
            let t = self.type_of(ix)?;
            if !t.is_int() {
                return Err(SemaError::new(format!(
                    "subscript of `{}` must be an integer expression",
                    a.array
                )));
            }
        }
        Ok(ty.elem)
    }

    fn type_of(&self, e: &Expr) -> Result<ScalarTy, SemaError> {
        match e {
            Expr::IntLit(_) => Ok(ScalarTy::I32),
            Expr::FloatLit(_) => Ok(ScalarTy::F64),
            Expr::Var(v) => match self.lookup(v) {
                Some(Binding::Scalar(t)) => Ok(*t),
                Some(Binding::Array(_)) => Err(SemaError::new(format!(
                    "array `{v}` used where a scalar value is required"
                ))),
                None => Err(SemaError::new(format!("undeclared variable `{v}`"))),
            },
            Expr::ArrayRef(a) => self.check_array_ref(a),
            Expr::Unary(UnOp::Neg, inner) => self.type_of(inner),
            Expr::Unary(UnOp::Not, inner) => {
                self.type_of(inner)?;
                Ok(ScalarTy::I32)
            }
            Expr::Binary(op, l, r) => {
                let (lt, rt) = (self.type_of(l)?, self.type_of(r)?);
                if *op == BinOp::Rem && (lt.is_float() || rt.is_float()) {
                    return Err(SemaError::new("`%` requires integer operands"));
                }
                if *op == BinOp::Shl && (lt.is_float() || rt.is_float()) {
                    return Err(SemaError::new("`<<` requires integer operands"));
                }
                if op.is_relational() {
                    Ok(ScalarTy::I32)
                } else {
                    Ok(lt.unify(rt))
                }
            }
            Expr::Call(intr, args) => {
                if args.len() != intr.arity() {
                    return Err(SemaError::new(format!(
                        "`{}` takes {} argument(s), got {}",
                        intr.name(),
                        intr.arity(),
                        args.len()
                    )));
                }
                let mut t = ScalarTy::F32;
                for a in args {
                    t = t.unify(self.type_of(a)?);
                }
                // min/max on integers keep the integer type.
                if matches!(intr, Intrinsic::Min | Intrinsic::Max | Intrinsic::Abs) {
                    let all_int = args
                        .iter()
                        .all(|a| self.type_of(a).map(|t| t.is_int()).unwrap_or(false));
                    if all_int {
                        let mut it = ScalarTy::I32;
                        for a in args {
                            it = it.unify(self.type_of(a)?);
                        }
                        return Ok(it);
                    }
                }
                Ok(t)
            }
            Expr::Cast(ty, inner) => {
                self.type_of(inner)?;
                Ok(*ty)
            }
        }
    }
}

/// Public helper: compute the scalar type of an expression in the context
/// of a function's parameters and the given extra scalar bindings
/// (used by the code generator).
pub fn expr_type(
    f: &Function,
    locals: &HashMap<Ident, ScalarTy>,
    e: &Expr,
) -> Result<ScalarTy, SemaError> {
    let mut ck = Checker { scopes: vec![HashMap::new()], func: f.name.clone() };
    for p in &f.params {
        let (name, binding) = match p {
            Param::Scalar { name, ty } => (name, Binding::Scalar(*ty)),
            Param::Array { name, ty, .. } => (name, Binding::Array(ty.clone())),
        };
        ck.scopes[0].insert(name.clone(), binding);
    }
    for (n, t) in locals {
        ck.scopes[0].insert(n.clone(), Binding::Scalar(*t));
    }
    ck.type_of(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn err(src: &str) -> String {
        match parse_program(src) {
            Err(crate::CompileError::Sema(e)) => e.message,
            Ok(_) => panic!("expected a semantic error for:\n{src}"),
            Err(other) => panic!("expected sema error, got {other}"),
        }
    }

    #[test]
    fn ok_program_passes() {
        parse_program(
            "void f(int n, float a[n][n]) { for (int i = 0; i < n; i++) { a[i][0] = 1.0; } }",
        )
        .unwrap();
    }

    #[test]
    fn undeclared_variable() {
        assert!(err("void f(int n) { x = 1; }").contains("undeclared"));
    }

    #[test]
    fn rank_mismatch() {
        assert!(err("void f(int n, float a[n][n]) { a[0] = 1.0; }").contains("rank"));
    }

    #[test]
    fn float_subscript_rejected() {
        assert!(err("void f(int n, float a[n], float x) { a[x] = 1.0; }").contains("integer"));
    }

    #[test]
    fn rem_on_floats_rejected() {
        assert!(err("void f(float x, float y) { x = x % y; }").contains("integer"));
    }

    #[test]
    fn launch_bounds_must_be_positive_constants() {
        let tmpl = |args: &str| {
            format!(
                r#"
        void f(int n, float a[n]) {{
          #pragma acc kernels launch_bounds({args})
          {{
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {{ a[i] = 0.0; }} }}
        }}"#
            )
        };
        assert!(err(&tmpl("0")).contains("positive"));
        assert!(err(&tmpl("n")).contains("constant"));
        assert!(err(&tmpl("128, 0")).contains("positive"));
        assert!(err(&tmpl("128, n")).contains("constant"));
        parse_program(&tmpl("128, 2")).unwrap();
        parse_program(&tmpl("256")).unwrap();
    }

    #[test]
    fn dim_group_needs_two_arrays() {
        let src = r#"
        void f(int n, float a[n], float b[n]) {
          #pragma acc kernels dim((a))
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) { a[i] = b[i]; } }
        }"#;
        assert!(err(src).contains("at least two"));
    }

    #[test]
    fn dim_group_rank_mismatch() {
        let src = r#"
        void f(int n, float a[n], float b[n][n]) {
          #pragma acc kernels dim((a, b))
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) { a[i] = b[i][0]; } }
        }"#;
        assert!(err(src).contains("mixes ranks"));
    }

    #[test]
    fn dim_bounds_count_must_match_rank() {
        let src = r#"
        void f(int n, float a[n], float b[n]) {
          #pragma acc kernels dim((0:n, 0:n)(a, b))
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) { a[i] = b[i]; } }
        }"#;
        assert!(err(src).contains("does not match array rank"));
    }

    #[test]
    fn array_in_two_dim_groups_rejected() {
        let src = r#"
        void f(int n, float a[n], float b[n], float c[n]) {
          #pragma acc kernels dim((a, b), (a, c))
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) { a[i] = b[i] + c[i]; } }
        }"#;
        assert!(err(src).contains("more than one"));
    }

    #[test]
    fn small_on_scalar_rejected() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels small(n)
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) { a[i] = 1.0; } }
        }"#;
        assert!(err(src).contains("must be an array"));
    }

    #[test]
    fn seq_and_gang_conflict() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang seq
            for (int i = 0; i < n; i++) { a[i] = 1.0; }
          }
        }"#;
        assert!(err(src).contains("seq"));
    }

    #[test]
    fn nested_regions_rejected() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels
          {
            #pragma acc parallel
            {
              #pragma acc loop gang vector
              for (int i = 0; i < n; i++) { a[i] = 1.0; }
            }
          }
        }"#;
        assert!(err(src).contains("nest"));
    }

    #[test]
    fn reduction_var_must_be_scalar() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector reduction(+:a)
            for (int i = 0; i < n; i++) { a[i] = 1.0; }
          }
        }"#;
        assert!(err(src).contains("reduction"));
    }

    #[test]
    fn duplicate_param_rejected() {
        assert!(err("void f(int n, int n) { }").contains("duplicate parameter"));
    }

    #[test]
    fn shadowing_in_nested_scope_is_allowed() {
        // The inner block opens a new scope, so re-declaring `i` is fine.
        parse_program(
            "void f(int n, float a[n]) { for (int i = 0; i < n; i++) { { int i = 0; a[i] = 1.0; } } }",
        )
        .unwrap();
    }

    #[test]
    fn redeclaration_in_same_scope_rejected() {
        assert!(err("void f(int n) { int x = 0; int x = 1; }").contains("redeclared"));
    }

    #[test]
    fn expr_type_helper() {
        let p = parse_program("void f(int n, double x, float a[n]) { }").unwrap();
        let f = &p.functions[0];
        let locals = HashMap::new();
        assert_eq!(
            expr_type(f, &locals, &Expr::bin(BinOp::Add, Expr::var("n"), Expr::var("x"))).unwrap(),
            ScalarTy::F64
        );
    }
}
