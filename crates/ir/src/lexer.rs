//! Hand-written lexer for MiniACC.
//!
//! `#pragma acc ...` lines are lexed into a dedicated [`Tok::PragmaAcc`]
//! token carrying the rest-of-line tokens, because directives are
//! line-oriented while the rest of the language is free-form. A trailing
//! backslash continues a directive onto the next line, as in C.

use crate::span::Span;
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `#pragma acc` directive: the directive-body tokens.
    PragmaAcc(Vec<Token>),
    /// Punctuation / operator, by its exact spelling.
    Punct(&'static str),
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub tok: Tok,
    /// Source location.
    pub span: Span,
}

/// Lexical errors.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at bytes {}..{}", self.message, self.span.start, self.span.end)
    }
}

impl std::error::Error for LexError {}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--", "(", ")",
    "[", "]", "{", "}", ",", ";", ":", "+", "-", "*", "/", "%", "<", ">", "=", "!", ".",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    /// Skip whitespace and comments. If `stop_at_newline`, a newline (not
    /// escaped by `\`) terminates the scan and is consumed.
    /// Returns true if it stopped at a newline.
    fn skip_trivia(&mut self, stop_at_newline: bool) -> bool {
        loop {
            match self.peek() {
                Some(b'\n') if stop_at_newline => {
                    self.pos += 1;
                    return true;
                }
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'\\') if stop_at_newline => {
                    // Line continuation inside a directive.
                    let mut p = self.pos + 1;
                    while self.src.get(p).is_some_and(|&c| c == b' ' || c == b'\r') {
                        p += 1;
                    }
                    if self.src.get(p) == Some(&b'\n') {
                        self.pos = p + 1;
                    } else {
                        return false;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while self.peek().is_some_and(|c| c != b'\n') {
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.pos += 2;
                    while self.pos + 1 < self.src.len()
                        && !(self.src[self.pos] == b'*' && self.src[self.pos + 1] == b'/')
                    {
                        self.pos += 1;
                    }
                    self.pos = (self.pos + 2).min(self.src.len());
                }
                _ => return false,
            }
        }
    }

    fn lex_one(&mut self) -> Result<Option<Token>, LexError> {
        let start = self.pos;
        let c = match self.peek() {
            Some(c) => c,
            None => return Ok(None),
        };

        if c.is_ascii_alphabetic() || c == b'_' {
            while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_string();
            return Ok(Some(Token { tok: Tok::Ident(text), span: Span::new(start, self.pos) }));
        }

        if c.is_ascii_digit() || (c == b'.' && self.peek2().is_some_and(|d| d.is_ascii_digit())) {
            return self.lex_number(start).map(Some);
        }

        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                self.pos += p.len();
                return Ok(Some(Token { tok: Tok::Punct(p), span: Span::new(start, self.pos) }));
            }
        }

        Err(LexError {
            message: format!("unexpected character {:?}", c as char),
            span: Span::new(start, start + 1),
        })
    }

    fn lex_number(&mut self, start: usize) -> Result<Token, LexError> {
        let mut is_float = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') && self.peek2() != Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                self.pos = save;
            }
        }
        // Accept (and ignore) C suffixes f/F/l/L/u/U.
        let mut suffix_float = false;
        while let Some(s) = self.peek() {
            match s {
                b'f' | b'F' => {
                    suffix_float = true;
                    self.pos += 1;
                }
                b'l' | b'L' | b'u' | b'U' => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let numeric: String = text.chars().filter(|c| !"fFlLuU".contains(*c)).collect();
        let span = Span::new(start, self.pos);
        if is_float || suffix_float {
            numeric
                .parse::<f64>()
                .map(|v| Token { tok: Tok::Float(v), span })
                .map_err(|_| LexError { message: format!("bad float literal {text:?}"), span })
        } else {
            numeric
                .parse::<i64>()
                .map(|v| Token { tok: Tok::Int(v), span })
                .map_err(|_| LexError { message: format!("bad integer literal {text:?}"), span })
        }
    }
}

/// Lex `src` into tokens. Directives become single [`Tok::PragmaAcc`]
/// tokens containing their body tokens.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer { src: src.as_bytes(), pos: 0 };
    let mut out = Vec::new();
    loop {
        lx.skip_trivia(false);
        let start = lx.pos;
        if lx.peek() == Some(b'#') {
            lx.pos += 1;
            lx.skip_trivia(false);
            let kw = lx.lex_one()?;
            match kw {
                Some(Token { tok: Tok::Ident(ref s), .. }) if s == "pragma" => {}
                _ => {
                    return Err(LexError {
                        message: "expected `pragma` after `#`".into(),
                        span: Span::new(start, lx.pos),
                    })
                }
            }
            // Directive body tokens until (unescaped) end of line.
            let mut body = Vec::new();
            loop {
                if lx.skip_trivia(true) || lx.peek().is_none() {
                    break;
                }
                match lx.lex_one()? {
                    Some(t) => body.push(t),
                    None => break,
                }
            }
            // Require the `acc` prefix; other pragmas are not supported.
            match body.first() {
                Some(Token { tok: Tok::Ident(s), .. }) if s == "acc" => {
                    body.remove(0);
                }
                _ => {
                    return Err(LexError {
                        message: "only `#pragma acc` directives are supported".into(),
                        span: Span::new(start, lx.pos),
                    })
                }
            }
            out.push(Token { tok: Tok::PragmaAcc(body), span: Span::new(start, lx.pos) });
            continue;
        }
        match lx.lex_one()? {
            Some(t) => out.push(t),
            None => break,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let ts = kinds("foo = 12 + 3.5 * bar_2;");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("foo".into()),
                Tok::Punct("="),
                Tok::Int(12),
                Tok::Punct("+"),
                Tok::Float(3.5),
                Tok::Punct("*"),
                Tok::Ident("bar_2".into()),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        let ts = kinds("a<=b >= c == d != e && f || g += h");
        let puncts: Vec<&str> = ts
            .iter()
            .filter_map(|t| if let Tok::Punct(p) = t { Some(*p) } else { None })
            .collect();
        assert_eq!(puncts, vec!["<=", ">=", "==", "!=", "&&", "||", "+="]);
    }

    #[test]
    fn comments_are_skipped() {
        let ts = kinds("a // line comment\n + /* block\ncomment */ b");
        assert_eq!(
            ts,
            vec![Tok::Ident("a".into()), Tok::Punct("+"), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn float_suffixes() {
        assert_eq!(kinds("1.5f"), vec![Tok::Float(1.5)]);
        assert_eq!(kinds("2f"), vec![Tok::Float(2.0)]);
        assert_eq!(kinds("3L"), vec![Tok::Int(3)]);
        assert_eq!(kinds("1e3"), vec![Tok::Float(1000.0)]);
        assert_eq!(kinds("1.5e-2"), vec![Tok::Float(0.015)]);
    }

    #[test]
    fn pragma_token_captures_body() {
        let ts = kinds("#pragma acc loop gang vector\nfor");
        match &ts[0] {
            Tok::PragmaAcc(body) => {
                let words: Vec<String> = body
                    .iter()
                    .filter_map(|t| {
                        if let Tok::Ident(s) = &t.tok {
                            Some(s.clone())
                        } else {
                            None
                        }
                    })
                    .collect();
                assert_eq!(words, vec!["loop", "gang", "vector"]);
            }
            other => panic!("expected pragma, got {other:?}"),
        }
        assert_eq!(ts[1], Tok::Ident("for".into()));
    }

    #[test]
    fn pragma_line_continuation() {
        let ts = kinds("#pragma acc kernels \\\n  copyin(a)\nx");
        match &ts[0] {
            Tok::PragmaAcc(body) => assert_eq!(body.len(), 5), // kernels copyin ( a )
            other => panic!("expected pragma, got {other:?}"),
        }
        assert_eq!(ts[1], Tok::Ident("x".into()));
    }

    #[test]
    fn non_acc_pragma_rejected() {
        assert!(lex("#pragma omp parallel\n").is_err());
    }

    #[test]
    fn bad_char_reports_span() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.span.start, 2);
    }
}
