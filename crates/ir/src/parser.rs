//! Recursive-descent parser for MiniACC.
//!
//! Grammar sketch (see crate docs for examples):
//!
//! ```text
//! program   := function*
//! function  := "void" IDENT "(" params ")" block
//! param     := ["const"] type IDENT dims?        // dims => array param
//! dims      := ("[" [expr ":"] expr "]")+        // optional Fortran lb
//! stmt      := decl | assign | for | if | block | pragma-region
//! pragma    := kernels/parallel (+ clauses) applied to next block/loop
//!            | loop-directive applied to next for
//! ```

use crate::ast::*;
use crate::directive::*;
use crate::lexer::{Tok, Token};
use crate::span::Span;
use std::fmt;

/// Syntax errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at bytes {}..{}", self.message, self.span.start, self.span.end)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parse a token stream (from [`crate::lexer::lex`]) into a [`Program`].
pub fn parse(tokens: &[Token], _src: &str) -> PResult<Program> {
    let mut p = Parser { toks: tokens, pos: 0 };
    let mut functions = Vec::new();
    while !p.at_end() {
        functions.push(p.function()?);
    }
    Ok(Program { functions })
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn cur_span(&self) -> Span {
        self.peek()
            .map(|t| t.span)
            .unwrap_or_else(|| self.toks.last().map(|t| t.span).unwrap_or_default())
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError { message: msg.into(), span: self.cur_span() })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Punct(q), .. }) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.describe_cur()))
        }
    }

    fn describe_cur(&self) -> String {
        match self.peek() {
            None => "end of input".into(),
            Some(Token { tok: Tok::Ident(s), .. }) => format!("`{s}`"),
            Some(Token { tok: Tok::Int(v), .. }) => format!("`{v}`"),
            Some(Token { tok: Tok::Float(v), .. }) => format!("`{v}`"),
            Some(Token { tok: Tok::Punct(p), .. }) => format!("`{p}`"),
            Some(Token { tok: Tok::PragmaAcc(_), .. }) => "`#pragma acc`".into(),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.describe_cur()))
        }
    }

    fn expect_ident(&mut self) -> PResult<Ident> {
        match self.bump() {
            Some(Token { tok: Tok::Ident(s), .. }) => Ok(Ident::new(s)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected identifier, found {}", self.describe_cur()))
            }
        }
    }

    fn peek_scalar_ty(&self) -> Option<ScalarTy> {
        match self.peek() {
            Some(Token { tok: Tok::Ident(s), .. }) => match s.as_str() {
                "int" => Some(ScalarTy::I32),
                "long" => Some(ScalarTy::I64),
                "float" => Some(ScalarTy::F32),
                "double" => Some(ScalarTy::F64),
                _ => None,
            },
            _ => None,
        }
    }

    // ---------------------------------------------------------- functions

    fn function(&mut self) -> PResult<Function> {
        let start = self.cur_span();
        self.expect_kw("void")?;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.param()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let sig_end = self.cur_span();
        self.expect_punct("{")?;
        let body = self.stmt_list_until_rbrace()?;
        Ok(Function { name, params, body, span: start.merge(sig_end) })
    }

    fn param(&mut self) -> PResult<Param> {
        let is_const = self.eat_kw("const");
        let ty = match self.peek_scalar_ty() {
            Some(t) => {
                self.pos += 1;
                t
            }
            None => return self.err(format!("expected type, found {}", self.describe_cur())),
        };
        let name = self.expect_ident()?;
        if matches!(self.peek(), Some(Token { tok: Tok::Punct("["), .. })) {
            let mut dims = Vec::new();
            while self.eat_punct("[") {
                dims.push(self.dim()?);
                self.expect_punct("]")?;
            }
            Ok(Param::Array { name, ty: ArrayTy { elem: ty, dims }, is_const })
        } else {
            if is_const {
                return self.err("`const` is only meaningful on array parameters");
            }
            Ok(Param::Scalar { name, ty })
        }
    }

    fn dim(&mut self) -> PResult<Dim> {
        let first = self.expr()?;
        if self.eat_punct(":") {
            let len = self.expr()?;
            Ok(Dim { lower: Some(first), extent: extent_of(len) })
        } else {
            Ok(Dim { lower: None, extent: extent_of(first) })
        }
    }

    // --------------------------------------------------------- statements

    fn stmt_list_until_rbrace(&mut self) -> PResult<Vec<Stmt>> {
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if self.at_end() {
                return self.err("unexpected end of input, expected `}`");
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        // Directive?
        if let Some(Token { tok: Tok::PragmaAcc(body), span }) = self.peek() {
            let span = *span;
            let body = body.clone();
            self.pos += 1;
            return self.directive_stmt(&body, span);
        }

        // Declaration?
        if let Some(ty) = self.peek_scalar_ty() {
            self.pos += 1;
            let name = self.expect_ident()?;
            let init = if self.eat_punct("=") { Some(self.expr()?) } else { None };
            self.expect_punct(";")?;
            return Ok(Stmt::DeclScalar { name, ty, init });
        }

        match self.peek() {
            Some(Token { tok: Tok::Punct("{"), .. }) => {
                self.pos += 1;
                Ok(Stmt::Block(self.stmt_list_until_rbrace()?))
            }
            Some(Token { tok: Tok::Ident(s), .. }) if s == "for" => {
                self.for_loop(None).map(|f| Stmt::For(Box::new(f)))
            }
            Some(Token { tok: Tok::Ident(s), .. }) if s == "if" => self.if_stmt(),
            _ => self.assign_stmt(),
        }
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        self.expect_kw("if")?;
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then_body = self.stmt_or_block()?;
        let else_body = if self.eat_kw("else") { self.stmt_or_block()? } else { Vec::new() };
        Ok(Stmt::If { cond, then_body, else_body })
    }

    fn stmt_or_block(&mut self) -> PResult<Vec<Stmt>> {
        if self.eat_punct("{") {
            self.stmt_list_until_rbrace()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn assign_stmt(&mut self) -> PResult<Stmt> {
        let lhs = self.lvalue()?;
        let op = if self.eat_punct("=") {
            AssignOp::Assign
        } else if self.eat_punct("+=") {
            AssignOp::AddAssign
        } else if self.eat_punct("-=") {
            AssignOp::SubAssign
        } else if self.eat_punct("*=") {
            AssignOp::MulAssign
        } else if self.eat_punct("/=") {
            AssignOp::DivAssign
        } else {
            return self.err(format!("expected assignment operator, found {}", self.describe_cur()));
        };
        let rhs = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign { lhs, op, rhs })
    }

    fn lvalue(&mut self) -> PResult<LValue> {
        let name = self.expect_ident()?;
        if matches!(self.peek(), Some(Token { tok: Tok::Punct("["), .. })) {
            let mut indices = Vec::new();
            while self.eat_punct("[") {
                indices.push(self.expr()?);
                self.expect_punct("]")?;
            }
            Ok(LValue::ArrayRef(ArrayRef { array: name, indices }))
        } else {
            Ok(LValue::Var(name))
        }
    }

    fn for_loop(&mut self, directive: Option<LoopDirective>) -> PResult<ForLoop> {
        let start = self.cur_span();
        self.expect_kw("for")?;
        self.expect_punct("(")?;
        let declares_var = self.eat_kw("int");
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let lo = self.expr()?;
        self.expect_punct(";")?;
        let cond_var = self.expect_ident()?;
        if cond_var != var {
            return self.err(format!(
                "loop condition must test the induction variable `{var}`, found `{cond_var}`"
            ));
        }
        let cmp = if self.eat_punct("<=") {
            LoopCmp::Le
        } else if self.eat_punct("<") {
            LoopCmp::Lt
        } else if self.eat_punct(">=") {
            LoopCmp::Ge
        } else if self.eat_punct(">") {
            LoopCmp::Gt
        } else {
            return self.err("expected loop comparison (<, <=, >, >=)");
        };
        let bound = self.expr()?;
        self.expect_punct(";")?;
        let step = self.loop_step(&var)?;
        self.expect_punct(")")?;
        if cmp.is_downward() != (step < 0) {
            return self.err("loop comparison direction must match the step sign");
        }
        let body = self.stmt_or_block()?;
        let end = self.cur_span();
        Ok(ForLoop {
            var,
            declares_var,
            lo,
            cmp,
            bound,
            step,
            directive,
            body,
            span: start.merge(end),
        })
    }

    fn loop_step(&mut self, var: &Ident) -> PResult<i64> {
        // i++ | i-- | ++i | --i | i += K | i -= K
        if self.eat_punct("++") {
            let v = self.expect_ident()?;
            if &v != var {
                return self.err("loop step must update the induction variable");
            }
            return Ok(1);
        }
        if self.eat_punct("--") {
            let v = self.expect_ident()?;
            if &v != var {
                return self.err("loop step must update the induction variable");
            }
            return Ok(-1);
        }
        let v = self.expect_ident()?;
        if &v != var {
            return self.err("loop step must update the induction variable");
        }
        if self.eat_punct("++") {
            Ok(1)
        } else if self.eat_punct("--") {
            Ok(-1)
        } else if self.eat_punct("+=") {
            match self.expr()?.as_const() {
                Some(k) if k > 0 => Ok(k),
                _ => self.err("loop step must be a positive constant"),
            }
        } else if self.eat_punct("-=") {
            match self.expr()?.as_const() {
                Some(k) if k > 0 => Ok(-k),
                _ => self.err("loop step must be a positive constant"),
            }
        } else {
            self.err("expected `++`, `--`, `+=` or `-=` in loop step")
        }
    }

    // --------------------------------------------------------- directives

    fn directive_stmt(&mut self, body: &[Token], span: Span) -> PResult<Stmt> {
        let mut d = Parser { toks: body, pos: 0 };
        if d.eat_kw("loop") {
            let dir = d.loop_directive()?;
            let f = self.for_loop(Some(dir))?;
            return Ok(Stmt::For(Box::new(f)));
        }
        let construct = if d.eat_kw("kernels") {
            AccConstruct::Kernels
        } else if d.eat_kw("parallel") {
            AccConstruct::Parallel
        } else {
            return d.err(format!(
                "expected `kernels`, `parallel` or `loop` directive, found {}",
                d.describe_cur()
            ));
        };
        // `kernels loop` / `parallel loop` combined form.
        let combined_loop = d.eat_kw("loop");
        let mut clauses = RegionClauses::default();
        let mut loop_dir = LoopDirective::default();
        loop {
            if d.at_end() {
                break;
            }
            if !d.region_clause(&mut clauses)? {
                if combined_loop && d.loop_clause(&mut loop_dir)? {
                    continue;
                }
                return d.err(format!("unknown clause {}", d.describe_cur()));
            }
        }
        let directive = RegionDirective { construct, clauses };
        let body_stmts = if combined_loop {
            let dir = if loop_dir == LoopDirective::default() {
                LoopDirective::gang_vector()
            } else {
                loop_dir
            };
            vec![Stmt::For(Box::new(self.for_loop(Some(dir))?))]
        } else {
            self.stmt_or_block()?
        };
        Ok(Stmt::Region(Box::new(OffloadRegion { directive, body: body_stmts, span })))
    }

    /// Try to parse one region clause; returns false if the cursor does not
    /// start a known region clause.
    fn region_clause(&mut self, clauses: &mut RegionClauses) -> PResult<bool> {
        let kw = match self.peek() {
            Some(Token { tok: Tok::Ident(s), .. }) => s.clone(),
            _ => return Ok(false),
        };
        match kw.as_str() {
            "copyin" | "copyout" | "copy" | "create" | "present" => {
                self.pos += 1;
                let dir = match kw.as_str() {
                    "copyin" => DataDir::CopyIn,
                    "copyout" => DataDir::CopyOut,
                    "copy" => DataDir::Copy,
                    "create" => DataDir::Create,
                    _ => DataDir::Present,
                };
                let vars = self.paren_ident_list()?;
                clauses.data.push(DataClause { dir, vars });
                Ok(true)
            }
            "num_gangs" => {
                self.pos += 1;
                self.expect_punct("(")?;
                clauses.num_gangs = Some(self.expr()?);
                self.expect_punct(")")?;
                Ok(true)
            }
            "vector_length" => {
                self.pos += 1;
                self.expect_punct("(")?;
                clauses.vector_length = Some(self.expr()?);
                self.expect_punct(")")?;
                Ok(true)
            }
            "launch_bounds" => {
                self.pos += 1;
                self.expect_punct("(")?;
                let max_threads = self.expr()?;
                let min_blocks =
                    if self.eat_punct(",") { Some(self.expr()?) } else { None };
                self.expect_punct(")")?;
                clauses.launch_bounds = Some(LaunchBoundsClause { max_threads, min_blocks });
                Ok(true)
            }
            "dim" => {
                self.pos += 1;
                self.expect_punct("(")?;
                // One or more groups: ( [bounds] (arrays) , ... )
                loop {
                    clauses.dim_groups.push(self.dim_group()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
                Ok(true)
            }
            "small" => {
                self.pos += 1;
                clauses.small.extend(self.paren_ident_list()?);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// `([lb:len, ...]) (a, b, c)` or `(a, b, c)` — one `dim` group.
    fn dim_group(&mut self) -> PResult<DimGroup> {
        self.expect_punct("(")?;
        // Disambiguate bounds vs arrays: bounds contain `:`.
        let save = self.pos;
        let mut depth = 1usize;
        let mut has_colon = false;
        let mut i = self.pos;
        while depth > 0 && i < self.toks.len() {
            match &self.toks[i].tok {
                Tok::Punct("(") => depth += 1,
                Tok::Punct(")") => depth -= 1,
                Tok::Punct(":") if depth == 1 => has_colon = true,
                _ => {}
            }
            i += 1;
        }
        self.pos = save;
        if has_colon {
            let mut bounds = Vec::new();
            loop {
                let lower = self.expr()?;
                self.expect_punct(":")?;
                let len = self.expr()?;
                bounds.push(DimBound { lower, len });
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            self.expect_punct("(")?;
            let arrays = self.ident_list_until_rparen()?;
            Ok(DimGroup { bounds: Some(bounds), arrays })
        } else {
            let arrays = self.ident_list_until_rparen()?;
            Ok(DimGroup { bounds: None, arrays })
        }
    }

    fn loop_directive(&mut self) -> PResult<LoopDirective> {
        let mut dir = LoopDirective::default();
        while !self.at_end() {
            if !self.loop_clause(&mut dir)? {
                return self.err(format!("unknown loop clause {}", self.describe_cur()));
            }
        }
        Ok(dir)
    }

    fn loop_clause(&mut self, dir: &mut LoopDirective) -> PResult<bool> {
        if self.eat_kw("gang") {
            dir.gang = Some(self.optional_paren_expr()?);
            Ok(true)
        } else if self.eat_kw("vector") {
            dir.vector = Some(self.optional_paren_expr()?);
            Ok(true)
        } else if self.eat_kw("seq") {
            dir.seq = true;
            Ok(true)
        } else if self.eat_kw("independent") {
            dir.independent = true;
            Ok(true)
        } else if self.eat_kw("reduction") {
            self.expect_punct("(")?;
            let op = if self.eat_punct("+") {
                ReduceOp::Add
            } else if self.eat_punct("*") {
                ReduceOp::Mul
            } else if self.eat_kw("min") {
                ReduceOp::Min
            } else if self.eat_kw("max") {
                ReduceOp::Max
            } else {
                return self.err("expected reduction operator (+, *, min, max)");
            };
            self.expect_punct(":")?;
            loop {
                let var = self.expect_ident()?;
                dir.reductions.push(Reduction { op, var });
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn optional_paren_expr(&mut self) -> PResult<Option<Expr>> {
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            Ok(Some(e))
        } else {
            Ok(None)
        }
    }

    fn paren_ident_list(&mut self) -> PResult<Vec<Ident>> {
        self.expect_punct("(")?;
        self.ident_list_until_rparen()
    }

    fn ident_list_until_rparen(&mut self) -> PResult<Vec<Ident>> {
        let mut out = Vec::new();
        loop {
            out.push(self.expect_ident()?);
            if self.eat_punct(")") {
                break;
            }
            self.expect_punct(",")?;
        }
        Ok(out)
    }

    // -------------------------------------------------------- expressions

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_punct("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.shift_expr()?;
        loop {
            let op = if self.eat_punct("<=") {
                BinOp::Le
            } else if self.eat_punct("<") {
                BinOp::Lt
            } else if self.eat_punct(">=") {
                BinOp::Ge
            } else if self.eat_punct(">") {
                BinOp::Gt
            } else if self.eat_punct("==") {
                BinOp::Eq
            } else if self.eat_punct("!=") {
                BinOp::Ne
            } else {
                return Ok(lhs);
            };
            let rhs = self.shift_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn shift_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.add_expr()?;
        while self.eat_punct("<<") {
            let rhs = self.add_expr()?;
            lhs = Expr::bin(BinOp::Shl, lhs, rhs);
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        match self.peek() {
            Some(Token { tok: Tok::Int(v), .. }) => {
                let v = *v;
                self.pos += 1;
                Ok(Expr::IntLit(v))
            }
            Some(Token { tok: Tok::Float(v), .. }) => {
                let v = *v;
                self.pos += 1;
                Ok(Expr::FloatLit(v))
            }
            Some(Token { tok: Tok::Punct("("), .. }) => {
                self.pos += 1;
                // Cast or parenthesized expression?
                if let Some(ty) = self.peek_scalar_ty() {
                    if matches!(self.toks.get(self.pos + 1), Some(Token { tok: Tok::Punct(")"), .. }))
                    {
                        self.pos += 2;
                        let inner = self.unary_expr()?;
                        return Ok(Expr::Cast(ty, Box::new(inner)));
                    }
                }
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Token { tok: Tok::Ident(name), .. }) => {
                let name = name.clone();
                self.pos += 1;
                // Intrinsic call?
                if matches!(self.peek(), Some(Token { tok: Tok::Punct("("), .. })) {
                    let intr = match Intrinsic::from_name(&name) {
                        Some(i) => i,
                        None => return self.err(format!("unknown function `{name}`")),
                    };
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    return Ok(Expr::Call(intr, args));
                }
                // Array reference?
                if matches!(self.peek(), Some(Token { tok: Tok::Punct("["), .. })) {
                    let mut indices = Vec::new();
                    while self.eat_punct("[") {
                        indices.push(self.expr()?);
                        self.expect_punct("]")?;
                    }
                    return Ok(Expr::ArrayRef(ArrayRef { array: Ident::new(name), indices }));
                }
                Ok(Expr::Var(Ident::new(name)))
            }
            _ => self.err(format!("expected expression, found {}", self.describe_cur())),
        }
    }
}

fn extent_of(e: Expr) -> Extent {
    match e.as_const() {
        Some(c) => Extent::Const(c),
        None => Extent::Dynamic(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap(), src).unwrap_or_else(|e| panic!("{e}\nsource: {src}"))
    }

    fn parse_err(src: &str) -> ParseError {
        parse(&lex(src).unwrap(), src).unwrap_err()
    }

    #[test]
    fn minimal_function() {
        let p = parse_src("void f(int n) { }");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params.len(), 1);
    }

    #[test]
    fn array_params_with_vla_dims() {
        let p = parse_src("void f(int n, int m, float a[n][m+1], const double b[8]) {}");
        let f = &p.functions[0];
        match &f.params[2] {
            Param::Array { ty, is_const, .. } => {
                assert_eq!(ty.rank(), 2);
                assert!(!ty.is_static());
                assert!(!is_const);
            }
            other => panic!("expected array param, got {other:?}"),
        }
        match &f.params[3] {
            Param::Array { ty, is_const, .. } => {
                assert!(ty.is_static());
                assert_eq!(ty.static_len(), Some(8));
                assert!(is_const);
            }
            other => panic!("expected array param, got {other:?}"),
        }
    }

    #[test]
    fn fortran_style_lower_bounds() {
        let p = parse_src("void f(int nz, float a[1:nz][0:8]) {}");
        match &p.functions[0].params[1] {
            Param::Array { ty, .. } => {
                assert!(ty.dims[0].lower.is_some());
                assert_eq!(ty.dims[1].lower.as_ref().and_then(|e| e.as_const()), Some(0));
                assert_eq!(ty.dims[1].extent.as_const(), Some(8));
            }
            other => panic!("expected array param, got {other:?}"),
        }
    }

    #[test]
    fn region_with_clauses() {
        let src = r#"
        void f(int n, float a[n], float b[n]) {
          #pragma acc kernels copyin(a) copyout(b) dim((a, b)) small(a, b)
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              b[i] = a[i] * 2.0;
            }
          }
        }
        "#;
        let p = parse_src(src);
        let regions = p.functions[0].regions();
        assert_eq!(regions.len(), 1);
        let r = regions[0];
        assert_eq!(r.directive.construct, AccConstruct::Kernels);
        assert_eq!(r.directive.clauses.data.len(), 2);
        assert_eq!(r.directive.clauses.dim_groups.len(), 1);
        assert_eq!(r.directive.clauses.small.len(), 2);
        match &r.body[0] {
            Stmt::For(f) => assert!(f.is_parallelized()),
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn dim_clause_with_bounds() {
        let src = r#"
        void f(int nx, int ny, float a[ny][nx], float b[ny][nx]) {
          #pragma acc kernels dim((0:nx, 0:ny)(a, b))
          {
            #pragma acc loop gang vector
            for (int i = 0; i < nx; i++) { a[0][i] = b[0][i]; }
          }
        }
        "#;
        let p = parse_src(src);
        let r = &p.functions[0].regions()[0].directive.clauses;
        let g = &r.dim_groups[0];
        assert_eq!(g.bounds.as_ref().unwrap().len(), 2);
        assert_eq!(g.arrays.len(), 2);
    }

    #[test]
    fn combined_kernels_loop_form() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels loop gang(8) vector(64)
          for (int i = 0; i < n; i++) { a[i] = 1.0; }
        }
        "#;
        let p = parse_src(src);
        let r = &p.functions[0].regions()[0];
        match &r.body[0] {
            Stmt::For(f) => {
                let d = f.directive.as_ref().unwrap();
                assert_eq!(d.gang.as_ref().unwrap().as_ref().unwrap().as_const(), Some(8));
                assert_eq!(d.vector.as_ref().unwrap().as_ref().unwrap().as_const(), Some(64));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn reduction_clause() {
        let src = r#"
        void f(int n, float a[n], float s) {
          #pragma acc parallel
          {
            #pragma acc loop gang vector reduction(+:s)
            for (int i = 0; i < n; i++) { s += a[i]; }
          }
        }
        "#;
        let p = parse_src(src);
        let r = &p.functions[0].regions()[0];
        match &r.body[0] {
            Stmt::For(f) => {
                let red = &f.directive.as_ref().unwrap().reductions;
                assert_eq!(red.len(), 1);
                assert_eq!(red[0].op, ReduceOp::Add);
                assert_eq!(red[0].var.as_str(), "s");
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let p = parse_src("void f(float x) { x = 1.0 + 2.0 * 3.0; }");
        match &p.functions[0].body[0] {
            Stmt::Assign { rhs, .. } => match rhs {
                Expr::Binary(BinOp::Add, _, r) => {
                    assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn casts_and_intrinsics() {
        let p = parse_src("void f(int i, double x) { x = (double) i + sqrt(x); }");
        match &p.functions[0].body[0] {
            Stmt::Assign { rhs: Expr::Binary(BinOp::Add, l, r), .. } => {
                assert!(matches!(**l, Expr::Cast(ScalarTy::F64, _)));
                assert!(matches!(**r, Expr::Call(Intrinsic::Sqrt, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn downward_loop() {
        let p = parse_src("void f(int n, float a[n]) { for (int i = n - 1; i >= 0; i--) { a[i] = 0.0; } }");
        match &p.functions[0].body[0] {
            Stmt::For(f) => {
                assert_eq!(f.step, -1);
                assert_eq!(f.cmp, LoopCmp::Ge);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn seq_loop_directive() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              #pragma acc loop seq
              for (int k = 0; k < 4; k++) { a[i] += 1.0; }
            }
          }
        }
        "#;
        let p = parse_src(src);
        let r = &p.functions[0].regions()[0];
        match &r.body[0] {
            Stmt::For(outer) => match &outer.body[0] {
                Stmt::For(inner) => {
                    assert!(inner.is_sequential());
                    assert!(inner.directive.as_ref().unwrap().seq);
                }
                other => panic!("expected inner for, got {other:?}"),
            },
            other => panic!("expected outer for, got {other:?}"),
        }
    }

    #[test]
    fn error_on_mismatched_loop_var() {
        let e = parse_err("void f(int n) { for (int i = 0; j < n; i++) { } }");
        assert!(e.message.contains("induction variable"), "{e}");
    }

    #[test]
    fn error_on_unknown_clause() {
        let e = parse_err("void f(int n, float a[n]) { \n#pragma acc kernels bogus(a)\n { } }");
        assert!(e.message.contains("unknown clause"), "{e}");
    }

    #[test]
    fn error_on_unknown_function_call() {
        let e = parse_err("void f(float x) { x = frobnicate(x); }");
        assert!(e.message.contains("unknown function"), "{e}");
    }

    #[test]
    fn compound_assign_parse() {
        let p = parse_src("void f(int n, float a[n]) { a[0] += 2.0; a[1] *= 3.0; }");
        match &p.functions[0].body[0] {
            Stmt::Assign { op, .. } => assert_eq!(*op, AssignOp::AddAssign),
            other => panic!("unexpected {other:?}"),
        }
    }
}
