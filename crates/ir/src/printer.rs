//! Pretty-printer: emits MiniACC source from an AST.
//!
//! Used to (a) round-trip-test the parser, and (b) show the effect of
//! source-to-source transformations such as scalar replacement — mirroring
//! how the paper presents SAFARA's output (Figs. 4 and 6).

use crate::ast::*;
use crate::directive::*;
use std::fmt::Write;

/// Render a whole program as MiniACC source.
pub fn print_program(p: &Program) -> String {
    let mut s = String::new();
    for f in &p.functions {
        print_function_into(f, &mut s);
        s.push('\n');
    }
    s
}

/// Render a single function as MiniACC source.
pub fn print_function(f: &Function) -> String {
    let mut s = String::new();
    print_function_into(f, &mut s);
    s
}

/// Render a statement (used in tests and debugging).
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut s = String::new();
    stmt_into(stmt, 0, &mut s);
    s
}

/// Render an expression.
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    expr_into(e, 0, &mut s);
    s
}

fn print_function_into(f: &Function, s: &mut String) {
    write!(s, "void {}(", f.name).unwrap();
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match p {
            Param::Scalar { name, ty } => write!(s, "{ty} {name}").unwrap(),
            Param::Array { name, ty, is_const } => {
                if *is_const {
                    s.push_str("const ");
                }
                write!(s, "{} {}", ty.elem, name).unwrap();
                for d in &ty.dims {
                    s.push('[');
                    if let Some(lb) = &d.lower {
                        expr_into(lb, 0, s);
                        s.push(':');
                    }
                    match &d.extent {
                        Extent::Const(c) => write!(s, "{c}").unwrap(),
                        Extent::Dynamic(e) => expr_into(e, 0, s),
                    }
                    s.push(']');
                }
            }
        }
    }
    s.push_str(") {\n");
    for st in &f.body {
        stmt_into(st, 1, s);
    }
    s.push_str("}\n");
}

fn indent(n: usize, s: &mut String) {
    for _ in 0..n {
        s.push_str("  ");
    }
}

fn stmt_into(stmt: &Stmt, lvl: usize, s: &mut String) {
    match stmt {
        Stmt::DeclScalar { name, ty, init } => {
            indent(lvl, s);
            write!(s, "{ty} {name}").unwrap();
            if let Some(e) = init {
                s.push_str(" = ");
                expr_into(e, 0, s);
            }
            s.push_str(";\n");
        }
        Stmt::Assign { lhs, op, rhs } => {
            indent(lvl, s);
            lvalue_into(lhs, s);
            write!(s, " {} ", op.symbol()).unwrap();
            expr_into(rhs, 0, s);
            s.push_str(";\n");
        }
        Stmt::For(f) => {
            if let Some(d) = &f.directive {
                indent(lvl, s);
                s.push_str("#pragma acc loop");
                loop_directive_into(d, s);
                s.push('\n');
            }
            indent(lvl, s);
            write!(s, "for ({}{} = ", if f.declares_var { "int " } else { "" }, f.var).unwrap();
            expr_into(&f.lo, 0, s);
            write!(s, "; {} {} ", f.var, f.cmp.symbol()).unwrap();
            expr_into(&f.bound, 0, s);
            s.push_str("; ");
            match f.step {
                1 => write!(s, "{}++", f.var).unwrap(),
                -1 => write!(s, "{}--", f.var).unwrap(),
                k if k > 0 => write!(s, "{} += {k}", f.var).unwrap(),
                k => write!(s, "{} -= {}", f.var, -k).unwrap(),
            }
            s.push_str(") {\n");
            for st in &f.body {
                stmt_into(st, lvl + 1, s);
            }
            indent(lvl, s);
            s.push_str("}\n");
        }
        Stmt::If { cond, then_body, else_body } => {
            indent(lvl, s);
            s.push_str("if (");
            expr_into(cond, 0, s);
            s.push_str(") {\n");
            for st in then_body {
                stmt_into(st, lvl + 1, s);
            }
            indent(lvl, s);
            s.push('}');
            if !else_body.is_empty() {
                s.push_str(" else {\n");
                for st in else_body {
                    stmt_into(st, lvl + 1, s);
                }
                indent(lvl, s);
                s.push('}');
            }
            s.push('\n');
        }
        Stmt::Block(body) => {
            indent(lvl, s);
            s.push_str("{\n");
            for st in body {
                stmt_into(st, lvl + 1, s);
            }
            indent(lvl, s);
            s.push_str("}\n");
        }
        Stmt::Region(r) => {
            indent(lvl, s);
            write!(s, "#pragma acc {}", r.directive.construct.keyword()).unwrap();
            region_clauses_into(&r.directive.clauses, s);
            s.push('\n');
            indent(lvl, s);
            s.push_str("{\n");
            for st in &r.body {
                stmt_into(st, lvl + 1, s);
            }
            indent(lvl, s);
            s.push_str("}\n");
        }
    }
}

fn region_clauses_into(c: &RegionClauses, s: &mut String) {
    for d in &c.data {
        write!(s, " {}(", d.dir.keyword()).unwrap();
        idents_into(&d.vars, s);
        s.push(')');
    }
    if let Some(e) = &c.num_gangs {
        s.push_str(" num_gangs(");
        expr_into(e, 0, s);
        s.push(')');
    }
    if let Some(e) = &c.vector_length {
        s.push_str(" vector_length(");
        expr_into(e, 0, s);
        s.push(')');
    }
    if let Some(lb) = &c.launch_bounds {
        s.push_str(" launch_bounds(");
        expr_into(&lb.max_threads, 0, s);
        if let Some(b) = &lb.min_blocks {
            s.push_str(", ");
            expr_into(b, 0, s);
        }
        s.push(')');
    }
    if !c.dim_groups.is_empty() {
        s.push_str(" dim(");
        for (i, g) in c.dim_groups.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            if let Some(bounds) = &g.bounds {
                s.push('(');
                for (j, b) in bounds.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    expr_into(&b.lower, 0, s);
                    s.push(':');
                    expr_into(&b.len, 0, s);
                }
                s.push(')');
            }
            s.push('(');
            idents_into(&g.arrays, s);
            s.push(')');
        }
        s.push(')');
    }
    if !c.small.is_empty() {
        s.push_str(" small(");
        idents_into(&c.small, s);
        s.push(')');
    }
}

fn loop_directive_into(d: &LoopDirective, s: &mut String) {
    if let Some(g) = &d.gang {
        s.push_str(" gang");
        if let Some(e) = g {
            s.push('(');
            expr_into(e, 0, s);
            s.push(')');
        }
    }
    if let Some(v) = &d.vector {
        s.push_str(" vector");
        if let Some(e) = v {
            s.push('(');
            expr_into(e, 0, s);
            s.push(')');
        }
    }
    if d.seq {
        s.push_str(" seq");
    }
    if d.independent {
        s.push_str(" independent");
    }
    for r in &d.reductions {
        write!(s, " reduction({}:{})", r.op.symbol(), r.var).unwrap();
    }
}

fn idents_into(ids: &[Ident], s: &mut String) {
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(id.as_str());
    }
}

fn lvalue_into(lv: &LValue, s: &mut String) {
    match lv {
        LValue::Var(v) => s.push_str(v.as_str()),
        LValue::ArrayRef(a) => array_ref_into(a, s),
    }
}

fn array_ref_into(a: &ArrayRef, s: &mut String) {
    s.push_str(a.array.as_str());
    for ix in &a.indices {
        s.push('[');
        expr_into(ix, 0, s);
        s.push(']');
    }
}

/// Binding power for parenthesization (higher binds tighter).
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Binary(op, ..) => match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Shl => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
        },
        Expr::Unary(..) | Expr::Cast(..) => 7,
        _ => 8,
    }
}

fn expr_into(e: &Expr, min_prec: u8, s: &mut String) {
    let p = prec(e);
    let need_paren = p < min_prec;
    if need_paren {
        s.push('(');
    }
    match e {
        Expr::IntLit(v) => write!(s, "{v}").unwrap(),
        Expr::FloatLit(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                write!(s, "{v:.1}").unwrap();
            } else {
                write!(s, "{v}").unwrap();
            }
        }
        Expr::Var(v) => s.push_str(v.as_str()),
        Expr::ArrayRef(a) => array_ref_into(a, s),
        Expr::Unary(op, inner) => {
            s.push_str(match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            });
            expr_into(inner, p + 1, s);
        }
        Expr::Binary(op, l, r) => {
            expr_into(l, p, s);
            write!(s, " {} ", op.symbol()).unwrap();
            // Left-associative: right operand needs strictly higher prec.
            expr_into(r, p + 1, s);
        }
        Expr::Call(intr, args) => {
            s.push_str(intr.name());
            s.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                expr_into(a, 0, s);
            }
            s.push(')');
        }
        Expr::Cast(ty, inner) => {
            write!(s, "({ty}) ").unwrap();
            expr_into(inner, p + 1, s);
        }
    }
    if need_paren {
        s.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    /// Round-trip: parse → print → parse → print must be a fixed point.
    /// (We compare printed forms, not ASTs, because spans differ between
    /// the original and printed source.)
    fn roundtrip(src: &str) {
        let p1 = parse_program(src).expect("first parse");
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        let printed2 = print_program(&p2);
        assert_eq!(printed, printed2, "round-trip not a fixed point");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("void f(int n, float a[n]) { a[0] = 1.0; }");
    }

    #[test]
    fn roundtrip_full_region() {
        roundtrip(
            r#"
            void stencil(int n, const float in[n][n], float out[n][n]) {
              #pragma acc kernels copyin(in) copyout(out) small(in, out)
              {
                #pragma acc loop gang
                for (int j = 1; j < n - 1; j++) {
                  #pragma acc loop vector
                  for (int i = 1; i < n - 1; i++) {
                    out[j][i] = 0.25 * (in[j - 1][i] + in[j + 1][i] + in[j][i - 1] + in[j][i + 1]);
                  }
                }
              }
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_dim_groups_and_bounds() {
        roundtrip(
            r#"
            void f(int nx, int ny, float a[ny][nx], float b[ny][nx], float c[ny][nx]) {
              #pragma acc kernels dim((0:nx, 0:ny)(a, b, c)) small(a, b, c)
              {
                #pragma acc loop gang vector
                for (int i = 0; i < nx; i++) { a[0][i] = b[0][i] + c[0][i]; }
              }
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_launch_bounds() {
        roundtrip(
            r#"
            void f(int n, float a[n], float b[n]) {
              #pragma acc kernels launch_bounds(256, 4) copyin(b) copyout(a)
              {
                #pragma acc loop gang vector
                for (int i = 0; i < n; i++) { a[i] = b[i]; }
              }
            }
            "#,
        );
        // Single-argument form (min_blocks defaults to 1).
        roundtrip(
            r#"
            void f(int n, float a[n]) {
              #pragma acc parallel launch_bounds(128)
              {
                #pragma acc loop gang vector
                for (int i = 0; i < n; i++) { a[i] = 0.0; }
              }
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_seq_loop_and_reduction() {
        roundtrip(
            r#"
            void f(int n, float a[n], float s) {
              #pragma acc parallel num_gangs(4) vector_length(128)
              {
                #pragma acc loop gang vector reduction(+:s)
                for (int i = 0; i < n; i++) {
                  #pragma acc loop seq
                  for (int k = 0; k < 8; k++) { s += a[i]; }
                }
              }
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_precedence_preserved() {
        roundtrip("void f(float x, float y) { x = (x + y) * (x - y) / (1.0 + x * y); }");
        roundtrip("void f(int a, int b, int c) { a = b % (c + 1) - -b; }");
        roundtrip("void f(int a, int b) { if (a < b && !(a == 0) || b > 2) { a = 1; } else { a = 2; } }");
    }

    #[test]
    fn roundtrip_casts() {
        roundtrip("void f(int i, double x) { x = (double) i * 2.0 + (double) (i + 1); }");
    }

    #[test]
    fn roundtrip_downward_and_strided_loops() {
        roundtrip("void f(int n, float a[n]) { for (int i = n - 1; i >= 0; i--) { a[i] = 0.0; } }");
        roundtrip("void f(int n, float a[n]) { for (int i = 0; i < n; i += 2) { a[i] = 0.0; } }");
    }
}
