//! The MiniACC abstract syntax tree.
//!
//! A translation unit ([`Program`]) is a list of functions. Each function's
//! body is ordinary structured code in which *offload regions* (an
//! `#pragma acc kernels` / `parallel` directive applied to a block or loop)
//! mark the code that is compiled for the device.
//!
//! Array parameters may have *runtime* dimensions ("VLA"s in C, allocatable
//! arrays in Fortran). Each runtime dimension carries an optional lower
//! bound (Fortran-style `a[1:nz]`), defaulting to 0 (C-style). At code
//! generation these are materialized as dope-vector scalars — exactly the
//! temporaries the paper's `dim` clause eliminates.

use crate::directive::{LoopDirective, RegionDirective};
use crate::span::Span;
use std::fmt;
use std::sync::Arc;

/// An interned-ish identifier. Cheap to clone, compares by string value.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ident(pub Arc<str>);

impl Ident {
    /// Create an identifier from any string-like value.
    pub fn new(s: impl AsRef<str>) -> Self {
        Ident(Arc::from(s.as_ref()))
    }

    /// View as `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.0)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

/// Scalar value types of MiniACC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarTy {
    /// `int` — 32-bit signed integer.
    I32,
    /// `long` — 64-bit signed integer.
    I64,
    /// `float` — IEEE-754 binary32.
    F32,
    /// `double` — IEEE-754 binary64.
    F64,
}

impl ScalarTy {
    /// Size of a value of this type in bytes.
    pub fn size_bytes(self) -> u32 {
        match self {
            ScalarTy::I32 | ScalarTy::F32 => 4,
            ScalarTy::I64 | ScalarTy::F64 => 8,
        }
    }

    /// True for `float`/`double`.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarTy::F32 | ScalarTy::F64)
    }

    /// True for `int`/`long`.
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// C keyword for the type.
    pub fn keyword(self) -> &'static str {
        match self {
            ScalarTy::I32 => "int",
            ScalarTy::I64 => "long",
            ScalarTy::F32 => "float",
            ScalarTy::F64 => "double",
        }
    }

    /// The "wider" of two numeric types under C-like usual arithmetic
    /// conversions (float beats int; wider beats narrower).
    pub fn unify(self, other: ScalarTy) -> ScalarTy {
        use ScalarTy::*;
        match (self, other) {
            (F64, _) | (_, F64) => F64,
            (F32, _) | (_, F32) => F32,
            (I64, _) | (_, I64) => I64,
            _ => I32,
        }
    }
}

impl fmt::Display for ScalarTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One dimension of an array type.
#[derive(Debug, Clone, PartialEq)]
pub struct Dim {
    /// Lower bound of the index range. `None` means 0 (C-style).
    pub lower: Option<Expr>,
    /// Number of elements along this dimension. Either a compile-time
    /// constant or an expression over integer scalar parameters (a VLA /
    /// allocatable dimension, which needs dope-vector temporaries).
    pub extent: Extent,
}

impl Dim {
    /// A C-style dimension with extent `e` and lower bound 0.
    pub fn extent(e: Extent) -> Self {
        Dim { lower: None, extent: e }
    }

    /// True if both bound and extent are compile-time constants.
    pub fn is_static(&self) -> bool {
        self.lower.as_ref().is_none_or(|e| e.as_const().is_some())
            && matches!(self.extent, Extent::Const(_))
    }
}

/// An array dimension extent.
#[derive(Debug, Clone, PartialEq)]
pub enum Extent {
    /// Known at compile time (a static array dimension).
    Const(i64),
    /// Runtime expression over integer parameters (VLA / allocatable).
    Dynamic(Expr),
}

impl Extent {
    /// The constant value, if static.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Extent::Const(c) => Some(*c),
            Extent::Dynamic(e) => e.as_const(),
        }
    }
}

/// The type of an array parameter: element type plus one `Dim` per
/// dimension, outermost first (row-major; the **last** dimension is
/// contiguous in memory).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayTy {
    /// Element scalar type.
    pub elem: ScalarTy,
    /// Dimensions, slowest-varying first.
    pub dims: Vec<Dim>,
}

impl ArrayTy {
    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// True if every dimension is a compile-time constant (a static array,
    /// for which the compiler already knows sizes and the `small` clause is
    /// unnecessary, per §IV-B of the paper).
    pub fn is_static(&self) -> bool {
        self.dims.iter().all(Dim::is_static)
    }

    /// Total element count if fully static.
    pub fn static_len(&self) -> Option<i64> {
        self.dims.iter().map(|d| d.extent.as_const()).try_fold(1i64, |a, e| e.map(|v| a * v))
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Param {
    /// A scalar (passed by value to the kernel).
    Scalar {
        /// Parameter name.
        name: Ident,
        /// Scalar type.
        ty: ScalarTy,
    },
    /// An array (passed as base pointer + dope vector).
    Array {
        /// Parameter name.
        name: Ident,
        /// Array type (element type + dims).
        ty: ArrayTy,
        /// Declared `const` — the region never writes it, making it a
        /// candidate for the GPU read-only data cache.
        is_const: bool,
    },
}

impl Param {
    /// The parameter's name.
    pub fn name(&self) -> &Ident {
        match self {
            Param::Scalar { name, .. } | Param::Array { name, .. } => name,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers only)
    Rem,
    /// `<<` (integers only; wrapping shift, the strength-reduced form of
    /// multiplication by a power of two)
    Shl,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// True for comparison and logical operators (result type is `int`).
    pub fn is_relational(self) -> bool {
        use BinOp::*;
        matches!(self, Lt | Le | Gt | Ge | Eq | Ne | And | Or)
    }

    /// Source token for the operator.
    pub fn symbol(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            And => "&&",
            Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical not `!`.
    Not,
}

/// Built-in math functions (lowered to GPU special-function instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `sqrt(x)`
    Sqrt,
    /// `exp(x)`
    Exp,
    /// `log(x)`
    Log,
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `fabs(x)` / `abs(x)`
    Abs,
    /// `pow(x, y)`
    Pow,
    /// `min(x, y)` / `fmin`
    Min,
    /// `max(x, y)` / `fmax`
    Max,
    /// `floor(x)`
    Floor,
}

impl Intrinsic {
    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Pow | Intrinsic::Min | Intrinsic::Max => 2,
            _ => 1,
        }
    }

    /// Canonical source name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Abs => "fabs",
            Intrinsic::Pow => "pow",
            Intrinsic::Min => "min",
            Intrinsic::Max => "max",
            Intrinsic::Floor => "floor",
        }
    }

    /// Look up an intrinsic by source name.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sqrt" => Intrinsic::Sqrt,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "fabs" | "abs" => Intrinsic::Abs,
            "pow" => Intrinsic::Pow,
            "min" | "fmin" => Intrinsic::Min,
            "max" | "fmax" => Intrinsic::Max,
            "floor" => Intrinsic::Floor,
            _ => return None,
        })
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Scalar variable reference.
    Var(Ident),
    /// Array element reference `a[i][j]...` (one index per dimension).
    ArrayRef(ArrayRef),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Intrinsic call.
    Call(Intrinsic, Vec<Expr>),
    /// Explicit cast `(type) expr`.
    Cast(ScalarTy, Box<Expr>),
}

/// An array element reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRef {
    /// The array being indexed.
    pub array: Ident,
    /// One index expression per dimension, outermost first.
    pub indices: Vec<Expr>,
}

impl Expr {
    /// Fold the expression to an integer constant if it is one (handles
    /// literals and integer arithmetic on literals).
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Expr::IntLit(v) => Some(*v),
            Expr::Unary(UnOp::Neg, e) => e.as_const().map(|v| v.wrapping_neg()),
            Expr::Binary(op, a, b) => {
                let (a, b) = (a.as_const()?, b.as_const()?);
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div if b != 0 => a.wrapping_div(b),
                    BinOp::Rem if b != 0 => a.wrapping_rem(b),
                    // Only in-range shift counts fold: the engines mask
                    // the count per operand width, so a 32-bit-safe range
                    // keeps the fold width-independent.
                    BinOp::Shl if (0..32).contains(&b) => a.wrapping_shl(b as u32),
                    _ => return None,
                })
            }
            _ => None,
        }
    }

    /// Convenience constructor for `a <op> b`.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: impl AsRef<str>) -> Expr {
        Expr::Var(Ident::new(name))
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

impl AssignOp {
    /// The underlying binary operator for compound assignments.
    pub fn bin_op(self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
            AssignOp::DivAssign => Some(BinOp::Div),
        }
    }

    /// Source token.
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::DivAssign => "/=",
        }
    }
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(Ident),
    /// An array element.
    ArrayRef(ArrayRef),
}

/// Loop comparison direction in the `for` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopCmp {
    /// `i < hi`
    Lt,
    /// `i <= hi`
    Le,
    /// `i > hi` (downward loop)
    Gt,
    /// `i >= hi` (downward loop)
    Ge,
}

impl LoopCmp {
    /// Source token.
    pub fn symbol(self) -> &'static str {
        match self {
            LoopCmp::Lt => "<",
            LoopCmp::Le => "<=",
            LoopCmp::Gt => ">",
            LoopCmp::Ge => ">=",
        }
    }

    /// True if the loop counts downward.
    pub fn is_downward(self) -> bool {
        matches!(self, LoopCmp::Gt | LoopCmp::Ge)
    }
}

/// A structured counted loop:
/// `for (var = lo; var CMP bound; var += step) body`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForLoop {
    /// Induction variable (always `int`).
    pub var: Ident,
    /// Whether the header declares the variable (`for (int i = ...`)
    /// as opposed to assigning an existing one.
    pub declares_var: bool,
    /// Initial value.
    pub lo: Expr,
    /// Comparison against `bound`.
    pub cmp: LoopCmp,
    /// Loop bound expression.
    pub bound: Expr,
    /// Step (constant; negative for downward loops). `i++` is step 1.
    pub step: i64,
    /// Optional `#pragma acc loop ...` attached to this loop.
    pub directive: Option<LoopDirective>,
    /// Loop body.
    pub body: Vec<Stmt>,
    /// Source location of the loop header.
    pub span: Span,
}

impl ForLoop {
    /// True if the directive schedules this loop across gangs/vector lanes
    /// (i.e. the loop is parallelized on the device).
    pub fn is_parallelized(&self) -> bool {
        self.directive.as_ref().is_some_and(|d| d.is_parallel())
    }

    /// True if the directive forces sequential execution (`seq`), or no
    /// scheduling clause is present.
    pub fn is_sequential(&self) -> bool {
        !self.is_parallelized()
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local scalar declaration with optional initializer.
    DeclScalar {
        /// Variable name.
        name: Ident,
        /// Scalar type.
        ty: ScalarTy,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Assignment (plain or compound).
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// `=`, `+=`, ...
        op: AssignOp,
        /// Right-hand side.
        rhs: Expr,
    },
    /// A `for` loop.
    For(Box<ForLoop>),
    /// An `if`/`else`.
    If {
        /// Condition (nonzero = true).
        cond: Expr,
        /// Then-branch statements.
        then_body: Vec<Stmt>,
        /// Else-branch statements (empty if absent).
        else_body: Vec<Stmt>,
    },
    /// A braced block (scoping only).
    Block(Vec<Stmt>),
    /// An offload region (`#pragma acc kernels` / `parallel` + block).
    Region(Box<OffloadRegion>),
}

/// An OpenACC offload region: the paper calls both `kernels` and
/// `parallel` regions "offload regions".
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadRegion {
    /// The region directive (construct kind and all clauses, including
    /// the proposed `dim` and `small` extensions).
    pub directive: RegionDirective,
    /// Region body: the loop nest(s) offloaded to the device.
    pub body: Vec<Stmt>,
    /// Source location of the `#pragma`.
    pub span: Span,
}

/// A function: name, parameters, body.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (becomes the kernel name prefix).
    pub name: Ident,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the signature.
    pub span: Span,
}

impl Function {
    /// Find a parameter by name.
    pub fn param(&self, name: &Ident) -> Option<&Param> {
        self.params.iter().find(|p| p.name() == name)
    }

    /// Iterate over the array parameters.
    pub fn array_params(&self) -> impl Iterator<Item = (&Ident, &ArrayTy, bool)> {
        self.params.iter().filter_map(|p| match p {
            Param::Array { name, ty, is_const } => Some((name, ty, *is_const)),
            Param::Scalar { .. } => None,
        })
    }

    /// All offload regions in the body, in source order.
    pub fn regions(&self) -> Vec<&OffloadRegion> {
        fn walk<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a OffloadRegion>) {
            for s in stmts {
                match s {
                    Stmt::Region(r) => out.push(r),
                    Stmt::For(f) => walk(&f.body, out),
                    Stmt::If { then_body, else_body, .. } => {
                        walk(then_body, out);
                        walk(else_body, out);
                    }
                    Stmt::Block(b) => walk(b, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }
}

/// A MiniACC translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Functions in declaration order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name.as_str() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_ty_sizes_and_unify() {
        assert_eq!(ScalarTy::I32.size_bytes(), 4);
        assert_eq!(ScalarTy::F64.size_bytes(), 8);
        assert_eq!(ScalarTy::I32.unify(ScalarTy::F32), ScalarTy::F32);
        assert_eq!(ScalarTy::I64.unify(ScalarTy::I32), ScalarTy::I64);
        assert_eq!(ScalarTy::F32.unify(ScalarTy::F64), ScalarTy::F64);
    }

    #[test]
    fn const_folding() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::IntLit(2), Expr::IntLit(3)),
            Expr::IntLit(4),
        );
        assert_eq!(e.as_const(), Some(20));
        assert_eq!(Expr::var("x").as_const(), None);
        let div0 = Expr::bin(BinOp::Div, Expr::IntLit(1), Expr::IntLit(0));
        assert_eq!(div0.as_const(), None);
    }

    #[test]
    fn array_ty_static_detection() {
        let stat = ArrayTy {
            elem: ScalarTy::F32,
            dims: vec![Dim::extent(Extent::Const(8)), Dim::extent(Extent::Const(4))],
        };
        assert!(stat.is_static());
        assert_eq!(stat.static_len(), Some(32));

        let dynamic = ArrayTy {
            elem: ScalarTy::F32,
            dims: vec![Dim::extent(Extent::Dynamic(Expr::var("n")))],
        };
        assert!(!dynamic.is_static());
        assert_eq!(dynamic.static_len(), None);
    }

    #[test]
    fn intrinsic_lookup_roundtrip() {
        for i in [
            Intrinsic::Sqrt,
            Intrinsic::Exp,
            Intrinsic::Log,
            Intrinsic::Sin,
            Intrinsic::Cos,
            Intrinsic::Abs,
            Intrinsic::Pow,
            Intrinsic::Min,
            Intrinsic::Max,
            Intrinsic::Floor,
        ] {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
        assert_eq!(Intrinsic::from_name("nosuch"), None);
    }
}
