//! Byte-span source locations and a generic `Spanned<T>` wrapper.

/// A half-open byte range `[start, end)` into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Construct a span from byte offsets.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start: start as u32, end: end as u32 }
    }

    /// A zero-width span used for synthesized nodes (e.g. code created by
    /// the scalar-replacement transformation rather than parsed).
    pub const SYNTH: Span = Span { start: 0, end: 0 };

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// 1-based (line, column) of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src[..(self.start as usize).min(src.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.len() - upto.rfind('\n').map(|p| p + 1).unwrap_or(0) + 1;
        (line, col)
    }

    /// The text the span covers within `src`.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start as usize..(self.end as usize).min(src.len())]
    }
}

/// A value together with the source span it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub node: T,
    /// Where in the source it appeared.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Wrap `node` with `span`.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(4, 8);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(4, 12));
        assert_eq!(b.merge(a), Span::new(4, 12));
    }

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 2));
    }

    #[test]
    fn slice_returns_covered_text() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).slice(src), "world");
    }
}
