//! # safara-ir — the MiniACC language front-end
//!
//! MiniACC is a small C-like kernel language with OpenACC-style directives,
//! designed to carry exactly the information the SAFARA register-optimization
//! pipeline needs: structured loop nests, affine array subscripts, and
//! directive-level parallelism/clause annotations.
//!
//! The crate provides:
//!
//! * [`ast`] — the abstract syntax tree (programs, functions, statements,
//!   expressions, array types with runtime "dope-vector" dimensions),
//! * [`directive`] — OpenACC constructs and clauses, including the paper's
//!   proposed `dim` and `small` extensions,
//! * [`lexer`] / [`parser`] — a hand-written lexer and recursive-descent
//!   parser for MiniACC source text,
//! * [`sema`] — name resolution and type checking,
//! * [`printer`] — a pretty-printer that emits MiniACC source back out
//!   (used for round-trip property tests and for inspecting the effect of
//!   source-to-source transformations such as scalar replacement),
//! * [`span`] — byte-span source locations used in diagnostics.
//!
//! ## Example
//!
//! ```
//! use safara_ir::parse_program;
//!
//! let src = r#"
//! void axpy(int n, float alpha, float x[n], float y[n]) {
//!   #pragma acc parallel small(x, y)
//!   {
//!     #pragma acc loop gang vector
//!     for (int i = 0; i < n; i++) {
//!       y[i] = y[i] + alpha * x[i];
//!     }
//!   }
//! }
//! "#;
//! let program = parse_program(src).expect("parses");
//! assert_eq!(program.functions.len(), 1);
//! assert_eq!(program.functions[0].name.as_str(), "axpy");
//! ```

pub mod ast;
pub mod directive;
pub mod lexer;
pub mod offset;
pub mod parser;
pub mod printer;
pub mod sema;
pub mod span;
pub mod visit;

pub use ast::*;
pub use directive::*;
pub use span::{Span, Spanned};

/// Parse a MiniACC translation unit and run semantic checks.
///
/// This is the main entry point most users want: it lexes, parses and
/// type-checks `src`, returning the checked [`ast::Program`].
pub fn parse_program(src: &str) -> Result<ast::Program, CompileError> {
    let tokens = lexer::lex(src).map_err(CompileError::Lex)?;
    let program = parser::parse(&tokens, src).map_err(CompileError::Parse)?;
    sema::check_program(&program).map_err(CompileError::Sema)?;
    Ok(program)
}

/// Parse without running semantic checks (used by tests that build
/// deliberately ill-typed programs).
pub fn parse_program_unchecked(src: &str) -> Result<ast::Program, CompileError> {
    let tokens = lexer::lex(src).map_err(CompileError::Lex)?;
    parser::parse(&tokens, src).map_err(CompileError::Parse)
}

/// Errors produced by the front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexical error (bad character, unterminated literal, ...).
    Lex(lexer::LexError),
    /// Syntax error.
    Parse(parser::ParseError),
    /// Semantic error (unknown name, type mismatch, bad clause, ...).
    Sema(sema::SemaError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lex error: {e}"),
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Sema(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}
