//! OpenACC directives and clauses, including the paper's proposed
//! `dim` and `small` extensions (§IV).
//!
//! Supported syntax (a practical subset of OpenACC 2.0 plus extensions):
//!
//! ```text
//! #pragma acc kernels  [data-clause...] [dim(...)] [small(...)]
//! #pragma acc parallel [data-clause...] [num_gangs(e)] [vector_length(e)]
//!                      [dim(...)] [small(...)]
//! #pragma acc loop [gang[(e)]] [vector[(e)]] [seq] [independent]
//!                  [reduction(op:var[,var...])]
//! ```
//!
//! The `dim` clause groups arrays that are asserted to share identical
//! dimensions so the compiler can compute a *single* offset expression per
//! subscript tuple; the `small` clause asserts an array is smaller than
//! 4 GiB so subscript offsets fit in 32-bit arithmetic.

use crate::ast::{Expr, Ident};

/// The two OpenACC offload constructs. The paper treats both as "offload
/// regions"; `parallel` gives the user control, `kernels` the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccConstruct {
    /// `#pragma acc kernels`
    Kernels,
    /// `#pragma acc parallel`
    Parallel,
}

impl AccConstruct {
    /// Directive keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AccConstruct::Kernels => "kernels",
            AccConstruct::Parallel => "parallel",
        }
    }
}

/// Data-movement clauses on a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataDir {
    /// `copyin(a)` — host→device before the region.
    CopyIn,
    /// `copyout(a)` — device→host after the region.
    CopyOut,
    /// `copy(a)` — both.
    Copy,
    /// `create(a)` — device allocation only, no transfer.
    Create,
    /// `present(a)` — data already on the device.
    Present,
}

impl DataDir {
    /// Clause keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            DataDir::CopyIn => "copyin",
            DataDir::CopyOut => "copyout",
            DataDir::Copy => "copy",
            DataDir::Create => "create",
            DataDir::Present => "present",
        }
    }

    /// Whether the clause implies a host→device transfer.
    pub fn transfers_in(self) -> bool {
        matches!(self, DataDir::CopyIn | DataDir::Copy)
    }

    /// Whether the clause implies a device→host transfer.
    pub fn transfers_out(self) -> bool {
        matches!(self, DataDir::CopyOut | DataDir::Copy)
    }
}

/// One data clause: a direction plus the arrays it applies to.
#[derive(Debug, Clone, PartialEq)]
pub struct DataClause {
    /// Transfer direction.
    pub dir: DataDir,
    /// Arrays the clause names.
    pub vars: Vec<Ident>,
}

/// A `dim` clause group (§IV-A): arrays asserted to share identical
/// dimensions, with optional explicit bounds.
///
/// ```text
/// dim((0:NX, 0:NY, 0:NZ)(vz_1, vz_2, vz_3))   // bounds + arrays
/// dim((vz_1, vz_2, vz_3))                      // arrays only
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DimGroup {
    /// Optional explicit `(lb:len, ...)` bounds, outermost first. When
    /// present the compiler may fold lower bounds (commonly 0) directly
    /// into the offset expression.
    pub bounds: Option<Vec<DimBound>>,
    /// The arrays asserted to share these dimensions (at least two for the
    /// clause to be useful; sema warns otherwise).
    pub arrays: Vec<Ident>,
}

/// One `lb:len` bound inside a `dim` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct DimBound {
    /// Lower bound expression (commonly the literal 0).
    pub lower: Expr,
    /// Length expression.
    pub len: Expr,
}

/// A proposed `launch_bounds(T[, B])` clause: the CUDA
/// `__launch_bounds__` contract surfaced at the directive level. `T`
/// promises the region never launches more than `T` threads per block;
/// `B` asks the compiler to keep at least `B` blocks resident per SM.
/// Together they imply a per-thread register cap
/// (`B × warps(T) × warp_alloc(r) ≤ regs/SM`) that the feedback loop
/// must respect.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchBoundsClause {
    /// Maximum threads per block the region will be launched with.
    pub max_threads: Expr,
    /// Minimum resident blocks per SM the compiler must preserve
    /// (defaults to 1 when omitted).
    pub min_blocks: Option<Expr>,
}

/// All clauses attached to a `kernels`/`parallel` directive.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegionClauses {
    /// Data-movement clauses.
    pub data: Vec<DataClause>,
    /// `num_gangs(e)` (parallel construct).
    pub num_gangs: Option<Expr>,
    /// `vector_length(e)` (parallel construct).
    pub vector_length: Option<Expr>,
    /// Proposed `launch_bounds(T[, B])` register-budget contract.
    pub launch_bounds: Option<LaunchBoundsClause>,
    /// Proposed `dim` groups.
    pub dim_groups: Vec<DimGroup>,
    /// Arrays named in proposed `small` clauses.
    pub small: Vec<Ident>,
}

impl RegionClauses {
    /// True if `array` appears in a `small` clause.
    pub fn is_small(&self, array: &Ident) -> bool {
        self.small.contains(array)
    }

    /// The `dim` group containing `array`, if any.
    pub fn dim_group_of(&self, array: &Ident) -> Option<(usize, &DimGroup)> {
        self.dim_groups.iter().enumerate().find(|(_, g)| g.arrays.contains(array))
    }
}

/// A region directive: construct kind + clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDirective {
    /// `kernels` or `parallel`.
    pub construct: AccConstruct,
    /// Attached clauses.
    pub clauses: RegionClauses,
}

impl RegionDirective {
    /// A bare `#pragma acc kernels` with no clauses.
    pub fn kernels() -> Self {
        RegionDirective { construct: AccConstruct::Kernels, clauses: RegionClauses::default() }
    }

    /// A bare `#pragma acc parallel` with no clauses.
    pub fn parallel() -> Self {
        RegionDirective { construct: AccConstruct::Parallel, clauses: RegionClauses::default() }
    }
}

/// Reduction operators on `loop` directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `reduction(+:v)`
    Add,
    /// `reduction(*:v)`
    Mul,
    /// `reduction(min:v)`
    Min,
    /// `reduction(max:v)`
    Max,
}

impl ReduceOp {
    /// Clause spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            ReduceOp::Add => "+",
            ReduceOp::Mul => "*",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
        }
    }
}

/// A single reduction `op:var` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    /// The combining operator.
    pub op: ReduceOp,
    /// The reduced scalar.
    pub var: Ident,
}

/// `#pragma acc loop ...` scheduling directive.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoopDirective {
    /// `gang` present; inner `Option` is the optional gang-count argument.
    pub gang: Option<Option<Expr>>,
    /// `vector` present; inner `Option` is the optional vector length.
    pub vector: Option<Option<Expr>>,
    /// `seq` — force sequential execution inside each thread.
    pub seq: bool,
    /// `independent` — the programmer asserts no loop-carried dependences.
    pub independent: bool,
    /// Reductions performed by this loop.
    pub reductions: Vec<Reduction>,
}

impl LoopDirective {
    /// True if the loop is distributed across device parallelism
    /// (gang and/or vector, and not forced `seq`).
    pub fn is_parallel(&self) -> bool {
        !self.seq && (self.gang.is_some() || self.vector.is_some() || self.independent)
    }

    /// A plain `#pragma acc loop seq`.
    pub fn seq() -> Self {
        LoopDirective { seq: true, ..Default::default() }
    }

    /// A `#pragma acc loop gang vector` with no explicit sizes.
    pub fn gang_vector() -> Self {
        LoopDirective { gang: Some(None), vector: Some(None), ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_directive_parallel_classification() {
        assert!(LoopDirective::gang_vector().is_parallel());
        assert!(!LoopDirective::seq().is_parallel());
        assert!(!LoopDirective::default().is_parallel());
        let ind = LoopDirective { independent: true, ..Default::default() };
        assert!(ind.is_parallel());
        // seq wins over gang if both are (erroneously) present.
        let both = LoopDirective { gang: Some(None), seq: true, ..Default::default() };
        assert!(!both.is_parallel());
    }

    #[test]
    fn region_clause_queries() {
        let mut c = RegionClauses::default();
        c.small.push(Ident::new("a"));
        c.dim_groups.push(DimGroup {
            bounds: None,
            arrays: vec![Ident::new("a"), Ident::new("b")],
        });
        assert!(c.is_small(&Ident::new("a")));
        assert!(!c.is_small(&Ident::new("b")));
        assert_eq!(c.dim_group_of(&Ident::new("b")).map(|(i, _)| i), Some(0));
        assert!(c.dim_group_of(&Ident::new("z")).is_none());
    }

    #[test]
    fn data_dir_transfer_flags() {
        assert!(DataDir::Copy.transfers_in() && DataDir::Copy.transfers_out());
        assert!(DataDir::CopyIn.transfers_in() && !DataDir::CopyIn.transfers_out());
        assert!(!DataDir::Create.transfers_in() && !DataDir::Create.transfers_out());
    }
}
