//! The row-major address fold shared by the code generator and the
//! equality-saturation factoring rule.
//!
//! A rank-`n` array reference linearizes as the Horner form
//!
//! ```text
//! offset = ((i0' * e1 + i1') * e2 + i2') ...      i_d' = i_d - lb_d
//! ```
//!
//! (indices outermost first, each adjusted by its dimension's lower
//! bound, scaled by the *next* dimension's extent). The paper's `dim`
//! clause exists precisely because grouping address arithmetic this way
//! — instead of expanding to `i0*e1*e2 + i1*e2 + i2` — shares the
//! partial products and lowers register pressure. Before the saturation
//! phase existed the fold lived inline in the code generator; the
//! e-graph factoring rewrite needs the identical grouping over plain
//! `Expr`s, so the fold is defined once here over an abstract value
//! algebra and both clients drive it.

use crate::ast::{BinOp, Expr};

/// The operations [`row_major_offset`] needs from a client: how to read
/// the per-dimension inputs and how to combine values. Implementors
/// choose the value domain — VIR operands for the code generator,
/// [`Expr`] trees for the rewrite engine.
pub trait OffsetAlgebra {
    /// The value domain the fold combines.
    type V;
    /// The client's error type.
    type E;

    /// The index value for dimension `d` (outermost first), already in
    /// the client's offset width.
    fn index(&mut self, d: usize) -> Result<Self::V, Self::E>;

    /// The lower bound of dimension `d`, or `None` when it is
    /// statically zero (so no subtraction is emitted).
    fn lower(&mut self, d: usize) -> Result<Option<Self::V>, Self::E>;

    /// The extent of dimension `d`.
    fn extent(&mut self, d: usize) -> Result<Self::V, Self::E>;

    /// `a - b`.
    fn sub(&mut self, a: Self::V, b: Self::V) -> Self::V;

    /// `a * b`.
    fn mul(&mut self, a: Self::V, b: Self::V) -> Self::V;

    /// `a + b`.
    fn add(&mut self, a: Self::V, b: Self::V) -> Self::V;
}

/// Fold a rank-`rank` reference into its row-major element offset:
/// `((i0' * e1 + i1') * e2 + i2') ...`. Dimension 0's extent is never
/// read; a rank-0 request is a client bug.
pub fn row_major_offset<A: OffsetAlgebra>(rank: usize, alg: &mut A) -> Result<A::V, A::E> {
    assert!(rank >= 1, "arrays have at least one dimension");
    let mut acc: Option<A::V> = None;
    for d in 0..rank {
        let ix = alg.index(d)?;
        let ix = match alg.lower(d)? {
            Some(lb) => alg.sub(ix, lb),
            None => ix,
        };
        acc = Some(match acc {
            None => ix,
            Some(prev) => {
                let ext = alg.extent(d)?;
                let scaled = alg.mul(prev, ext);
                alg.add(scaled, ix)
            }
        });
    }
    Ok(acc.expect("rank >= 1"))
}

/// An [`OffsetAlgebra`] over plain expression trees: the form the
/// factoring rewrite proposes to the e-graph. Constant folding is left
/// to the consumer (the e-graph's own fold rule, or `Expr::as_const`).
pub struct ExprOffset {
    /// Index expression per dimension, outermost first.
    pub indices: Vec<Expr>,
    /// Lower bound per dimension (`None` = statically zero).
    pub lowers: Vec<Option<Expr>>,
    /// Extent per dimension.
    pub extents: Vec<Expr>,
}

impl OffsetAlgebra for ExprOffset {
    type V = Expr;
    type E = std::convert::Infallible;

    fn index(&mut self, d: usize) -> Result<Expr, Self::E> {
        Ok(self.indices[d].clone())
    }

    fn lower(&mut self, d: usize) -> Result<Option<Expr>, Self::E> {
        Ok(self.lowers[d].clone().filter(|e| e.as_const() != Some(0)))
    }

    fn extent(&mut self, d: usize) -> Result<Expr, Self::E> {
        Ok(self.extents[d].clone())
    }

    fn sub(&mut self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    fn mul(&mut self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    fn add(&mut self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_expr;

    fn fold(indices: &[&str], lowers: &[Option<&str>], extents: &[&str]) -> String {
        let mut alg = ExprOffset {
            indices: indices.iter().map(Expr::var).collect(),
            lowers: lowers.iter().map(|l| l.map(Expr::var)).collect(),
            extents: extents.iter().map(Expr::var).collect(),
        };
        let e = row_major_offset(indices.len(), &mut alg).unwrap();
        print_expr(&e)
    }

    #[test]
    fn rank_one_is_the_index() {
        assert_eq!(fold(&["i"], &[None], &["n"]), "i");
    }

    #[test]
    fn rank_three_groups_as_horner() {
        // ((i * e1 + j) * e2 + k): the dim-clause grouping, not the
        // expanded i*e1*e2 + j*e2 + k.
        assert_eq!(
            fold(&["i", "j", "k"], &[None, None, None], &["e0", "e1", "e2"]),
            "(i * e1 + j) * e2 + k"
        );
    }

    #[test]
    fn lower_bounds_are_subtracted_per_dimension() {
        assert_eq!(
            fold(&["i", "j"], &[Some("li"), Some("lj")], &["e0", "e1"]),
            "(i - li) * e1 + (j - lj)"
        );
    }

    #[test]
    fn zero_lower_bounds_emit_no_subtraction() {
        let mut alg = ExprOffset {
            indices: vec![Expr::var("i"), Expr::var("j")],
            lowers: vec![Some(Expr::IntLit(0)), None],
            extents: vec![Expr::var("e0"), Expr::var("e1")],
        };
        let e = row_major_offset(2, &mut alg).unwrap();
        assert_eq!(print_expr(&e), "i * e1 + j");
    }

    #[test]
    fn dimension_zero_extent_is_never_read() {
        struct NoDim0Extent(ExprOffset);
        impl OffsetAlgebra for NoDim0Extent {
            type V = Expr;
            type E = std::convert::Infallible;
            fn index(&mut self, d: usize) -> Result<Expr, Self::E> {
                self.0.index(d)
            }
            fn lower(&mut self, d: usize) -> Result<Option<Expr>, Self::E> {
                self.0.lower(d)
            }
            fn extent(&mut self, d: usize) -> Result<Expr, Self::E> {
                assert!(d > 0, "dimension 0 extent must not be read");
                self.0.extent(d)
            }
            fn sub(&mut self, a: Expr, b: Expr) -> Expr {
                self.0.sub(a, b)
            }
            fn mul(&mut self, a: Expr, b: Expr) -> Expr {
                self.0.mul(a, b)
            }
            fn add(&mut self, a: Expr, b: Expr) -> Expr {
                self.0.add(a, b)
            }
        }
        let mut alg = NoDim0Extent(ExprOffset {
            indices: vec![Expr::var("i"), Expr::var("j")],
            lowers: vec![None, None],
            extents: vec![Expr::var("e0"), Expr::var("e1")],
        });
        row_major_offset(2, &mut alg).unwrap();
    }
}
