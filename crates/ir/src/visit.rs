//! Lightweight AST walkers used by analyses and transformations.

use crate::ast::*;

/// Walk every expression in a statement list (pre-order), including
/// loop bounds and condition expressions.
pub fn walk_exprs<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    for s in stmts {
        walk_stmt_exprs(s, f);
    }
}

fn walk_stmt_exprs<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match s {
        Stmt::DeclScalar { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, f);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            if let LValue::ArrayRef(a) = lhs {
                for ix in &a.indices {
                    walk_expr(ix, f);
                }
            }
            walk_expr(rhs, f);
        }
        Stmt::For(l) => {
            walk_expr(&l.lo, f);
            walk_expr(&l.bound, f);
            walk_exprs(&l.body, f);
        }
        Stmt::If { cond, then_body, else_body } => {
            walk_expr(cond, f);
            walk_exprs(then_body, f);
            walk_exprs(else_body, f);
        }
        Stmt::Block(b) => walk_exprs(b, f),
        Stmt::Region(r) => walk_exprs(&r.body, f),
    }
}

/// Walk an expression tree pre-order.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Unary(_, inner) | Expr::Cast(_, inner) => walk_expr(inner, f),
        Expr::Binary(_, l, r) => {
            walk_expr(l, f);
            walk_expr(r, f);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::ArrayRef(a) => {
            for ix in &a.indices {
                walk_expr(ix, f);
            }
        }
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) => {}
    }
}

/// Collect every array reference in a statement list: reads from
/// expressions and writes from assignment targets, with a flag saying
/// whether the occurrence is a write.
pub fn collect_array_refs(stmts: &[Stmt]) -> Vec<(ArrayRef, bool)> {
    let mut out = Vec::new();
    collect_refs_inner(stmts, &mut out);
    out
}

fn collect_refs_inner(stmts: &[Stmt], out: &mut Vec<(ArrayRef, bool)>) {
    for s in stmts {
        match s {
            Stmt::DeclScalar { init, .. } => {
                if let Some(e) = init {
                    collect_expr_refs(e, out);
                }
            }
            Stmt::Assign { lhs, op, rhs } => {
                if let LValue::ArrayRef(a) = lhs {
                    for ix in &a.indices {
                        collect_expr_refs(ix, out);
                    }
                    // A compound assignment reads then writes the element.
                    if op.bin_op().is_some() {
                        out.push((a.clone(), false));
                    }
                    out.push((a.clone(), true));
                }
                collect_expr_refs(rhs, out);
            }
            Stmt::For(l) => {
                collect_expr_refs(&l.lo, out);
                collect_expr_refs(&l.bound, out);
                collect_refs_inner(&l.body, out);
            }
            Stmt::If { cond, then_body, else_body } => {
                collect_expr_refs(cond, out);
                collect_refs_inner(then_body, out);
                collect_refs_inner(else_body, out);
            }
            Stmt::Block(b) => collect_refs_inner(b, out),
            Stmt::Region(r) => collect_refs_inner(&r.body, out),
        }
    }
}

fn collect_expr_refs(e: &Expr, out: &mut Vec<(ArrayRef, bool)>) {
    walk_expr(e, &mut |e| {
        if let Expr::ArrayRef(a) = e {
            out.push((a.clone(), false));
        }
    });
}

/// Rewrite every expression in a statement list bottom-up via `f`.
/// `f` receives each node after its children were rewritten and may
/// return a replacement.
pub fn map_exprs(stmts: &mut [Stmt], f: &mut impl FnMut(Expr) -> Expr) {
    for s in stmts {
        map_stmt_exprs(s, f);
    }
}

fn map_stmt_exprs(s: &mut Stmt, f: &mut impl FnMut(Expr) -> Expr) {
    match s {
        Stmt::DeclScalar { init, .. } => {
            if let Some(e) = init.take() {
                *init = Some(map_expr(e, f));
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            if let LValue::ArrayRef(a) = lhs {
                let idx = std::mem::take(&mut a.indices);
                a.indices = idx.into_iter().map(|ix| map_expr(ix, f)).collect();
            }
            let e = std::mem::replace(rhs, Expr::IntLit(0));
            *rhs = map_expr(e, f);
        }
        Stmt::For(l) => {
            let lo = std::mem::replace(&mut l.lo, Expr::IntLit(0));
            l.lo = map_expr(lo, f);
            let bound = std::mem::replace(&mut l.bound, Expr::IntLit(0));
            l.bound = map_expr(bound, f);
            map_exprs(&mut l.body, f);
        }
        Stmt::If { cond, then_body, else_body } => {
            let c = std::mem::replace(cond, Expr::IntLit(0));
            *cond = map_expr(c, f);
            map_exprs(then_body, f);
            map_exprs(else_body, f);
        }
        Stmt::Block(b) => map_exprs(b, f),
        Stmt::Region(r) => map_exprs(&mut r.body, f),
    }
}

/// Rewrite one expression bottom-up.
pub fn map_expr(e: Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    let rebuilt = match e {
        Expr::Unary(op, inner) => Expr::Unary(op, Box::new(map_expr(*inner, f))),
        Expr::Cast(ty, inner) => Expr::Cast(ty, Box::new(map_expr(*inner, f))),
        Expr::Binary(op, l, r) => {
            Expr::Binary(op, Box::new(map_expr(*l, f)), Box::new(map_expr(*r, f)))
        }
        Expr::Call(i, args) => Expr::Call(i, args.into_iter().map(|a| map_expr(a, f)).collect()),
        Expr::ArrayRef(a) => Expr::ArrayRef(ArrayRef {
            array: a.array,
            indices: a.indices.into_iter().map(|ix| map_expr(ix, f)).collect(),
        }),
        leaf => leaf,
    };
    f(rebuilt)
}

/// Collect the names of scalar variables *read* anywhere in the statements.
pub fn scalar_reads(stmts: &[Stmt]) -> Vec<Ident> {
    let mut out = Vec::new();
    walk_exprs(stmts, &mut |e| {
        if let Expr::Var(v) = e {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn body_of(src: &str) -> Vec<Stmt> {
        parse_program(src).unwrap().functions.remove(0).body
    }

    #[test]
    fn collects_reads_and_writes() {
        let body = body_of("void f(int n, float a[n], float b[n]) { a[0] = b[1] + b[1]; b[2] += a[3]; }");
        let refs = collect_array_refs(&body);
        let writes: Vec<&str> =
            refs.iter().filter(|(_, w)| *w).map(|(r, _)| r.array.as_str()).collect();
        assert_eq!(writes, vec!["a", "b"]);
        // b[2] += ... contributes a read of b[2] and a write of b[2].
        let b2_reads = refs
            .iter()
            .filter(|(r, w)| !w && r.array.as_str() == "b" && r.indices[0].as_const() == Some(2))
            .count();
        assert_eq!(b2_reads, 1);
    }

    #[test]
    fn map_exprs_rewrites_everywhere() {
        let mut body =
            body_of("void f(int n, float a[n]) { for (int i = 0; i < n + 1; i++) { a[i] = 1.0; } }");
        // Rewrite `n` to `m` everywhere.
        map_exprs(&mut body, &mut |e| match e {
            Expr::Var(v) if v.as_str() == "n" => Expr::var("m"),
            other => other,
        });
        let reads = scalar_reads(&body);
        assert!(reads.iter().any(|v| v.as_str() == "m"));
        assert!(!reads.iter().any(|v| v.as_str() == "n"));
    }

    #[test]
    fn walk_exprs_visits_loop_bounds() {
        let body = body_of("void f(int n, float a[n]) { for (int i = n - 2; i < n * 3; i++) { a[i] = 0.0; } }");
        let mut muls = 0;
        walk_exprs(&body, &mut |e| {
            if matches!(e, Expr::Binary(BinOp::Mul, _, _)) {
                muls += 1;
            }
        });
        assert_eq!(muls, 1);
    }
}
