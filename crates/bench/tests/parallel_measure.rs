//! The parallel `measure()` must be bit-for-bit identical to the serial
//! reference: same rows, same order, same cycle values, regardless of
//! thread count or scheduling.

use safara_bench::{measure, measure_serial};
use safara_core::CompilerConfig;
use safara_workloads::{Scale, Workload};

fn suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(safara_workloads::spec::ep::SpecEp),
        Box::new(safara_workloads::spec::ostencil::OStencil),
        Box::new(safara_workloads::nas::bt::NasBt),
    ]
}

#[test]
fn parallel_measure_matches_serial_bitwise() {
    let configs = [CompilerConfig::base(), CompilerConfig::safara_only()];
    let par = measure(&suite(), &configs, Scale::Test);
    let ser = measure_serial(&suite(), &configs, Scale::Test);
    assert_eq!(par.len(), ser.len());
    for (p, s) in par.iter().zip(&ser) {
        assert_eq!(p.workload, s.workload, "row order must be input order");
        assert_eq!(p.cycles.len(), s.cycles.len());
        for (a, b) in p.cycles.iter().zip(&s.cycles) {
            assert_eq!(a.to_bits(), b.to_bits(), "{}: {a} != {b}", p.workload);
        }
    }
}
