//! Wall-clock benchmarks of the GPU-simulator substrate: interpreter
//! throughput, register allocation, and one end-to-end figure point per
//! suite (the harness cost behind each figure binary).
//!
//! Plain `std::time` harness (the workspace builds offline, so there is
//! no criterion); gated behind the `heavy-tests` feature:
//! `cargo bench -p safara-bench --features heavy-tests`.

use safara_bench::harness::bench_fn;
use safara_core::gpusim::ptxas::allocate_registers;
use safara_core::{compile, CompilerConfig, DeviceConfig};
use safara_workloads::{run_workload, Scale, Workload};
use std::hint::black_box;

fn bench_execution() {
    let dev = DeviceConfig::k20xm();
    // One representative workload per figure: fig7/9 (SPEC) and fig10/12
    // (NAS) execution points, at test scale so the suite stays quick.
    for (label, w) in [
        ("fig7_fig9/303.ostencil", Box::new(safara_workloads::spec::ostencil::OStencil) as Box<dyn Workload>),
        ("fig7_fig9/355.seismic", Box::new(safara_workloads::spec::seismic::Seismic)),
        ("table2/356.sp", Box::new(safara_workloads::spec::sp::SpecSp)),
        ("fig10_fig12/BT", Box::new(safara_workloads::nas::bt::NasBt)),
    ] {
        bench_fn(&format!("simulate/{label}/base"), 10, || {
            run_workload(black_box(w.as_ref()), &CompilerConfig::base(), Scale::Test, &dev).unwrap()
        });
        bench_fn(&format!("simulate/{label}/safara"), 10, || {
            run_workload(black_box(w.as_ref()), &CompilerConfig::safara_small(), Scale::Test, &dev)
                .unwrap()
        });
    }
}

fn bench_ptxas() {
    let src = safara_workloads::spec::sp::SpecSp.source();
    let p = compile(&src, &CompilerConfig::base()).unwrap();
    let f = p.function("sp_step").unwrap();
    let vir = &f.kernels[7].kernel.vir; // HOT8, the largest kernel
    bench_fn("ptxas/allocate_hot8", 50, || allocate_registers(black_box(vir), 255));
}

fn main() {
    bench_execution();
    bench_ptxas();
}
