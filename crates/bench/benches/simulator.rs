//! Criterion benchmarks of the GPU-simulator substrate: interpreter
//! throughput, register allocation, and one end-to-end figure point per
//! suite (the harness cost behind each figure binary).

use criterion::{criterion_group, criterion_main, Criterion};
use safara_core::gpusim::ptxas::allocate_registers;
use safara_core::{compile, CompilerConfig, DeviceConfig};
use safara_workloads::{run_workload, Scale, Workload};
use std::hint::black_box;

fn bench_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    let dev = DeviceConfig::k20xm();
    // One representative workload per figure: fig7/9 (SPEC) and fig10/12
    // (NAS) execution points, at test scale so the suite stays quick.
    for (label, w) in [
        ("fig7_fig9/303.ostencil", Box::new(safara_workloads::spec::ostencil::OStencil) as Box<dyn Workload>),
        ("fig7_fig9/355.seismic", Box::new(safara_workloads::spec::seismic::Seismic)),
        ("table2/356.sp", Box::new(safara_workloads::spec::sp::SpecSp)),
        ("fig10_fig12/BT", Box::new(safara_workloads::nas::bt::NasBt)),
    ] {
        g.bench_function(format!("{label}/base"), |b| {
            b.iter(|| run_workload(black_box(w.as_ref()), &CompilerConfig::base(), Scale::Test, &dev).unwrap())
        });
        g.bench_function(format!("{label}/safara"), |b| {
            b.iter(|| {
                run_workload(black_box(w.as_ref()), &CompilerConfig::safara_small(), Scale::Test, &dev)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_ptxas(c: &mut Criterion) {
    let src = safara_workloads::spec::sp::SpecSp.source();
    let p = compile(&src, &CompilerConfig::base()).unwrap();
    let f = p.function("sp_step").unwrap();
    let vir = &f.kernels[7].kernel.vir; // HOT8, the largest kernel
    c.bench_function("ptxas/allocate_hot8", |b| {
        b.iter(|| allocate_registers(black_box(vir), 255))
    });
}

criterion_group!(benches, bench_execution, bench_ptxas);
criterion_main!(benches);
