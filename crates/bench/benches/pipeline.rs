//! Wall-clock benchmarks of the compiler pipeline itself: front-end,
//! analyses, SAFARA (with feedback), code generation and register
//! allocation — the compile-time cost of the paper's approach, per
//! DESIGN.md's "compile-time cost of the passes" entry.
//!
//! Plain `std::time` harness (the workspace builds offline, so there is
//! no criterion); gated behind the `heavy-tests` feature:
//! `cargo bench -p safara-bench --features heavy-tests`.

use safara_bench::harness::bench_fn;
use safara_core::{compile, CompilerConfig};
use safara_workloads::{spec_suite, Workload};
use std::hint::black_box;

fn bench_compile() {
    for w in spec_suite() {
        if !["355.seismic", "356.sp", "303.ostencil"].contains(&w.name()) {
            continue;
        }
        let src = w.source();
        bench_fn(&format!("compile/{}/base", w.name()), 10, || {
            compile(black_box(&src), &CompilerConfig::base()).unwrap()
        });
        bench_fn(&format!("compile/{}/safara+clauses", w.name()), 10, || {
            compile(black_box(&src), &CompilerConfig::safara_clauses()).unwrap()
        });
    }
}

fn bench_frontend() {
    let src = safara_workloads::spec::sp::SpecSp.source();
    bench_fn("frontend/parse_sp", 50, || {
        safara_core::ir::parse_program(black_box(&src)).unwrap()
    });
}

fn main() {
    bench_compile();
    bench_frontend();
}
