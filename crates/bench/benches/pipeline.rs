//! Criterion benchmarks of the compiler pipeline itself: front-end,
//! analyses, SAFARA (with feedback), code generation and register
//! allocation — the compile-time cost of the paper's approach, per
//! DESIGN.md's "compile-time cost of the passes" entry.

use criterion::{criterion_group, criterion_main, Criterion};
use safara_core::{compile, CompilerConfig};
use safara_workloads::{spec_suite, Workload};
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(10);
    for w in spec_suite() {
        if !["355.seismic", "356.sp", "303.ostencil"].contains(&w.name()) {
            continue;
        }
        let src = w.source();
        g.bench_function(format!("{}/base", w.name()), |b| {
            b.iter(|| compile(black_box(&src), &CompilerConfig::base()).unwrap())
        });
        g.bench_function(format!("{}/safara+clauses", w.name()), |b| {
            b.iter(|| compile(black_box(&src), &CompilerConfig::safara_clauses()).unwrap())
        });
    }
    g.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let src = safara_workloads::spec::sp::SpecSp.source();
    c.bench_function("frontend/parse_sp", |b| {
        b.iter(|| safara_core::ir::parse_program(black_box(&src)).unwrap())
    });
}

criterion_group!(benches, bench_compile, bench_frontend);
criterion_main!(benches);
