//! # safara-bench — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper's evaluation (§V); see
//! DESIGN.md's per-experiment index. The shared machinery here runs every
//! workload under a list of compiler configurations, validates results
//! against the Rust references, and renders speedup / normalized-time
//! tables in the shape of the paper's plots.
//!
//! Binaries (run with `--release`; results land on stdout):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig7_spec_safara_only`  | Fig. 7 — SPEC speedups, SAFARA only |
//! | `fig9_spec_clauses`      | Fig. 9 — SPEC: small / +dim / +SAFARA |
//! | `fig10_nas`              | Fig. 10 — NAS: small / SAFARA / +small |
//! | `fig11_spec_vs_pgi`      | Fig. 11 — SPEC normalized vs PGI-like |
//! | `fig12_nas_vs_pgi`       | Fig. 12 — NAS normalized vs PGI-like |
//! | `table1_seismic_registers` | Table I — seismic register usage |
//! | `table2_sp_registers`    | Table II — sp register usage |
//! | `latency_microbench`     | §III-B.3 latency table |
//! | `occupancy_report`       | §IV register/occupancy study |
//! | `ablation_cost_model`    | count-only vs latency-aware ranking |
//! | `ablation_feedback`      | feedback loop on/off |
//! | `ablation_carr_kennedy`  | CK sequentialization cost (Fig. 3/4) |
//! | `ablation_register_pressure` | Fig. 7 slowdown mechanism sweep |
//! | `ablation_unroll`        | §VII future work: unrolling + SAFARA |

use safara_core::{CompilerConfig, DeviceConfig};
use safara_workloads::{run_workload, Scale, Workload};
use std::fmt::Write as _;

/// The thread count the parallel [`measure`] pool actually uses — one
/// place for the `available_parallelism()` policy so reports (e.g.
/// `BENCH_sim.json`'s `threads_available`) cannot drift from the pool.
/// The worker-pool sizing in `safara-server` follows the same default.
pub fn pool_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Per-workload modelled kernel time under one configuration.
pub struct Measurement {
    /// Workload name.
    pub workload: &'static str,
    /// Total modelled kernel cycles per configuration, in input order.
    pub cycles: Vec<f64>,
}

/// Run `workloads` under every configuration; panics (with the workload
/// and configuration named) if any run fails validation — figures are only
/// produced from verified-correct executions.
///
/// The workload × configuration matrix runs in parallel: every cell is an
/// independent compile + simulate + validate with its own `DeviceMemory`,
/// so cells are spread over `std::thread::scope` threads and joined back
/// in input order. The output is deterministic and identical to
/// [`measure_serial`] regardless of thread count or scheduling.
pub fn measure(
    workloads: &[Box<dyn Workload>],
    configs: &[CompilerConfig],
    scale: Scale,
) -> Vec<Measurement> {
    let dev = DeviceConfig::k20xm();
    let threads = pool_threads();
    if threads <= 1 || workloads.len() * configs.len() <= 1 {
        return measure_serial(workloads, configs, scale);
    }
    // One scoped thread per matrix cell, throttled by chunking: cell
    // (i, k) lands at flat index i * ncols + k, and each thread walks a
    // strided slice of the flat index space. Results are written into a
    // preallocated slot table, so join order cannot reorder them.
    let ncols = configs.len();
    let ncells = workloads.len() * ncols;
    let nthreads = threads.min(ncells);
    let mut cells: Vec<Option<f64>> = vec![None; ncells];
    let panicked = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(nthreads);
        // Strided assignment: thread t owns flat indices t, t+n, t+2n, …
        // so long-running workloads spread across threads.
        let mut slots: Vec<Vec<(usize, &mut Option<f64>)>> =
            (0..nthreads).map(|_| Vec::new()).collect();
        for (flat, slot) in cells.iter_mut().enumerate() {
            slots[flat % nthreads].push((flat, slot));
        }
        for thread_slots in slots {
            let dev = &dev;
            handles.push(s.spawn(move || {
                for (flat, slot) in thread_slots {
                    let w = &workloads[flat / ncols];
                    let cfg = &configs[flat % ncols];
                    let (report, _) = run_workload(w.as_ref(), cfg, scale, dev)
                        .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name(), cfg.name));
                    *slot = Some(report.total_cycles());
                }
            }));
        }
        let mut panicked = None;
        for h in handles {
            if let Err(p) = h.join() {
                panicked.get_or_insert(p);
            }
        }
        panicked
    });
    if let Some(p) = panicked {
        std::panic::resume_unwind(p);
    }
    workloads
        .iter()
        .enumerate()
        .map(|(i, w)| Measurement {
            workload: w.name(),
            cycles: (0..ncols).map(|k| cells[i * ncols + k].expect("cell computed")).collect(),
        })
        .collect()
}

/// The sequential reference implementation of [`measure`]: one cell at a
/// time in row-major input order. Used for determinism A/B tests and as
/// the fallback on single-core machines.
pub fn measure_serial(
    workloads: &[Box<dyn Workload>],
    configs: &[CompilerConfig],
    scale: Scale,
) -> Vec<Measurement> {
    let dev = DeviceConfig::k20xm();
    workloads
        .iter()
        .map(|w| {
            let cycles = configs
                .iter()
                .map(|cfg| {
                    let (report, _) = run_workload(w.as_ref(), cfg, scale, &dev)
                        .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name(), cfg.name));
                    report.total_cycles()
                })
                .collect();
            Measurement { workload: w.name(), cycles }
        })
        .collect()
}

/// Render a speedup table: column `k` shows `cycles[0] / cycles[k]`
/// (baseline = first configuration), plus a geometric-mean "average" row
/// — the shape of the paper's Figs. 7, 9 and 10.
pub fn speedup_table(headers: &[&str], rows: &[Measurement]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let mut s = String::new();
    write!(s, "{:<16}", "benchmark").unwrap();
    for h in &headers[1..] {
        write!(s, "{h:>24}").unwrap();
    }
    s.push('\n');
    let ncols = headers.len() - 1;
    let mut geo = vec![0.0f64; ncols];
    for m in rows {
        write!(s, "{:<16}", m.workload).unwrap();
        for (g, c) in geo.iter_mut().zip(&m.cycles[1..]) {
            let sp = m.cycles[0] / c;
            *g += sp.ln();
            write!(s, "{sp:>24.3}").unwrap();
        }
        s.push('\n');
    }
    write!(s, "{:<16}", "average").unwrap();
    for g in &geo {
        write!(s, "{:>24.3}", (g / rows.len() as f64).exp()).unwrap();
    }
    s.push('\n');
    s
}

/// Render a normalized-execution-time table in the shape of Figs. 11/12:
/// each cell is `t(config) / max(t(first), t(last))` — the paper
/// normalizes against the slower of OpenUH-base and PGI, so every bar is
/// ≤ 1 and lower is better.
pub fn normalized_table(headers: &[&str], rows: &[Measurement]) -> String {
    let mut s = String::new();
    write!(s, "{:<16}", "benchmark").unwrap();
    for h in headers {
        write!(s, "{h:>28}").unwrap();
    }
    s.push('\n');
    for m in rows {
        let denom = m.cycles.first().unwrap().max(*m.cycles.last().unwrap());
        write!(s, "{:<16}", m.workload).unwrap();
        for c in &m.cycles {
            write!(s, "{:>28.3}", c / denom).unwrap();
        }
        s.push('\n');
    }
    s
}

/// Geometric-mean speedup of column `k` (vs column 0) across rows —
/// convenience for EXPERIMENTS.md reporting and for tests.
pub fn geomean_speedup(rows: &[Measurement], k: usize) -> f64 {
    if rows.is_empty() {
        return 1.0;
    }
    let sum: f64 = rows.iter().map(|m| (m.cycles[0] / m.cycles[k]).ln()).sum();
    (sum / rows.len() as f64).exp()
}

/// Best (maximum) speedup of column `k` across rows, with the workload
/// that achieves it.
pub fn best_speedup(rows: &[Measurement], k: usize) -> (f64, &'static str) {
    rows.iter()
        .map(|m| (m.cycles[0] / m.cycles[k], m.workload))
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap_or((1.0, "-"))
}

/// A minimal wall-clock micro-bench harness (criterion replacement for
/// the offline build): warm up once, time `iters` iterations, print the
/// mean per-iteration time.
pub mod harness {
    use std::time::Instant;

    /// Time `f` over `iters` iterations (after one warm-up call) and
    /// print `name: <mean>/iter`. Returns the mean seconds per iteration.
    pub fn bench_fn<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> f64 {
        assert!(iters > 0);
        std::hint::black_box(f());
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
        println!("{name}: {:.3} ms/iter ({iters} iters)", per_iter * 1e3);
        per_iter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Measurement> {
        vec![
            Measurement { workload: "a", cycles: vec![100.0, 50.0, 25.0] },
            Measurement { workload: "b", cycles: vec![100.0, 100.0, 200.0] },
        ]
    }

    #[test]
    fn speedup_table_renders_and_geomeans() {
        let t = speedup_table(&["base", "opt1", "opt2"], &rows());
        assert!(t.contains("average"));
        // geo mean of (2, 1) = sqrt(2).
        assert!((geomean_speedup(&rows(), 1) - 2.0f64.sqrt()).abs() < 1e-12);
        // column 2: (4, 0.5) → geo = sqrt(2)
        assert!((geomean_speedup(&rows(), 2) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn best_speedup_picks_max() {
        let (s, w) = best_speedup(&rows(), 2);
        assert_eq!(w, "a");
        assert!((s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rows_are_handled() {
        assert_eq!(speedup_table(&["base", "opt"], &[]), "");
        assert_eq!(geomean_speedup(&[], 1), 1.0);
        assert_eq!(best_speedup(&[], 1), (1.0, "-"));
    }

    #[test]
    fn normalized_table_bars_at_most_one() {
        let t = normalized_table(&["base", "mid", "last"], &rows());
        for line in t.lines().skip(1) {
            for cell in line.split_whitespace().skip(1) {
                let v: f64 = cell.parse().unwrap();
                assert!(v <= 1.0 + 1e-9, "{t}");
            }
        }
    }
}
