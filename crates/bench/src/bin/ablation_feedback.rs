//! Ablation — SAFARA's iterative PTXAS feedback loop (§III-B.2) on vs
//! off. Without feedback, one unbounded round applies every candidate the
//! model likes; the loop instead admits candidates only while hardware
//! registers remain, reverting a round that would spill.

use safara_bench::{measure, speedup_table};
use safara_core::{compile, CompilerConfig};
use safara_workloads::{spec_suite, Scale, Workload};

fn main() {
    let configs = [
        CompilerConfig::base(),
        CompilerConfig::safara_no_feedback(),
        CompilerConfig::safara_only(),
    ];
    let rows = measure(&spec_suite(), &configs, Scale::Bench);
    println!("Ablation — SAFARA feedback loop off vs on (SPEC suite)\n");
    print!("{}", speedup_table(&["base", "no-feedback", "feedback"], &rows));

    // Also show the register outcome on seismic, where it matters most.
    let src = safara_workloads::spec::seismic::Seismic.source();
    for cfg in [CompilerConfig::safara_no_feedback(), CompilerConfig::safara_only()] {
        let p = compile(&src, &cfg).expect("compiles");
        let f = p.function("seismic_step").expect("function exists");
        println!(
            "\n{}: max regs {} | feedback rounds {} | temps {} | spills {}",
            cfg.name,
            f.max_regs(),
            f.feedback_rounds,
            f.sr_outcome.temps_added,
            f.kernels.iter().map(|k| k.alloc.spilled.len()).sum::<usize>()
        );
    }
}
