//! Ablation — SAFARA's latency-aware `count × latency` ranking vs the
//! Carr–Kennedy count-only metric, on the uncoalesced-heavy workloads
//! where the paper argues the latency term matters (§II-A.2, Fig. 5).

use safara_bench::{measure, speedup_table};
use safara_core::CompilerConfig;
use safara_workloads::{nas_suite, spec_suite, Scale, Workload};

fn main() {
    let configs = [
        CompilerConfig::base(),
        CompilerConfig::safara_count_only(),
        CompilerConfig::safara_only(),
    ];
    let picks = ["370.bt", "356.sp", "354.cg", "BT", "LU", "SP"];
    let workloads: Vec<Box<dyn Workload>> = spec_suite()
        .into_iter()
        .chain(nas_suite())
        .filter(|w| picks.contains(&w.name()))
        .collect();
    let rows = measure(&workloads, &configs, Scale::Bench);
    println!("Ablation — candidate ranking: count-only (Carr–Kennedy metric)");
    println!("vs count x latency (SAFARA), uncoalesced-heavy workloads\n");
    print!("{}", speedup_table(&["base", "count-only", "count x latency"], &rows));
}
