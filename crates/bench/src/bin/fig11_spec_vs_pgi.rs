//! Figure 11 — SPEC normalized execution time: OpenUH(base),
//! OpenUH(SAFARA), OpenUH(SAFARA+clauses) and the simulated PGI-like
//! comparator. Normalized to the slower of {OpenUH base, PGI}; lower is
//! better.

use safara_bench::{measure, normalized_table};
use safara_core::CompilerConfig;
use safara_workloads::{spec_suite, Scale};

fn main() {
    let configs = [
        CompilerConfig::base(),
        CompilerConfig::safara_only(),
        CompilerConfig::safara_clauses(),
        CompilerConfig::pgi_like(),
    ];
    let rows = measure(&spec_suite(), &configs, Scale::Bench);
    println!("Figure 11 — SPEC, normalized execution time (lower is better)");
    println!("(PGI is a simulated comparator — see DESIGN.md)\n");
    print!(
        "{}",
        normalized_table(
            &["OpenUH(base)", "OpenUH(SAFARA)", "OpenUH(SAFARA+clauses)", "PGI(simulated)"],
            &rows
        )
    );
}
