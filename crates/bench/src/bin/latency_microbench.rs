//! §III-B.3 — the memory-latency microbenchmark (our stand-in for the
//! Wong et al. probes the paper's cost model is parameterized with).

use safara_core::gpusim::device::DeviceConfig;
use safara_core::gpusim::microbench::run_probes;

fn main() {
    let dev = DeviceConfig::k20xm();
    println!("Memory-latency microbenchmark on {} —", dev.name);
    println!("cycles per warp access recovered from pointer-probe kernels:\n");
    print!("{}", run_probes(&dev).to_table());
    println!("\nThese figures parameterize the SAFARA cost model's latency table.");
}
