//! §III-B.3 — the memory-latency microbenchmark (our stand-in for the
//! Wong et al. probes the paper's cost model is parameterized with).
//!
//! The probe suite is run once per sim-thread setting (1, 2 and 4
//! block-parallel workers) and rendered with one column per setting:
//! the simulator's determinism guarantee means every column must agree
//! to the last bit, and a divergence here would flag a regression in
//! the parallel engine's ordered merge.

use safara_core::gpusim::device::DeviceConfig;
use safara_core::gpusim::microbench::run_probes;
use safara_core::gpusim::with_sim_threads;

fn main() {
    let dev = DeviceConfig::k20xm();
    println!("Memory-latency microbenchmark on {} —", dev.name);
    println!("cycles per warp access recovered from pointer-probe kernels:\n");
    let threads = [1u32, 2, 4];
    let runs: Vec<_> = threads.iter().map(|&n| with_sim_threads(n, || run_probes(&dev))).collect();
    println!("{:<24}{:>10}{:>10}{:>10}", "access class", "thr=1", "thr=2", "thr=4");
    let rows: [(&str, Vec<f64>); 5] = [
        ("global coalesced", runs.iter().map(|m| m.global_coalesced).collect()),
        ("global uncoalesced", runs.iter().map(|m| m.global_uncoalesced).collect()),
        ("global broadcast", runs.iter().map(|m| m.global_broadcast).collect()),
        ("read-only coalesced", runs.iter().map(|m| m.readonly_coalesced).collect()),
        ("read-only uncoalesced", runs.iter().map(|m| m.readonly_uncoalesced).collect()),
    ];
    let mut identical = true;
    for (name, vals) in &rows {
        identical &= vals.windows(2).all(|w| w[0].to_bits() == w[1].to_bits());
        println!("{name:<24}{:>10.1}{:>10.1}{:>10.1}", vals[0], vals[1], vals[2]);
    }
    assert!(identical, "latencies must be bit-identical across sim-thread counts");
    println!("\nAll columns bit-identical across sim-thread counts (deterministic merge).");
    println!("These figures parameterize the SAFARA cost model's latency table.");
}
