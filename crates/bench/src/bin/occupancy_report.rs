//! §IV register-pressure study: how per-thread register counts map to
//! occupancy on the modeled K20Xm, and what that does to a memory-bound
//! kernel — the mechanism behind Fig. 7's slowdowns.

use safara_core::gpusim::device::DeviceConfig;
use safara_core::gpusim::stats::KernelStats;
use safara_core::gpusim::timing::estimate_time;

fn main() {
    let dev = DeviceConfig::k20xm();
    println!("Occupancy vs registers/thread on {} (256-thread blocks)\n", dev.name);
    println!("{:>14}{:>16}{:>12}{:>22}", "regs/thread", "warps/SM", "occupancy", "memory-bound time");
    let stats = KernelStats {
        simple_insts: 100_000,
        global_ld_requests: 100_000,
        global_transactions: 100_000,
        warps: 2048,
        threads: 65_536,
        ..Default::default()
    };
    let base = estimate_time(&dev, &stats, 32, 256).total_cycles;
    for regs in [16, 32, 48, 64, 96, 128, 160, 200, 255] {
        let o = dev.occupancy(regs, 256);
        let t = estimate_time(&dev, &stats, regs, 256).total_cycles;
        println!(
            "{:>14}{:>16}{:>11.0}%{:>21.2}x",
            regs,
            o.active_warps_per_sm,
            o.occupancy * 100.0,
            t / base
        );
    }
    println!("\n(time normalized to the 32-register case; >1 = slower)");
}
