//! Ablation — what the feedback loop optimizes: raw register count vs
//! predicted throughput, vs RegDem-style shared-memory spilling.
//!
//! Three SAFARA variants head-to-head over the fig7 (SPEC-like) suite:
//!
//! * `SAFARA(count)` — the paper's policy: saturate the register budget,
//!   every admitted candidate is a win (`OptGoal::MinRegisters`);
//! * `SAFARA(throughput)` — admission consults the occupancy model:
//!   a candidate is admitted only while the memory traffic it removes
//!   outweighs the active warps its registers evict
//!   (`OptGoal::MaxThroughput`);
//! * `SAFARA(RegDem)` — a deliberately tight 40-register cap with
//!   spills redirected to a shared-memory slab (arXiv 1907.02894's
//!   recipe), trading cheap shared traffic for high occupancy.
//!
//! The second table shows the mechanism: per-workload register use and
//! the occupancy (active warps/SM at the default 128-thread block) each
//! policy settles at.

use safara_bench::{geomean_speedup, measure, speedup_table};
use safara_core::{compile, Args, CompilerConfig, DeviceConfig};
use safara_workloads::{spec_suite, Scale};
use std::fmt::Write as _;

/// The register-pressure stress kernel from `ablation_register_pressure`
/// (the Fig. 7 seismic mechanism): `nc` distance-4 f64 rotation pairs,
/// each saving one load per iteration at the price of five rotating
/// temporaries (ten registers), on top of uncoalesced streaming traffic
/// that scalar replacement cannot touch. Saturating the register budget
/// here is a net loss — the case the occupancy oracle must refuse.
fn stress_source(nc: usize) -> String {
    let params: String = (0..nc)
        .map(|q| format!(", const double c{q}[nt][ny][nx]"))
        .collect::<Vec<_>>()
        .join("");
    let mut body = String::new();
    for q in 0..nc {
        writeln!(body, "          acc += c{q}[t][j][i] - c{q}[t - 4][j][i];").unwrap();
    }
    format!(
        r#"
void regstress(int nt, int nx, int ny, const float s0[nt][ny][nx],
               const float s1[nt][ny][nx], float out[ny][nx]{params}) {{
  #pragma acc kernels
  {{
    #pragma acc loop gang
    for (int j = 0; j < ny; j++) {{
      #pragma acc loop vector
      for (int i = 0; i < nx; i++) {{
        double acc = 0.0;
        #pragma acc loop seq
        for (int t = 4; t < nt; t++) {{
          acc += s0[t][i][j] + s1[t][i][j];
{body}        }}
        out[j][i] = (float) acc;
      }}
    }}
  }}
}}
"#,
    )
}

/// Modelled cycles for the stress kernel under one configuration, with
/// the register count and occupancy it settles at.
fn run_stress(nc: usize, cfg: &CompilerConfig, dev: &DeviceConfig) -> (f64, u32, u32) {
    let (n, nt) = (64usize, 32usize);
    let src = stress_source(nc);
    let p = compile(&src, cfg).unwrap_or_else(|e| panic!("regstress under {}: {e}", cfg.name));
    let stream: Vec<f32> = (0..nt * n * n).map(|i| (i % 13) as f32).collect();
    let mut args = Args::new()
        .i32("nt", nt as i32)
        .i32("nx", n as i32)
        .i32("ny", n as i32)
        .array_f32("s0", &stream)
        .array_f32("s1", &stream)
        .array_f32("out", &vec![0.0; n * n]);
    let cdata: Vec<f64> = (0..nt * n * n).map(|i| (i % 7) as f64).collect();
    for q in 0..nc {
        args = args.array_f64(&format!("c{q}"), &cdata);
    }
    let rep = p.run("regstress", &mut args, dev).expect("runs");
    let regs = p.function("regstress").unwrap().max_regs();
    (rep.total_cycles(), regs, rep.kernels[0].timing.active_warps)
}

fn main() {
    let configs = [
        CompilerConfig::base(),
        CompilerConfig::safara_only(),
        CompilerConfig::safara_throughput(),
        CompilerConfig::safara_regdem(),
    ];
    let suite = spec_suite();
    let rows = measure(&suite, &configs, Scale::Bench);

    println!("Ablation — optimization goal: register count vs predicted throughput");
    println!("(speedup over OpenUH base; higher is better)\n");
    print!(
        "{}",
        speedup_table(
            &["base", "SAFARA(count)", "SAFARA(throughput)", "SAFARA(RegDem)"],
            &rows
        )
    );

    // The mechanism table: registers and resulting occupancy per policy.
    let dev = DeviceConfig::k20xm();
    println!("\nregister use and occupancy (regs / active warps per SM @ 128 threads/block)");
    println!(
        "{:<16}{:>22}{:>22}{:>22}",
        "benchmark", "SAFARA(count)", "SAFARA(throughput)", "SAFARA(RegDem)"
    );
    for w in &suite {
        let mut cells = Vec::new();
        for cfg in &configs[1..] {
            let p = compile(&w.source(), cfg)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name(), cfg.name));
            let regs = p.function(w.entry()).unwrap().max_regs();
            let warps = dev.occupancy(regs.max(16), 128).active_warps_per_sm;
            cells.push(format!("{regs} / {warps}"));
        }
        println!(
            "{:<16}{:>22}{:>22}{:>22}",
            w.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    // Where the occupancy oracle pays off: workloads on which count
    // saturation pessimizes the model and the throughput goal backs off.
    let improved: Vec<&str> = rows
        .iter()
        .filter(|m| m.cycles[2] < m.cycles[1])
        .map(|m| m.workload)
        .collect();
    println!(
        "\nthroughput goal faster than count goal on {}/{} suite workloads: {}",
        improved.len(),
        rows.len(),
        if improved.is_empty() { "-".to_string() } else { improved.join(", ") }
    );
    println!(
        "geomean: count {:.3}x, throughput {:.3}x, RegDem {:.3}x",
        geomean_speedup(&rows, 1),
        geomean_speedup(&rows, 2),
        geomean_speedup(&rows, 3)
    );

    // The seismic mechanism isolated: distance-4 rotation bait where
    // saturating the budget costs more occupancy than its eliminated
    // loads buy back. The occupancy oracle must refuse what the count
    // goal greedily admits.
    println!("\nregister-pressure stress kernel (regstress, the Fig. 7 seismic mechanism)");
    println!(
        "{:>10}{:>24}{:>24}{:>24}",
        "candidates", "SAFARA(count)", "SAFARA(throughput)", "SAFARA(RegDem)"
    );
    let mut oracle_won = false;
    for nc in [2usize, 4, 6, 8] {
        let (base_cycles, _, _) = run_stress(nc, &configs[0], &dev);
        let mut cells = Vec::new();
        let mut cycles = Vec::new();
        for cfg in &configs[1..] {
            let (c, regs, warps) = run_stress(nc, cfg, &dev);
            cycles.push(c);
            cells.push(format!("{:.3}x ({regs}r/{warps}w)", base_cycles / c));
        }
        oracle_won |= cycles[1] < cycles[0];
        println!("{nc:>10}{:>24}{:>24}{:>24}", cells[0], cells[1], cells[2]);
    }
    println!(
        "\noracle verdict: throughput goal {} the count goal's occupancy collapse",
        if oracle_won { "avoids" } else { "does NOT avoid" }
    );
}
