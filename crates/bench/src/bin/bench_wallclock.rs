//! Wall-clock benchmark of the simulator engines on the fig7 SPEC suite
//! (workloads × {base, SAFARA-only} at `Scale::Bench`), writing
//! `BENCH_sim.json`.
//!
//! Seven configurations are timed:
//!
//! 1. `seed_reference_serial` — the pre-decoded-engine baseline: the
//!    reference tree-walking interpreter, one cell at a time,
//! 2. `decoded_serial` — the flat-opcode decoded engine, serial,
//! 3. `superblock_serial` — the profile-guided superblock engine, serial,
//!    cold, memoization disabled (the ISSUE-5 acceptance row: must be
//!    ≥ 1.4× over `decoded_serial`),
//! 4. `decoded_memoized_cold` — decoded engine + launch memoization
//!    starting from an empty cache (pays hashing + recording),
//! 5. `decoded_memoized_warm` — the same run again with the populated
//!    cache: every launch replays, no simulation at all,
//! 6. `superblock_memoized_warm` — warm cache under the superblock
//!    engine (memoization composes with engine selection),
//! 7. `parallel_measure` — the parallel `measure()` pool.
//!
//! Every row records the engine variant it ran and the thread count it
//! actually used (serial rows: 1; `parallel_measure`: `pool_threads()`),
//! and the JSON carries the superblock engine's cumulative fusion/hoist
//! counters.
//!
//! Between every pair of configurations the outputs are checked to be
//! identical (each workload's `check` validates results, and stats feed
//! the same figure pipeline), so the speedups below are for
//! *stats-identical* runs. The parallel `measure()` path is timed last;
//! on single-core machines it falls back to serial and reports ~1×.
//!
//! Usage: `cargo run --release --bin bench_wallclock [--trace] [cache-file]`
//! (default cache file: `target/bench_launch_cache.bin`; delete it to
//! re-measure cold). With `--trace`, an extra pass runs every workload ×
//! config through the traced pipeline and writes a phase-level profile
//! (parse → sema → analysis → opt → codegen → regalloc → sim, in µs) to
//! `results/TRACE_sim.json`, so the BENCH numbers come with a breakdown
//! of where the time goes.

use safara_bench::{measure, pool_threads};
use safara_core::gpusim::{fusion_counters, set_engine, Engine};
use safara_core::obs::Tracer;
use safara_core::{compile_and_run_traced, CompilerConfig, DeviceConfig, LaunchCache};
use safara_workloads::{run_workload, run_workload_cached, spec_suite, Scale, Workload};
use std::fmt::Write as _;
use std::time::Instant;

/// The root phases `compile_and_run_traced` records, in pipeline order.
const PHASES: [&str; 7] = ["parse", "sema", "analysis", "opt", "codegen", "regalloc", "sim"];

/// Run every workload × config through the traced pipeline and write
/// `results/TRACE_sim.json`: per-run phase durations plus aggregate
/// per-phase totals.
fn write_trace_profile(suite: &[Box<dyn Workload>], configs: &[CompilerConfig], dev: &DeviceConfig) {
    let mut totals = [0u64; PHASES.len()];
    let mut rows: Vec<String> = Vec::new();
    for w in suite {
        for cfg in configs {
            let mut tracer = Tracer::new();
            let mut args = w.args(Scale::Bench);
            let (_, outcome) = compile_and_run_traced(
                &w.source(),
                w.entry(),
                cfg,
                &mut args,
                dev,
                None,
                &mut tracer,
            )
            .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name(), cfg.name));
            let spans = tracer.finish();
            let mut phases = String::new();
            for (i, phase) in PHASES.iter().enumerate() {
                let us = spans.iter().find(|s| s.name == *phase).map_or(0, |s| s.dur_us);
                totals[i] += us;
                let _ = write!(phases, "{}\"{phase}\": {us}", if i == 0 { "" } else { ", " });
            }
            rows.push(format!(
                "    {{ \"workload\": \"{}\", \"profile\": \"{}\", \"feedback_rounds\": {}, \"phases_us\": {{ {phases} }} }}",
                w.name(),
                cfg.name,
                outcome.feedback_rounds,
            ));
        }
    }
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"fig7 SPEC suite, workloads x [base, safara_only], Scale::Bench, traced\",");
    let _ = writeln!(json, "  \"phase_totals_us\": {{");
    for (i, phase) in PHASES.iter().enumerate() {
        let comma = if i + 1 == PHASES.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{phase}\": {}{comma}", totals[i]);
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"runs\": [");
    let _ = writeln!(json, "{}", rows.join(",\n"));
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/TRACE_sim.json", &json).expect("write results/TRACE_sim.json");
    eprintln!("wrote results/TRACE_sim.json");
}

fn time_suite(f: &mut dyn FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let trace = argv.iter().any(|a| a == "--trace");
    let cache_path = argv
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "target/bench_launch_cache.bin".to_string());
    let configs = [CompilerConfig::base(), CompilerConfig::safara_only()];
    let suite = spec_suite();
    let dev = DeviceConfig::k20xm();

    let serial = |cached: Option<&mut LaunchCache>| {
        let mut cache = cached;
        for w in &suite {
            for cfg in &configs {
                match cache.as_deref_mut() {
                    Some(c) => run_workload_cached(w.as_ref(), cfg, Scale::Bench, &dev, c),
                    None => run_workload(w.as_ref(), cfg, Scale::Bench, &dev),
                }
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name(), cfg.name));
            }
        }
    };

    eprintln!("[1/7] seed reference interpreter, serial…");
    set_engine(Engine::Reference);
    let t_seed = time_suite(&mut || serial(None));

    eprintln!("[2/7] decoded engine, serial…");
    set_engine(Engine::Decoded);
    let t_decoded = time_suite(&mut || serial(None));

    eprintln!("[3/7] superblock engine, serial, cold, memo disabled…");
    set_engine(Engine::Superblock);
    let t_superblock = time_suite(&mut || serial(None));
    set_engine(Engine::Decoded);

    eprintln!("[4/7] decoded + memoization, cold cache…");
    let _ = std::fs::remove_file(&cache_path);
    let mut cache = LaunchCache::with_disk(&cache_path);
    let t_cold = time_suite(&mut || serial(Some(&mut cache)));
    let (cold_hits, cold_misses) = (cache.hits, cache.misses);
    cache.save().expect("save launch cache");

    eprintln!("[5/7] decoded + memoization, warm cache…");
    let mut cache = LaunchCache::with_disk(&cache_path);
    let t_warm = time_suite(&mut || serial(Some(&mut cache)));
    let (warm_hits, warm_misses) = (cache.hits, cache.misses);

    eprintln!("[6/7] superblock + memoization, warm cache…");
    set_engine(Engine::Superblock);
    let mut cache = LaunchCache::with_disk(&cache_path);
    let t_sb_warm = time_suite(&mut || serial(Some(&mut cache)));
    set_engine(Engine::Decoded);

    eprintln!("[7/7] parallel measure()…");
    let threads = pool_threads();
    let t_parallel = time_suite(&mut || {
        let _ = measure(&suite, &configs, Scale::Bench);
    });

    let fusion = fusion_counters();
    // (config, engine, memo, threads, seconds)
    let rows: [(&str, &str, &str, usize, f64); 7] = [
        ("seed_reference_serial", "reference", "none", 1, t_seed),
        ("decoded_serial", "decoded", "none", 1, t_decoded),
        ("superblock_serial", "superblock", "none", 1, t_superblock),
        ("decoded_memoized_cold", "decoded", "cold", 1, t_cold),
        ("decoded_memoized_warm", "decoded", "warm", 1, t_warm),
        ("superblock_memoized_warm", "superblock", "warm", 1, t_sb_warm),
        ("parallel_measure", "decoded", "none", threads, t_parallel),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"fig7 SPEC suite, workloads x [base, safara_only], Scale::Bench\",");
    let _ = writeln!(json, "  \"workloads\": {},", suite.len());
    let _ = writeln!(json, "  \"threads_available\": {threads},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, (config, engine, memo, thr, secs)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"config\": \"{config}\", \"engine\": \"{engine}\", \"memo\": \"{memo}\", \"threads\": {thr}, \"seconds\": {secs:.3}, \"speedup_vs_seed\": {:.2} }}{comma}",
            t_seed / secs
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_superblock_vs_decoded_serial\": {:.2},", t_decoded / t_superblock);
    let _ = writeln!(
        json,
        "  \"fusion\": {{ \"launches\": {}, \"delegated\": {}, \"hot_blocks\": {}, \"superblocks\": {}, \"fused_blocks\": {}, \"hoisted\": {}, \"scalar_execs\": {}, \"vector_execs\": {}, \"peels\": {} }},",
        fusion.launches,
        fusion.delegated,
        fusion.hot_blocks,
        fusion.superblocks,
        fusion.fused_blocks,
        fusion.hoisted,
        fusion.scalar_execs,
        fusion.vector_execs,
        fusion.peels
    );
    let _ = writeln!(
        json,
        "  \"cache\": {{ \"cold_hits\": {cold_hits}, \"cold_misses\": {cold_misses}, \"warm_hits\": {warm_hits}, \"warm_misses\": {warm_misses} }}"
    );
    json.push_str("}\n");

    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    print!("{json}");
    eprintln!("wrote BENCH_sim.json");

    if trace {
        eprintln!("[trace] phase-level profile…");
        write_trace_profile(&suite, &configs, &dev);
    }
}
