//! Wall-clock benchmark of the simulator engines on the fig7 SPEC suite
//! (workloads × {base, SAFARA-only} at `Scale::Bench`), writing
//! `BENCH_sim.json`.
//!
//! Nine configurations are timed:
//!
//! 1. `seed_reference_serial` — the pre-decoded-engine baseline: the
//!    reference tree-walking interpreter, one cell at a time,
//! 2. `decoded_serial` — the flat-opcode decoded engine, serial,
//! 3. `superblock_serial` — the profile-guided superblock engine, serial,
//!    cold, memoization disabled (the ISSUE-5 acceptance row: must be
//!    ≥ 1.4× over `decoded_serial`),
//! 4. `decoded_memoized_cold` — decoded engine + launch memoization
//!    starting from an empty cache (pays hashing + recording),
//! 5. `decoded_memoized_warm` — the same run again with the populated
//!    cache: every launch replays, no simulation at all,
//! 6. `superblock_memoized_warm` — warm cache under the superblock
//!    engine (memoization composes with engine selection),
//! 7. `parallel_measure` — the parallel `measure()` pool,
//! 8. `parallel_decoded` — the decoded engine with block-parallel
//!    launch execution (scoped worker pool inside gpusim; see
//!    `--sim-threads`, default `auto`),
//! 9. `parallel_superblock` — block-parallel superblock engine.
//!
//! Every row records the engine variant it ran and the thread count it
//! actually used per launch (serial rows: 1; `parallel_measure`:
//! `pool_threads()`; `parallel_*`: the high-water mark reported by
//! `max_sim_threads_used()` — on a single-core machine `auto` resolves
//! to 1 and the parallel rows honestly report serial-equivalent times),
//! and the JSON carries the superblock engine's cumulative fusion/hoist
//! counters. Each row also records the compiler-side `goal` and
//! `spill_target` its suite compiled under (the wallclock rows all use
//! the defaults, `min_registers`/`local`), and an `opt_goal` section
//! reports the modelled-cycle ablation of the three SAFARA policies
//! (count-saturating vs occupancy-aware vs RegDem shared-spill),
//! matching `results/ablation_opt_goal.txt`.
//!
//! Between every pair of configurations the outputs are checked to be
//! identical (each workload's `check` validates results, and stats feed
//! the same figure pipeline), so the speedups below are for
//! *stats-identical* runs. The parallel `measure()` path is timed last;
//! on single-core machines it falls back to serial and reports ~1×.
//!
//! Usage: `cargo run --release --bin bench_wallclock [--trace]
//! [--sim-threads N|auto] [cache-file]`
//! (default cache file: `target/bench_launch_cache.bin`; delete it to
//! re-measure cold). `--sim-threads` sets the worker-pool size for the
//! `parallel_*` rows (`auto` = one worker per available core). With
//! `--trace`, an extra pass runs every workload ×
//! config through the traced pipeline and writes a phase-level profile
//! (parse → sema → analysis → opt → codegen → regalloc → sim, in µs) to
//! `results/TRACE_sim.json`, so the BENCH numbers come with a breakdown
//! of where the time goes.

use safara_bench::{measure, pool_threads};
use safara_core::gpusim::{
    fusion_counters, max_sim_threads_used, parse_sim_threads, reset_max_sim_threads_used,
    set_engine, with_sim_threads, Engine,
};
use safara_core::obs::Tracer;
use safara_core::{compile_and_run_traced, CompilerConfig, DeviceConfig, LaunchCache};
use safara_workloads::{run_workload, run_workload_cached, spec_suite, Scale, Workload};
use std::fmt::Write as _;
use std::time::Instant;

/// The root phases `compile_and_run_traced` records, in pipeline order.
const PHASES: [&str; 7] = ["parse", "sema", "analysis", "opt", "codegen", "regalloc", "sim"];

/// Run every workload × config through the traced pipeline and write
/// `results/TRACE_sim.json`: per-run phase durations plus aggregate
/// per-phase totals.
fn write_trace_profile(suite: &[Box<dyn Workload>], configs: &[CompilerConfig], dev: &DeviceConfig) {
    let mut totals = [0u64; PHASES.len()];
    let mut rows: Vec<String> = Vec::new();
    for w in suite {
        for cfg in configs {
            let mut tracer = Tracer::new();
            let mut args = w.args(Scale::Bench);
            let (_, outcome) = compile_and_run_traced(
                &w.source(),
                w.entry(),
                cfg,
                &mut args,
                dev,
                None,
                &mut tracer,
            )
            .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name(), cfg.name));
            let spans = tracer.finish();
            let mut phases = String::new();
            for (i, phase) in PHASES.iter().enumerate() {
                let us = spans.iter().find(|s| s.name == *phase).map_or(0, |s| s.dur_us);
                totals[i] += us;
                let _ = write!(phases, "{}\"{phase}\": {us}", if i == 0 { "" } else { ", " });
            }
            rows.push(format!(
                "    {{ \"workload\": \"{}\", \"profile\": \"{}\", \"feedback_rounds\": {}, \"phases_us\": {{ {phases} }} }}",
                w.name(),
                cfg.name,
                outcome.feedback_rounds,
            ));
        }
    }
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"fig7 SPEC suite, workloads x [base, safara_only], Scale::Bench, traced\",");
    let _ = writeln!(json, "  \"phase_totals_us\": {{");
    for (i, phase) in PHASES.iter().enumerate() {
        let comma = if i + 1 == PHASES.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{phase}\": {}{comma}", totals[i]);
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"runs\": [");
    let _ = writeln!(json, "{}", rows.join(",\n"));
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/TRACE_sim.json", &json).expect("write results/TRACE_sim.json");
    eprintln!("wrote results/TRACE_sim.json");
}

fn time_suite(f: &mut dyn FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut trace = false;
    let mut sim_threads_req = 0u32; // 0 = auto: one worker per available core
    let mut cache_path: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if a == "--trace" {
            trace = true;
        } else if a == "--sim-threads" {
            i += 1;
            let v = argv.get(i).expect("--sim-threads needs a value");
            sim_threads_req =
                parse_sim_threads(v).expect("--sim-threads: positive integer or `auto`");
        } else if let Some(v) = a.strip_prefix("--sim-threads=") {
            sim_threads_req =
                parse_sim_threads(v).expect("--sim-threads: positive integer or `auto`");
        } else {
            cache_path = Some(a.clone());
        }
        i += 1;
    }
    let cache_path = cache_path.unwrap_or_else(|| "target/bench_launch_cache.bin".to_string());
    let sim_threads_label =
        if sim_threads_req == 0 { "auto".to_string() } else { sim_threads_req.to_string() };
    let configs = [CompilerConfig::base(), CompilerConfig::safara_only()];
    let suite = spec_suite();
    let dev = DeviceConfig::k20xm();

    let serial = |cached: Option<&mut LaunchCache>| {
        let mut cache = cached;
        for w in &suite {
            for cfg in &configs {
                match cache.as_deref_mut() {
                    Some(c) => run_workload_cached(w.as_ref(), cfg, Scale::Bench, &dev, c),
                    None => run_workload(w.as_ref(), cfg, Scale::Bench, &dev),
                }
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name(), cfg.name));
            }
        }
    };

    eprintln!("[1/9] seed reference interpreter, serial…");
    set_engine(Engine::Reference);
    let t_seed = time_suite(&mut || serial(None));

    eprintln!("[2/9] decoded engine, serial…");
    set_engine(Engine::Decoded);
    let t_decoded = time_suite(&mut || serial(None));

    eprintln!("[3/9] superblock engine, serial, cold, memo disabled…");
    set_engine(Engine::Superblock);
    let t_superblock = time_suite(&mut || serial(None));
    set_engine(Engine::Decoded);

    eprintln!("[4/9] decoded + memoization, cold cache…");
    let _ = std::fs::remove_file(&cache_path);
    let mut cache = LaunchCache::with_disk(&cache_path);
    let t_cold = time_suite(&mut || serial(Some(&mut cache)));
    let (cold_hits, cold_misses) = (cache.hits, cache.misses);
    cache.save().expect("save launch cache");

    eprintln!("[5/9] decoded + memoization, warm cache…");
    let mut cache = LaunchCache::with_disk(&cache_path);
    let t_warm = time_suite(&mut || serial(Some(&mut cache)));
    let (warm_hits, warm_misses) = (cache.hits, cache.misses);

    eprintln!("[6/9] superblock + memoization, warm cache…");
    set_engine(Engine::Superblock);
    let mut cache = LaunchCache::with_disk(&cache_path);
    let t_sb_warm = time_suite(&mut || serial(Some(&mut cache)));
    set_engine(Engine::Decoded);

    eprintln!("[7/9] parallel measure()…");
    let threads = pool_threads();
    let t_parallel = time_suite(&mut || {
        let _ = measure(&suite, &configs, Scale::Bench);
    });

    eprintln!("[8/9] decoded engine, block-parallel (sim-threads {sim_threads_label})…");
    set_engine(Engine::Decoded);
    reset_max_sim_threads_used();
    let t_par_dec = time_suite(&mut || with_sim_threads(sim_threads_req, || serial(None)));
    let used_dec = max_sim_threads_used() as usize;

    eprintln!("[9/9] superblock engine, block-parallel (sim-threads {sim_threads_label})…");
    set_engine(Engine::Superblock);
    reset_max_sim_threads_used();
    let t_par_sb = time_suite(&mut || with_sim_threads(sim_threads_req, || serial(None)));
    let used_sb = max_sim_threads_used() as usize;
    set_engine(Engine::Decoded);

    eprintln!("[opt-goal] modelled-cycle ablation: count vs throughput vs RegDem…");
    let goal_configs = [
        CompilerConfig::base(),
        CompilerConfig::safara_only(),
        CompilerConfig::safara_throughput(),
        CompilerConfig::safara_regdem(),
    ];
    let goal_rows = measure(&suite, &goal_configs, Scale::Bench);
    let geomean = |k: usize| -> f64 {
        let sum: f64 = goal_rows.iter().map(|m| (m.cycles[0] / m.cycles[k]).ln()).sum();
        (sum / goal_rows.len() as f64).exp()
    };

    eprintln!("[egraph] modelled-cycle ablation: greedy vs saturated extraction…");
    let egraph_configs = [
        CompilerConfig::base(),
        CompilerConfig::safara_only(),
        CompilerConfig::safara_saturated(),
        CompilerConfig::builder()
            .safara(true)
            .saturate(true)
            .goal(safara_core::opt::OptGoal::MaxThroughput)
            .build(),
    ];
    let egraph_rows = measure(&suite, &egraph_configs, Scale::Bench);
    let egraph_geomean = |k: usize| -> f64 {
        let sum: f64 = egraph_rows.iter().map(|m| (m.cycles[0] / m.cycles[k]).ln()).sum();
        (sum / egraph_rows.len() as f64).exp()
    };

    // The `stampede` section is merged into BENCH_sim.json from a
    // `server_bench --zipf` run; regenerating the file must not drop
    // it, so carry any existing section forward verbatim.
    let stampede = std::fs::read_to_string("BENCH_sim.json").ok().and_then(|old| {
        let start = old.find("  \"stampede\": {")?;
        let end = start + old[start..].find("\n  }")? + "\n  }".len();
        Some(old[start..end].to_string())
    });

    let fusion = fusion_counters();
    // (config, engine, memo, threads, seconds) — `threads` is the count
    // actually used per launch, not the one requested.
    let rows: [(&str, &str, &str, usize, f64); 9] = [
        ("seed_reference_serial", "reference", "none", 1, t_seed),
        ("decoded_serial", "decoded", "none", 1, t_decoded),
        ("superblock_serial", "superblock", "none", 1, t_superblock),
        ("decoded_memoized_cold", "decoded", "cold", 1, t_cold),
        ("decoded_memoized_warm", "decoded", "warm", 1, t_warm),
        ("superblock_memoized_warm", "superblock", "warm", 1, t_sb_warm),
        ("parallel_measure", "decoded", "none", threads, t_parallel),
        ("parallel_decoded", "decoded", "none", used_dec, t_par_dec),
        ("parallel_superblock", "superblock", "none", used_sb, t_par_sb),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"fig7 SPEC suite, workloads x [base, safara_only], Scale::Bench\",");
    let _ = writeln!(json, "  \"workloads\": {},", suite.len());
    let _ = writeln!(json, "  \"threads_available\": {threads},");
    let _ = writeln!(json, "  \"sim_threads_requested\": \"{sim_threads_label}\",");
    if threads == 1 {
        let _ = writeln!(
            json,
            "  \"note\": \"single-core host: `auto` resolves to 1 worker, so the parallel_* rows measure pool overhead at serial width; scaling needs a multi-core machine\","
        );
    }
    let _ = writeln!(json, "  \"rows\": [");
    // Every wallclock row runs the [base, safara_only] suite, i.e. the
    // default optimization goal and spill target; the fields make that
    // explicit so rows from future goal-sweeping runs are self-describing.
    for (i, (config, engine, memo, thr, secs)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"config\": \"{config}\", \"engine\": \"{engine}\", \"memo\": \"{memo}\", \"goal\": \"min_registers\", \"spill_target\": \"local\", \"threads\": {thr}, \"seconds\": {secs:.3}, \"speedup_vs_seed\": {:.2} }}{comma}",
            t_seed / secs
        );
    }
    let _ = writeln!(json, "  ],");
    // The opt-goal ablation section: modelled-cycle speedups over base
    // for the three SAFARA policies, matching results/ablation_opt_goal.txt
    // (same deterministic simulation, so the numbers agree exactly).
    let _ = writeln!(json, "  \"opt_goal\": {{");
    let _ = writeln!(
        json,
        "    \"benchmark\": \"fig7 suite, modelled cycles vs base: safara_only (goal=min_registers), safara_throughput (goal=max_throughput), safara_regdem (cap 40, spill_target=shared)\","
    );
    let _ = writeln!(json, "    \"table\": \"results/ablation_opt_goal.txt\",");
    let _ = writeln!(json, "    \"rows\": [");
    for (i, m) in goal_rows.iter().enumerate() {
        let comma = if i + 1 == goal_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{ \"workload\": \"{}\", \"speedup_count\": {:.3}, \"speedup_throughput\": {:.3}, \"speedup_regdem\": {:.3} }}{comma}",
            m.workload,
            m.cycles[0] / m.cycles[1],
            m.cycles[0] / m.cycles[2],
            m.cycles[0] / m.cycles[3]
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(
        json,
        "    \"geomean\": {{ \"count\": {:.3}, \"throughput\": {:.3}, \"regdem\": {:.3} }}",
        geomean(1),
        geomean(2),
        geomean(3)
    );
    let _ = writeln!(json, "  }},");
    // The equality-saturation ablation section: the e-graph phase ahead
    // of SAFARA (default off) vs greedy extraction, matching
    // results/ablation_egraph.txt.
    let _ = writeln!(json, "  \"egraph\": {{");
    let _ = writeln!(
        json,
        "    \"benchmark\": \"fig7 suite, modelled cycles vs base: safara_only (greedy), safara_saturated (e-graph phase, goal=min_registers), saturated+throughput (goal=max_throughput)\","
    );
    let _ = writeln!(json, "    \"table\": \"results/ablation_egraph.txt\",");
    let _ = writeln!(json, "    \"rows\": [");
    for (i, m) in egraph_rows.iter().enumerate() {
        let comma = if i + 1 == egraph_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{ \"workload\": \"{}\", \"speedup_greedy\": {:.3}, \"speedup_saturated\": {:.3}, \"speedup_saturated_throughput\": {:.3} }}{comma}",
            m.workload,
            m.cycles[0] / m.cycles[1],
            m.cycles[0] / m.cycles[2],
            m.cycles[0] / m.cycles[3]
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(
        json,
        "    \"geomean\": {{ \"greedy\": {:.3}, \"saturated\": {:.3}, \"saturated_throughput\": {:.3} }}",
        egraph_geomean(1),
        egraph_geomean(2),
        egraph_geomean(3)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"speedup_superblock_vs_decoded_serial\": {:.2},", t_decoded / t_superblock);
    let _ = writeln!(json, "  \"speedup_parallel_decoded_vs_serial\": {:.2},", t_decoded / t_par_dec);
    let _ = writeln!(json, "  \"speedup_parallel_superblock_vs_serial\": {:.2},", t_superblock / t_par_sb);
    let _ = writeln!(
        json,
        "  \"fusion\": {{ \"launches\": {}, \"delegated\": {}, \"hot_blocks\": {}, \"superblocks\": {}, \"fused_blocks\": {}, \"hoisted\": {}, \"scalar_execs\": {}, \"vector_execs\": {}, \"peels\": {} }},",
        fusion.launches,
        fusion.delegated,
        fusion.hot_blocks,
        fusion.superblocks,
        fusion.fused_blocks,
        fusion.hoisted,
        fusion.scalar_execs,
        fusion.vector_execs,
        fusion.peels
    );
    let _ = writeln!(
        json,
        "  \"cache\": {{ \"cold_hits\": {cold_hits}, \"cold_misses\": {cold_misses}, \"warm_hits\": {warm_hits}, \"warm_misses\": {warm_misses} }}{}",
        if stampede.is_some() { "," } else { "" }
    );
    if let Some(s) = &stampede {
        let _ = writeln!(json, "{s}");
    }
    json.push_str("}\n");

    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    print!("{json}");
    eprintln!("wrote BENCH_sim.json");

    if trace {
        eprintln!("[trace] phase-level profile…");
        write_trace_profile(&suite, &configs, &dev);
    }
}
