//! Table II — 356.sp: per-kernel register usage under Base, +small and
//! +small+dim. Kernels where `dim` is inapplicable (fewer than two
//! grouped arrays in the kernel) print `NA` in the `w dim` column, as in
//! the paper.

use safara_core::codegen::abi::AbiParam;
use safara_core::report::{format_register_table, register_table};
use safara_core::{compile, CompilerConfig};
use safara_workloads::spec::sp;
use safara_workloads::Workload;

fn main() {
    let src = sp::SpecSp.source();
    let base = compile(&src, &CompilerConfig::base()).expect("base compiles");
    let small = compile(&src, &CompilerConfig::small()).expect("+small compiles");
    let dim = compile(&src, &CompilerConfig::small_dim()).expect("+dim compiles");
    let mut rows = register_table("sp_step", &[&base, &small, &dim]);
    // A kernel's `dim` column is meaningful only when the kernel actually
    // shares dope parameters through a group covering ≥ 2 of the arrays
    // it touches; otherwise report NA (paper's convention).
    let dim_fn = dim.function("sp_step").expect("function exists");
    for (i, r) in rows.iter_mut().enumerate() {
        let kernel = &dim_fn.kernels[i].kernel;
        let mut group_use = std::collections::BTreeMap::new();
        for p in &kernel.abi.params {
            if let AbiParam::ArrayBase { array } = p {
                for (g, members) in kernel.dim_groups.iter().enumerate() {
                    if members.contains(array) {
                        *group_use.entry(g).or_insert(0u32) += 1;
                    }
                }
            }
        }
        // `dim` is meaningful for a kernel when at least one group covers
        // two or more of the arrays the kernel touches. (With explicit
        // bounds in the clause the shared dope folds into scalar
        // parameters, so the ABI need not contain `DimOwner::Group`
        // entries even when `dim` applied.)
        let applicable = group_use.values().any(|&n| n >= 2);
        let saved = match (r.regs[0], r.regs[2]) {
            (Some(b), Some(d)) if applicable => Some(b - d),
            (Some(b), _) => r.regs[1].map(|s| b - s),
            _ => None,
        };
        if !applicable {
            r.regs[2] = None; // NA
        }
        r.regs.push(saved);
    }
    println!("Table II — 356.sp register files usage via small and dim clauses");
    println!("(NA: the kernel uses fewer than two same-dimension allocatable arrays)\n");
    print!("{}", format_register_table(&["Base", "+small", "w dim", "Saved"], &rows));
}
