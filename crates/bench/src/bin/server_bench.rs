//! Replay the fig7 SPEC suite through `safara-server` and validate
//! every response against the workloads' own `check` functions.
//!
//! Each pass sends every (workload, profile) pair as a `run` request
//! with `return_arrays: true`, rebuilds the post-run arguments from the
//! returned bit patterns, and runs the workload's validator on them —
//! so this exercises the full wire round-trip, not just status codes.
//! Two passes by default: the second must be served from the shared
//! launch cache (warm hits are printed from the server's `stats`).
//!
//! Usage:
//!
//! ```text
//! server_bench [--addr HOST:PORT] [--passes N] [--bench] [--zipf]
//! ```
//!
//! With no `--addr` an in-process server is started on an ephemeral
//! port. `--bench` uses `Scale::Bench` sizes (slow; default is the test
//! scale). `--zipf` instead runs the cache-stampede benchmark: a
//! 10 000-request open-loop burst over 64 distinct keys with
//! zipf-skewed popularity, once with single-flight coalescing on and
//! once with it off, reporting the p50/p95 latency of each.

use safara_core::runtime::{ArgValue, HostArray};
use safara_core::Args;
use safara_server::json::Json;
use safara_server::protocol::{build_run_request, parse_request};
use safara_server::service::{Engine, EngineConfig};
use safara_server::Submit;
use safara_workloads::{spec_suite, Scale};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn main() {
    let mut addr: Option<String> = None;
    let mut passes = 2usize;
    let mut scale = Scale::Test;
    let mut zipf = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => addr = Some(argv.next().expect("--addr needs HOST:PORT")),
            "--passes" => {
                passes = argv.next().and_then(|v| v.parse().ok()).expect("--passes needs N")
            }
            "--bench" => scale = Scale::Bench,
            "--zipf" => zipf = true,
            other => {
                eprintln!("server_bench: unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    if zipf {
        run_zipf();
        return;
    }

    // No address: run the server in-process on an ephemeral port.
    let own = match &addr {
        Some(_) => None,
        None => Some(
            safara_server::serve("127.0.0.1:0", EngineConfig::default())
                .expect("start in-process server"),
        ),
    };
    let addr = addr.unwrap_or_else(|| own.as_ref().expect("own server").addr.to_string());
    eprintln!("replaying fig7 suite against {addr} ({passes} passes)");

    let suite = spec_suite();
    let profiles = ["base", "safara_only"];
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut next_id = 1i64;
    let mut send = |line: &str| {
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        writer.flush().expect("flush");
    };
    let mut recv_line = String::new();
    let mut recv = move |reader: &mut BufReader<TcpStream>| -> Json {
        recv_line.clear();
        let n = reader.read_line(&mut recv_line).expect("recv");
        assert!(n > 0, "server closed the connection");
        Json::parse(recv_line.trim()).expect("response parses")
    };

    for pass in 1..=passes {
        let t0 = Instant::now();
        let mut ok = 0usize;
        for w in &suite {
            let source = w.source();
            for profile in profiles {
                assert!(safara_server::protocol::resolve_profile(profile).is_ok());
                let request_args = w.args(scale);
                let id = next_id;
                next_id += 1;
                send(&build_run_request(id, &source, w.entry(), profile, &request_args, true));
                let v = recv(&mut reader);
                assert_eq!(v.get("id").and_then(Json::as_i64), Some(id));
                let status = v.get("status").and_then(Json::as_str);
                assert_eq!(status, Some("ok"), "{} under {profile}: {v}", w.name());
                let after = rebuild_args(&request_args, &v);
                w.check(&after, scale)
                    .unwrap_or_else(|e| panic!("{} under {profile}: {e}", w.name()));
                ok += 1;
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        eprintln!(
            "pass {pass}: {ok} responses ok + validated in {secs:.3} s ({:.1} req/s)",
            ok as f64 / secs
        );
    }

    send(r#"{"id":0,"op":"stats"}"#);
    let stats = recv(&mut reader);
    let cache = stats.get("cache").expect("cache stats");
    let hits = cache.get("hits").and_then(Json::as_i64).unwrap_or(0);
    let misses = cache.get("misses").and_then(Json::as_i64).unwrap_or(0);
    println!(
        "cache: {hits} hits / {misses} misses over {} requests",
        (next_id - 1)
    );
    if passes > 1 {
        assert!(hits > 0, "repeat passes must warm the shared cache: {stats}");
    }

    if let Some(own) = own {
        send(r#"{"id":-1,"op":"shutdown"}"#);
        let _ = recv(&mut reader);
        own.join();
    }
}

/// SplitMix64 — deterministic, dependency-free PRNG for the zipf draw.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The cache-stampede benchmark (ISSUE 8): 10 000 requests drawn
/// open-loop from 64 distinct content keys with zipf(s = 1.2) skew —
/// the hot key takes ~28 % of traffic — submitted as one burst into a
/// deep queue. Without single-flight dedup every request rides the
/// queue end to end; with it, duplicates of an in-flight key park and
/// complete the moment their leader does, so tail latency collapses.
///
/// Honest caveat (printed with the numbers): this is a single-process,
/// CPU-simulated pipeline, so the absolute latencies say nothing about
/// GPU hardware — only the on/off *ratio* under identical load is
/// meaningful.
fn run_zipf() {
    const REQUESTS: usize = 10_000;
    const KEYS: usize = 64;
    const SOURCE: &str = r#"
void scale(int n, float alpha, float x[n]) {
  #pragma acc kernels copy(x)
  {
    #pragma acc loop gang vector
    for (int i = 0; i < n; i++) { x[i] = x[i] * alpha + 1.0f; }
  }
}"#;

    // Zipf CDF over key ranks: weight(rank r) = 1 / (r + 1)^1.2.
    let weights: Vec<f64> = (0..KEYS).map(|r| 1.0 / ((r + 1) as f64).powf(1.2)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    let cdf: Vec<f64> = weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect();

    // Pre-build and pre-parse every request so the submit loop measures
    // admission, not JSON formatting. Same seed for both runs: both see
    // the identical arrival sequence.
    let x: Vec<f32> = (0..256).map(|i| i as f32 * 0.25).collect();
    let mut rng = 0x5AFA_2A5E_u64;
    let requests: Vec<_> = (0..REQUESTS)
        .map(|id| {
            let u = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
            let key = cdf.partition_point(|c| *c < u).min(KEYS - 1);
            let args = Args::new()
                .i32("n", 256)
                .f32("alpha", 1.0 + key as f32 * 0.125)
                .array_f32("x", &x);
            parse_request(&build_run_request(id as i64, SOURCE, "scale", "base", &args, false))
                .expect("request parses")
        })
        .collect();

    let run = |coalesce: bool| -> (f64, f64, f64, u64, u64) {
        let engine = Engine::start(EngineConfig {
            workers: 2,
            queue_depth: REQUESTS + 8,
            default_timeout_ms: 600_000,
            coalesce,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel::<String>();
        let mut t_submit = vec![Instant::now(); REQUESTS];
        for (id, req) in requests.iter().cloned().enumerate() {
            t_submit[id] = Instant::now();
            match engine.submit(req, tx.clone()) {
                Submit::Queued => {}
                Submit::Rejected { response, .. } => panic!("rejected: {response}"),
            }
        }
        let mut lat_ms = vec![0f64; REQUESTS];
        for _ in 0..REQUESTS {
            let line = rx.recv_timeout(Duration::from_secs(120)).expect("drain");
            let now = Instant::now();
            let v = Json::parse(&line).expect("response parses");
            assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"), "{line}");
            let id = v.get("id").and_then(Json::as_i64).expect("id") as usize;
            lat_ms[id] = now.duration_since(t_submit[id]).as_secs_f64() * 1e3;
        }

        let sh = std::sync::Arc::clone(engine.shared());
        let n = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        let (submitted, completed, coalesced) =
            (n(&sh.submitted), n(&sh.completed), n(&sh.coalesced));
        assert_eq!(n(&sh.errors) + n(&sh.timed_out) + n(&sh.shed), 0, "clean run");
        assert_eq!(submitted, completed + coalesced, "accounting balances");
        if coalesce {
            // The tentpole claim: one pipeline execution per unique
            // key. Every duplicate either parked on its leader or
            // replayed the cache — never a second execution.
            assert_eq!(sh.cache.misses(), KEYS as u64, "one pipeline execution per key");
            assert!(coalesced > 0, "the burst actually coalesced");
        }
        assert_eq!(sh.programs_cached(), 1, "one compile (all keys share the program)");
        engine.shutdown();

        lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| lat_ms[((REQUESTS - 1) as f64 * p) as usize];
        let mean = lat_ms.iter().sum::<f64>() / REQUESTS as f64;
        (pct(0.50), pct(0.95), mean, coalesced, sh.cache.misses())
    };

    eprintln!("zipf stampede: {REQUESTS} requests over {KEYS} keys, s=1.2, 2 workers");
    let (off_p50, off_p95, off_mean, _, off_misses) = run(false);
    eprintln!("coalesce off: p50 {off_p50:.2} ms  p95 {off_p95:.2} ms  mean {off_mean:.2} ms  misses {off_misses}");
    let (on_p50, on_p95, on_mean, on_coalesced, on_misses) = run(true);
    eprintln!("coalesce on:  p50 {on_p50:.2} ms  p95 {on_p95:.2} ms  mean {on_mean:.2} ms  misses {on_misses}  coalesced {on_coalesced}");
    assert!(
        on_p95 < off_p95,
        "single-flight must improve p95 under zipf load: on {on_p95:.2} ms vs off {off_p95:.2} ms"
    );
    println!(
        "{{\"requests\":{REQUESTS},\"keys\":{KEYS},\"zipf_s\":1.2,\"workers\":2,\
         \"coalesce_off\":{{\"p50_ms\":{off_p50:.3},\"p95_ms\":{off_p95:.3},\"mean_ms\":{off_mean:.3}}},\
         \"coalesce_on\":{{\"p50_ms\":{on_p50:.3},\"p95_ms\":{on_p95:.3},\"mean_ms\":{on_mean:.3},\
         \"coalesced\":{on_coalesced},\"pipeline_execs\":{on_misses}}},\
         \"p95_speedup\":{:.2},\
         \"caveat\":\"single-process CPU simulation; only the on/off ratio is meaningful\"}}",
        off_p95 / on_p95
    );
}

/// Rebuild post-run [`Args`] from a response: request args with every
/// array (and any reduction-updated scalar) replaced by the returned
/// bit-exact values.
fn rebuild_args(request: &Args, response: &Json) -> Args {
    let mut after = request.clone();
    let arrays = response.get("arrays").expect("return_arrays was set");
    for (name, arr) in after.arrays.iter_mut() {
        let payload = arrays.get(name.as_str()).expect("array echoed");
        let bits = payload.get("bits").and_then(Json::as_arr).expect("bits");
        let elem = payload.get("elem").and_then(Json::as_str).expect("elem");
        *arr = match elem {
            "f32" => HostArray::from_f32_bits(
                &bits.iter().map(|b| b.as_i64().expect("bit") as u32).collect::<Vec<_>>(),
            ),
            "f64" => HostArray::from_f64_bits(
                &bits
                    .iter()
                    .map(|b| {
                        let s = b.as_str().expect("hex bits");
                        u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("hex")
                    })
                    .collect::<Vec<_>>(),
            ),
            _ => HostArray::from_i32(
                &bits.iter().map(|b| b.as_i64().expect("bit") as i32).collect::<Vec<_>>(),
            ),
        };
    }
    if let Some(scalars) = response.get("scalars") {
        for (name, value) in after.scalars.iter_mut() {
            let Some(v) = scalars.get(name.as_str()) else { continue };
            // Decode whatever variant the server replied with (it
            // normalizes request scalars, so this can differ from the
            // variant we sent), then coerce to the variant `check`
            // expects.
            let decoded: ArgValue = match v {
                Json::Int(i) => ArgValue::I64(*i),
                obj => match obj.get("bits") {
                    Some(Json::Int(b)) => ArgValue::F32(f32::from_bits(*b as u32)),
                    Some(Json::Str(s)) => ArgValue::F64(f64::from_bits(
                        u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("hex"),
                    )),
                    _ => panic!("unrecognized scalar encoding: {obj}"),
                },
            };
            *value = match value {
                ArgValue::I32(_) => ArgValue::I32(decoded.as_i64() as i32),
                ArgValue::I64(_) => ArgValue::I64(decoded.as_i64()),
                ArgValue::F32(_) => ArgValue::F32(decoded.as_f64() as f32),
                ArgValue::F64(_) => ArgValue::F64(decoded.as_f64()),
            };
        }
    }
    after
}
