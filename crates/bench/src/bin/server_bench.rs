//! Replay the fig7 SPEC suite through `safara-server` and validate
//! every response against the workloads' own `check` functions.
//!
//! Each pass sends every (workload, profile) pair as a `run` request
//! with `return_arrays: true`, rebuilds the post-run arguments from the
//! returned bit patterns, and runs the workload's validator on them —
//! so this exercises the full wire round-trip, not just status codes.
//! Two passes by default: the second must be served from the shared
//! launch cache (warm hits are printed from the server's `stats`).
//!
//! Usage:
//!
//! ```text
//! server_bench [--addr HOST:PORT] [--passes N] [--bench]
//! ```
//!
//! With no `--addr` an in-process server is started on an ephemeral
//! port. `--bench` uses `Scale::Bench` sizes (slow; default is the test
//! scale).

use safara_core::runtime::{ArgValue, HostArray};
use safara_core::Args;
use safara_server::json::Json;
use safara_server::protocol::build_run_request;
use safara_server::service::EngineConfig;
use safara_workloads::{spec_suite, Scale};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Instant;

fn main() {
    let mut addr: Option<String> = None;
    let mut passes = 2usize;
    let mut scale = Scale::Test;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => addr = Some(argv.next().expect("--addr needs HOST:PORT")),
            "--passes" => {
                passes = argv.next().and_then(|v| v.parse().ok()).expect("--passes needs N")
            }
            "--bench" => scale = Scale::Bench,
            other => {
                eprintln!("server_bench: unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }

    // No address: run the server in-process on an ephemeral port.
    let own = match &addr {
        Some(_) => None,
        None => Some(
            safara_server::serve("127.0.0.1:0", EngineConfig::default())
                .expect("start in-process server"),
        ),
    };
    let addr = addr.unwrap_or_else(|| own.as_ref().expect("own server").addr.to_string());
    eprintln!("replaying fig7 suite against {addr} ({passes} passes)");

    let suite = spec_suite();
    let profiles = ["base", "safara_only"];
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut next_id = 1i64;
    let mut send = |line: &str| {
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        writer.flush().expect("flush");
    };
    let mut recv_line = String::new();
    let mut recv = move |reader: &mut BufReader<TcpStream>| -> Json {
        recv_line.clear();
        let n = reader.read_line(&mut recv_line).expect("recv");
        assert!(n > 0, "server closed the connection");
        Json::parse(recv_line.trim()).expect("response parses")
    };

    for pass in 1..=passes {
        let t0 = Instant::now();
        let mut ok = 0usize;
        for w in &suite {
            let source = w.source();
            for profile in profiles {
                assert!(safara_server::protocol::resolve_profile(profile).is_ok());
                let request_args = w.args(scale);
                let id = next_id;
                next_id += 1;
                send(&build_run_request(id, &source, w.entry(), profile, &request_args, true));
                let v = recv(&mut reader);
                assert_eq!(v.get("id").and_then(Json::as_i64), Some(id));
                let status = v.get("status").and_then(Json::as_str);
                assert_eq!(status, Some("ok"), "{} under {profile}: {v}", w.name());
                let after = rebuild_args(&request_args, &v);
                w.check(&after, scale)
                    .unwrap_or_else(|e| panic!("{} under {profile}: {e}", w.name()));
                ok += 1;
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        eprintln!(
            "pass {pass}: {ok} responses ok + validated in {secs:.3} s ({:.1} req/s)",
            ok as f64 / secs
        );
    }

    send(r#"{"id":0,"op":"stats"}"#);
    let stats = recv(&mut reader);
    let cache = stats.get("cache").expect("cache stats");
    let hits = cache.get("hits").and_then(Json::as_i64).unwrap_or(0);
    let misses = cache.get("misses").and_then(Json::as_i64).unwrap_or(0);
    println!(
        "cache: {hits} hits / {misses} misses over {} requests",
        (next_id - 1)
    );
    if passes > 1 {
        assert!(hits > 0, "repeat passes must warm the shared cache: {stats}");
    }

    if let Some(own) = own {
        send(r#"{"id":-1,"op":"shutdown"}"#);
        let _ = recv(&mut reader);
        own.join();
    }
}

/// Rebuild post-run [`Args`] from a response: request args with every
/// array (and any reduction-updated scalar) replaced by the returned
/// bit-exact values.
fn rebuild_args(request: &Args, response: &Json) -> Args {
    let mut after = request.clone();
    let arrays = response.get("arrays").expect("return_arrays was set");
    for (name, arr) in after.arrays.iter_mut() {
        let payload = arrays.get(name.as_str()).expect("array echoed");
        let bits = payload.get("bits").and_then(Json::as_arr).expect("bits");
        let elem = payload.get("elem").and_then(Json::as_str).expect("elem");
        *arr = match elem {
            "f32" => HostArray::from_f32_bits(
                &bits.iter().map(|b| b.as_i64().expect("bit") as u32).collect::<Vec<_>>(),
            ),
            "f64" => HostArray::from_f64_bits(
                &bits
                    .iter()
                    .map(|b| {
                        let s = b.as_str().expect("hex bits");
                        u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("hex")
                    })
                    .collect::<Vec<_>>(),
            ),
            _ => HostArray::from_i32(
                &bits.iter().map(|b| b.as_i64().expect("bit") as i32).collect::<Vec<_>>(),
            ),
        };
    }
    if let Some(scalars) = response.get("scalars") {
        for (name, value) in after.scalars.iter_mut() {
            let Some(v) = scalars.get(name.as_str()) else { continue };
            // Decode whatever variant the server replied with (it
            // normalizes request scalars, so this can differ from the
            // variant we sent), then coerce to the variant `check`
            // expects.
            let decoded: ArgValue = match v {
                Json::Int(i) => ArgValue::I64(*i),
                obj => match obj.get("bits") {
                    Some(Json::Int(b)) => ArgValue::F32(f32::from_bits(*b as u32)),
                    Some(Json::Str(s)) => ArgValue::F64(f64::from_bits(
                        u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("hex"),
                    )),
                    _ => panic!("unrecognized scalar encoding: {obj}"),
                },
            };
            *value = match value {
                ArgValue::I32(_) => ArgValue::I32(decoded.as_i64() as i32),
                ArgValue::I64(_) => ArgValue::I64(decoded.as_i64()),
                ArgValue::F32(_) => ArgValue::F32(decoded.as_f64() as f32),
                ArgValue::F64(_) => ArgValue::F64(decoded.as_f64()),
            };
        }
    }
    after
}
