//! Figure 12 — NAS normalized execution time: the same four compiler
//! configurations as Figure 11 (with `+small` instead of `+clauses`,
//! since `dim` does not apply to the NAS codes).

use safara_bench::{measure, normalized_table};
use safara_core::CompilerConfig;
use safara_workloads::{nas_suite, Scale};

fn main() {
    let configs = [
        CompilerConfig::base(),
        CompilerConfig::safara_only(),
        CompilerConfig::safara_small(),
        CompilerConfig::pgi_like(),
    ];
    let rows = measure(&nas_suite(), &configs, Scale::Bench);
    println!("Figure 12 — NAS, normalized execution time (lower is better)");
    println!("(PGI is a simulated comparator — see DESIGN.md)\n");
    print!(
        "{}",
        normalized_table(
            &["OpenUH(base)", "OpenUH(SAFARA)", "OpenUH(SAFARA+small)", "PGI(simulated)"],
            &rows
        )
    );
}
