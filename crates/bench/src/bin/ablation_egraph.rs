//! Ablation — equality saturation ahead of SAFARA: greedy extraction
//! (no e-graph) vs saturated, vs saturated under the throughput goal.
//!
//! Two profile families, matching the paper's figures:
//!
//! * **fig7** (no clauses): `SAFARA` vs `SAFARA(saturated)` vs
//!   `SAFARA(saturated+throughput)` — the rewrites on offer are CSE,
//!   offset factoring, and strength reduction;
//! * **fig9** (all clauses): the same three with `small` + `dim`
//!   honored, which additionally arms the `small`-guarded 32-bit
//!   narrowing and lets the factoring rewrite regroup `dim`-shaped
//!   offsets.
//!
//! The driver re-validates every extraction against the ptxas register
//! model (occupancy oracle under the throughput goal) and reverts
//! non-improvements, so the saturated geomean can match but never trail
//! the greedy one. The mechanism table shows where the wins come from:
//! per-workload `regs_used` under greedy vs saturated SAFARA, plus a
//! bespoke stress kernel whose flat-index arithmetic is written in
//! deliberately un-factored form.

use safara_bench::{geomean_speedup, measure, speedup_table, Measurement};
use safara_core::opt::OptGoal;
use safara_core::{compile, Args, CompilerConfig, DeviceConfig};
use safara_workloads::{spec_suite, Scale};

/// Four differently-spelled but ring-equal flat offsets per point: the
/// greedy pipeline compiles each spelling separately; saturation proves
/// `j*4 + i*4 ≡ (j+i)*4` and `j*4 + i*4 + 4 ≡ (j+i+1)*4`, collapsing
/// them to two shifted offsets and freeing the registers that held the
/// duplicate address arithmetic.
const STRESS_SRC: &str = r#"
void egstress(int n, const float a[8192], const float b[8192], float out[8192]) {
  #pragma acc kernels
  {
    #pragma acc loop gang
    for (int j = 0; j < n; j++) {
      #pragma acc loop vector
      for (int i = 0; i < n; i++) {
        out[j * n + i] = a[(j + i) * 4] + b[j * 4 + i * 4]
                       + a[j * 4 + i * 4 + 4] + b[(j + i + 1) * 4];
      }
    }
  }
}
"#;

fn stress_regs(cfg: &CompilerConfig, dev: &DeviceConfig) -> (u32, f64) {
    let n = 40usize;
    let p = compile(STRESS_SRC, cfg).unwrap_or_else(|e| panic!("egstress under {}: {e}", cfg.name));
    let data: Vec<f32> = (0..8192).map(|i| (i % 11) as f32 * 0.5).collect();
    let mut args = Args::new()
        .i32("n", n as i32)
        .array_f32("a", &data)
        .array_f32("b", &data)
        .array_f32("out", &vec![0.0; 8192]);
    let rep = p.run("egstress", &mut args, dev).expect("egstress runs");
    (p.function("egstress").unwrap().max_regs(), rep.total_cycles())
}

fn family(
    label: &str,
    configs: &[CompilerConfig; 4],
    rows: &[Measurement],
) -> (f64, f64, f64) {
    println!("\n== {label} ==");
    println!("(speedup over OpenUH base; higher is better)\n");
    print!(
        "{}",
        speedup_table(&["base", "greedy", "saturated", "saturated+tp"], rows)
    );
    let (g, s, t) = (
        geomean_speedup(rows, 1),
        geomean_speedup(rows, 2),
        geomean_speedup(rows, 3),
    );
    println!(
        "geomean: greedy {g:.3}x, saturated {s:.3}x, saturated+throughput {t:.3}x"
    );
    let _ = configs;
    (g, s, t)
}

fn main() {
    let b = CompilerConfig::builder;
    let fig7: [CompilerConfig; 4] = [
        CompilerConfig::base(),
        CompilerConfig::safara_only(),
        CompilerConfig::safara_saturated(),
        b().safara(true).saturate(true).goal(OptGoal::MaxThroughput).build(),
    ];
    let fig9: [CompilerConfig; 4] = [
        CompilerConfig::base(),
        CompilerConfig::safara_clauses(),
        b().safara(true).small(true).dim(true).saturate(true).build(),
        b().safara(true)
            .small(true)
            .dim(true)
            .saturate(true)
            .goal(OptGoal::MaxThroughput)
            .build(),
    ];
    let suite = spec_suite();

    println!("Ablation — equality saturation ahead of SAFARA (e-graph phase)");

    let rows7 = measure(&suite, &fig7, Scale::Bench);
    let (g7, s7, _) = family("fig7 family (no clauses)", &fig7, &rows7);
    let rows9 = measure(&suite, &fig9, Scale::Bench);
    let (g9, s9, _) = family("fig9 family (small + dim honored)", &fig9, &rows9);

    // Mechanism: per-workload register use, greedy vs saturated, both
    // families. The driver's ptxas guard makes ≤ an invariant; the
    // interesting rows are the strict wins.
    println!("\nregister use (max regs_used over kernels), greedy vs saturated");
    println!(
        "{:<16}{:>16}{:>16}{:>20}{:>20}",
        "benchmark", "fig7 greedy", "fig7 saturated", "fig9 greedy", "fig9 saturated"
    );
    let mut strict_wins: Vec<String> = Vec::new();
    for w in &suite {
        let mut regs = Vec::new();
        for cfg in [&fig7[1], &fig7[2], &fig9[1], &fig9[2]] {
            let p = compile(&w.source(), cfg)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name(), cfg.name));
            regs.push(p.function(w.entry()).unwrap().max_regs());
        }
        if regs[1] < regs[0] || regs[3] < regs[2] {
            strict_wins.push(w.name().to_string());
        }
        println!(
            "{:<16}{:>16}{:>16}{:>20}{:>20}",
            w.name(),
            regs[0],
            regs[1],
            regs[2],
            regs[3]
        );
    }

    // The bespoke stress kernel: un-factored flat-index spellings the
    // rewrites are built for.
    let dev = DeviceConfig::k20xm();
    let (regs_g, cyc_g) = stress_regs(&fig7[1], &dev);
    let (regs_s, cyc_s) = stress_regs(&fig7[2], &dev);
    println!(
        "\negstress (hand-duplicated offset spellings): greedy {regs_g} regs, \
         saturated {regs_s} regs, {:.3}x cycles",
        cyc_g / cyc_s
    );
    if regs_s < regs_g {
        strict_wins.push("egstress".to_string());
    }

    println!(
        "\nkernels where saturation strictly lowers regs_used below greedy SAFARA: {}",
        if strict_wins.is_empty() { "-".to_string() } else { strict_wins.join(", ") }
    );
    println!(
        "geomean check: saturated >= greedy in both families: fig7 {} ({s7:.3} vs {g7:.3}), \
         fig9 {} ({s9:.3} vs {g9:.3})",
        s7 >= g7,
        s9 >= g9
    );
    assert!(s7 >= g7 && s9 >= g9, "the ptxas guard must prevent geomean regressions");
    assert!(
        !strict_wins.is_empty(),
        "at least one kernel must show a strict register win from saturation"
    );
}
