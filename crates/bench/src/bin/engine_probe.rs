//! Per-workload engine timing probe: decoded vs superblock seconds and
//! the fusion-counter deltas each workload induces. A diagnosis tool for
//! the superblock engine's win/loss profile, not part of the figure set.
//!
//! Usage: `cargo run --release --bin engine_probe`

use safara_core::gpusim::{fusion_counters, set_engine, Engine};
use safara_core::{CompilerConfig, DeviceConfig};
use safara_workloads::{run_workload, spec_suite, Scale};
use std::time::Instant;

fn main() {
    let configs = [CompilerConfig::base(), CompilerConfig::safara_only()];
    let dev = DeviceConfig::k20xm();
    println!(
        "{:<14} {:>8} {:>8} {:>6}  {:>6} {:>8} {:>10} {:>10} {:>6}",
        "workload", "dec_s", "sb_s", "ratio", "sbs", "hoisted", "scalar", "vector", "peels"
    );
    for w in spec_suite() {
        set_engine(Engine::Decoded);
        let t0 = Instant::now();
        for cfg in &configs {
            run_workload(w.as_ref(), cfg, Scale::Bench, &dev).unwrap();
        }
        let t_dec = t0.elapsed().as_secs_f64();

        set_engine(Engine::Superblock);
        let before = fusion_counters();
        let t0 = Instant::now();
        for cfg in &configs {
            run_workload(w.as_ref(), cfg, Scale::Bench, &dev).unwrap();
        }
        let t_sb = t0.elapsed().as_secs_f64();
        let after = fusion_counters();
        set_engine(Engine::Decoded);

        println!(
            "{:<14} {:>8.3} {:>8.3} {:>6.2}  {:>6} {:>8} {:>10} {:>10} {:>6}",
            w.name(),
            t_dec,
            t_sb,
            t_dec / t_sb,
            after.superblocks - before.superblocks,
            after.hoisted - before.hoisted,
            after.scalar_execs - before.scalar_execs,
            after.vector_execs - before.vector_execs,
            after.peels - before.peels,
        );
    }
}
