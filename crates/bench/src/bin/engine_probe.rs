//! Per-workload engine timing probe: decoded vs superblock seconds and
//! the fusion-counter deltas each workload induces, followed by an
//! engine × sim-threads sweep over the block-parallel worker pool. A
//! diagnosis tool for the superblock engine's win/loss profile and the
//! parallel scaling curve, not part of the figure set.
//!
//! Usage: `cargo run --release --bin engine_probe`

use safara_core::gpusim::{
    fusion_counters, max_sim_threads_used, reset_max_sim_threads_used, set_engine,
    with_sim_threads, Engine,
};
use safara_core::{CompilerConfig, DeviceConfig};
use safara_workloads::{run_workload, spec_suite, Scale};
use std::time::Instant;

fn main() {
    let configs = [CompilerConfig::base(), CompilerConfig::safara_only()];
    let dev = DeviceConfig::k20xm();
    println!(
        "{:<14} {:>8} {:>8} {:>6}  {:>6} {:>8} {:>10} {:>10} {:>6}",
        "workload", "dec_s", "sb_s", "ratio", "sbs", "hoisted", "scalar", "vector", "peels"
    );
    for w in spec_suite() {
        set_engine(Engine::Decoded);
        let t0 = Instant::now();
        for cfg in &configs {
            run_workload(w.as_ref(), cfg, Scale::Bench, &dev).unwrap();
        }
        let t_dec = t0.elapsed().as_secs_f64();

        set_engine(Engine::Superblock);
        let before = fusion_counters();
        let t0 = Instant::now();
        for cfg in &configs {
            run_workload(w.as_ref(), cfg, Scale::Bench, &dev).unwrap();
        }
        let t_sb = t0.elapsed().as_secs_f64();
        let after = fusion_counters();
        set_engine(Engine::Decoded);

        println!(
            "{:<14} {:>8.3} {:>8.3} {:>6.2}  {:>6} {:>8} {:>10} {:>10} {:>6}",
            w.name(),
            t_dec,
            t_sb,
            t_dec / t_sb,
            after.superblocks - before.superblocks,
            after.hoisted - before.hoisted,
            after.scalar_execs - before.scalar_execs,
            after.vector_execs - before.vector_execs,
            after.peels - before.peels,
        );
    }

    // Engine × sim-threads sweep: the whole suite under each engine with
    // the block-parallel pool at 1 / 2 / 4 / auto workers. `used` is the
    // per-launch high-water mark (`max_sim_threads_used()`): on a
    // single-core machine `auto` resolves to 1 and the sweep shows a
    // flat (honest) scaling curve.
    println!();
    println!("engine x sim-threads sweep (whole suite, seconds):");
    println!(
        "{:<12} {:>10} {:>6} {:>8} {:>8}",
        "engine", "requested", "used", "secs", "vs_1thr"
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for engine in [Engine::Reference, Engine::Decoded, Engine::Superblock] {
        set_engine(engine);
        let mut t_one = 0.0f64;
        for req in [1u32, 2, 4, 0] {
            reset_max_sim_threads_used();
            let t0 = Instant::now();
            with_sim_threads(req, || {
                for w in spec_suite() {
                    for cfg in &configs {
                        run_workload(w.as_ref(), cfg, Scale::Bench, &dev).unwrap();
                    }
                }
            });
            let secs = t0.elapsed().as_secs_f64();
            let used = max_sim_threads_used();
            if req == 1 {
                t_one = secs;
            }
            let label = if req == 0 { format!("auto({cores})") } else { req.to_string() };
            println!(
                "{:<12} {:>10} {:>6} {:>8.3} {:>8.2}",
                engine.name(),
                label,
                used,
                secs,
                t_one / secs,
            );
        }
    }
    set_engine(Engine::Decoded);
}
