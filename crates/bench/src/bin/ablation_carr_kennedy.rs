//! Ablation — what classical Carr–Kennedy scalar replacement does to a
//! parallel loop (the paper's Fig. 3 → Fig. 4 pitfall): harvesting
//! inter-iteration reuse on a parallelized loop sequentializes it.

use safara_core::{compile, Args, CompilerConfig, DeviceConfig};

const FIG3: &str = r#"
void fig3(int n, float a[n + 2], float b[n + 2]) {
  #pragma acc kernels copyin(b) copyout(a)
  {
    #pragma acc loop gang vector
    for (int i = 1; i <= n; i++) {
      a[i] = (b[i] + b[i + 1]) / 2.0;
    }
  }
}
"#;

fn main() {
    let n = 262_144usize;
    let dev = DeviceConfig::k20xm();
    println!("Ablation — Carr–Kennedy on the paper's Fig. 3 loop (n = {n})\n");
    println!("{:<22}{:>16}{:>14}{:>12}", "strategy", "cycles", "vs SAFARA", "threads");
    let mut safara_cycles = None;
    for cfg in [CompilerConfig::base(), CompilerConfig::safara_only(), CompilerConfig::carr_kennedy()] {
        let p = compile(FIG3, &cfg).expect("compiles");
        let b: Vec<f32> = (0..n + 2).map(|i| i as f32).collect();
        let mut args = Args::new()
            .i32("n", n as i32)
            .array_f32("a", &vec![0.0; n + 2])
            .array_f32("b", &b);
        let rep = p.run("fig3", &mut args, &dev).expect("runs");
        // Verify correctness regardless of strategy.
        let a = args.array("a").unwrap().as_f32();
        for i in 1..=n {
            assert_eq!(a[i], (b[i] + b[i + 1]) / 2.0, "i={i}");
        }
        let cycles = rep.total_cycles();
        if cfg.name.contains("SAFARA") {
            safara_cycles = Some(cycles);
        }
        let rel = safara_cycles.map(|s| cycles / s).unwrap_or(1.0);
        println!(
            "{:<22}{:>16.0}{:>13.1}x{:>12}",
            cfg.name,
            cycles,
            rel,
            rep.kernels[0].config.total_threads()
        );
        if let Some(seq) = p
            .function("fig3")
            .ok()
            .filter(|f| !f.sr_outcome.sequentialized.is_empty())
        {
            println!(
                "  -> sequentialized loop(s): {:?} (Fig. 4 behaviour)",
                seq.sr_outcome.sequentialized
            );
        }
    }
}
