//! Figure 10 — NAS speedups: `small`, `SAFARA`, `SAFARA+small` over the
//! OpenUH baseline. The NAS codes are C without VLAs, so `dim` does not
//! apply (§V-C); the paper reports up to 2.5×.

use safara_bench::{best_speedup, measure, speedup_table};
use safara_core::CompilerConfig;
use safara_workloads::{nas_suite, Scale};

fn main() {
    let configs = [
        CompilerConfig::base(),
        CompilerConfig::small(),
        CompilerConfig::safara_only(),
        CompilerConfig::safara_small(),
    ];
    let rows = measure(&nas_suite(), &configs, Scale::Bench);
    println!("Figure 10 — NAS, clause + SAFARA speedups\n");
    print!("{}", speedup_table(&["base", "+small", "SAFARA", "SAFARA+small"], &rows));
    let (s, w) = best_speedup(&rows, 3);
    println!("\nbest: {s:.2}x on {w} (paper: up to 2.5x)");
}
