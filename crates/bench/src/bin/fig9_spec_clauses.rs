//! Figure 9 — SPEC ACCEL cumulative speedups: `small`, `small+dim`,
//! `small+dim+SAFARA` over the OpenUH baseline.
//!
//! Paper reports up to 2.08× with all three; `dim` only applies to the
//! Fortran-modeled apps (355.seismic, 356.sp, 363.swim).

use safara_bench::{best_speedup, measure, speedup_table};
use safara_core::CompilerConfig;
use safara_workloads::{spec_suite, Scale};

fn main() {
    let configs = [
        CompilerConfig::base(),
        CompilerConfig::small(),
        CompilerConfig::small_dim(),
        CompilerConfig::safara_clauses(),
    ];
    let rows = measure(&spec_suite(), &configs, Scale::Bench);
    println!("Figure 9 — SPEC ACCEL, cumulative clause + SAFARA speedups\n");
    print!("{}", speedup_table(&["base", "+small", "+small+dim", "+small+dim+SAFARA"], &rows));
    let (s, w) = best_speedup(&rows, 3);
    println!("\nbest: {s:.2}x on {w} (paper: up to 2.08x)");
}
