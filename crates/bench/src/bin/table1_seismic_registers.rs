//! Table I — 355.seismic: per-kernel register usage under Base, +small,
//! and +small+dim (the paper's HOT1–HOT7 rows), plus the registers saved.

use safara_core::report::{format_register_table, register_table, RegisterRow};
use safara_core::{compile, CompilerConfig};
use safara_workloads::spec::seismic;
use safara_workloads::Workload;

fn main() {
    let src = seismic::Seismic.source();
    let base = compile(&src, &CompilerConfig::base()).expect("base compiles");
    let small = compile(&src, &CompilerConfig::small()).expect("+small compiles");
    let dim = compile(&src, &CompilerConfig::small_dim()).expect("+dim compiles");
    let mut rows = register_table("seismic_step", &[&base, &small, &dim]);
    // Append the "Saved" column (Base − w dim), as in the paper's table.
    for r in &mut rows {
        let saved = match (r.regs[0], r.regs[2]) {
            (Some(b), Some(d)) => Some(b - d),
            _ => None,
        };
        r.regs.push(saved);
    }
    println!("Table I — 355.seismic register files usage via small and dim clauses\n");
    print!("{}", format_register_table(&["Base", "+small", "w dim", "Saved"], &rows));
    let total: u32 = rows.iter().filter_map(|r: &RegisterRow| r.regs[3]).sum();
    println!("\ntotal registers saved across the 7 hot kernels: {total}");
}
