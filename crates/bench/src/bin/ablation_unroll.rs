//! Extension (§VII future work) — loop unrolling combined with SAFARA.
//!
//! Unrolling an innermost sequential loop turns inter-iteration reuse
//! into straight-line reuse: after unrolling by 4, `c[k]`/`c[k-1]` pairs
//! appear as shared subexpressions *within* one iteration, so scalar
//! replacement plus local CSE removes them without rotating temporaries.
//! The cost is more instructions and more live values per iteration —
//! so the sweet spot is workload-dependent, which is exactly why the
//! paper left it as future work.

use safara_bench::{measure, speedup_table};
use safara_core::CompilerConfig;
use safara_workloads::{nas_suite, spec_suite, Scale, Workload};

fn main() {
    let configs = [
        CompilerConfig::base(),
        CompilerConfig::safara_clauses(),
        CompilerConfig { name: "unroll2", ..CompilerConfig::safara_unroll(2) },
        CompilerConfig { name: "unroll4", ..CompilerConfig::safara_unroll(4) },
    ];
    let picks = ["303.ostencil", "355.seismic", "370.bt", "MG", "SP", "BT"];
    let workloads: Vec<Box<dyn Workload>> = spec_suite()
        .into_iter()
        .chain(nas_suite())
        .filter(|w| picks.contains(&w.name()))
        .collect();
    let rows = measure(&workloads, &configs, Scale::Bench);
    println!("Extension — SAFARA+clauses with sequential-loop unrolling");
    println!("(the paper's §VII future work; every run validated)\n");
    print!(
        "{}",
        speedup_table(&["base", "SAFARA+clauses", "+unroll 2", "+unroll 4"], &rows)
    );
}
