//! Figure 7 — SPEC ACCEL speedups with **SAFARA only** (no clauses).
//!
//! The paper's point: applied alone, aggressive scalar replacement gives
//! small gains and sometimes *slows benchmarks down* (355.seismic) by
//! exhausting registers and cutting occupancy.

use safara_bench::{best_speedup, measure, speedup_table};
use safara_core::CompilerConfig;
use safara_workloads::{spec_suite, Scale};

fn main() {
    let configs = [CompilerConfig::base(), CompilerConfig::safara_only()];
    let rows = measure(&spec_suite(), &configs, Scale::Bench);
    println!("Figure 7 — SPEC ACCEL, speedup of SAFARA alone over OpenUH base");
    println!("(speedup < 1.0 = slowdown from occupancy loss)\n");
    print!("{}", speedup_table(&["base", "SAFARA"], &rows));
    let (s, w) = best_speedup(&rows, 1);
    println!("\nbest: {s:.2}x on {w}");
}
