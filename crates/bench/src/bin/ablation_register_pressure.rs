//! Ablation — the Fig. 7 slowdown mechanism, isolated.
//!
//! The paper observes that SAFARA *alone* can slow a kernel down (§IV,
//! Fig. 7: 355.seismic): every admitted candidate costs registers,
//! registers cost resident warps, and a memory-bound kernel loses more
//! latency hiding than it gains once a candidate's benefit-per-register
//! is small. The steepest such case is **sparse-distance rotation**: a
//! pair like `c[t] / c[t-4]` saves one load per iteration but needs
//! *five* rotating temporaries (ten 32-bit registers for `double`) —
//! exactly the "aggressive application of scalar replacement increases
//! register pressure" behaviour the clauses were invented to relieve.
//!
//! The kernel below is dominated by uncoalesced streaming traffic that
//! scalar replacement cannot touch; SAFARA spends registers rotating
//! distance-4 f64 pairs, occupancy drops, and the kernel slows down —
//! the Fig. 7 crossover, reproduced and dialed by the candidate count.

use safara_core::{compile, Args, CompilerConfig, DeviceConfig};
use std::fmt::Write as _;

/// `nc` rotation-bait f64 arrays on top of two uncoalesced streams.
fn stress_source(nc: usize) -> String {
    let params: String = (0..nc)
        .map(|q| format!(", const double c{q}[nt][ny][nx]"))
        .collect::<Vec<_>>()
        .join("");
    let mut body = String::new();
    for q in 0..nc {
        writeln!(
            body,
            "          acc += c{q}[t][j][i] - c{q}[t - 4][j][i];"
        )
        .unwrap();
    }
    format!(
        r#"
void regstress(int nt, int nx, int ny, const float s0[nt][ny][nx],
               const float s1[nt][ny][nx], float out[ny][nx]{params}) {{
  #pragma acc kernels
  {{
    #pragma acc loop gang
    for (int j = 0; j < ny; j++) {{
      #pragma acc loop vector
      for (int i = 0; i < nx; i++) {{
        double acc = 0.0;
        #pragma acc loop seq
        for (int t = 4; t < nt; t++) {{
          acc += s0[t][i][j] + s1[t][i][j];
{body}        }}
        out[j][i] = (float) acc;
      }}
    }}
  }}
}}
"#,
    )
}

fn main() {
    let dev = DeviceConfig::k20xm();
    let (n, nt) = (64usize, 32usize);
    println!("Ablation — register pressure vs occupancy (the Fig. 7 mechanism)");
    println!("Distance-4 f64 rotation pairs: 1 load saved per iteration costs");
    println!("5 rotating temporaries (10 registers) each.\n");
    println!(
        "{:>10}{:>12}{:>14}{:>12}{:>12}{:>16}",
        "candidates", "base regs", "SAFARA regs", "base wps", "SAFARA wps", "SAFARA speedup"
    );
    let mut slowed = false;
    for nc in [0usize, 2, 4, 6, 8] {
        let src = stress_source(nc);
        let mut cycles = Vec::new();
        let mut regs = Vec::new();
        let mut warps = Vec::new();
        for cfg in [CompilerConfig::base(), CompilerConfig::safara_only()] {
            let p = compile(&src, &cfg).expect("compiles");
            let stream: Vec<f32> = (0..nt * n * n).map(|i| (i % 13) as f32).collect();
            let mut args = Args::new()
                .i32("nt", nt as i32)
                .i32("nx", n as i32)
                .i32("ny", n as i32)
                .array_f32("s0", &stream)
                .array_f32("s1", &stream)
                .array_f32("out", &vec![0.0; n * n]);
            let cdata: Vec<f64> = (0..nt * n * n).map(|i| (i % 7) as f64).collect();
            for q in 0..nc {
                args = args.array_f64(&format!("c{q}"), &cdata);
            }
            let rep = p.run("regstress", &mut args, &dev).expect("runs");
            // Validate against the reference sum.
            let out = args.array("out").unwrap().as_f32();
            for j in 0..n {
                for i in 0..n {
                    let mut want = 0.0f64;
                    for t in 4..nt {
                        want += 2.0 * stream[(t * n + i) * n + j] as f64;
                        want += nc as f64
                            * (cdata[(t * n + j) * n + i] - cdata[((t - 4) * n + j) * n + i]);
                    }
                    let got = out[j * n + i] as f64;
                    assert!((got - want).abs() < 1e-2, "({j},{i}): {got} vs {want}");
                }
            }
            cycles.push(rep.total_cycles());
            regs.push(p.function("regstress").unwrap().max_regs());
            warps.push(rep.kernels[0].timing.active_warps);
        }
        let sp = cycles[0] / cycles[1];
        slowed |= sp < 0.99;
        println!(
            "{:>10}{:>12}{:>14}{:>12}{:>12}{:>15.3}x",
            nc, regs[0], regs[1], warps[0], warps[1], sp
        );
    }
    println!("\nspeedup < 1.0: SAFARA's registers cost more occupancy than its");
    println!("eliminated loads buy back — the paper's Fig. 7 seismic case.");
    assert!(slowed, "expected at least one slowdown point in the sweep");
}
