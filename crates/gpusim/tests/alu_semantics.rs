//! Differential testing of the VIR interpreter's scalar semantics
//! against native Rust arithmetic: for every ALU operation, comparison,
//! and numeric conversion, a one-instruction kernel must compute exactly
//! what the corresponding Rust expression computes.
//!
//! Inputs are drawn from the in-tree [`SplitMix64`] generator (no
//! crates.io dependency); each case is a pure function of its index, so
//! failures reproduce exactly. Build with `--features heavy-tests` for a
//! much larger case count.

use safara_gpusim::interp::{launch, LaunchConfig, ParamVal};
use safara_gpusim::memory::DeviceMemory;
use safara_gpusim::rng::SplitMix64;
use safara_gpusim::vir::*;

fn cases() -> u64 {
    if cfg!(feature = "heavy-tests") {
        2048
    } else {
        128
    }
}

/// An i32 drawn from the full range, biased toward interesting values.
fn any_i32(rng: &mut SplitMix64) -> i32 {
    const SPECIAL: [i32; 8] = [0, 1, -1, i32::MIN, i32::MAX, 2, -2, 31];
    match rng.gen_index(8) {
        0 => SPECIAL[rng.gen_index(SPECIAL.len())],
        _ => rng.next_u32() as i32,
    }
}

/// Run a single binary ALU op on two i32 params, return the i32 result.
fn run_alu_i32(op: AluOp, a: i32, b: i32) -> i32 {
    let mut k = KernelVir {
        name: "alu".into(),
        params: vec![ParamDecl::Scalar(VType::B32), ParamDecl::Scalar(VType::B32), ParamDecl::Ptr],
        ..Default::default()
    };
    let x = k.new_vreg(VType::B32);
    let y = k.new_vreg(VType::B32);
    let out = k.new_vreg(VType::B64);
    let d = k.new_vreg(VType::B32);
    k.insts = vec![
        Inst::LdParam { ty: VType::B32, d: x, index: 0 },
        Inst::LdParam { ty: VType::B32, d: y, index: 1 },
        Inst::LdParam { ty: VType::B64, d: out, index: 2 },
        Inst::Alu { op, ty: VType::B32, d, a: x.into(), b: y.into() },
        Inst::St { space: MemSpace::Global, ty: VType::B32, addr: out, a: d.into() },
        Inst::Ret,
    ];
    let mut mem = DeviceMemory::new();
    let buf = mem.alloc(4);
    launch(
        &k,
        &LaunchConfig::d1(1, 1),
        &[ParamVal::I32(a), ParamVal::I32(b), ParamVal::Ptr(mem.base_addr(buf))],
        &mut mem,
        &[],
    )
    .expect("runs");
    mem.copy_out_i32(buf)[0]
}

/// Run a single binary ALU op on two f64 params.
fn run_alu_f64(op: AluOp, a: f64, b: f64) -> f64 {
    let mut k = KernelVir {
        name: "alu64".into(),
        params: vec![ParamDecl::Scalar(VType::F64), ParamDecl::Scalar(VType::F64), ParamDecl::Ptr],
        ..Default::default()
    };
    let x = k.new_vreg(VType::F64);
    let y = k.new_vreg(VType::F64);
    let out = k.new_vreg(VType::B64);
    let d = k.new_vreg(VType::F64);
    k.insts = vec![
        Inst::LdParam { ty: VType::F64, d: x, index: 0 },
        Inst::LdParam { ty: VType::F64, d: y, index: 1 },
        Inst::LdParam { ty: VType::B64, d: out, index: 2 },
        Inst::Alu { op, ty: VType::F64, d, a: x.into(), b: y.into() },
        Inst::St { space: MemSpace::Global, ty: VType::F64, addr: out, a: d.into() },
        Inst::Ret,
    ];
    let mut mem = DeviceMemory::new();
    let buf = mem.alloc(8);
    launch(
        &k,
        &LaunchConfig::d1(1, 1),
        &[ParamVal::F64(a), ParamVal::F64(b), ParamVal::Ptr(mem.base_addr(buf))],
        &mut mem,
        &[],
    )
    .expect("runs");
    mem.copy_out_f64(buf)[0]
}

/// Run a comparison + predicate-to-b32 conversion.
fn run_cmp_i32(op: CmpOp, a: i32, b: i32) -> i32 {
    let mut k = KernelVir {
        name: "cmp".into(),
        params: vec![ParamDecl::Scalar(VType::B32), ParamDecl::Scalar(VType::B32), ParamDecl::Ptr],
        ..Default::default()
    };
    let x = k.new_vreg(VType::B32);
    let y = k.new_vreg(VType::B32);
    let out = k.new_vreg(VType::B64);
    let p = k.new_vreg(VType::Pred);
    let d = k.new_vreg(VType::B32);
    k.insts = vec![
        Inst::LdParam { ty: VType::B32, d: x, index: 0 },
        Inst::LdParam { ty: VType::B32, d: y, index: 1 },
        Inst::LdParam { ty: VType::B64, d: out, index: 2 },
        Inst::Setp { op, ty: VType::B32, d: p, a: x.into(), b: y.into() },
        Inst::Cvt { dty: VType::B32, d, aty: VType::Pred, a: p.into() },
        Inst::St { space: MemSpace::Global, ty: VType::B32, addr: out, a: d.into() },
        Inst::Ret,
    ];
    let mut mem = DeviceMemory::new();
    let buf = mem.alloc(4);
    launch(
        &k,
        &LaunchConfig::d1(1, 1),
        &[ParamVal::I32(a), ParamVal::I32(b), ParamVal::Ptr(mem.base_addr(buf))],
        &mut mem,
        &[],
    )
    .expect("runs");
    mem.copy_out_i32(buf)[0]
}

#[test]
fn int32_alu_matches_rust() {
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0xA100_0000 + case);
        let a = any_i32(&mut rng);
        let b = any_i32(&mut rng);
        assert_eq!(run_alu_i32(AluOp::Add, a, b), a.wrapping_add(b));
        assert_eq!(run_alu_i32(AluOp::Sub, a, b), a.wrapping_sub(b));
        assert_eq!(run_alu_i32(AluOp::Mul, a, b), a.wrapping_mul(b));
        assert_eq!(run_alu_i32(AluOp::Min, a, b), a.min(b));
        assert_eq!(run_alu_i32(AluOp::Max, a, b), a.max(b));
        assert_eq!(run_alu_i32(AluOp::And, a, b), a & b);
        assert_eq!(run_alu_i32(AluOp::Or, a, b), a | b);
        assert_eq!(run_alu_i32(AluOp::Xor, a, b), a ^ b);
        // Division and remainder: zero divisor yields 0 (GPU-style safe
        // division in the interpreter).
        if b != 0 {
            assert_eq!(run_alu_i32(AluOp::Div, a, b), a.wrapping_div(b));
            assert_eq!(run_alu_i32(AluOp::Rem, a, b), a.wrapping_rem(b));
        } else {
            assert_eq!(run_alu_i32(AluOp::Div, a, b), 0);
            assert_eq!(run_alu_i32(AluOp::Rem, a, b), 0);
        }
        // Shifts mask the count to 5 bits, as PTX does.
        assert_eq!(run_alu_i32(AluOp::Shl, a, b), a.wrapping_shl(b as u32 & 31));
        assert_eq!(run_alu_i32(AluOp::Shr, a, b), a.wrapping_shr(b as u32 & 31));
    }
}

#[test]
fn f64_alu_matches_rust() {
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0xA164_0000 + case);
        let a = rng.gen_range_f64(-1e12, 1e12);
        let b = rng.gen_range_f64(-1e12, 1e12);
        assert_eq!(run_alu_f64(AluOp::Add, a, b).to_bits(), (a + b).to_bits());
        assert_eq!(run_alu_f64(AluOp::Sub, a, b).to_bits(), (a - b).to_bits());
        assert_eq!(run_alu_f64(AluOp::Mul, a, b).to_bits(), (a * b).to_bits());
        assert_eq!(run_alu_f64(AluOp::Div, a, b).to_bits(), (a / b).to_bits());
        assert_eq!(run_alu_f64(AluOp::Min, a, b).to_bits(), a.min(b).to_bits());
        assert_eq!(run_alu_f64(AluOp::Max, a, b).to_bits(), a.max(b).to_bits());
    }
}

#[test]
fn comparisons_match_rust() {
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0xC390_0000 + case);
        let a = any_i32(&mut rng);
        let b = any_i32(&mut rng);
        assert_eq!(run_cmp_i32(CmpOp::Lt, a, b), i32::from(a < b));
        assert_eq!(run_cmp_i32(CmpOp::Le, a, b), i32::from(a <= b));
        assert_eq!(run_cmp_i32(CmpOp::Gt, a, b), i32::from(a > b));
        assert_eq!(run_cmp_i32(CmpOp::Ge, a, b), i32::from(a >= b));
        assert_eq!(run_cmp_i32(CmpOp::Eq, a, b), i32::from(a == b));
        assert_eq!(run_cmp_i32(CmpOp::Ne, a, b), i32::from(a != b));
    }
}

/// Conversions: i32 → f64 → i32 round-trips exactly; i32 → f32 rounds
/// as Rust does; f64 → i32 truncates toward zero.
#[test]
fn conversions_match_rust() {
    for case in 0..cases() {
        let mut rng = SplitMix64::new(0xC040_0000 + case);
        let v = any_i32(&mut rng);
        let mut k = KernelVir {
            name: "cvt".into(),
            params: vec![ParamDecl::Scalar(VType::B32), ParamDecl::Ptr],
            ..Default::default()
        };
        let x = k.new_vreg(VType::B32);
        let out = k.new_vreg(VType::B64);
        let f = k.new_vreg(VType::F64);
        let g = k.new_vreg(VType::F32);
        let r1 = k.new_vreg(VType::B32);
        let addr2 = k.new_vreg(VType::B64);
        k.insts = vec![
            Inst::LdParam { ty: VType::B32, d: x, index: 0 },
            Inst::LdParam { ty: VType::B64, d: out, index: 1 },
            Inst::Cvt { dty: VType::F64, d: f, aty: VType::B32, a: x.into() },
            Inst::Cvt { dty: VType::B32, d: r1, aty: VType::F64, a: f.into() },
            Inst::St { space: MemSpace::Global, ty: VType::B32, addr: out, a: r1.into() },
            Inst::Cvt { dty: VType::F32, d: g, aty: VType::B32, a: x.into() },
            Inst::Alu { op: AluOp::Add, ty: VType::B64, d: addr2, a: out.into(), b: Operand::ImmI(4) },
            Inst::St { space: MemSpace::Global, ty: VType::F32, addr: addr2, a: g.into() },
            Inst::Ret,
        ];
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(8);
        launch(
            &k,
            &LaunchConfig::d1(1, 1),
            &[ParamVal::I32(v), ParamVal::Ptr(mem.base_addr(buf))],
            &mut mem,
            &[],
        )
        .expect("runs");
        let ints = mem.copy_out_i32(buf);
        assert_eq!(ints[0], v, "i32→f64→i32 must round-trip");
        let f32_bits = ints[1] as u32;
        assert_eq!(f32::from_bits(f32_bits).to_bits(), (v as f32).to_bits());
    }
}

#[test]
fn pred_logic_ops() {
    // and/or/xor on predicates via a tiny kernel per op.
    for (op, f) in [
        (AluOp::And, (|a, b| a && b) as fn(bool, bool) -> bool),
        (AluOp::Or, |a, b| a || b),
        (AluOp::Xor, |a, b| a ^ b),
    ] {
        for a in [false, true] {
            for b in [false, true] {
                let mut k = KernelVir {
                    name: "pl".into(),
                    params: vec![ParamDecl::Scalar(VType::B32), ParamDecl::Scalar(VType::B32), ParamDecl::Ptr],
                    ..Default::default()
                };
                let x = k.new_vreg(VType::B32);
                let y = k.new_vreg(VType::B32);
                let out = k.new_vreg(VType::B64);
                let pa = k.new_vreg(VType::Pred);
                let pb = k.new_vreg(VType::Pred);
                let pc = k.new_vreg(VType::Pred);
                let d = k.new_vreg(VType::B32);
                k.insts = vec![
                    Inst::LdParam { ty: VType::B32, d: x, index: 0 },
                    Inst::LdParam { ty: VType::B32, d: y, index: 1 },
                    Inst::LdParam { ty: VType::B64, d: out, index: 2 },
                    Inst::Setp { op: CmpOp::Ne, ty: VType::B32, d: pa, a: x.into(), b: Operand::ImmI(0) },
                    Inst::Setp { op: CmpOp::Ne, ty: VType::B32, d: pb, a: y.into(), b: Operand::ImmI(0) },
                    Inst::Alu { op, ty: VType::Pred, d: pc, a: pa.into(), b: pb.into() },
                    Inst::Cvt { dty: VType::B32, d, aty: VType::Pred, a: pc.into() },
                    Inst::St { space: MemSpace::Global, ty: VType::B32, addr: out, a: d.into() },
                    Inst::Ret,
                ];
                let mut mem = DeviceMemory::new();
                let buf = mem.alloc(4);
                launch(
                    &k,
                    &LaunchConfig::d1(1, 1),
                    &[
                        ParamVal::I32(i32::from(a)),
                        ParamVal::I32(i32::from(b)),
                        ParamVal::Ptr(mem.base_addr(buf)),
                    ],
                    &mut mem,
                    &[],
                )
                .expect("runs");
                assert_eq!(mem.copy_out_i32(buf)[0], i32::from(f(a, b)), "{op:?} {a} {b}");
            }
        }
    }
}
