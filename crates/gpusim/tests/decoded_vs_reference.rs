//! Differential golden-stats tests: the decoded (flat-opcode) engine,
//! the reference interpreter, and the memoized replay path must agree
//! on every statistic and every output byte, for kernels chosen to
//! stress the paths where they could plausibly diverge:
//!
//! * **divergent branches** — ragged per-lane loop trip counts exercise
//!   the decoded engine's `Mark`-collapsed pc map and the warp merger's
//!   divergent-reconstruction fallback,
//! * **atomics** — per-transaction accounting plus read-modify-write
//!   memory ordering,
//! * **segment-straddling strides** — the streaming 128-byte coalescing
//!   fast path vs. the sort-based slow path must count identical
//!   transactions.
//!
//! The engine switch is process-global, so every test takes a mutex.

use safara_gpusim::interp::{set_reference_engine, LaunchConfig, ParamVal};
use safara_gpusim::memo::{launch_cached, LaunchCache};
use safara_gpusim::vir::{
    AluOp, CmpOp, Inst, Label, MemSpace, Operand, ParamDecl, SpecialReg, VType,
};
use safara_gpusim::{launch, DeviceMemory, KernelStats, KernelVir, VReg};
use std::sync::Mutex;

static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn r(i: u32) -> Operand {
    Operand::Reg(VReg(i))
}

/// Run one launch on a fresh memory image built by `setup`, returning
/// the stats and the final contents of every buffer.
fn run_once(
    kernel: &KernelVir,
    config: &LaunchConfig,
    spilled: &[VReg],
    setup: &dyn Fn(&mut DeviceMemory) -> Vec<ParamVal>,
) -> (KernelStats, Vec<Vec<u8>>) {
    let mut mem = DeviceMemory::new();
    let params = setup(&mut mem);
    let result = launch(kernel, config, &params, &mut mem, spilled).expect("launch");
    let mut bufs = Vec::new();
    let mut i = 0u32;
    loop {
        let id = safara_gpusim::BufferId(i);
        let base = mem.base_addr(id);
        if mem.read(base, 1).is_err() {
            break;
        }
        bufs.push(mem.copy_out(id));
        i += 1;
    }
    (result.stats, bufs)
}

/// Assert reference and decoded engines agree, then assert a memoized
/// second run replays the exact same stats and memory.
fn assert_engines_agree(
    kernel: &KernelVir,
    config: &LaunchConfig,
    spilled: &[VReg],
    setup: &dyn Fn(&mut DeviceMemory) -> Vec<ParamVal>,
) -> KernelStats {
    let _guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_reference_engine(true);
    let (ref_stats, ref_bufs) = run_once(kernel, config, spilled, setup);
    set_reference_engine(false);
    let (dec_stats, dec_bufs) = run_once(kernel, config, spilled, setup);
    assert_eq!(ref_stats, dec_stats, "stats diverge between engines");
    assert_eq!(ref_bufs, dec_bufs, "memory diverges between engines");

    // Memoized: first call populates, second replays from cache.
    let mut cache = LaunchCache::new();
    for round in 0..2 {
        let mut mem = DeviceMemory::new();
        let params = setup(&mut mem);
        let res = launch_cached(&mut cache, kernel, config, &params, &mut mem, spilled)
            .expect("cached launch");
        assert_eq!(res.stats, ref_stats, "memoized stats diverge (round {round})");
        for (i, expect) in ref_bufs.iter().enumerate() {
            assert_eq!(
                &mem.copy_out(safara_gpusim::BufferId(i as u32)),
                expect,
                "memoized memory diverges (round {round}, buffer {i})"
            );
        }
    }
    assert_eq!((cache.hits, cache.misses), (1, 1), "second round must be a cache hit");
    ref_stats
}

/// Per-lane loop with a ragged trip count (`gid` iterations, where
/// `gid = ctaid.x * ntid.x + tid.x` is the global thread id) and a
/// taken/not-taken predicated branch inside the body.
///
/// ```text
/// acc = 0
/// for (i = 0; i < gid; i++)
///     if (i % 2 == 0) acc += a[i]; else acc += 3;
/// out[gid] = acc
/// ```
fn divergent_kernel() -> KernelVir {
    let (tid, i, acc, p, t0, t1, addr) = (0, 1, 2, 3, 4, 5, 6);
    let (cta, ntid) = (7, 8);
    KernelVir {
        name: "divergent".into(),
        params: vec![ParamDecl::Ptr, ParamDecl::Ptr],
        vregs: vec![
            VType::B32, // tid
            VType::B32, // i
            VType::B32, // acc
            VType::Pred,
            VType::B32, // t0 scratch
            VType::B64, // t1 scratch (addresses)
            VType::B64, // addr
            VType::B32, // ctaid
            VType::B32, // ntid
        ],
        insts: vec![
            Inst::Special { d: VReg(tid), r: SpecialReg::Tid(0) },
            Inst::Special { d: VReg(cta), r: SpecialReg::CtaId(0) },
            Inst::Special { d: VReg(ntid), r: SpecialReg::NTid(0) },
            Inst::Alu { op: AluOp::Mul, ty: VType::B32, d: VReg(cta), a: r(cta), b: r(ntid) },
            Inst::Alu { op: AluOp::Add, ty: VType::B32, d: VReg(tid), a: r(tid), b: r(cta) },
            Inst::Mov { ty: VType::B32, d: VReg(i), a: Operand::ImmI(0) },
            Inst::Mov { ty: VType::B32, d: VReg(acc), a: Operand::ImmI(0) },
            // loop head
            Inst::Mark(Label(0)),
            Inst::Setp { op: CmpOp::Ge, ty: VType::B32, d: VReg(p), a: r(i), b: r(tid) },
            Inst::Bra { target: Label(3), pred: Some((VReg(p), true)) },
            // if (i % 2 == 0)
            Inst::Alu { op: AluOp::Rem, ty: VType::B32, d: VReg(t0), a: r(i), b: Operand::ImmI(2) },
            Inst::Setp {
                op: CmpOp::Ne,
                ty: VType::B32,
                d: VReg(p),
                a: r(t0),
                b: Operand::ImmI(0),
            },
            Inst::Bra { target: Label(1), pred: Some((VReg(p), true)) },
            // then: acc += a[i]
            Inst::Cvt { dty: VType::B64, d: VReg(t1), aty: VType::B32, a: r(i) },
            Inst::Alu { op: AluOp::Mul, ty: VType::B64, d: VReg(t1), a: r(t1), b: Operand::ImmI(4) },
            Inst::LdParam { ty: VType::B64, d: VReg(addr), index: 0 },
            Inst::Alu { op: AluOp::Add, ty: VType::B64, d: VReg(addr), a: r(addr), b: r(t1) },
            Inst::Ld { space: MemSpace::Global, ty: VType::B32, d: VReg(t0), addr: VReg(addr) },
            Inst::Alu { op: AluOp::Add, ty: VType::B32, d: VReg(acc), a: r(acc), b: r(t0) },
            Inst::Bra { target: Label(2), pred: None },
            // else: acc += 3
            Inst::Mark(Label(1)),
            Inst::Alu {
                op: AluOp::Add,
                ty: VType::B32,
                d: VReg(acc),
                a: r(acc),
                b: Operand::ImmI(3),
            },
            Inst::Mark(Label(2)),
            Inst::Alu { op: AluOp::Add, ty: VType::B32, d: VReg(i), a: r(i), b: Operand::ImmI(1) },
            Inst::Bra { target: Label(0), pred: None },
            // exit: out[tid] = acc
            Inst::Mark(Label(3)),
            Inst::Cvt { dty: VType::B64, d: VReg(t1), aty: VType::B32, a: r(tid) },
            Inst::Alu { op: AluOp::Mul, ty: VType::B64, d: VReg(t1), a: r(t1), b: Operand::ImmI(4) },
            Inst::LdParam { ty: VType::B64, d: VReg(addr), index: 1 },
            Inst::Alu { op: AluOp::Add, ty: VType::B64, d: VReg(addr), a: r(addr), b: r(t1) },
            Inst::St { space: MemSpace::Global, ty: VType::B32, addr: VReg(addr), a: r(acc) },
            Inst::Ret,
        ],
    }
}

#[test]
fn divergent_branches_agree() {
    let kernel = divergent_kernel();
    let config = LaunchConfig::d1(2, 64);
    let setup = |mem: &mut DeviceMemory| {
        let a = mem.alloc(128 * 4);
        let out = mem.alloc(128 * 4);
        let data: Vec<i32> = (0..128).map(|i| i * 7 - 300).collect();
        mem.copy_in_i32(a, &data);
        vec![ParamVal::Ptr(mem.base_addr(a)), ParamVal::Ptr(mem.base_addr(out))]
    };
    let stats = assert_engines_agree(&kernel, &config, &[], &setup);
    // Ragged trip counts mean real divergence: issued counts must exceed
    // what uniform execution of the shortest lane would give.
    assert!(stats.simple_insts > 0);
    // Spot-check the semantics on the host: lane t sums a[i] for even i
    // below t and 3 for odd i.
    let _guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_reference_engine(false);
    let mut mem2 = DeviceMemory::new();
    let params2 = setup(&mut mem2);
    launch(&kernel, &config, &params2, &mut mem2, &[]).unwrap();
    let out = mem2.copy_out_i32(safara_gpusim::BufferId(1));
    let a: Vec<i32> = (0..128).map(|i| i * 7 - 300).collect();
    for (t, &got) in out.iter().enumerate() {
        let expect: i32 =
            (0..t).map(|i| if i % 2 == 0 { a[i] } else { 3 }).sum();
        assert_eq!(got, expect, "lane {t}");
    }
}

/// All lanes atomically add into one f32 cell and one b32 cell indexed
/// by `tid % 8` — serialization count and float accumulation order must
/// match between engines.
fn atomic_kernel() -> KernelVir {
    let (tid, t0, addr, val, off) = (0, 1, 2, 3, 4);
    KernelVir {
        name: "atomic".into(),
        params: vec![ParamDecl::Ptr, ParamDecl::Ptr],
        vregs: vec![VType::B32, VType::B32, VType::B64, VType::F32, VType::B64],
        insts: vec![
            Inst::Special { d: VReg(tid), r: SpecialReg::Tid(0) },
            // atomAdd(sum, (float)tid * 0.25)
            Inst::Cvt { dty: VType::F32, d: VReg(val), aty: VType::B32, a: r(tid) },
            Inst::Math {
                op: safara_gpusim::vir::MathOp::Sqrt,
                ty: VType::F32,
                d: VReg(val),
                a: r(val),
                b: None,
            },
            Inst::LdParam { ty: VType::B64, d: VReg(addr), index: 0 },
            Inst::AtomAdd { ty: VType::F32, addr: VReg(addr), a: r(val) },
            // atomAdd(hist[tid % 8], 1)
            Inst::Alu {
                op: AluOp::Rem,
                ty: VType::B32,
                d: VReg(t0),
                a: r(tid),
                b: Operand::ImmI(8),
            },
            Inst::Cvt { dty: VType::B64, d: VReg(off), aty: VType::B32, a: r(t0) },
            Inst::Alu { op: AluOp::Mul, ty: VType::B64, d: VReg(off), a: r(off), b: Operand::ImmI(4) },
            Inst::LdParam { ty: VType::B64, d: VReg(addr), index: 1 },
            Inst::Alu { op: AluOp::Add, ty: VType::B64, d: VReg(addr), a: r(addr), b: r(off) },
            Inst::AtomAdd { ty: VType::B32, addr: VReg(addr), a: Operand::ImmI(1) },
            Inst::Ret,
        ],
    }
}

#[test]
fn atomics_agree() {
    let kernel = atomic_kernel();
    let config = LaunchConfig::d1(3, 96);
    let setup = |mem: &mut DeviceMemory| {
        let sum = mem.alloc(4);
        let hist = mem.alloc(8 * 4);
        vec![ParamVal::Ptr(mem.base_addr(sum)), ParamVal::Ptr(mem.base_addr(hist))]
    };
    let stats = assert_engines_agree(&kernel, &config, &[], &setup);
    // 288 threads × 2 atomics each.
    assert_eq!(stats.atomics, 2 * 288);
    assert!(stats.sfu_insts > 0, "sqrt must count as SFU");
}

/// Strided f64 loads at 136-byte spacing: every warp's 32 lanes touch 32
/// distinct 128-byte segments and individual accesses straddle segment
/// boundaries — the worst case for the streaming coalescer.
fn straddle_kernel() -> KernelVir {
    let (tid, t1, addr, v, outa) = (0, 1, 2, 3, 4);
    KernelVir {
        name: "straddle".into(),
        params: vec![ParamDecl::Ptr, ParamDecl::Ptr],
        vregs: vec![VType::B32, VType::B64, VType::B64, VType::F64, VType::B64],
        insts: vec![
            Inst::Special { d: VReg(tid), r: SpecialReg::Tid(0) },
            Inst::Cvt { dty: VType::B64, d: VReg(t1), aty: VType::B32, a: r(tid) },
            // a[tid * 17] as bytes: tid * 136
            Inst::Alu { op: AluOp::Mul, ty: VType::B64, d: VReg(addr), a: r(t1), b: Operand::ImmI(136) },
            Inst::LdParam { ty: VType::B64, d: VReg(outa), index: 0 },
            Inst::Alu { op: AluOp::Add, ty: VType::B64, d: VReg(addr), a: r(addr), b: r(outa) },
            Inst::Ld { space: MemSpace::Global, ty: VType::F64, d: VReg(v), addr: VReg(addr) },
            Inst::Alu { op: AluOp::Mul, ty: VType::F64, d: VReg(v), a: r(v), b: Operand::ImmF(1.5) },
            // out[tid] = v (dense, coalesced)
            Inst::Alu { op: AluOp::Mul, ty: VType::B64, d: VReg(t1), a: r(t1), b: Operand::ImmI(8) },
            Inst::LdParam { ty: VType::B64, d: VReg(outa), index: 1 },
            Inst::Alu { op: AluOp::Add, ty: VType::B64, d: VReg(outa), a: r(outa), b: r(t1) },
            Inst::St { space: MemSpace::Global, ty: VType::F64, addr: VReg(outa), a: r(v) },
            Inst::Ret,
        ],
    }
}

#[test]
fn segment_straddling_strides_agree() {
    let kernel = straddle_kernel();
    let config = LaunchConfig::d1(2, 64);
    let n = 128usize;
    let setup = move |mem: &mut DeviceMemory| {
        let a = mem.alloc(n * 136 + 8);
        let out = mem.alloc(n * 8);
        let data: Vec<f64> = (0..(n * 17 + 1)).map(|i| i as f64 * 0.125).collect();
        mem.copy_in_f64(a, &data);
        vec![ParamVal::Ptr(mem.base_addr(a)), ParamVal::Ptr(mem.base_addr(out))]
    };
    let stats = assert_engines_agree(&kernel, &config, &[], &setup);
    // The strided load is uncoalesced: far more transactions than the
    // 4 warps × 1 would give under perfect coalescing. The dense store
    // keeps some coalesced traffic in the mix.
    assert!(
        stats.global_transactions > stats.global_ld_requests,
        "strided loads must split into multiple transactions: {stats:?}"
    );
}

/// The divergent kernel again, but with registers forced into the spill
/// set — local-memory accounting (spill touches) must agree too.
#[test]
fn spilled_registers_agree() {
    let kernel = divergent_kernel();
    let config = LaunchConfig::d1(1, 64);
    let setup = |mem: &mut DeviceMemory| {
        let a = mem.alloc(128 * 4);
        let out = mem.alloc(128 * 4);
        let data: Vec<i32> = (0..128).map(|i| 1000 - i * 3).collect();
        mem.copy_in_i32(a, &data);
        vec![ParamVal::Ptr(mem.base_addr(a)), ParamVal::Ptr(mem.base_addr(out))]
    };
    let stats = assert_engines_agree(&kernel, &config, &[VReg(2), VReg(4)], &setup);
    assert!(stats.local_accesses > 0, "spilled regs must produce local traffic");
}
