//! Concurrent `SharedLaunchCache` use: N threads submitting identical
//! and distinct launches must (a) keep hit/miss counters summing to the
//! number of submissions, and (b) produce buffers byte-identical to a
//! serial run through an exclusive `LaunchCache`.

use safara_gpusim::interp::{LaunchConfig, ParamVal};
use safara_gpusim::memo::{launch_cached, LaunchCache, SharedLaunchCache};
use safara_gpusim::memory::{BufferId, DeviceMemory};
use safara_gpusim::vir::{AluOp, Inst, KernelVir, MemSpace, Operand, ParamDecl, SpecialReg, VReg, VType};

/// out[tid] = a[tid] * 2.0f + 1.0f
fn scale_kernel() -> KernelVir {
    KernelVir {
        name: "scale".into(),
        params: vec![ParamDecl::Ptr, ParamDecl::Ptr],
        vregs: vec![VType::B32, VType::B64, VType::B64, VType::F32, VType::B64],
        insts: vec![
            Inst::Special { d: VReg(0), r: SpecialReg::Tid(0) },
            Inst::Cvt { dty: VType::B64, d: VReg(1), aty: VType::B32, a: Operand::Reg(VReg(0)) },
            Inst::Alu {
                op: AluOp::Mul,
                ty: VType::B64,
                d: VReg(1),
                a: Operand::Reg(VReg(1)),
                b: Operand::ImmI(4),
            },
            Inst::LdParam { ty: VType::B64, d: VReg(2), index: 0 },
            Inst::Alu {
                op: AluOp::Add,
                ty: VType::B64,
                d: VReg(2),
                a: Operand::Reg(VReg(2)),
                b: Operand::Reg(VReg(1)),
            },
            Inst::Ld { space: MemSpace::Global, ty: VType::F32, d: VReg(3), addr: VReg(2) },
            Inst::Alu {
                op: AluOp::Mul,
                ty: VType::F32,
                d: VReg(3),
                a: Operand::Reg(VReg(3)),
                b: Operand::ImmF(2.0),
            },
            Inst::Alu {
                op: AluOp::Add,
                ty: VType::F32,
                d: VReg(3),
                a: Operand::Reg(VReg(3)),
                b: Operand::ImmF(1.0),
            },
            Inst::LdParam { ty: VType::B64, d: VReg(4), index: 1 },
            Inst::Alu {
                op: AluOp::Add,
                ty: VType::B64,
                d: VReg(4),
                a: Operand::Reg(VReg(4)),
                b: Operand::Reg(VReg(1)),
            },
            Inst::St { space: MemSpace::Global, ty: VType::F32, addr: VReg(4), a: Operand::Reg(VReg(3)) },
            Inst::Ret,
        ],
    }
}

const LANES: usize = 32;

/// Build the device memory + params for input variant `v` (each variant
/// is a distinct input buffer, hence a distinct content key).
fn setup(v: u32) -> (DeviceMemory, Vec<ParamVal>, LaunchConfig) {
    let mut mem = DeviceMemory::new();
    let a = mem.alloc(LANES * 4);
    let out = mem.alloc(LANES * 4);
    let data: Vec<f32> = (0..LANES).map(|i| i as f32 + v as f32 * 0.5).collect();
    mem.copy_in_f32(a, &data);
    let params = vec![ParamVal::Ptr(mem.base_addr(a)), ParamVal::Ptr(mem.base_addr(out))];
    (mem, params, LaunchConfig::d1(1, LANES as u32))
}

#[test]
fn n_threads_identical_and_distinct_launches() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 12;
    const VARIANTS: u32 = 4; // distinct inputs; everything else is identical resubmission

    let kernel = scale_kernel();

    // Serial reference: one exclusive cache, same submission multiset.
    let mut serial_outputs: Vec<Vec<f32>> = Vec::new();
    let mut serial = LaunchCache::new();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let v = ((t * PER_THREAD + i) as u32) % VARIANTS;
            let (mut mem, params, config) = setup(v);
            launch_cached(&mut serial, &kernel, &config, &params, &mut mem, &[]).unwrap();
            serial_outputs.push(mem.copy_out_f32(BufferId(1)));
        }
    }
    assert_eq!(serial.misses, VARIANTS as u64);
    assert_eq!(serial.hits, (THREADS * PER_THREAD) as u64 - VARIANTS as u64);

    // Concurrent: THREADS threads hammer one shared cache with the same
    // per-thread submission sequence.
    let shared = SharedLaunchCache::new(8);
    let concurrent_outputs = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let shared = &shared;
            let kernel = &kernel;
            handles.push(s.spawn(move || {
                let mut outs = Vec::with_capacity(PER_THREAD);
                for i in 0..PER_THREAD {
                    let v = ((t * PER_THREAD + i) as u32) % VARIANTS;
                    let (mut mem, params, config) = setup(v);
                    shared
                        .launch_cached(kernel, &config, &params, &mut mem, &[])
                        .unwrap();
                    outs.push((v, mem.copy_out_f32(BufferId(1))));
                }
                outs
            }));
        }
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });

    // Counters sum to the number of submissions; at least one miss per
    // distinct variant, and plenty of warm hits.
    let (hits, misses) = (shared.hits(), shared.misses());
    assert_eq!(hits + misses, (THREADS * PER_THREAD) as u64, "every launch counted once");
    assert!(misses >= VARIANTS as u64, "each distinct input simulated at least once");
    assert!(hits > 0, "identical resubmissions hit");
    assert!(shared.len() <= misses as usize, "entries only come from misses");

    // Outputs stay byte-identical to the serial run for every variant.
    let expected_for = |v: u32| {
        let (mut mem, params, config) = setup(v);
        let mut solo = LaunchCache::new();
        launch_cached(&mut solo, &kernel, &config, &params, &mut mem, &[]).unwrap();
        mem.copy_out_f32(BufferId(1))
    };
    let expected: Vec<Vec<f32>> = (0..VARIANTS).map(expected_for).collect();
    for (v, out) in &concurrent_outputs {
        let want = &expected[*v as usize];
        assert_eq!(
            out.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            "variant {v} output must be byte-identical to serial"
        );
    }
    // And the serial run's outputs, grouped by variant, match too.
    for (flat, out) in serial_outputs.iter().enumerate() {
        let v = (flat as u32) % VARIANTS;
        assert_eq!(out, &expected[v as usize]);
    }
}

#[test]
fn shared_cache_cap_bounds_entries_under_concurrency() {
    const THREADS: usize = 4;
    let kernel = scale_kernel();
    // Total cap 8 over 2 shards → 4 per shard.
    let shared = SharedLaunchCache::with_entry_cap(2, 8);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let shared = &shared;
            let kernel = &kernel;
            s.spawn(move || {
                for i in 0..10u32 {
                    let (mut mem, params, config) = setup(t as u32 * 100 + i);
                    shared.launch_cached(kernel, &config, &params, &mut mem, &[]).unwrap();
                }
            });
        }
    });
    assert_eq!(shared.misses(), (THREADS * 10) as u64, "all distinct inputs simulate");
    assert!(shared.len() <= 8, "total cap holds: {}", shared.len());
}
