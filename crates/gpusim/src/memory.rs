//! Simulated device global memory.
//!
//! Buffers are byte vectors with synthetic 64-bit base addresses: buffer
//! `i` starts at `(i+1) << 40`, so any address decodes to (buffer,
//! offset) without a search and buffer overruns are detected rather than
//! silently corrupting neighbours.

use std::fmt;

/// Identifies one device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub u32);

/// Bits used for the in-buffer offset within a synthetic address.
pub(crate) const OFFSET_BITS: u32 = 40;

/// Device memory: an address space of buffers.
#[derive(Debug, Default)]
pub struct DeviceMemory {
    buffers: Vec<Vec<u8>>,
}

/// An out-of-bounds or unmapped access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub bytes: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device memory fault at {:#x} ({} bytes): {}", self.addr, self.bytes, self.message)
    }
}

impl std::error::Error for MemFault {}

impl DeviceMemory {
    /// Create an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a zero-initialized buffer of `bytes` bytes.
    pub fn alloc(&mut self, bytes: usize) -> BufferId {
        assert!((bytes as u64) < (1u64 << OFFSET_BITS), "buffer too large");
        let id = BufferId(self.buffers.len() as u32);
        self.buffers.push(vec![0u8; bytes]);
        id
    }

    /// The synthetic base address of a buffer.
    pub fn base_addr(&self, id: BufferId) -> u64 {
        ((id.0 as u64) + 1) << OFFSET_BITS
    }

    /// Size of a buffer in bytes.
    pub fn len(&self, id: BufferId) -> usize {
        self.buffers[id.0 as usize].len()
    }

    /// True if no buffers are allocated.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    fn decode(&self, addr: u64, bytes: u32) -> Result<(usize, usize), MemFault> {
        let buf = (addr >> OFFSET_BITS) as usize;
        let off = (addr & ((1u64 << OFFSET_BITS) - 1)) as usize;
        if buf == 0 || buf > self.buffers.len() {
            return Err(MemFault { addr, bytes, message: "unmapped address".into() });
        }
        let b = buf - 1;
        if off + bytes as usize > self.buffers[b].len() {
            return Err(MemFault {
                addr,
                bytes,
                message: format!(
                    "out of bounds: offset {off} + {bytes} > buffer size {}",
                    self.buffers[b].len()
                ),
            });
        }
        Ok((b, off))
    }

    /// Read `bytes` (4 or 8) at `addr`, little-endian, zero-extended.
    #[inline]
    pub fn read(&self, addr: u64, bytes: u32) -> Result<u64, MemFault> {
        let (b, off) = self.decode(addr, bytes)?;
        let buf = &self.buffers[b];
        // decode() guarantees off + bytes <= len, so the word-sized slices exist.
        Ok(match bytes {
            4 => u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as u64,
            8 => u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
            _ => {
                let mut v = 0u64;
                for i in 0..bytes as usize {
                    v |= (buf[off + i] as u64) << (8 * i);
                }
                v
            }
        })
    }

    /// Write the low `bytes` bytes of `value` at `addr`, little-endian.
    #[inline]
    pub fn write(&mut self, addr: u64, bytes: u32, value: u64) -> Result<(), MemFault> {
        let (b, off) = self.decode(addr, bytes)?;
        let buf = &mut self.buffers[b];
        match bytes {
            4 => buf[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes()),
            8 => buf[off..off + 8].copy_from_slice(&value.to_le_bytes()),
            _ => {
                for i in 0..bytes as usize {
                    buf[off + i] = (value >> (8 * i)) as u8;
                }
            }
        }
        Ok(())
    }

    /// Number of allocated buffers (for content hashing / snapshots).
    pub(crate) fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Raw bytes of buffer `i` (for content hashing / snapshots).
    pub(crate) fn buffer_bytes(&self, i: usize) -> &[u8] {
        &self.buffers[i]
    }

    /// Mutable raw bytes of buffer `i` (for memoized replay).
    pub(crate) fn buffer_bytes_mut(&mut self, i: usize) -> &mut [u8] {
        &mut self.buffers[i]
    }

    /// All buffers at once (for the parallel engine's shared view, which
    /// needs simultaneous borrows of every buffer).
    pub(crate) fn buffers_mut(&mut self) -> &mut [Vec<u8>] {
        &mut self.buffers
    }

    /// Copy a host slice into a buffer (host→device transfer).
    pub fn copy_in(&mut self, id: BufferId, data: &[u8]) {
        let buf = &mut self.buffers[id.0 as usize];
        assert!(data.len() <= buf.len(), "copy_in larger than buffer");
        buf[..data.len()].copy_from_slice(data);
    }

    /// Copy a buffer back out to the host.
    pub fn copy_out(&self, id: BufferId) -> Vec<u8> {
        self.buffers[id.0 as usize].clone()
    }

    /// Typed convenience: upload a slice of `f32`.
    pub fn copy_in_f32(&mut self, id: BufferId, data: &[f32]) {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.copy_in(id, &bytes);
    }

    /// Typed convenience: download a buffer as `f32`s.
    pub fn copy_out_f32(&self, id: BufferId) -> Vec<f32> {
        self.copy_out(id)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Typed convenience: upload a slice of `f64`.
    pub fn copy_in_f64(&mut self, id: BufferId, data: &[f64]) {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.copy_in(id, &bytes);
    }

    /// Typed convenience: download a buffer as `f64`s.
    pub fn copy_out_f64(&self, id: BufferId) -> Vec<f64> {
        self.copy_out(id)
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect()
    }

    /// Typed convenience: upload a slice of `i32`.
    pub fn copy_in_i32(&mut self, id: BufferId, data: &[i32]) {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.copy_in(id, &bytes);
    }

    /// Typed convenience: download a buffer as `i32`s.
    pub fn copy_out_i32(&self, id: BufferId) -> Vec<i32> {
        self.copy_out(id)
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_roundtrip() {
        let mut m = DeviceMemory::new();
        let b = m.alloc(64);
        let base = m.base_addr(b);
        m.write(base + 8, 4, 0xDEADBEEF).unwrap();
        assert_eq!(m.read(base + 8, 4).unwrap(), 0xDEADBEEF);
        m.write(base + 16, 8, u64::MAX - 5).unwrap();
        assert_eq!(m.read(base + 16, 8).unwrap(), u64::MAX - 5);
    }

    #[test]
    fn distinct_buffers_do_not_alias() {
        let mut m = DeviceMemory::new();
        let a = m.alloc(16);
        let b = m.alloc(16);
        m.write(m.base_addr(a), 4, 1).unwrap();
        m.write(m.base_addr(b), 4, 2).unwrap();
        assert_eq!(m.read(m.base_addr(a), 4).unwrap(), 1);
        assert_eq!(m.read(m.base_addr(b), 4).unwrap(), 2);
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut m = DeviceMemory::new();
        let b = m.alloc(16);
        let base = m.base_addr(b);
        assert!(m.read(base + 16, 4).is_err());
        assert!(m.read(base + 13, 4).is_err());
        assert!(m.write(base + 16, 4, 0).is_err());
        assert!(m.read(0, 4).is_err()); // null
        assert!(m.read(m.base_addr(BufferId(5)), 4).is_err()); // unmapped
    }

    #[test]
    fn typed_f32_roundtrip() {
        let mut m = DeviceMemory::new();
        let b = m.alloc(5 * 4);
        let data = [1.0f32, -2.5, 3.25, 0.0, f32::MAX];
        m.copy_in_f32(b, &data);
        assert_eq!(m.copy_out_f32(b), data);
    }

    #[test]
    fn typed_f64_and_i32_roundtrip() {
        let mut m = DeviceMemory::new();
        let b = m.alloc(3 * 8);
        m.copy_in_f64(b, &[1.5, -2.25, 1e100]);
        assert_eq!(m.copy_out_f64(b), vec![1.5, -2.25, 1e100]);
        let c = m.alloc(2 * 4);
        m.copy_in_i32(c, &[-7, 42]);
        assert_eq!(m.copy_out_i32(c), vec![-7, 42]);
    }

    #[test]
    fn base_addresses_are_stable_and_distinct() {
        let mut m = DeviceMemory::new();
        let a = m.alloc(8);
        let b = m.alloc(8);
        assert_ne!(m.base_addr(a), m.base_addr(b));
        assert_eq!(m.base_addr(a), 1u64 << 40);
        assert_eq!(m.base_addr(b), 2u64 << 40);
    }
}
