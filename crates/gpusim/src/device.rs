//! Device model: a Kepler-class GPU (default: Tesla K20Xm, the paper's
//! evaluation hardware) and the occupancy rules that make register
//! pressure matter.

/// Static device parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors (SMX).
    pub sm_count: u32,
    /// 32-bit registers per SMX.
    pub regs_per_sm: u32,
    /// Maximum registers addressable per thread (255 on Kepler; the
    /// paper's feedback loop uses this as the hardware limit).
    pub max_regs_per_thread: u32,
    /// Register allocation granularity per warp, in registers.
    pub warp_alloc_granularity: u32,
    /// Maximum resident warps per SMX.
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SMX.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Warp width.
    pub warp_size: u32,
    /// Core clock in MHz (used only to convert cycles to seconds in
    /// reports).
    pub clock_mhz: u32,
    /// Global-memory transaction size in bytes.
    pub transaction_bytes: u32,
    /// Peak global-memory bandwidth in bytes per core clock cycle,
    /// device-wide.
    pub bytes_per_cycle: f64,
    /// Resident warps per SM needed to saturate the memory interface
    /// (Little's law: achievable bandwidth scales with memory-level
    /// parallelism until this point — the reason occupancy matters even
    /// for bandwidth-bound kernels, and thus the reason saving registers
    /// with `small`/`dim` speeds them up).
    pub bw_saturation_warps: u32,
    /// Latencies, cycles: coalesced global load.
    pub lat_global: u32,
    /// Latency of a read-only (texture/LDG path) cached load.
    pub lat_readonly: u32,
    /// Latency of a local (spill) access — local memory is backed by L1
    /// on Kepler but spills still cost a memory round trip when they miss.
    pub lat_local: u32,
    /// Latency of a shared-memory access (bank-conflict-free). This is
    /// what RegDem-style shared spilling buys: ~an order of magnitude
    /// below a local-memory round trip.
    pub lat_shared: u32,
    /// Shared memory per SMX in bytes (48 KiB on Kepler under the
    /// default carveout) — the capacity shared spills are accounted
    /// against.
    pub shared_mem_per_sm: u32,
    /// Extra serialization cycles for each additional transaction an
    /// uncoalesced warp access needs (departure delay).
    pub uncoalesced_penalty: u32,
    /// Warp instruction issue throughput multipliers: cycles per issued
    /// instruction for (int32/fp32), int64, fp64, SFU math.
    pub cpi_simple: f64,
    /// Cycles per issued 64-bit integer instruction.
    pub cpi_int64: f64,
    /// Cycles per issued fp64 instruction (1/3 rate on K20X).
    pub cpi_fp64: f64,
    /// Cycles per issued special-function (sqrt/exp/...) instruction.
    pub cpi_sfu: f64,
    /// Fixed kernel launch overhead in cycles.
    pub launch_overhead: u64,
}

impl DeviceConfig {
    /// The paper's evaluation GPU: Tesla K20Xm (Kepler GK110, sm_35).
    pub fn k20xm() -> Self {
        DeviceConfig {
            name: "Tesla K20Xm (simulated)",
            sm_count: 14,
            regs_per_sm: 65_536,
            max_regs_per_thread: 255,
            warp_alloc_granularity: 256,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            warp_size: 32,
            clock_mhz: 732,
            transaction_bytes: 128,
            // ~250 GB/s at 732 MHz ≈ 341 B/cycle device-wide.
            bytes_per_cycle: 341.0,
            bw_saturation_warps: 48,
            lat_global: 380,
            lat_readonly: 140,
            lat_local: 380,
            lat_shared: 30,
            shared_mem_per_sm: 49_152,
            uncoalesced_penalty: 40,
            cpi_simple: 1.0,
            cpi_int64: 2.0,
            cpi_fp64: 3.0,
            cpi_sfu: 8.0,
            launch_overhead: 4_000,
        }
    }

    /// A tiny device for deterministic unit tests (2 SMs, small register
    /// file) so occupancy effects show up at test scale.
    pub fn test_small() -> Self {
        DeviceConfig {
            name: "TestGPU",
            sm_count: 2,
            regs_per_sm: 8_192,
            max_regs_per_thread: 64,
            warp_alloc_granularity: 256,
            max_warps_per_sm: 16,
            max_blocks_per_sm: 8,
            max_threads_per_block: 256,
            ..Self::k20xm()
        }
    }

    /// Occupancy for a kernel using `regs_per_thread` registers launched
    /// with `threads_per_block`.
    pub fn occupancy(&self, regs_per_thread: u32, threads_per_block: u32) -> Occupancy {
        self.occupancy_with_shared(regs_per_thread, threads_per_block, 0)
    }

    /// Occupancy for a kernel that additionally reserves
    /// `shared_bytes_per_block` bytes of shared memory per resident block
    /// (e.g. a RegDem-style shared spill slab). Shared demand adds a
    /// third residency limit alongside registers and the warp/block caps.
    pub fn occupancy_with_shared(
        &self,
        regs_per_thread: u32,
        threads_per_block: u32,
        shared_bytes_per_block: u32,
    ) -> Occupancy {
        let tpb = threads_per_block.clamp(1, self.max_threads_per_block);
        let warps_per_block = tpb.div_ceil(self.warp_size).max(1);
        // Per-warp register allocation, rounded to the granularity.
        let rpt = regs_per_thread.clamp(1, self.max_regs_per_thread);
        let warp_regs =
            (rpt * self.warp_size).div_ceil(self.warp_alloc_granularity) * self.warp_alloc_granularity;
        let warp_limit_regs = self.regs_per_sm / warp_regs.max(1);
        let blocks_by_regs = warp_limit_regs / warps_per_block;
        let blocks_by_warps = self.max_warps_per_sm / warps_per_block;
        let blocks_by_shared = self
            .shared_mem_per_sm
            .checked_div(shared_bytes_per_block)
            .unwrap_or(u32::MAX);
        let blocks = blocks_by_regs
            .min(blocks_by_warps)
            .min(blocks_by_shared)
            .min(self.max_blocks_per_sm);
        let active_warps = blocks * warps_per_block;
        Occupancy {
            blocks_per_sm: blocks,
            active_warps_per_sm: active_warps,
            occupancy: active_warps as f64 / self.max_warps_per_sm as f64,
        }
    }
}

/// The result of an occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub active_warps_per_sm: u32,
    /// Fraction of the maximum warp population.
    pub occupancy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_register_use_gives_full_occupancy() {
        let d = DeviceConfig::k20xm();
        let o = d.occupancy(32, 256);
        // 32 regs/thread → 1024 regs/warp → 64 warps fit; warp cap 64.
        assert_eq!(o.active_warps_per_sm, 64);
        assert!((o.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn high_register_use_cuts_occupancy() {
        let d = DeviceConfig::k20xm();
        let o128 = d.occupancy(128, 256);
        let o255 = d.occupancy(255, 256);
        assert!(o128.active_warps_per_sm < 64);
        assert!(o255.active_warps_per_sm < o128.active_warps_per_sm);
        // 255 regs → 8192 regs/warp → 8 warps/SM.
        assert_eq!(o255.active_warps_per_sm, 8);
    }

    #[test]
    fn occupancy_monotone_in_registers() {
        let d = DeviceConfig::k20xm();
        let mut last = u32::MAX;
        for regs in [16, 32, 48, 64, 96, 128, 192, 255] {
            let o = d.occupancy(regs, 128);
            assert!(o.active_warps_per_sm <= last, "regs={regs}");
            last = o.active_warps_per_sm;
        }
    }

    #[test]
    fn block_limit_caps_small_blocks() {
        let d = DeviceConfig::k20xm();
        // 32-thread blocks: 1 warp each; 16-block cap → 16 warps, not 64.
        let o = d.occupancy(16, 32);
        assert_eq!(o.blocks_per_sm, 16);
        assert_eq!(o.active_warps_per_sm, 16);
    }

    #[test]
    fn paper_table1_hot1_effect() {
        // Table I HOT1: 128 regs (base) vs 48 regs (with dim): the whole
        // point of the clauses is the occupancy this buys back.
        let d = DeviceConfig::k20xm();
        let base = d.occupancy(128, 256);
        let opt = d.occupancy(48, 256);
        assert!(opt.active_warps_per_sm >= 2 * base.active_warps_per_sm);
    }

    #[test]
    fn cc35_occupancy_table_rows() {
        // Hand-computed rows of the CUDA occupancy calculator for CC 3.5
        // (64K regs/SM, 256-reg warp granularity, 64 warps/SM, 16
        // blocks/SM): (regs/thread, threads/block) → (blocks, warps).
        let d = DeviceConfig::k20xm();
        let rows: [(u32, u32, u32, u32); 6] = [
            // 32 regs → 1024/warp → reg limit 64 warps; warp cap binds.
            (32, 256, 8, 64),
            // 64 regs → 2048/warp → 32 warps by regs → 4 blocks of 8.
            (64, 256, 4, 32),
            // 40 regs → 1280/warp → 51 warps by regs → 12 blocks of 4.
            (40, 128, 12, 48),
            // 96 regs → 3072/warp → 21 warps by regs → 5 blocks of 4.
            (96, 128, 5, 20),
            // 255 regs → 8160→8192/warp → 8 warps by regs → 1 block of 8.
            (255, 256, 1, 8),
            // 72 regs × 1024 threads = 73728 regs > 64K: cannot launch.
            (72, 1024, 0, 0),
        ];
        for (regs, tpb, blocks, warps) in rows {
            let o = d.occupancy(regs, tpb);
            assert_eq!(o.blocks_per_sm, blocks, "regs={regs} tpb={tpb}");
            assert_eq!(o.active_warps_per_sm, warps, "regs={regs} tpb={tpb}");
        }
    }

    #[test]
    fn shared_memory_limits_residency() {
        let d = DeviceConfig::k20xm();
        // Without shared demand: 8 blocks × 8 warps.
        assert_eq!(d.occupancy_with_shared(32, 256, 0), d.occupancy(32, 256));
        // 24 KiB/block on a 48 KiB SM → 2 resident blocks → 16 warps.
        let o = d.occupancy_with_shared(32, 256, 24_576);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.active_warps_per_sm, 16);
        // A full-SM slab → 1 block.
        let o = d.occupancy_with_shared(32, 256, 49_152);
        assert_eq!(o.blocks_per_sm, 1);
        // Oversized slab → cannot launch.
        let o = d.occupancy_with_shared(32, 256, 49_153);
        assert_eq!(o.blocks_per_sm, 0);
        assert_eq!(o.active_warps_per_sm, 0);
    }

    #[test]
    fn warp_granularity_rounding() {
        let d = DeviceConfig::k20xm();
        // 33 regs/thread → 1056 → rounds to 1280 regs/warp → 51 warps by
        // regs, but 256-thread blocks (8 warps) → 6 blocks → 48 warps.
        let o = d.occupancy(33, 256);
        assert_eq!(o.blocks_per_sm, 6);
        assert_eq!(o.active_warps_per_sm, 48);
    }
}
