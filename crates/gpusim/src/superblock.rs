//! The profile-guided superblock engine: fused, lane-vectorized warp
//! execution.
//!
//! The decoded engine ([`crate::decode`]) already hoists operand
//! resolution out of the execution loop, but it still pays one
//! jump-table dispatch *per instruction per lane* and re-executes
//! warp-uniform computations (loop bounds, base addresses, the offset
//! expressions the `dim`/`small` clauses shrink) 32 times per warp.
//! This engine removes both costs for the hot straight-line regions
//! that dominate the paper's kernels:
//!
//! 1. **Profile.** The first [`PROFILE_WARPS`] warps of a launch run
//!    lane-major through the decoded instruction stream with lightweight
//!    execution counters on basic blocks and taken/not-taken counters on
//!    conditional branches.
//! 2. **Fuse.** Blocks whose execution count reaches the hot-block
//!    threshold ([`set_superblock_threshold`], env `SAFARA_SB_THRESHOLD`)
//!    become superblock entries; fusion stitches consecutive hot blocks
//!    together, following unconditional branches and the *biased* exit of
//!    conditional branches (which become in-line guards), stopping at
//!    backedges and `Ret`.
//! 3. **Hoist.** A flow-insensitive uniformity analysis (varying seeds:
//!    thread-id reads; block-ids, launch constants, interned immediates
//!    and kernel parameters are warp-uniform, and a load from a uniform
//!    address is itself uniform) classifies every register;
//!    superinstructions whose result is warp-uniform execute **once per
//!    warp** on a scalar register file instead of once per lane.
//! 4. **Vectorize.** The remaining lane-varying superinstructions
//!    execute as tight 32-lane inner loops: one opcode dispatch per
//!    superinstruction per *warp* instead of per lane, with operands
//!    pre-resolved to either the scalar file or the lane-major
//!    (structure-of-arrays) register file.
//!
//! Byte-identity with the decoded engine (asserted by differential
//! tests) is preserved by construction where it is observable:
//! within one memory superinstruction lanes issue in lane order (so
//! same-instruction conflicts — notably the compiler's single
//! end-of-kernel reduction `AtomAdd` — serialize exactly as lane-major
//! execution does), warp divergence **peels** the warp back to
//! lane-major decoded execution (lanes 0..31 in order, preserving
//! per-lane event streams for the transaction merge), kernels with an
//! atomic inside a loop are delegated wholesale to the decoded engine,
//! and a threshold of `u64::MAX` ("inf") short-circuits the whole engine
//! into [`crate::decode::launch_decoded`].

use crate::decode::{
    decode, launch_decoded, Decoded, DInst, ExecSeed, Op, WarpMerge, CLS_FP64, CLS_INT64,
    CLS_SFU, CLS_SIMPLE, NO_REG, WARP_SIZE,
};
use crate::interp::{
    alu, compare, convert, math, neg, LaneCounts, LaunchConfig, LaunchResult, MemEvent,
    ParamVal, SimError, FLAG_ATOMIC, FLAG_STORE, MAX_INSTS_PER_THREAD, SPACE_GLOBAL, SPACE_LOCAL,
    SPACE_READONLY,
};
use crate::memory::DeviceMemory;
use crate::parallel::{self, MemAccess};
use crate::stats::KernelStats;
use crate::vir::{AluOp, CmpOp, KernelVir, MathOp, VReg, VType};
use std::sync::atomic::{AtomicU64, Ordering};

/// Warps executed lane-major (instrumented) before fusion kicks in.
pub const PROFILE_WARPS: u64 = 2;

/// Default hot-block threshold: profiled lane-level executions a basic
/// block needs before it is eligible for fusion.
pub const DEFAULT_SUPERBLOCK_THRESHOLD: u64 = 8;

/// Maximum basic blocks fused into one superblock.
const MAX_FUSE: u32 = 16;

/// Operand encoding: bit 31 marks a warp-uniform register, resolved
/// against the scalar file instead of the lane-major file. Real
/// register-file indices stay far below this bit.
const UB: u32 = 1 << 31;

static THRESHOLD: AtomicU64 = AtomicU64::new(0); // 0 = read env on first use

std::thread_local! {
    static THRESHOLD_OVERRIDE: std::cell::Cell<Option<u64>> =
        const { std::cell::Cell::new(None) };
}

fn threshold() -> u64 {
    if let Some(t) = THRESHOLD_OVERRIDE.with(|c| c.get()) {
        return t.max(1);
    }
    let t = THRESHOLD.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let t = match std::env::var("SAFARA_SB_THRESHOLD") {
        Ok(v) if v.trim().eq_ignore_ascii_case("inf") => u64::MAX,
        Ok(v) => v
            .trim()
            .parse::<u64>()
            .ok()
            .filter(|&x| x >= 1)
            .unwrap_or(DEFAULT_SUPERBLOCK_THRESHOLD),
        Err(_) => DEFAULT_SUPERBLOCK_THRESHOLD,
    };
    THRESHOLD.store(t, Ordering::Relaxed);
    t
}

/// Set the hot-block threshold for subsequent superblock launches.
/// `u64::MAX` disables profiling/fusion entirely: every launch is
/// delegated to the decoded engine (the behavioral kill switch the
/// differential tests pin). Values below 1 clamp to 1.
pub fn set_superblock_threshold(t: u64) {
    THRESHOLD.store(t.max(1), Ordering::Relaxed);
}

/// Run `f` with a thread-local hot-block-threshold override, then
/// restore the previous override even on unwind. Mirrors
/// [`crate::interp::with_engine`] / [`crate::parallel::with_sim_threads`]
/// so per-request settings never leak across server worker iterations.
pub fn with_superblock_threshold<T>(t: u64, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<u64>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THRESHOLD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THRESHOLD_OVERRIDE.with(|c| c.replace(Some(t))));
    f()
}

/// The hot-block threshold a launch on the current thread would use
/// (override > process setting > env > default).
pub fn current_superblock_threshold() -> u64 {
    threshold()
}

/// Parse a superblock-threshold setting: `inf` disables fusion entirely
/// (delegates every launch to the decoded engine), otherwise a count ≥ 1.
pub fn parse_superblock_threshold(s: &str) -> Option<u64> {
    let t = s.trim();
    if t.eq_ignore_ascii_case("inf") {
        return Some(u64::MAX);
    }
    t.parse::<u64>().ok().filter(|&x| x >= 1)
}

// ---------------------------------------------------------------------
// Fusion/hoist observability counters (process-wide, flushed once per
// launch; reported through `safara-obs` spans and the server `stats`
// section).

static C_LAUNCHES: AtomicU64 = AtomicU64::new(0);
static C_DELEGATED: AtomicU64 = AtomicU64::new(0);
static C_HOT_BLOCKS: AtomicU64 = AtomicU64::new(0);
static C_SUPERBLOCKS: AtomicU64 = AtomicU64::new(0);
static C_FUSED_BLOCKS: AtomicU64 = AtomicU64::new(0);
static C_HOISTED: AtomicU64 = AtomicU64::new(0);
static C_SCALAR_EXECS: AtomicU64 = AtomicU64::new(0);
static C_VECTOR_EXECS: AtomicU64 = AtomicU64::new(0);
static C_PEELS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the superblock engine's cumulative fusion/hoist
/// counters (process-wide, monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionCounters {
    /// Launches entering this engine.
    pub launches: u64,
    /// Launches delegated wholesale to the decoded engine (threshold =
    /// `u64::MAX`, or an atomic inside a loop).
    pub delegated: u64,
    /// Basic blocks that met the hot threshold.
    pub hot_blocks: u64,
    /// Superblocks built.
    pub superblocks: u64,
    /// Additional basic blocks fused into a superblock past its entry.
    pub fused_blocks: u64,
    /// Superinstructions hoisted to the scalar (warp-uniform) file
    /// (static, per build).
    pub hoisted: u64,
    /// Hoisted superinstructions executed (once per warp each).
    pub scalar_execs: u64,
    /// Lane-vectorized superinstructions executed (once per warp each).
    pub vector_execs: u64,
    /// Warps peeled back to lane-major execution (divergence or a cold
    /// region).
    pub peels: u64,
}

/// Read the cumulative fusion counters.
pub fn fusion_counters() -> FusionCounters {
    FusionCounters {
        launches: C_LAUNCHES.load(Ordering::Relaxed),
        delegated: C_DELEGATED.load(Ordering::Relaxed),
        hot_blocks: C_HOT_BLOCKS.load(Ordering::Relaxed),
        superblocks: C_SUPERBLOCKS.load(Ordering::Relaxed),
        fused_blocks: C_FUSED_BLOCKS.load(Ordering::Relaxed),
        hoisted: C_HOISTED.load(Ordering::Relaxed),
        scalar_execs: C_SCALAR_EXECS.load(Ordering::Relaxed),
        vector_execs: C_VECTOR_EXECS.load(Ordering::Relaxed),
        peels: C_PEELS.load(Ordering::Relaxed),
    }
}

/// Per-launch counter accumulator, flushed to the atomics once so the
/// hot loops never touch shared cache lines.
#[derive(Default)]
struct LocalCtrs {
    launches: u64,
    delegated: u64,
    hot_blocks: u64,
    superblocks: u64,
    fused_blocks: u64,
    hoisted: u64,
    scalar_execs: u64,
    vector_execs: u64,
    peels: u64,
}

impl LocalCtrs {
    /// Fold a pool worker's counters into the launch accumulator, so the
    /// whole launch still flushes to the shared atomics exactly once.
    fn add(&mut self, o: &LocalCtrs) {
        self.launches += o.launches;
        self.delegated += o.delegated;
        self.hot_blocks += o.hot_blocks;
        self.superblocks += o.superblocks;
        self.fused_blocks += o.fused_blocks;
        self.hoisted += o.hoisted;
        self.scalar_execs += o.scalar_execs;
        self.vector_execs += o.vector_execs;
        self.peels += o.peels;
    }

    fn flush(&self) {
        C_LAUNCHES.fetch_add(self.launches, Ordering::Relaxed);
        C_DELEGATED.fetch_add(self.delegated, Ordering::Relaxed);
        C_HOT_BLOCKS.fetch_add(self.hot_blocks, Ordering::Relaxed);
        C_SUPERBLOCKS.fetch_add(self.superblocks, Ordering::Relaxed);
        C_FUSED_BLOCKS.fetch_add(self.fused_blocks, Ordering::Relaxed);
        C_HOISTED.fetch_add(self.hoisted, Ordering::Relaxed);
        C_SCALAR_EXECS.fetch_add(self.scalar_execs, Ordering::Relaxed);
        C_VECTOR_EXECS.fetch_add(self.vector_execs, Ordering::Relaxed);
        C_PEELS.fetch_add(self.peels, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Profiling

/// Block/branch execution counters filled by the instrumented
/// lane-major profiling warps (`run_lane::<_, true>`).
pub(crate) struct ProfileCounters {
    /// `pc -> block id + 1` for block leaders, 0 otherwise.
    pub(crate) leader_block: Vec<u32>,
    /// Lane-level execution count per basic block.
    pub(crate) counts: Vec<u64>,
    /// Per-branch-pc: times the branch transferred to its target.
    pub(crate) taken: Vec<u64>,
    /// Per-branch-pc: times the branch executed.
    pub(crate) seen: Vec<u64>,
}

#[inline]
fn in_range(op: Op, lo: Op, hi: Op) -> bool {
    (lo as u16..=hi as u16).contains(&(op as u16))
}

fn is_branch(op: Op) -> bool {
    matches!(op, Op::Bra | Op::BraT | Op::BraF)
}

fn is_ld(op: Op) -> bool {
    in_range(op, Op::LdG1, Op::LdLoc8)
}

fn is_st(op: Op) -> bool {
    in_range(op, Op::StG1, Op::StLoc8)
}

fn is_atom(op: Op) -> bool {
    in_range(op, Op::AtomB32, Op::AtomPred)
}

/// The destination register this instruction defines, if any.
fn def_of(i: &DInst) -> Option<u32> {
    if is_branch(i.op) || is_st(i.op) || is_atom(i.op) || i.op == Op::Ret {
        None
    } else {
        Some(i.d)
    }
}

/// The register-file operands this instruction reads (`a`, `b`).
fn reg_reads(i: &DInst) -> (Option<u32>, Option<u32>) {
    let op = i.op;
    if matches!(
        op,
        Op::Ret | Op::Bra | Op::TidX | Op::TidY | Op::TidZ | Op::CtaX | Op::CtaY | Op::CtaZ
    ) {
        (None, None)
    } else if matches!(op, Op::BraT | Op::BraF | Op::Mov | Op::Not)
        || is_ld(op)
        || in_range(op, Op::NegB32, Op::NegPred)
        || in_range(op, Op::CvtB32B32, Op::CvtPredPred)
    {
        (Some(i.a), None)
    } else if in_range(op, Op::SqrtB32, Op::PowPred) {
        (Some(i.a), (i.b != NO_REG).then_some(i.b))
    } else {
        // Binary ALU / Setp / St / Atom.
        (Some(i.a), Some(i.b))
    }
}

/// Flow-insensitive warp-uniformity classes per register-file index
/// (true = uniform): a register is varying if *any* def depends on a
/// thread-id or a varying operand. Constants (interned immediates,
/// parameters, launch constants) and block-ids are uniform. A load from
/// a *uniform* address is itself uniform — every lane reads the same
/// cell at the same step (the engine's no-intra-warp-hazard premise,
/// enforced by the differential suite) — which is what lets the k-space
/// / coefficient-table loads of the fig7 kernels execute once per warp.
fn classify(d: &Decoded) -> Vec<bool> {
    let n_regs = d.n_vregs + d.consts.len();
    let mut uni = vec![true; n_regs];
    loop {
        let mut changed = false;
        for i in &d.insts {
            let Some(dst) = def_of(i) else { continue };
            let seeded = matches!(i.op, Op::TidX | Op::TidY | Op::TidZ);
            let (ra, rb) = reg_reads(i);
            let varying = seeded
                || ra.is_some_and(|r| !uni[r as usize])
                || rb.is_some_and(|r| !uni[r as usize]);
            if varying && uni[dst as usize] {
                uni[dst as usize] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    uni
}

/// Basic-block discovery: returns (`leader_block` as in
/// [`ProfileCounters`], `block_of` per pc, block count).
fn find_blocks(d: &Decoded) -> (Vec<u32>, Vec<u32>, usize) {
    let n = d.insts.len();
    let mut is_leader = vec![false; n];
    if n > 0 {
        is_leader[0] = true;
    }
    for (pc, i) in d.insts.iter().enumerate() {
        if is_branch(i.op) {
            let t = i.d as usize;
            if t < n {
                is_leader[t] = true;
            }
        }
        if (is_branch(i.op) || i.op == Op::Ret) && pc + 1 < n {
            is_leader[pc + 1] = true;
        }
    }
    let mut leader_block = vec![0u32; n];
    let mut block_of = vec![0u32; n];
    let mut b = 0u32;
    for pc in 0..n {
        if is_leader[pc] {
            b += 1;
            leader_block[pc] = b;
        }
        block_of[pc] = b - 1;
    }
    (leader_block, block_of, b as usize)
}

/// True if any atomic lies inside a backward-branch range: multiple
/// atomics per thread would interleave differently under lockstep, so
/// such kernels are delegated to the decoded engine.
fn atomics_in_loops(d: &Decoded) -> bool {
    for (pc, i) in d.insts.iter().enumerate() {
        if is_branch(i.op) && i.d as usize <= pc {
            let lo = i.d as usize;
            if d.insts[lo..=pc].iter().any(|j| is_atom(j.op)) {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Superblock program

/// A flat superinstruction: a decoded instruction with operands
/// pre-resolved against the uniformity classes (`UB` bit) and its
/// original decoded pc preserved as the memory-event key.
#[derive(Debug, Clone, Copy)]
struct SInst {
    op: Op,
    cls: u8,
    spill: u8,
    /// Execute once per warp on the scalar (uniform) file.
    scalar: bool,
    /// Original decoded instruction index (memory-event key).
    pc: u32,
    d: u32,
    a: u32,
    b: u32,
}

/// One step of a superblock.
#[derive(Debug, Clone)]
enum Ctl {
    /// A scalar or lane-vectorized superinstruction.
    Seq(SInst),
    /// A fused-through unconditional branch: counts as an executed
    /// instruction, control simply falls through to the next step.
    Ghost { cls: u8, spill: u8 },
    /// A conditional branch. `cont = Some(dir)`: the superblock
    /// continues in-line when every lane goes `dir` (true = taken); a
    /// uniform opposite outcome exits to the other side; a mixed
    /// outcome peels. `cont = None`: both outcomes exit.
    Br { pred: u32, sense: bool, taken: u32, fall: u32, cont: Option<bool>, cls: u8, spill: u8 },
    /// Unconditional superblock exit to a decoded pc (`counted` when it
    /// stands for a real `Bra` instruction).
    Exit { target: u32, counted: bool, cls: u8, spill: u8 },
    /// Kernel return.
    Ret { cls: u8, spill: u8 },
    /// Fell off the end of the instruction stream (implicit return; not
    /// a counted instruction).
    Done,
}

struct Superblock {
    steps: Vec<Ctl>,
}

struct SbProgram {
    sbs: Vec<Superblock>,
    /// Decoded pc -> superblock starting there.
    at: Vec<Option<u32>>,
}

// ---------------------------------------------------------------------
// Cross-launch program cache
//
// Iterative workloads relaunch the same kernels dozens of times; the
// decoded content (instructions + interned constants, which embed the
// eagerly-resolved parameters) fully determines the profile-guided
// build inputs except for the branch-bias sample, and the build output
// is *correct* under any bias (guards are checked at run time — bias
// only affects how often the lockstep path exits early). So the built
// program is cached per thread, keyed by the full decoded content and
// the threshold, and cache hits skip both the profiling warps and the
// fusion pass entirely.

/// Everything a launch needs to go straight to lockstep execution.
struct CachedProg {
    uni: Vec<bool>,
    prog: SbProgram,
}

const PROG_CACHE_CAP: usize = 64;

std::thread_local! {
    // `Arc` (not `Rc`): a launch hands its cached program to the scoped
    // worker pool, whose threads bump the refcount concurrently. The
    // cache itself stays thread-local — workers are ephemeral and never
    // consult it, they receive the `Arc` directly.
    static PROG_CACHE: std::cell::RefCell<Vec<(Vec<u64>, std::sync::Arc<CachedProg>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Exact content key: threshold, register-file shape, constants, and
/// every decoded instruction field. Full content (not a hash) — a
/// collision would silently run the wrong program.
fn prog_key(d: &Decoded, thr: u64) -> Vec<u64> {
    let mut k = Vec::with_capacity(3 + d.consts.len() + 3 * d.insts.len());
    k.push(thr);
    k.push(d.n_vregs as u64);
    k.push(d.consts.len() as u64);
    k.extend_from_slice(&d.consts);
    for i in &d.insts {
        k.push(((i.op as u64) << 32) | ((i.cls as u64) << 16) | i.spill as u64);
        k.push(((i.d as u64) << 32) | i.a as u64);
        k.push(i.b as u64);
    }
    k
}

fn prog_cache_get(key: &[u64]) -> Option<std::sync::Arc<CachedProg>> {
    PROG_CACHE.with(|c| {
        c.borrow().iter().find(|(k, _)| k.as_slice() == key).map(|(_, p)| p.clone())
    })
}

fn prog_cache_put(key: Vec<u64>, prog: std::sync::Arc<CachedProg>) {
    PROG_CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if c.len() >= PROG_CACHE_CAP {
            c.clear();
        }
        c.push((key, prog));
    });
}

fn enc(r: u32, uni: &[bool]) -> u32 {
    if uni[r as usize] {
        r | UB
    } else {
        r
    }
}

fn make_sinst(i: &DInst, pc: u32, uni: &[bool]) -> SInst {
    let scalar = def_of(i).is_some_and(|r| uni[r as usize]);
    let (ra, rb) = reg_reads(i);
    let a = match ra {
        Some(r) => enc(r, uni),
        None => i.a,
    };
    let b = match rb {
        Some(r) => enc(r, uni),
        None => i.b,
    };
    SInst { op: i.op, cls: i.cls, spill: i.spill, scalar, pc, d: i.d, a, b }
}

fn build_one(
    d: &Decoded,
    prof: &ProfileCounters,
    hot: &[bool],
    block_of: &[u32],
    uni: &[bool],
    entry: usize,
    ctrs: &mut LocalCtrs,
) -> Superblock {
    let n = d.insts.len();
    let mut steps = Vec::new();
    let mut pc = entry;
    let mut fused = 1u32;
    loop {
        let i = d.insts[pc];
        if i.op == Op::Ret {
            steps.push(Ctl::Ret { cls: i.cls, spill: i.spill });
            break;
        }
        if i.op == Op::Bra {
            let t = i.d as usize;
            if t > pc && t < n && hot[block_of[t] as usize] && fused < MAX_FUSE {
                steps.push(Ctl::Ghost { cls: i.cls, spill: i.spill });
                ctrs.fused_blocks += 1;
                fused += 1;
                pc = t;
                continue;
            }
            steps.push(Ctl::Exit { target: i.d, counted: true, cls: i.cls, spill: i.spill });
            break;
        }
        if is_branch(i.op) {
            let sense = i.op == Op::BraT;
            let taken = i.d;
            let fall = (pc + 1) as u32;
            let cont_taken = prof.taken[pc] * 2 > prof.seen[pc];
            let cont_pc = if cont_taken { taken as usize } else { pc + 1 };
            let pred = enc(i.a, uni);
            if cont_pc > pc && cont_pc < n && hot[block_of[cont_pc] as usize] && fused < MAX_FUSE
            {
                steps.push(Ctl::Br {
                    pred,
                    sense,
                    taken,
                    fall,
                    cont: Some(cont_taken),
                    cls: i.cls,
                    spill: i.spill,
                });
                ctrs.fused_blocks += 1;
                fused += 1;
                pc = cont_pc;
                continue;
            }
            steps.push(Ctl::Br { pred, sense, taken, fall, cont: None, cls: i.cls, spill: i.spill });
            break;
        }
        let si = make_sinst(&i, pc as u32, uni);
        if si.scalar {
            ctrs.hoisted += 1;
        }
        steps.push(Ctl::Seq(si));
        pc += 1;
        if pc >= n {
            steps.push(Ctl::Done);
            break;
        }
        if prof.leader_block[pc] != 0 {
            // Fall-through into a new block: keep fusing while hot.
            if hot[block_of[pc] as usize] && fused < MAX_FUSE {
                ctrs.fused_blocks += 1;
                fused += 1;
                continue;
            }
            steps.push(Ctl::Exit { target: pc as u32, counted: false, cls: 0, spill: 0 });
            break;
        }
    }
    Superblock { steps }
}

fn build(
    d: &Decoded,
    prof: &ProfileCounters,
    block_of: &[u32],
    thr: u64,
    uni: &[bool],
    ctrs: &mut LocalCtrs,
) -> SbProgram {
    let n = d.insts.len();
    let hot: Vec<bool> = prof.counts.iter().map(|&c| c >= thr).collect();
    ctrs.hot_blocks += hot.iter().filter(|&&h| h).count() as u64;
    let mut prog = SbProgram { sbs: Vec::new(), at: vec![None; n] };
    for pc0 in 0..n {
        let b = prof.leader_block[pc0];
        if b == 0 || !hot[b as usize - 1] {
            continue;
        }
        let sb = build_one(d, prof, &hot, block_of, uni, pc0, ctrs);
        prog.at[pc0] = Some(prog.sbs.len() as u32);
        prog.sbs.push(sb);
    }
    ctrs.superblocks += prog.sbs.len() as u64;
    prog
}

// ---------------------------------------------------------------------
// Lockstep execution

fn counts_of(seed: &ExecSeed) -> LaneCounts {
    LaneCounts {
        simple: seed.cnt[CLS_SIMPLE as usize],
        int64: seed.cnt[CLS_INT64 as usize],
        fp64: seed.cnt[CLS_FP64 as usize],
        sfu: seed.cnt[CLS_SFU as usize],
        spill_touches: seed.spill,
    }
}

/// Execute one superinstruction: once on the scalar file if hoisted,
/// else as a tight lane loop.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn exec_sinst<M: MemAccess>(
    si: &SInst,
    u: &mut [u64],
    v: &mut [u64],
    lanes: usize,
    ids: &[[u32; 6]; WARP_SIZE],
    mem: &mut M,
    warp: &mut WarpMerge,
) -> Result<(), SimError> {
    // Fetch an encoded operand's 32-lane column into a stack array:
    // a memcpy for varying registers, a broadcast fill for uniform ones.
    // The compute loops below then zip fixed-size slices, which elides
    // per-element bounds checks and lets constant-propagated ALU ops
    // auto-vectorize.
    macro_rules! fetch {
        ($e:expr, $buf:ident) => {{
            let e = $e;
            if e & UB != 0 {
                $buf[..lanes].fill(u[(e & !UB) as usize]);
            } else {
                let b = e as usize * WARP_SIZE;
                $buf[..lanes].copy_from_slice(&v[b..b + lanes]);
            }
        }};
    }
    macro_rules! vb {
        ($o:expr, $t:expr) => {{
            if si.scalar {
                u[si.d as usize] = alu($o, $t, u[(si.a & !UB) as usize], u[(si.b & !UB) as usize]);
            } else {
                let mut xa = [0u64; WARP_SIZE];
                let mut xb = [0u64; WARP_SIZE];
                fetch!(si.a, xa);
                fetch!(si.b, xb);
                let db = si.d as usize * WARP_SIZE;
                for ((o, &x), &y) in
                    v[db..db + lanes].iter_mut().zip(&xa[..lanes]).zip(&xb[..lanes])
                {
                    *o = alu($o, $t, x, y);
                }
            }
        }};
    }
    macro_rules! vcmp {
        ($o:expr, $t:expr) => {{
            if si.scalar {
                u[si.d as usize] =
                    u64::from(compare($o, $t, u[(si.a & !UB) as usize], u[(si.b & !UB) as usize]));
            } else {
                let mut xa = [0u64; WARP_SIZE];
                let mut xb = [0u64; WARP_SIZE];
                fetch!(si.a, xa);
                fetch!(si.b, xb);
                let db = si.d as usize * WARP_SIZE;
                for ((o, &x), &y) in
                    v[db..db + lanes].iter_mut().zip(&xa[..lanes]).zip(&xb[..lanes])
                {
                    *o = u64::from(compare($o, $t, x, y));
                }
            }
        }};
    }
    macro_rules! vun {
        ($f:expr) => {{
            if si.scalar {
                u[si.d as usize] = $f(u[(si.a & !UB) as usize]);
            } else {
                let mut xa = [0u64; WARP_SIZE];
                fetch!(si.a, xa);
                let db = si.d as usize * WARP_SIZE;
                for (o, &x) in v[db..db + lanes].iter_mut().zip(&xa[..lanes]) {
                    *o = $f(x);
                }
            }
        }};
    }
    macro_rules! vmath {
        ($o:expr, $t:expr) => {{
            if si.scalar {
                let y = if si.b == NO_REG { None } else { Some(u[(si.b & !UB) as usize]) };
                u[si.d as usize] = math($o, $t, u[(si.a & !UB) as usize], y);
            } else {
                let mut xa = [0u64; WARP_SIZE];
                fetch!(si.a, xa);
                let db = si.d as usize * WARP_SIZE;
                if si.b == NO_REG {
                    for (o, &x) in v[db..db + lanes].iter_mut().zip(&xa[..lanes]) {
                        *o = math($o, $t, x, None);
                    }
                } else {
                    let mut xb = [0u64; WARP_SIZE];
                    fetch!(si.b, xb);
                    for ((o, &x), &y) in
                        v[db..db + lanes].iter_mut().zip(&xa[..lanes]).zip(&xb[..lanes])
                    {
                        *o = math($o, $t, x, Some(y));
                    }
                }
            }
        }};
    }
    macro_rules! vid {
        ($k:expr) => {{
            if si.scalar {
                u[si.d as usize] = ids[0][$k] as u64;
            } else {
                let db = si.d as usize * WARP_SIZE;
                for (o, id) in v[db..db + lanes].iter_mut().zip(&ids[..lanes]) {
                    *o = id[$k] as u64;
                }
            }
        }};
    }
    macro_rules! vld {
        ($bytes:expr, $ss:expr) => {{
            if si.scalar {
                // Uniform address: read once per warp, but every lane
                // still logs the (identical) event so the transaction
                // merge sees exactly the decoded engine's streams.
                let addr = u[(si.a & !UB) as usize];
                u[si.d as usize] = mem.read(addr, $bytes as u32)?;
                let ev = MemEvent { inst: si.pc, addr, bytes: $bytes, space_store: $ss };
                for l in 0..lanes {
                    warp.log(l, ev);
                }
            } else {
                let mut xa = [0u64; WARP_SIZE];
                fetch!(si.a, xa);
                let db = si.d as usize * WARP_SIZE;
                for l in 0..lanes {
                    let addr = xa[l];
                    let x = mem.read(addr, $bytes as u32)?;
                    v[db + l] = x;
                    warp.log(l, MemEvent { inst: si.pc, addr, bytes: $bytes, space_store: $ss });
                }
            }
        }};
    }
    macro_rules! vst {
        ($bytes:expr, $ss:expr) => {{
            let mut xa = [0u64; WARP_SIZE];
            let mut xb = [0u64; WARP_SIZE];
            fetch!(si.a, xa);
            fetch!(si.b, xb);
            for l in 0..lanes {
                let addr = xa[l];
                mem.write(addr, $bytes as u32, xb[l])?;
                warp.log(l, MemEvent { inst: si.pc, addr, bytes: $bytes, space_store: $ss });
            }
        }};
    }
    macro_rules! vatom {
        ($t:expr) => {{
            let bytes = $t.size_bytes() as u8;
            let mut xa = [0u64; WARP_SIZE];
            let mut xb = [0u64; WARP_SIZE];
            fetch!(si.a, xa);
            fetch!(si.b, xb);
            for l in 0..lanes {
                let addr = xa[l];
                mem.atom_add($t, addr, bytes as u32, xb[l])?;
                warp.log(
                    l,
                    MemEvent {
                        inst: si.pc,
                        addr,
                        bytes,
                        space_store: SPACE_GLOBAL | FLAG_STORE | FLAG_ATOMIC,
                    },
                );
            }
        }};
    }
    match si.op {
        Op::Ret | Op::Bra | Op::BraT | Op::BraF => unreachable!("control ops are Ctl steps"),
        Op::Mov => vun!(|x: u64| x),
        Op::Not => vun!(|x: u64| u64::from(x == 0)),
        Op::TidX => vid!(0),
        Op::TidY => vid!(1),
        Op::TidZ => vid!(2),
        Op::CtaX => vid!(3),
        Op::CtaY => vid!(4),
        Op::CtaZ => vid!(5),
        Op::LdG1 => vld!(1, SPACE_GLOBAL),
        Op::LdG4 => vld!(4, SPACE_GLOBAL),
        Op::LdG8 => vld!(8, SPACE_GLOBAL),
        Op::LdRo1 => vld!(1, SPACE_READONLY),
        Op::LdRo4 => vld!(4, SPACE_READONLY),
        Op::LdRo8 => vld!(8, SPACE_READONLY),
        Op::LdLoc1 => vld!(1, SPACE_LOCAL),
        Op::LdLoc4 => vld!(4, SPACE_LOCAL),
        Op::LdLoc8 => vld!(8, SPACE_LOCAL),
        Op::StG1 => vst!(1, SPACE_GLOBAL | FLAG_STORE),
        Op::StG4 => vst!(4, SPACE_GLOBAL | FLAG_STORE),
        Op::StG8 => vst!(8, SPACE_GLOBAL | FLAG_STORE),
        Op::StRo1 => vst!(1, SPACE_READONLY | FLAG_STORE),
        Op::StRo4 => vst!(4, SPACE_READONLY | FLAG_STORE),
        Op::StRo8 => vst!(8, SPACE_READONLY | FLAG_STORE),
        Op::StLoc1 => vst!(1, SPACE_LOCAL | FLAG_STORE),
        Op::StLoc4 => vst!(4, SPACE_LOCAL | FLAG_STORE),
        Op::StLoc8 => vst!(8, SPACE_LOCAL | FLAG_STORE),
        Op::AtomB32 => vatom!(VType::B32),
        Op::AtomB64 => vatom!(VType::B64),
        Op::AtomF32 => vatom!(VType::F32),
        Op::AtomF64 => vatom!(VType::F64),
        Op::AtomPred => vatom!(VType::Pred),
        Op::AddB32 => vb!(AluOp::Add, VType::B32),
        Op::AddB64 => vb!(AluOp::Add, VType::B64),
        Op::AddF32 => vb!(AluOp::Add, VType::F32),
        Op::AddF64 => vb!(AluOp::Add, VType::F64),
        Op::AddPred => vb!(AluOp::Add, VType::Pred),
        Op::SubB32 => vb!(AluOp::Sub, VType::B32),
        Op::SubB64 => vb!(AluOp::Sub, VType::B64),
        Op::SubF32 => vb!(AluOp::Sub, VType::F32),
        Op::SubF64 => vb!(AluOp::Sub, VType::F64),
        Op::SubPred => vb!(AluOp::Sub, VType::Pred),
        Op::MulB32 => vb!(AluOp::Mul, VType::B32),
        Op::MulB64 => vb!(AluOp::Mul, VType::B64),
        Op::MulF32 => vb!(AluOp::Mul, VType::F32),
        Op::MulF64 => vb!(AluOp::Mul, VType::F64),
        Op::MulPred => vb!(AluOp::Mul, VType::Pred),
        Op::DivB32 => vb!(AluOp::Div, VType::B32),
        Op::DivB64 => vb!(AluOp::Div, VType::B64),
        Op::DivF32 => vb!(AluOp::Div, VType::F32),
        Op::DivF64 => vb!(AluOp::Div, VType::F64),
        Op::DivPred => vb!(AluOp::Div, VType::Pred),
        Op::RemB32 => vb!(AluOp::Rem, VType::B32),
        Op::RemB64 => vb!(AluOp::Rem, VType::B64),
        Op::RemF32 => vb!(AluOp::Rem, VType::F32),
        Op::RemF64 => vb!(AluOp::Rem, VType::F64),
        Op::RemPred => vb!(AluOp::Rem, VType::Pred),
        Op::MinB32 => vb!(AluOp::Min, VType::B32),
        Op::MinB64 => vb!(AluOp::Min, VType::B64),
        Op::MinF32 => vb!(AluOp::Min, VType::F32),
        Op::MinF64 => vb!(AluOp::Min, VType::F64),
        Op::MinPred => vb!(AluOp::Min, VType::Pred),
        Op::MaxB32 => vb!(AluOp::Max, VType::B32),
        Op::MaxB64 => vb!(AluOp::Max, VType::B64),
        Op::MaxF32 => vb!(AluOp::Max, VType::F32),
        Op::MaxF64 => vb!(AluOp::Max, VType::F64),
        Op::MaxPred => vb!(AluOp::Max, VType::Pred),
        Op::AndB32 => vb!(AluOp::And, VType::B32),
        Op::AndB64 => vb!(AluOp::And, VType::B64),
        Op::AndF32 => vb!(AluOp::And, VType::F32),
        Op::AndF64 => vb!(AluOp::And, VType::F64),
        Op::AndPred => vb!(AluOp::And, VType::Pred),
        Op::OrB32 => vb!(AluOp::Or, VType::B32),
        Op::OrB64 => vb!(AluOp::Or, VType::B64),
        Op::OrF32 => vb!(AluOp::Or, VType::F32),
        Op::OrF64 => vb!(AluOp::Or, VType::F64),
        Op::OrPred => vb!(AluOp::Or, VType::Pred),
        Op::XorB32 => vb!(AluOp::Xor, VType::B32),
        Op::XorB64 => vb!(AluOp::Xor, VType::B64),
        Op::XorF32 => vb!(AluOp::Xor, VType::F32),
        Op::XorF64 => vb!(AluOp::Xor, VType::F64),
        Op::XorPred => vb!(AluOp::Xor, VType::Pred),
        Op::ShlB32 => vb!(AluOp::Shl, VType::B32),
        Op::ShlB64 => vb!(AluOp::Shl, VType::B64),
        Op::ShlF32 => vb!(AluOp::Shl, VType::F32),
        Op::ShlF64 => vb!(AluOp::Shl, VType::F64),
        Op::ShlPred => vb!(AluOp::Shl, VType::Pred),
        Op::ShrB32 => vb!(AluOp::Shr, VType::B32),
        Op::ShrB64 => vb!(AluOp::Shr, VType::B64),
        Op::ShrF32 => vb!(AluOp::Shr, VType::F32),
        Op::ShrF64 => vb!(AluOp::Shr, VType::F64),
        Op::ShrPred => vb!(AluOp::Shr, VType::Pred),
        Op::NegB32 => vun!(|x| neg(VType::B32, x)),
        Op::NegB64 => vun!(|x| neg(VType::B64, x)),
        Op::NegF32 => vun!(|x| neg(VType::F32, x)),
        Op::NegF64 => vun!(|x| neg(VType::F64, x)),
        Op::NegPred => vun!(|x| neg(VType::Pred, x)),
        Op::SetpLtB32 => vcmp!(CmpOp::Lt, VType::B32),
        Op::SetpLtB64 => vcmp!(CmpOp::Lt, VType::B64),
        Op::SetpLtF32 => vcmp!(CmpOp::Lt, VType::F32),
        Op::SetpLtF64 => vcmp!(CmpOp::Lt, VType::F64),
        Op::SetpLtPred => vcmp!(CmpOp::Lt, VType::Pred),
        Op::SetpLeB32 => vcmp!(CmpOp::Le, VType::B32),
        Op::SetpLeB64 => vcmp!(CmpOp::Le, VType::B64),
        Op::SetpLeF32 => vcmp!(CmpOp::Le, VType::F32),
        Op::SetpLeF64 => vcmp!(CmpOp::Le, VType::F64),
        Op::SetpLePred => vcmp!(CmpOp::Le, VType::Pred),
        Op::SetpGtB32 => vcmp!(CmpOp::Gt, VType::B32),
        Op::SetpGtB64 => vcmp!(CmpOp::Gt, VType::B64),
        Op::SetpGtF32 => vcmp!(CmpOp::Gt, VType::F32),
        Op::SetpGtF64 => vcmp!(CmpOp::Gt, VType::F64),
        Op::SetpGtPred => vcmp!(CmpOp::Gt, VType::Pred),
        Op::SetpGeB32 => vcmp!(CmpOp::Ge, VType::B32),
        Op::SetpGeB64 => vcmp!(CmpOp::Ge, VType::B64),
        Op::SetpGeF32 => vcmp!(CmpOp::Ge, VType::F32),
        Op::SetpGeF64 => vcmp!(CmpOp::Ge, VType::F64),
        Op::SetpGePred => vcmp!(CmpOp::Ge, VType::Pred),
        Op::SetpEqB32 => vcmp!(CmpOp::Eq, VType::B32),
        Op::SetpEqB64 => vcmp!(CmpOp::Eq, VType::B64),
        Op::SetpEqF32 => vcmp!(CmpOp::Eq, VType::F32),
        Op::SetpEqF64 => vcmp!(CmpOp::Eq, VType::F64),
        Op::SetpEqPred => vcmp!(CmpOp::Eq, VType::Pred),
        Op::SetpNeB32 => vcmp!(CmpOp::Ne, VType::B32),
        Op::SetpNeB64 => vcmp!(CmpOp::Ne, VType::B64),
        Op::SetpNeF32 => vcmp!(CmpOp::Ne, VType::F32),
        Op::SetpNeF64 => vcmp!(CmpOp::Ne, VType::F64),
        Op::SetpNePred => vcmp!(CmpOp::Ne, VType::Pred),
        Op::CvtB32B32 => vun!(|x| convert(VType::B32, VType::B32, x)),
        Op::CvtB64B32 => vun!(|x| convert(VType::B64, VType::B32, x)),
        Op::CvtF32B32 => vun!(|x| convert(VType::F32, VType::B32, x)),
        Op::CvtF64B32 => vun!(|x| convert(VType::F64, VType::B32, x)),
        Op::CvtPredB32 => vun!(|x| convert(VType::Pred, VType::B32, x)),
        Op::CvtB32B64 => vun!(|x| convert(VType::B32, VType::B64, x)),
        Op::CvtB64B64 => vun!(|x| convert(VType::B64, VType::B64, x)),
        Op::CvtF32B64 => vun!(|x| convert(VType::F32, VType::B64, x)),
        Op::CvtF64B64 => vun!(|x| convert(VType::F64, VType::B64, x)),
        Op::CvtPredB64 => vun!(|x| convert(VType::Pred, VType::B64, x)),
        Op::CvtB32F32 => vun!(|x| convert(VType::B32, VType::F32, x)),
        Op::CvtB64F32 => vun!(|x| convert(VType::B64, VType::F32, x)),
        Op::CvtF32F32 => vun!(|x| convert(VType::F32, VType::F32, x)),
        Op::CvtF64F32 => vun!(|x| convert(VType::F64, VType::F32, x)),
        Op::CvtPredF32 => vun!(|x| convert(VType::Pred, VType::F32, x)),
        Op::CvtB32F64 => vun!(|x| convert(VType::B32, VType::F64, x)),
        Op::CvtB64F64 => vun!(|x| convert(VType::B64, VType::F64, x)),
        Op::CvtF32F64 => vun!(|x| convert(VType::F32, VType::F64, x)),
        Op::CvtF64F64 => vun!(|x| convert(VType::F64, VType::F64, x)),
        Op::CvtPredF64 => vun!(|x| convert(VType::Pred, VType::F64, x)),
        Op::CvtB32Pred => vun!(|x| convert(VType::B32, VType::Pred, x)),
        Op::CvtB64Pred => vun!(|x| convert(VType::B64, VType::Pred, x)),
        Op::CvtF32Pred => vun!(|x| convert(VType::F32, VType::Pred, x)),
        Op::CvtF64Pred => vun!(|x| convert(VType::F64, VType::Pred, x)),
        Op::CvtPredPred => vun!(|x| convert(VType::Pred, VType::Pred, x)),
        Op::SqrtB32 => vmath!(MathOp::Sqrt, VType::B32),
        Op::SqrtB64 => vmath!(MathOp::Sqrt, VType::B64),
        Op::SqrtF32 => vmath!(MathOp::Sqrt, VType::F32),
        Op::SqrtF64 => vmath!(MathOp::Sqrt, VType::F64),
        Op::SqrtPred => vmath!(MathOp::Sqrt, VType::Pred),
        Op::ExpB32 => vmath!(MathOp::Exp, VType::B32),
        Op::ExpB64 => vmath!(MathOp::Exp, VType::B64),
        Op::ExpF32 => vmath!(MathOp::Exp, VType::F32),
        Op::ExpF64 => vmath!(MathOp::Exp, VType::F64),
        Op::ExpPred => vmath!(MathOp::Exp, VType::Pred),
        Op::LogB32 => vmath!(MathOp::Log, VType::B32),
        Op::LogB64 => vmath!(MathOp::Log, VType::B64),
        Op::LogF32 => vmath!(MathOp::Log, VType::F32),
        Op::LogF64 => vmath!(MathOp::Log, VType::F64),
        Op::LogPred => vmath!(MathOp::Log, VType::Pred),
        Op::SinB32 => vmath!(MathOp::Sin, VType::B32),
        Op::SinB64 => vmath!(MathOp::Sin, VType::B64),
        Op::SinF32 => vmath!(MathOp::Sin, VType::F32),
        Op::SinF64 => vmath!(MathOp::Sin, VType::F64),
        Op::SinPred => vmath!(MathOp::Sin, VType::Pred),
        Op::CosB32 => vmath!(MathOp::Cos, VType::B32),
        Op::CosB64 => vmath!(MathOp::Cos, VType::B64),
        Op::CosF32 => vmath!(MathOp::Cos, VType::F32),
        Op::CosF64 => vmath!(MathOp::Cos, VType::F64),
        Op::CosPred => vmath!(MathOp::Cos, VType::Pred),
        Op::AbsB32 => vmath!(MathOp::Abs, VType::B32),
        Op::AbsB64 => vmath!(MathOp::Abs, VType::B64),
        Op::AbsF32 => vmath!(MathOp::Abs, VType::F32),
        Op::AbsF64 => vmath!(MathOp::Abs, VType::F64),
        Op::AbsPred => vmath!(MathOp::Abs, VType::Pred),
        Op::FloorB32 => vmath!(MathOp::Floor, VType::B32),
        Op::FloorB64 => vmath!(MathOp::Floor, VType::B64),
        Op::FloorF32 => vmath!(MathOp::Floor, VType::F32),
        Op::FloorF64 => vmath!(MathOp::Floor, VType::F64),
        Op::FloorPred => vmath!(MathOp::Floor, VType::Pred),
        Op::PowB32 => vmath!(MathOp::Pow, VType::B32),
        Op::PowB64 => vmath!(MathOp::Pow, VType::B64),
        Op::PowF32 => vmath!(MathOp::Pow, VType::F32),
        Op::PowF64 => vmath!(MathOp::Pow, VType::F64),
        Op::PowPred => vmath!(MathOp::Pow, VType::Pred),
    }
    Ok(())
}

/// Peel lanes `lo..hi` back to lane-major decoded execution: gather each
/// lane's registers (scalar file for uniform classes, the lane's SoA
/// column otherwise) into the dense per-thread file the decoded engine
/// uses, then run each lane (in lane order) from its pc to completion,
/// seeding the counters with the lockstep-common prefix. The dense
/// layout keeps peeled execution at decoded-engine speed instead of
/// striding the lane-major file.
#[allow(clippy::too_many_arguments)]
fn peel<M: MemAccess>(
    d: &Decoded,
    kernel_name: &str,
    ids: &[[u32; 6]; WARP_SIZE],
    lo: usize,
    hi: usize,
    mem: &mut M,
    u: &[u64],
    v: &[u64],
    dense: &mut [u64],
    uni: &[bool],
    warp: &mut WarpMerge,
    lc: &mut [LaneCounts; WARP_SIZE],
    ctrs: &mut LocalCtrs,
    pcs: &[usize; WARP_SIZE],
    seed: ExecSeed,
) -> Result<(), SimError> {
    ctrs.peels += 1;
    for (lane, lcl) in lc.iter_mut().enumerate().take(hi).skip(lo) {
        for r in 0..d.n_vregs {
            dense[r] = if uni[r] { u[r] } else { v[r * WARP_SIZE + lane] };
        }
        *lcl = crate::decode::run_lane::<false, false, M>(
            d,
            kernel_name,
            ids[lane],
            mem,
            dense,
            lane,
            warp,
            pcs[lane],
            false,
            seed,
            None,
        )?;
    }
    Ok(())
}

/// Run one warp in lockstep over the superblock program, peeling to
/// lane-major on divergence or on reaching a cold region.
#[allow(clippy::too_many_arguments)]
fn run_warp<M: MemAccess>(
    d: &Decoded,
    prog: &SbProgram,
    kernel_name: &str,
    ids: &[[u32; 6]; WARP_SIZE],
    lanes: usize,
    mem: &mut M,
    u: &mut [u64],
    v: &mut [u64],
    dense: &mut [u64],
    uni: &[bool],
    warp: &mut WarpMerge,
    lc: &mut [LaneCounts; WARP_SIZE],
    ctrs: &mut LocalCtrs,
) -> Result<(), SimError> {
    // Cold-start fast path: if the entry block never got hot, the whole
    // warp runs lane-major from scratch — exactly the decoded engine,
    // with no SoA zero-fill or register gathering.
    if prog.at.first().is_none_or(|e| e.is_none()) {
        ctrs.peels += 1;
        for (lane, lcl) in lc.iter_mut().enumerate().take(lanes) {
            *lcl = crate::decode::run_lane::<false, false, M>(
                d,
                kernel_name,
                ids[lane],
                mem,
                dense,
                lane,
                warp,
                0,
                true,
                ExecSeed::default(),
                None,
            )?;
        }
        return Ok(());
    }
    v[..d.n_vregs * WARP_SIZE].fill(0);
    u[..d.n_vregs].fill(0);
    let mut lanes = lanes;
    let mut pc = 0usize;
    let mut seed = ExecSeed::default();
    macro_rules! tally {
        ($cls:expr, $spill:expr) => {{
            seed.executed += 1;
            seed.cnt[($cls & 7) as usize] += 1;
            seed.spill += $spill as u64;
        }};
    }
    'dispatch: loop {
        if pc >= prog.at.len() {
            // Fell off the end: implicit return.
            for lcl in lc.iter_mut().take(lanes) {
                *lcl = counts_of(&seed);
            }
            return Ok(());
        }
        if seed.executed > MAX_INSTS_PER_THREAD {
            return Err(SimError::Runaway { kernel: kernel_name.to_string() });
        }
        let Some(sbi) = prog.at[pc] else {
            // Cold region: peel every active lane here.
            return peel(
                d, kernel_name, ids, 0, lanes, mem, u, v, dense, uni, warp, lc, ctrs,
                &[pc; WARP_SIZE], seed,
            );
        };
        for step in &prog.sbs[sbi as usize].steps {
            match step {
                Ctl::Seq(si) => {
                    tally!(si.cls, si.spill);
                    if si.scalar {
                        ctrs.scalar_execs += 1;
                    } else {
                        ctrs.vector_execs += 1;
                    }
                    exec_sinst(si, u, v, lanes, ids, mem, warp)?;
                }
                Ctl::Ghost { cls, spill } => tally!(*cls, *spill),
                Ctl::Br { pred, sense, taken, fall, cont, cls, spill } => {
                    tally!(*cls, *spill);
                    let dir;
                    if pred & UB != 0 {
                        dir = (u[(pred & !UB) as usize] != 0) == *sense;
                    } else {
                        let base = *pred as usize * WARP_SIZE;
                        let mut tk = [false; WARP_SIZE];
                        let mut n_taken = 0usize;
                        for (l, t) in tk.iter_mut().enumerate().take(lanes) {
                            *t = (v[base + l] != 0) == *sense;
                            n_taken += *t as usize;
                        }
                        if n_taken != 0 && n_taken != lanes {
                            // Range-guard divergence: when the outcomes
                            // split into a contiguous prefix and suffix
                            // (the classic `i < n` bounds guard against a
                            // partially-full warp), peel only the suffix
                            // lanes to completion and keep the prefix in
                            // lockstep with a shortened warp. Decoded runs
                            // lanes independently, so any lane partition
                            // preserves its observable behavior.
                            let mut m = 1;
                            while m < lanes && tk[m] == tk[0] {
                                m += 1;
                            }
                            if tk[m..lanes].iter().all(|&t| t == tk[m]) {
                                let sfx =
                                    if tk[m] { *taken as usize } else { *fall as usize };
                                peel(
                                    d, kernel_name, ids, m, lanes, mem, u, v, dense, uni,
                                    warp, lc, ctrs, &[sfx; WARP_SIZE], seed,
                                )?;
                                lanes = m;
                                let dir = tk[0];
                                if *cont == Some(dir) {
                                    continue;
                                }
                                pc = if dir { *taken as usize } else { *fall as usize };
                                continue 'dispatch;
                            }
                            // Irregular divergence: peel every lane with
                            // its own continuation pc.
                            let mut pcs = [0usize; WARP_SIZE];
                            for l in 0..lanes {
                                pcs[l] = if tk[l] { *taken as usize } else { *fall as usize };
                            }
                            return peel(
                                d, kernel_name, ids, 0, lanes, mem, u, v, dense, uni, warp, lc,
                                ctrs, &pcs, seed,
                            );
                        }
                        dir = n_taken == lanes;
                    }
                    if *cont == Some(dir) {
                        continue;
                    }
                    pc = if dir { *taken as usize } else { *fall as usize };
                    continue 'dispatch;
                }
                Ctl::Exit { target, counted, cls, spill } => {
                    if *counted {
                        tally!(*cls, *spill);
                    }
                    pc = *target as usize;
                    continue 'dispatch;
                }
                Ctl::Ret { cls, spill } => {
                    tally!(*cls, *spill);
                    for lcl in lc.iter_mut().take(lanes) {
                        *lcl = counts_of(&seed);
                    }
                    return Ok(());
                }
                Ctl::Done => {
                    for lcl in lc.iter_mut().take(lanes) {
                        *lcl = counts_of(&seed);
                    }
                    return Ok(());
                }
            }
        }
        unreachable!("superblock must end with a control step");
    }
}

// ---------------------------------------------------------------------
// Launch

/// Execute a kernel launch on the superblock engine. Public entry is
/// [`crate::interp::launch`] with [`crate::interp::Engine::Superblock`]
/// selected.
pub(crate) fn launch_superblock(
    kernel: &KernelVir,
    config: &LaunchConfig,
    params: &[ParamVal],
    mem: &mut DeviceMemory,
    spilled: &[VReg],
) -> Result<LaunchResult, SimError> {
    let mut ctrs = LocalCtrs { launches: 1, ..LocalCtrs::default() };
    let r = launch_inner(kernel, config, params, mem, spilled, &mut ctrs);
    ctrs.flush();
    r
}

fn launch_inner(
    kernel: &KernelVir,
    config: &LaunchConfig,
    params: &[ParamVal],
    mem: &mut DeviceMemory,
    spilled: &[VReg],
    ctrs: &mut LocalCtrs,
) -> Result<LaunchResult, SimError> {
    let thr = threshold();
    if thr == u64::MAX {
        ctrs.delegated += 1;
        return launch_decoded(kernel, config, params, mem, spilled);
    }
    if params.len() != kernel.params.len() {
        return Err(SimError::Malformed(format!(
            "kernel `{}` expects {} params, got {}",
            kernel.name,
            kernel.params.len(),
            params.len()
        )));
    }
    let d = decode(kernel, config, params, spilled)?;
    if atomics_in_loops(&d) {
        ctrs.delegated += 1;
        return launch_decoded(kernel, config, params, mem, spilled);
    }

    let n_regs = d.n_vregs + d.consts.len();
    let key = prog_key(&d, thr);
    let mut current: Option<std::sync::Arc<CachedProg>> = prog_cache_get(&key);
    // Profiling state, materialized only on a cache miss.
    let mut prof_state: Option<(ProfileCounters, Vec<u32>)> = if current.is_none() {
        let (leader_block, block_of, n_blocks) = find_blocks(&d);
        Some((
            ProfileCounters {
                leader_block,
                counts: vec![0; n_blocks],
                taken: vec![0; d.insts.len()],
                seen: vec![0; d.insts.len()],
            },
            block_of,
        ))
    } else {
        None
    };

    let tpb = config.threads_per_block();
    let mut stats = KernelStats::default();
    let mut scratch = SbScratch::new(&d, n_regs);
    let mut profiled = 0u64;

    let n_blocks = config.total_blocks();
    let threads = parallel::resolve_sim_threads(config);

    // Serial phase. Profiling warps execute real lanes that mutate
    // device memory, and `PROFILE_WARPS` may span block boundaries, so
    // blocks run on the calling thread with direct memory until the
    // program is built (checked per warp — the flip can land mid-block)
    // — and then keep running serially when the pool is disabled.
    let mut b = 0u64;
    while b < n_blocks {
        if let Some(cp) = current.clone() {
            if threads > 1 && n_blocks - b > 1 {
                break; // fan the remaining blocks out across the pool
            }
            run_sb_block(&d, &cp, &kernel.name, config, b, mem, &mut scratch, ctrs, &mut stats)?;
            b += 1;
            continue;
        }
        let (bx, by, bz) = block_coords(config, b);
        let mut linear = 0u32;
        while linear < tpb {
            let lanes = (tpb - linear).min(WARP_SIZE as u32) as usize;
            scratch.warp.begin_warp();
            for (lane, id) in scratch.ids.iter_mut().enumerate().take(lanes) {
                let t = linear + lane as u32;
                let tx = t % config.block.0;
                let ty = (t / config.block.0) % config.block.1;
                let tz = t / (config.block.0 * config.block.1);
                *id = [tx, ty, tz, bx, by, bz];
            }
            if let Some(cp) = &current {
                run_warp(
                    &d,
                    &cp.prog,
                    &kernel.name,
                    &scratch.ids,
                    lanes,
                    mem,
                    &mut scratch.u,
                    &mut scratch.v,
                    &mut scratch.dense,
                    &cp.uni,
                    &mut scratch.warp,
                    &mut scratch.lane_counts,
                    ctrs,
                )?;
            } else {
                // Profiling phase: instrumented lane-major runs
                // on the dense file (decoded layout + counters).
                let (prof, block_of) = prof_state.as_mut().expect("profiling state");
                for lane in 0..lanes {
                    scratch.lane_counts[lane] = crate::decode::run_lane::<false, true, _>(
                        &d,
                        &kernel.name,
                        scratch.ids[lane],
                        mem,
                        &mut scratch.dense,
                        lane,
                        &mut scratch.warp,
                        0,
                        true,
                        ExecSeed::default(),
                        Some(prof),
                    )?;
                }
                profiled += 1;
                if profiled >= PROFILE_WARPS {
                    let uni = classify(&d);
                    let prog = build(&d, prof, block_of, thr, &uni, ctrs);
                    let cp = std::sync::Arc::new(CachedProg { uni, prog });
                    prog_cache_put(key.clone(), cp.clone());
                    current = Some(cp);
                }
            }
            let mut wc = LaneCounts::default();
            for lcl in &scratch.lane_counts[..lanes] {
                wc.max_with(lcl);
            }
            stats.simple_insts += wc.simple;
            stats.int64_insts += wc.int64;
            stats.fp64_insts += wc.fp64;
            stats.sfu_insts += wc.sfu;
            stats.local_accesses += wc.spill_touches;
            scratch.warp.merge(lanes, &mut stats);
            stats.warps += 1;
            stats.threads += lanes as u64;
            linear += lanes as u32;
        }
        b += 1;
    }

    // Parallel phase: remaining blocks share the built program (`Arc`)
    // across pool workers, each with private scratch and counters.
    if b < n_blocks {
        let cp = current.clone().expect("fan-out requires a built program");
        let d = &d;
        let cp = &cp;
        let kernel_name = kernel.name.as_str();
        let (pool_stats, workers) = parallel::run_blocks_parallel(
            mem,
            b,
            n_blocks - b,
            threads,
            |_worker| (SbScratch::new(d, n_regs), LocalCtrs::default()),
            |block, (scratch, wctrs), worker_mem| {
                let mut block_stats = KernelStats::default();
                run_sb_block(d, cp, kernel_name, config, block, worker_mem, scratch, wctrs, &mut block_stats)?;
                Ok(block_stats)
            },
        )?;
        stats.merge(&pool_stats);
        for (_, wctrs) in &workers {
            ctrs.add(wctrs);
        }
    }
    Ok(LaunchResult { stats })
}

/// Linear block id (z→y→x nesting order) to grid coordinates.
fn block_coords(config: &LaunchConfig, block: u64) -> (u32, u32, u32) {
    let (gx, gy) = (config.grid.0 as u64, config.grid.1 as u64);
    ((block % gx) as u32, ((block / gx) % gy) as u32, (block / (gx * gy)) as u32)
}

/// Per-worker execution scratch for the superblock engine: the
/// lane-major (SoA) register file for the lockstep path, the scalar
/// (warp-uniform) file, the dense per-thread file for profile warps and
/// peels (the decoded engine's exact layout), and the warp merge
/// buffers. Constants occupy the scalar/dense tails once. One of these
/// exists per serial launch — and one per pool worker.
struct SbScratch {
    v: Vec<u64>,
    u: Vec<u64>,
    dense: Vec<u64>,
    warp: WarpMerge,
    lane_counts: [LaneCounts; WARP_SIZE],
    ids: [[u32; 6]; WARP_SIZE],
}

impl SbScratch {
    fn new(d: &Decoded, n_regs: usize) -> Self {
        let v = vec![0u64; d.n_vregs * WARP_SIZE];
        let mut u = vec![0u64; n_regs];
        u[d.n_vregs..].copy_from_slice(&d.consts);
        let mut dense = vec![0u64; n_regs];
        dense[d.n_vregs..].copy_from_slice(&d.consts);
        SbScratch {
            v,
            u,
            dense,
            warp: WarpMerge::new(),
            lane_counts: [LaneCounts::default(); WARP_SIZE],
            ids: [[0u32; 6]; WARP_SIZE],
        }
    }
}

/// Execute one block (linear id, z→y→x order) entirely under a built
/// superblock program, accumulating its warps into `stats`. Generic over
/// the memory port: the serial path passes [`DeviceMemory`], pool
/// workers their [`parallel::WorkerMem`] view.
#[allow(clippy::too_many_arguments)]
fn run_sb_block<M: MemAccess>(
    d: &Decoded,
    cp: &CachedProg,
    kernel_name: &str,
    config: &LaunchConfig,
    block: u64,
    mem: &mut M,
    s: &mut SbScratch,
    ctrs: &mut LocalCtrs,
    stats: &mut KernelStats,
) -> Result<(), SimError> {
    let (bx, by, bz) = block_coords(config, block);
    let tpb = config.threads_per_block();
    let mut linear = 0u32;
    while linear < tpb {
        let lanes = (tpb - linear).min(WARP_SIZE as u32) as usize;
        s.warp.begin_warp();
        for (lane, id) in s.ids.iter_mut().enumerate().take(lanes) {
            let t = linear + lane as u32;
            let tx = t % config.block.0;
            let ty = (t / config.block.0) % config.block.1;
            let tz = t / (config.block.0 * config.block.1);
            *id = [tx, ty, tz, bx, by, bz];
        }
        run_warp(
            d,
            &cp.prog,
            kernel_name,
            &s.ids,
            lanes,
            mem,
            &mut s.u,
            &mut s.v,
            &mut s.dense,
            &cp.uni,
            &mut s.warp,
            &mut s.lane_counts,
            ctrs,
        )?;
        let mut wc = LaneCounts::default();
        for lcl in &s.lane_counts[..lanes] {
            wc.max_with(lcl);
        }
        stats.simple_insts += wc.simple;
        stats.int64_insts += wc.int64;
        stats.fp64_insts += wc.fp64;
        stats.sfu_insts += wc.sfu;
        stats.local_accesses += wc.spill_touches;
        s.warp.merge(lanes, stats);
        stats.warps += 1;
        stats.threads += lanes as u64;
        linear += lanes as u32;
    }
    Ok(())
}
