//! Content-hash launch memoization.
//!
//! A kernel launch is a pure function of (VIR, spill set, launch
//! configuration, parameter values, input buffer contents): the
//! interpreter has no hidden state and no randomness. That makes every
//! launch memoizable by *content* — the cache key is a hash of exactly
//! the inputs the interpreter reads, so a cached entry can never go
//! stale: change anything the simulation depends on and the key changes
//! with it.
//!
//! On a cache hit [`launch_cached`] replays the launch without running
//! the interpreter: it restores the recorded post-launch contents of
//! every buffer the kernel mutated and returns the recorded
//! [`KernelStats`] — byte-for-byte and count-for-count identical to
//! re-executing.
//!
//! The cache is in-memory by default; [`LaunchCache::with_disk`] adds a
//! persistent backing file so repeated benchmark runs skip simulation
//! entirely (the "warm" numbers in `BENCH_sim.json`). The on-disk format
//! is a private little-endian serialization; a missing or unparseable
//! file simply starts the cache empty.

use crate::interp::{launch, LaunchConfig, LaunchResult, ParamVal, SimError};
use crate::memory::DeviceMemory;
use crate::stats::KernelStats;
use crate::vir::{KernelVir, VReg};
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

/// 64-bit FNV-1a processed 8 bytes at a time with a final avalanche.
///
/// Word-at-a-time FNV is not cryptographic, but the keyspace here is a
/// handful of launches per benchmark run; what matters is speed over
/// multi-megabyte input buffers and stability across runs (no
/// `DefaultHasher` random seed).
struct ContentHash(u64);

impl ContentHash {
    fn new() -> Self {
        ContentHash(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn word(&mut self, w: u64) {
        self.0 = (self.0 ^ w).wrapping_mul(0x100_0000_01b3);
    }

    fn bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= (b as u64) << (8 * i);
        }
        self.word(tail ^ (data.len() as u64) << 56);
    }

    fn finish(mut self) -> u64 {
        // xorshift-multiply avalanche so nearby inputs spread.
        self.0 ^= self.0 >> 33;
        self.0 = self.0.wrapping_mul(0xff51_afd7_ed55_8ccd);
        self.0 ^= self.0 >> 33;
        self.0
    }
}

/// Compute the content key for one launch.
///
/// Hashes the kernel body (via its `Debug` form, which covers every
/// instruction, operand, and type), the spill set, the launch geometry,
/// the parameter values, and the full contents of device memory. The
/// `Debug` detour costs microseconds per launch; the buffer bytes
/// dominate and go through the word-at-a-time path.
pub fn launch_key(
    kernel: &KernelVir,
    config: &LaunchConfig,
    params: &[ParamVal],
    mem: &DeviceMemory,
    spilled: &[VReg],
) -> u64 {
    let mut h = ContentHash::new();
    h.bytes(format!("{kernel:?}").as_bytes());
    h.bytes(format!("{spilled:?}").as_bytes());
    h.bytes(format!("{config:?}").as_bytes());
    h.bytes(format!("{params:?}").as_bytes());
    h.word(mem.buffer_count() as u64);
    for i in 0..mem.buffer_count() {
        let buf = mem.buffer_bytes(i);
        h.word(buf.len() as u64);
        h.bytes(buf);
    }
    h.finish()
}

/// Recorded outcome of one launch: the stats plus the post-launch
/// contents of every buffer the kernel wrote.
#[derive(Debug, Clone, PartialEq)]
struct CachedLaunch {
    stats: KernelStats,
    /// `(buffer index, full post-launch contents)` per mutated buffer.
    writes: Vec<(u32, Vec<u8>)>,
    /// Integrity checksum over `stats` and `writes`, computed at record
    /// time (and recomputed on disk load — it is not part of the file
    /// format). Verified on replay when the cache has verification on:
    /// a mismatch means the entry was corrupted after recording.
    checksum: u64,
}

/// The integrity checksum of an entry's payload.
fn entry_checksum(stats: &KernelStats, writes: &[(u32, Vec<u8>)]) -> u64 {
    let mut h = ContentHash::new();
    for w in stats_to_words(stats) {
        h.word(w);
    }
    h.word(writes.len() as u64);
    for (idx, bytes) in writes {
        h.word(*idx as u64);
        h.bytes(bytes);
    }
    h.finish()
}

/// Default [`LaunchCache`] entry cap: far above any one benchmark run,
/// but a hard bound so a long-lived process (the server) cannot grow the
/// cache — whose entries hold full buffer snapshots — without limit.
pub const DEFAULT_ENTRY_CAP: usize = 4096;

/// Memoization cache for kernel launches, optionally disk-backed.
///
/// The cache is bounded: once it holds [`LaunchCache::entry_cap`]
/// entries, inserting a new one evicts the oldest (first-inserted)
/// entry. Insertion order is preserved by [`LaunchCache::save`] /
/// [`LaunchCache::with_disk`], so the cap keeps evicting oldest-first
/// across a persist/reload cycle.
#[derive(Debug)]
pub struct LaunchCache {
    entries: HashMap<u64, CachedLaunch>,
    /// Keys in insertion order (front = oldest), for capped eviction.
    order: VecDeque<u64>,
    cap: usize,
    disk: Option<PathBuf>,
    dirty: bool,
    /// Verify entry checksums on replay (off by default: the hash costs
    /// a pass over the buffers on every hit, and entries cannot corrupt
    /// themselves — this guards against *external* corruption, so it is
    /// opt-in for deployments that want detect-and-resimulate).
    verify: bool,
    /// Launches answered from the cache.
    pub hits: u64,
    /// Launches that ran the interpreter (and populated the cache).
    pub misses: u64,
    /// Entries dropped by the cap (oldest-first).
    pub evictions: u64,
    /// Replays that failed checksum verification: the corrupt entry was
    /// dropped and the launch re-simulated (so results stayed correct).
    pub integrity_failures: u64,
}

impl Default for LaunchCache {
    fn default() -> Self {
        LaunchCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            cap: DEFAULT_ENTRY_CAP,
            disk: None,
            dirty: false,
            verify: false,
            hits: 0,
            misses: 0,
            evictions: 0,
            integrity_failures: 0,
        }
    }
}

// Format v2 added `shared_accesses` to the stats block; v1 files fail
// the magic check and the cache simply starts empty (cold, not wrong).
const MAGIC: &[u8] = b"SAFARAMEMO2\n";
const STATS_WORDS: usize = 14;

fn stats_to_words(s: &KernelStats) -> [u64; STATS_WORDS] {
    [
        s.simple_insts,
        s.int64_insts,
        s.fp64_insts,
        s.sfu_insts,
        s.global_ld_requests,
        s.global_st_requests,
        s.global_transactions,
        s.readonly_requests,
        s.readonly_transactions,
        s.local_accesses,
        s.shared_accesses,
        s.atomics,
        s.warps,
        s.threads,
    ]
}

fn stats_from_words(w: &[u64; STATS_WORDS]) -> KernelStats {
    KernelStats {
        simple_insts: w[0],
        int64_insts: w[1],
        fp64_insts: w[2],
        sfu_insts: w[3],
        global_ld_requests: w[4],
        global_st_requests: w[5],
        global_transactions: w[6],
        readonly_requests: w[7],
        readonly_transactions: w[8],
        local_accesses: w[9],
        shared_accesses: w[10],
        atomics: w[11],
        warps: w[12],
        threads: w[13],
    }
}

impl LaunchCache {
    /// An empty in-memory cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache backed by `path`: existing entries are loaded (a missing
    /// or unparseable file starts empty) and [`LaunchCache::save`]
    /// writes back. The file stores entries oldest-first, so loading
    /// under a cap keeps the newest entries.
    pub fn with_disk(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let mut cache = Self { disk: Some(path.clone()), ..Self::default() };
        if let Ok(data) = std::fs::read(&path) {
            if let Some(entries) = parse_disk(&data) {
                for (key, entry) in entries {
                    cache.insert_entry(key, entry);
                }
                cache.dirty = false;
            }
        }
        cache
    }

    /// Set the entry cap (minimum 1). Inserting past the cap evicts the
    /// oldest entry.
    pub fn with_entry_cap(mut self, cap: usize) -> Self {
        self.cap = cap.max(1);
        self.enforce_cap();
        self
    }

    /// The configured entry cap.
    pub fn entry_cap(&self) -> usize {
        self.cap
    }

    /// Enable (or disable) checksum verification on replay. A replay
    /// whose entry fails verification drops the entry, bumps
    /// `integrity_failures`, and reports a miss — the launch then
    /// re-simulates, so a corrupted entry degrades to a slow correct
    /// answer instead of a fast wrong one.
    pub fn with_verification(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Corrupt the payload of one cached entry *without* updating its
    /// checksum — the chaos hook behind cache-poisoning fault injection.
    /// Returns false when the cache has no corruptible entry.
    pub fn poison_one(&mut self) -> bool {
        for key in &self.order {
            if let Some(e) = self.entries.get_mut(key) {
                if let Some((_, bytes)) = e.writes.iter_mut().find(|(_, b)| !b.is_empty()) {
                    bytes[0] ^= 0xff;
                    return true;
                }
            }
        }
        false
    }

    /// Number of cached launches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replay the entry for `key` into `mem`, if present: restores the
    /// recorded post-launch buffer contents and returns the recorded
    /// stats, bumping the hit counter.
    fn replay(&mut self, key: u64, mem: &mut DeviceMemory) -> Option<LaunchResult> {
        let entry = self.entries.get(&key)?;
        if self.verify && entry_checksum(&entry.stats, &entry.writes) != entry.checksum {
            // Detected corruption: drop the entry and report a miss so
            // the caller re-simulates instead of replaying bad bytes.
            self.entries.remove(&key);
            if let Some(pos) = self.order.iter().position(|&k| k == key) {
                self.order.remove(pos);
            }
            self.integrity_failures += 1;
            self.dirty = true;
            return None;
        }
        for (idx, bytes) in &entry.writes {
            mem.buffer_bytes_mut(*idx as usize).copy_from_slice(bytes);
        }
        self.hits += 1;
        Some(LaunchResult { stats: entry.stats })
    }

    /// Insert (or overwrite) an entry, evicting oldest-first past the cap.
    ///
    /// An overwrite refreshes the key's FIFO position: the entry's
    /// contents are as new as a fresh insert, so leaving it at its old
    /// slot would let the cap evict a just-rewritten entry as "oldest"
    /// — and [`LaunchCache::save`] would then persist that wrong order.
    fn insert_entry(&mut self, key: u64, entry: CachedLaunch) {
        if self.entries.insert(key, entry).is_some() {
            if let Some(pos) = self.order.iter().position(|&k| k == key) {
                self.order.remove(pos);
            }
        }
        self.order.push_back(key);
        self.dirty = true;
        self.enforce_cap();
    }

    fn enforce_cap(&mut self) {
        while self.entries.len() > self.cap {
            let Some(oldest) = self.order.pop_front() else { break };
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
    }

    /// Persist to the backing file, if one was configured and anything
    /// changed. Entries are written oldest-first (insertion order) so a
    /// reload preserves eviction order and the file is deterministic for
    /// a given cache history.
    pub fn save(&mut self) -> std::io::Result<()> {
        let Some(path) = &self.disk else { return Ok(()) };
        if !self.dirty {
            return Ok(());
        }
        let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for &k in &self.order {
            let e = &self.entries[&k];
            out.extend_from_slice(&k.to_le_bytes());
            for w in stats_to_words(&e.stats) {
                out.extend_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&(e.writes.len() as u32).to_le_bytes());
            for (idx, bytes) in &e.writes {
                out.extend_from_slice(&idx.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(&out)?;
        self.dirty = false;
        Ok(())
    }
}

fn parse_disk(data: &[u8]) -> Option<Vec<(u64, CachedLaunch)>> {
    let mut p = data.strip_prefix(MAGIC)?;
    let u64_at = |p: &mut &[u8]| -> Option<u64> {
        let (head, rest) = p.split_first_chunk::<8>()?;
        *p = rest;
        Some(u64::from_le_bytes(*head))
    };
    let u32_at = |p: &mut &[u8]| -> Option<u32> {
        let (head, rest) = p.split_first_chunk::<4>()?;
        *p = rest;
        Some(u32::from_le_bytes(*head))
    };
    let count = u64_at(&mut p)?;
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let key = u64_at(&mut p)?;
        let mut words = [0u64; STATS_WORDS];
        for w in &mut words {
            *w = u64_at(&mut p)?;
        }
        let n_writes = u32_at(&mut p)?;
        let mut writes = Vec::with_capacity(n_writes as usize);
        for _ in 0..n_writes {
            let idx = u32_at(&mut p)?;
            let len = u64_at(&mut p)? as usize;
            if p.len() < len {
                return None;
            }
            let (bytes, rest) = p.split_at(len);
            p = rest;
            writes.push((idx, bytes.to_vec()));
        }
        let stats = stats_from_words(&words);
        let checksum = entry_checksum(&stats, &writes);
        entries.push((key, CachedLaunch { stats, writes, checksum }));
    }
    if p.is_empty() {
        Some(entries)
    } else {
        None
    }
}

/// [`launch`] with memoization: on a content-hash hit the recorded
/// buffer writes are replayed and the recorded stats returned without
/// running the interpreter; on a miss the interpreter runs and its
/// outcome is recorded.
///
/// Errors are never cached — a faulting launch reaches the interpreter
/// every time.
pub fn launch_cached(
    cache: &mut LaunchCache,
    kernel: &KernelVir,
    config: &LaunchConfig,
    params: &[ParamVal],
    mem: &mut DeviceMemory,
    spilled: &[VReg],
) -> Result<LaunchResult, SimError> {
    let key = launch_key(kernel, config, params, mem, spilled);
    if let Some(result) = cache.replay(key, mem) {
        return Ok(result);
    }
    cache.misses += 1;
    let (result, entry) = run_and_record(kernel, config, params, mem, spilled)?;
    cache.insert_entry(key, entry);
    Ok(result)
}

/// Run the interpreter and capture the outcome as a cache entry (stats
/// plus the post-launch contents of every buffer the kernel mutated).
fn run_and_record(
    kernel: &KernelVir,
    config: &LaunchConfig,
    params: &[ParamVal],
    mem: &mut DeviceMemory,
    spilled: &[VReg],
) -> Result<(LaunchResult, CachedLaunch), SimError> {
    let before: Vec<Vec<u8>> =
        (0..mem.buffer_count()).map(|i| mem.buffer_bytes(i).to_vec()).collect();
    let result = launch(kernel, config, params, mem, spilled)?;
    let writes: Vec<(u32, Vec<u8>)> = before
        .iter()
        .enumerate()
        .filter(|(i, old)| mem.buffer_bytes(*i) != old.as_slice())
        .map(|(i, _)| (i as u32, mem.buffer_bytes(i).to_vec()))
        .collect();
    let stats = result.stats;
    let checksum = entry_checksum(&stats, &writes);
    Ok((result, CachedLaunch { stats, writes, checksum }))
}

/// A [`LaunchCache`] shareable between threads, sharded by content-hash
/// so concurrent lookups on different keys rarely contend.
///
/// Each shard is an independent capped `LaunchCache` behind its own
/// mutex. A lookup locks only its shard; on a miss the interpreter runs
/// *outside* the lock (simulation dominates, often by milliseconds), and
/// the result is inserted afterwards. Two threads missing on the same
/// key may both simulate — the launch is pure, so both compute the same
/// entry and both count as misses: `hits() + misses()` always equals the
/// number of launches submitted.
#[derive(Debug)]
pub struct SharedLaunchCache {
    /// Power-of-two shard set; a key's low bits (post-avalanche, so
    /// uniformly spread) select its shard.
    shards: Vec<Mutex<LaunchCache>>,
    mask: u64,
    /// Shard-lock acquisitions that found the lock already held.
    contention: std::sync::atomic::AtomicU64,
}

impl Default for SharedLaunchCache {
    fn default() -> Self {
        Self::new(16)
    }
}

impl SharedLaunchCache {
    /// A shared cache with `nshards` shards (rounded up to a power of
    /// two) and the default total entry cap.
    pub fn new(nshards: usize) -> Self {
        Self::with_entry_cap(nshards, DEFAULT_ENTRY_CAP)
    }

    /// A shared cache capping *total* entries at roughly `cap`
    /// (distributed evenly across shards, at least one per shard).
    pub fn with_entry_cap(nshards: usize, cap: usize) -> Self {
        Self::with_options(nshards, cap, false)
    }

    /// [`SharedLaunchCache::with_entry_cap`] with replay-time checksum
    /// verification configured per shard (see
    /// [`LaunchCache::with_verification`]).
    pub fn with_options(nshards: usize, cap: usize, verify: bool) -> Self {
        let n = nshards.max(1).next_power_of_two();
        let per_shard = (cap / n).max(1);
        SharedLaunchCache {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(
                        LaunchCache::new().with_entry_cap(per_shard).with_verification(verify),
                    )
                })
                .collect(),
            mask: (n - 1) as u64,
            contention: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Corrupt one cached entry somewhere in the cache without updating
    /// its checksum — the chaos hook for cache-poisoning faults. Returns
    /// false when every shard is empty.
    pub fn poison_one(&self) -> bool {
        self.shards.iter().any(|s| self.lock(s).poison_one())
    }

    /// Replays that failed checksum verification, across all shards.
    pub fn integrity_failures(&self) -> u64 {
        self.shards.iter().map(|s| self.lock(s).integrity_failures).sum()
    }

    fn shard(&self, key: u64) -> &Mutex<LaunchCache> {
        &self.shards[(key & self.mask) as usize]
    }

    fn lock<'a>(&self, m: &'a Mutex<LaunchCache>) -> std::sync::MutexGuard<'a, LaunchCache> {
        use std::sync::atomic::Ordering;
        // Try-first so contended acquisitions are observable: a failed
        // try_lock means another thread holds this shard right now.
        // A panic while holding the lock leaves a consistent cache (the
        // entry map is only touched through replay/insert), so poisoning
        // is safe to bypass.
        match m.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                m.lock().unwrap_or_else(|p| p.into_inner())
            }
        }
    }

    /// Launches answered from the cache, across all shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| self.lock(s).hits).sum()
    }

    /// Launches that ran the interpreter, across all shards.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| self.lock(s).misses).sum()
    }

    /// Entries dropped by the per-shard caps, across all shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| self.lock(s).evictions).sum()
    }

    /// Shard-lock acquisitions that had to wait for another thread.
    pub fn contention(&self) -> u64 {
        self.contention.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total cached launches across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).len()).sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// [`launch_cached`] against the shared cache. Only the owning shard
    /// is locked, and never while the interpreter runs.
    pub fn launch_cached(
        &self,
        kernel: &KernelVir,
        config: &LaunchConfig,
        params: &[ParamVal],
        mem: &mut DeviceMemory,
        spilled: &[VReg],
    ) -> Result<LaunchResult, SimError> {
        self.launch_cached_info(kernel, config, params, mem, spilled).map(|(r, _)| r)
    }

    /// [`SharedLaunchCache::launch_cached`], also reporting whether the
    /// launch was answered from the cache (`true` = hit) — per-launch
    /// information the aggregate hit/miss counters cannot give a tracer.
    pub fn launch_cached_info(
        &self,
        kernel: &KernelVir,
        config: &LaunchConfig,
        params: &[ParamVal],
        mem: &mut DeviceMemory,
        spilled: &[VReg],
    ) -> Result<(LaunchResult, bool), SimError> {
        let key = launch_key(kernel, config, params, mem, spilled);
        let shard = self.shard(key);
        if let Some(result) = self.lock(shard).replay(key, mem) {
            return Ok((result, true));
        }
        match run_and_record(kernel, config, params, mem, spilled) {
            Ok((result, entry)) => {
                let mut c = self.lock(shard);
                c.misses += 1;
                c.insert_entry(key, entry);
                Ok((result, false))
            }
            Err(e) => {
                // Errors are never cached, but still count as misses so
                // the counters account for every submitted launch.
                self.lock(shard).misses += 1;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vir::{Inst, MemSpace, Operand, ParamDecl, SpecialReg, VType};

    /// out[tid] = a[tid] + 1.0f
    fn add_one_kernel() -> KernelVir {
        use crate::vir::AluOp;
        KernelVir {
            name: "add_one".into(),
            params: vec![ParamDecl::Ptr, ParamDecl::Ptr],
            vregs: vec![VType::B32, VType::B64, VType::B64, VType::F32, VType::B64, VType::F32],
            insts: vec![
                Inst::Special { d: VReg(0), r: SpecialReg::Tid(0) },
                Inst::Cvt { dty: VType::B64, d: VReg(1), aty: VType::B32, a: Operand::Reg(VReg(0)) },
                Inst::Alu {
                    op: AluOp::Mul,
                    ty: VType::B64,
                    d: VReg(1),
                    a: Operand::Reg(VReg(1)),
                    b: Operand::ImmI(4),
                },
                Inst::LdParam { ty: VType::B64, d: VReg(2), index: 0 },
                Inst::Alu {
                    op: AluOp::Add,
                    ty: VType::B64,
                    d: VReg(2),
                    a: Operand::Reg(VReg(2)),
                    b: Operand::Reg(VReg(1)),
                },
                Inst::Ld { space: MemSpace::Global, ty: VType::F32, d: VReg(3), addr: VReg(2) },
                Inst::Alu {
                    op: AluOp::Add,
                    ty: VType::F32,
                    d: VReg(3),
                    a: Operand::Reg(VReg(3)),
                    b: Operand::ImmF(1.0),
                },
                Inst::LdParam { ty: VType::B64, d: VReg(4), index: 1 },
                Inst::Alu {
                    op: AluOp::Add,
                    ty: VType::B64,
                    d: VReg(4),
                    a: Operand::Reg(VReg(4)),
                    b: Operand::Reg(VReg(1)),
                },
                Inst::St { space: MemSpace::Global, ty: VType::F32, addr: VReg(4), a: Operand::Reg(VReg(3)) },
                Inst::Ret,
            ],
        }
    }

    fn setup() -> (DeviceMemory, Vec<ParamVal>, LaunchConfig) {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(32 * 4);
        let out = mem.alloc(32 * 4);
        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        mem.copy_in_f32(a, &data);
        let params = vec![ParamVal::Ptr(mem.base_addr(a)), ParamVal::Ptr(mem.base_addr(out))];
        let config = LaunchConfig::d1(1, 32);
        (mem, params, config)
    }

    #[test]
    fn hit_replays_identical_memory_and_stats() {
        let k = add_one_kernel();
        let mut cache = LaunchCache::new();

        let (mut mem1, params, config) = setup();
        let r1 = launch_cached(&mut cache, &k, &config, &params, &mut mem1, &[]).unwrap();
        assert_eq!((cache.hits, cache.misses), (0, 1));

        let (mut mem2, params2, config2) = setup();
        let r2 = launch_cached(&mut cache, &k, &config2, &params2, &mut mem2, &[]).unwrap();
        assert_eq!((cache.hits, cache.misses), (1, 1));
        assert_eq!(r1.stats, r2.stats);
        for i in 0..mem1.buffer_count() {
            assert_eq!(mem1.buffer_bytes(i), mem2.buffer_bytes(i), "buffer {i}");
        }
    }

    #[test]
    fn different_inputs_miss() {
        let k = add_one_kernel();
        let mut cache = LaunchCache::new();
        let (mut mem1, params, config) = setup();
        launch_cached(&mut cache, &k, &config, &params, &mut mem1, &[]).unwrap();
        let (mut mem2, params2, config2) = setup();
        mem2.copy_in_f32(crate::memory::BufferId(0), &[99.0]);
        launch_cached(&mut cache, &k, &config2, &params2, &mut mem2, &[]).unwrap();
        assert_eq!((cache.hits, cache.misses), (0, 2));
        assert_eq!(mem2.copy_out_f32(crate::memory::BufferId(1))[0], 100.0);
    }

    #[test]
    fn disk_roundtrip_replays() {
        let dir = std::env::temp_dir().join("safara_memo_test");
        let path = dir.join("launches.bin");
        let _ = std::fs::remove_file(&path);
        let k = add_one_kernel();

        let r1 = {
            let mut cache = LaunchCache::with_disk(&path);
            let (mut mem, params, config) = setup();
            let r = launch_cached(&mut cache, &k, &config, &params, &mut mem, &[]).unwrap();
            assert_eq!(cache.misses, 1);
            cache.save().unwrap();
            r
        };

        let mut cache = LaunchCache::with_disk(&path);
        assert_eq!(cache.len(), 1);
        let (mut mem, params, config) = setup();
        let r2 = launch_cached(&mut cache, &k, &config, &params, &mut mem, &[]).unwrap();
        assert_eq!((cache.hits, cache.misses), (1, 0));
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(mem.copy_out_f32(crate::memory::BufferId(1))[5], 6.0);
        let _ = std::fs::remove_file(&path);
    }

    /// Distinct-input launches to populate a cache: variant `v` perturbs
    /// the input buffer so every `v` produces a distinct content key.
    fn run_variant(cache: &mut LaunchCache, k: &KernelVir, v: u32) {
        let (mut mem, params, config) = setup();
        mem.copy_in_f32(crate::memory::BufferId(0), &[v as f32 * 10.0 + 1.0]);
        launch_cached(cache, k, &config, &params, &mut mem, &[]).unwrap();
    }

    #[test]
    fn entry_cap_evicts_oldest_first() {
        let k = add_one_kernel();
        let mut cache = LaunchCache::new().with_entry_cap(3);
        for v in 0..5 {
            run_variant(&mut cache, &k, v);
        }
        assert_eq!(cache.len(), 3, "cap holds");
        assert_eq!(cache.misses, 5);
        // The two oldest variants (0, 1) were evicted: running them again
        // misses; the three newest (2, 3, 4) hit.
        for v in [2, 3, 4] {
            run_variant(&mut cache, &k, v);
        }
        assert_eq!((cache.hits, cache.misses), (3, 5));
        for v in [0, 1] {
            run_variant(&mut cache, &k, v);
        }
        assert_eq!(cache.misses, 7, "evicted entries re-simulate");
    }

    #[test]
    fn entry_cap_holds_across_persist_reload() {
        let dir = std::env::temp_dir().join("safara_memo_cap_test");
        let path = dir.join("capped.bin");
        let _ = std::fs::remove_file(&path);
        let k = add_one_kernel();

        {
            let mut cache = LaunchCache::with_disk(&path).with_entry_cap(3);
            for v in 0..5 {
                run_variant(&mut cache, &k, v);
            }
            assert_eq!(cache.len(), 3);
            cache.save().unwrap();
        }

        // Reload with the same cap: the cap still holds, the survivors
        // are the newest entries (2, 3, 4), and inserting one more still
        // evicts oldest-first (2 goes, 6 stays).
        let mut cache = LaunchCache::with_disk(&path).with_entry_cap(3);
        assert_eq!(cache.len(), 3, "cap holds after reload");
        for v in [2, 3, 4] {
            run_variant(&mut cache, &k, v);
        }
        assert_eq!((cache.hits, cache.misses), (3, 0), "newest entries survived");
        run_variant(&mut cache, &k, 6);
        assert_eq!(cache.len(), 3);
        run_variant(&mut cache, &k, 2);
        assert_eq!(cache.misses, 2, "oldest survivor was the one evicted");

        // Reloading under a *smaller* cap keeps only the newest.
        cache.save().unwrap();
        let cache = LaunchCache::with_disk(&path).with_entry_cap(1);
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    /// A synthetic entry, distinguishable by its write payload. Only
    /// reachable in-module: through the public API an overwrite needs
    /// two threads racing a miss on the same key.
    fn synthetic(tag: u8) -> CachedLaunch {
        let stats = KernelStats::default();
        let writes = vec![(0, vec![tag])];
        let checksum = entry_checksum(&stats, &writes);
        CachedLaunch { stats, writes, checksum }
    }

    #[test]
    fn overwrite_refreshes_fifo_position() {
        let mut cache = LaunchCache::new().with_entry_cap(3);
        for key in [1, 2, 3] {
            cache.insert_entry(key, synthetic(key as u8));
        }
        // Rewrite key 1: it is now the *newest* entry, so pushing past
        // the cap must evict key 2, not the just-rewritten key 1.
        cache.insert_entry(1, synthetic(101));
        assert_eq!(cache.len(), 3, "overwrite does not grow the cache");
        cache.insert_entry(4, synthetic(4));
        assert!(cache.entries.contains_key(&1), "rewritten entry survives eviction");
        assert!(!cache.entries.contains_key(&2), "true oldest entry was evicted");
        assert_eq!(cache.entries[&1], synthetic(101), "rewrite took effect");
        assert_eq!(cache.evictions, 1);
        assert_eq!(cache.order.len(), cache.entries.len(), "order holds no duplicates");
    }

    #[test]
    fn overwrite_then_evict_then_reload_persists_the_refreshed_order() {
        let dir = std::env::temp_dir().join("safara_memo_overwrite_test");
        let path = dir.join("overwrite.bin");
        let _ = std::fs::remove_file(&path);

        {
            let mut cache = LaunchCache::with_disk(&path).with_entry_cap(3);
            for key in [1, 2, 3] {
                cache.insert_entry(key, synthetic(key as u8));
            }
            cache.insert_entry(1, synthetic(101)); // refresh: order is now 2, 3, 1
            cache.insert_entry(4, synthetic(4)); // evicts 2 → order 3, 1, 4
            cache.save().unwrap();
        }

        let mut cache = LaunchCache::with_disk(&path).with_entry_cap(3);
        assert_eq!(cache.len(), 3);
        for key in [1, 3, 4] {
            assert!(cache.entries.contains_key(&key), "key {key} survived the reload");
        }
        assert_eq!(cache.entries[&1], synthetic(101), "rewritten contents persisted");
        // The reloaded FIFO order continues where the saved one left
        // off: the next eviction takes 3, the oldest survivor.
        cache.insert_entry(5, synthetic(5));
        assert!(!cache.entries.contains_key(&3));
        assert!(cache.entries.contains_key(&1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_cache_hits_and_replays_like_exclusive() {
        let k = add_one_kernel();
        let shared = SharedLaunchCache::new(4);

        let (mut mem1, params, config) = setup();
        let r1 = shared.launch_cached(&k, &config, &params, &mut mem1, &[]).unwrap();
        assert_eq!((shared.hits(), shared.misses()), (0, 1));

        let (mut mem2, params2, config2) = setup();
        let r2 = shared.launch_cached(&k, &config2, &params2, &mut mem2, &[]).unwrap();
        assert_eq!((shared.hits(), shared.misses()), (1, 1));
        assert_eq!(r1.stats, r2.stats);
        for i in 0..mem1.buffer_count() {
            assert_eq!(mem1.buffer_bytes(i), mem2.buffer_bytes(i), "buffer {i}");
        }
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn poisoned_entry_is_detected_and_resimulated_bit_correct() {
        let k = add_one_kernel();
        let mut cache = LaunchCache::new().with_verification(true);

        let (mut mem1, params, config) = setup();
        launch_cached(&mut cache, &k, &config, &params, &mut mem1, &[]).unwrap();
        assert!(cache.poison_one(), "one entry exists to poison");

        // The poisoned replay is detected: dropped, re-simulated, and
        // the output matches the original run byte-for-byte.
        let (mut mem2, params2, config2) = setup();
        launch_cached(&mut cache, &k, &config2, &params2, &mut mem2, &[]).unwrap();
        assert_eq!(cache.integrity_failures, 1);
        assert_eq!((cache.hits, cache.misses), (0, 2), "poisoned replay became a miss");
        for i in 0..mem1.buffer_count() {
            assert_eq!(mem1.buffer_bytes(i), mem2.buffer_bytes(i), "buffer {i}");
        }

        // The re-simulated entry is healthy again: next lookup hits.
        let (mut mem3, params3, config3) = setup();
        launch_cached(&mut cache, &k, &config3, &params3, &mut mem3, &[]).unwrap();
        assert_eq!((cache.hits, cache.misses), (1, 2));
    }

    #[test]
    fn poison_without_verification_replays_bad_bytes() {
        // The control experiment for the test above: with verification
        // off (the default), poisoning silently corrupts replays — which
        // is exactly why the detect-and-resimulate path exists.
        let k = add_one_kernel();
        let mut cache = LaunchCache::new();
        let (mut mem1, params, config) = setup();
        launch_cached(&mut cache, &k, &config, &params, &mut mem1, &[]).unwrap();
        cache.poison_one();
        let (mut mem2, params2, config2) = setup();
        launch_cached(&mut cache, &k, &config2, &params2, &mut mem2, &[]).unwrap();
        assert_eq!(cache.hits, 1, "unverified replay hits");
        assert_eq!(cache.integrity_failures, 0);
        let differs = (0..mem1.buffer_count())
            .any(|i| mem1.buffer_bytes(i) != mem2.buffer_bytes(i));
        assert!(differs, "unverified poison corrupts the replayed output");
    }

    #[test]
    fn shared_cache_detects_poison_too() {
        let k = add_one_kernel();
        let shared = SharedLaunchCache::with_options(4, DEFAULT_ENTRY_CAP, true);
        let (mut mem1, params, config) = setup();
        shared.launch_cached(&k, &config, &params, &mut mem1, &[]).unwrap();
        assert!(shared.poison_one());
        let (mut mem2, params2, config2) = setup();
        shared.launch_cached(&k, &config2, &params2, &mut mem2, &[]).unwrap();
        assert_eq!(shared.integrity_failures(), 1);
        assert_eq!((shared.hits(), shared.misses()), (0, 2));
        for i in 0..mem1.buffer_count() {
            assert_eq!(mem1.buffer_bytes(i), mem2.buffer_bytes(i), "buffer {i}");
        }
    }

    #[test]
    fn corrupt_disk_file_starts_empty() {
        let dir = std::env::temp_dir().join("safara_memo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.bin");
        std::fs::write(&path, b"not a cache file").unwrap();
        let cache = LaunchCache::with_disk(&path);
        assert!(cache.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
