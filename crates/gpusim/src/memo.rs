//! Content-hash launch memoization.
//!
//! A kernel launch is a pure function of (VIR, spill set, launch
//! configuration, parameter values, input buffer contents): the
//! interpreter has no hidden state and no randomness. That makes every
//! launch memoizable by *content* — the cache key is a hash of exactly
//! the inputs the interpreter reads, so a cached entry can never go
//! stale: change anything the simulation depends on and the key changes
//! with it.
//!
//! On a cache hit [`launch_cached`] replays the launch without running
//! the interpreter: it restores the recorded post-launch contents of
//! every buffer the kernel mutated and returns the recorded
//! [`KernelStats`] — byte-for-byte and count-for-count identical to
//! re-executing.
//!
//! The cache is in-memory by default; [`LaunchCache::with_disk`] adds a
//! persistent backing file so repeated benchmark runs skip simulation
//! entirely (the "warm" numbers in `BENCH_sim.json`). The on-disk format
//! is a private little-endian serialization; a missing or unparseable
//! file simply starts the cache empty.

use crate::interp::{launch, LaunchConfig, LaunchResult, ParamVal, SimError};
use crate::memory::DeviceMemory;
use crate::stats::KernelStats;
use crate::vir::{KernelVir, VReg};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;

/// 64-bit FNV-1a processed 8 bytes at a time with a final avalanche.
///
/// Word-at-a-time FNV is not cryptographic, but the keyspace here is a
/// handful of launches per benchmark run; what matters is speed over
/// multi-megabyte input buffers and stability across runs (no
/// `DefaultHasher` random seed).
struct ContentHash(u64);

impl ContentHash {
    fn new() -> Self {
        ContentHash(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn word(&mut self, w: u64) {
        self.0 = (self.0 ^ w).wrapping_mul(0x100_0000_01b3);
    }

    fn bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= (b as u64) << (8 * i);
        }
        self.word(tail ^ (data.len() as u64) << 56);
    }

    fn finish(mut self) -> u64 {
        // xorshift-multiply avalanche so nearby inputs spread.
        self.0 ^= self.0 >> 33;
        self.0 = self.0.wrapping_mul(0xff51_afd7_ed55_8ccd);
        self.0 ^= self.0 >> 33;
        self.0
    }
}

/// Compute the content key for one launch.
///
/// Hashes the kernel body (via its `Debug` form, which covers every
/// instruction, operand, and type), the spill set, the launch geometry,
/// the parameter values, and the full contents of device memory. The
/// `Debug` detour costs microseconds per launch; the buffer bytes
/// dominate and go through the word-at-a-time path.
pub fn launch_key(
    kernel: &KernelVir,
    config: &LaunchConfig,
    params: &[ParamVal],
    mem: &DeviceMemory,
    spilled: &[VReg],
) -> u64 {
    let mut h = ContentHash::new();
    h.bytes(format!("{kernel:?}").as_bytes());
    h.bytes(format!("{spilled:?}").as_bytes());
    h.bytes(format!("{config:?}").as_bytes());
    h.bytes(format!("{params:?}").as_bytes());
    h.word(mem.buffer_count() as u64);
    for i in 0..mem.buffer_count() {
        let buf = mem.buffer_bytes(i);
        h.word(buf.len() as u64);
        h.bytes(buf);
    }
    h.finish()
}

/// Recorded outcome of one launch: the stats plus the post-launch
/// contents of every buffer the kernel wrote.
#[derive(Debug, Clone, PartialEq)]
struct CachedLaunch {
    stats: KernelStats,
    /// `(buffer index, full post-launch contents)` per mutated buffer.
    writes: Vec<(u32, Vec<u8>)>,
}

/// Memoization cache for kernel launches, optionally disk-backed.
#[derive(Debug, Default)]
pub struct LaunchCache {
    entries: HashMap<u64, CachedLaunch>,
    disk: Option<PathBuf>,
    dirty: bool,
    /// Launches answered from the cache.
    pub hits: u64,
    /// Launches that ran the interpreter (and populated the cache).
    pub misses: u64,
}

const MAGIC: &[u8] = b"SAFARAMEMO1\n";
const STATS_WORDS: usize = 13;

fn stats_to_words(s: &KernelStats) -> [u64; STATS_WORDS] {
    [
        s.simple_insts,
        s.int64_insts,
        s.fp64_insts,
        s.sfu_insts,
        s.global_ld_requests,
        s.global_st_requests,
        s.global_transactions,
        s.readonly_requests,
        s.readonly_transactions,
        s.local_accesses,
        s.atomics,
        s.warps,
        s.threads,
    ]
}

fn stats_from_words(w: &[u64; STATS_WORDS]) -> KernelStats {
    KernelStats {
        simple_insts: w[0],
        int64_insts: w[1],
        fp64_insts: w[2],
        sfu_insts: w[3],
        global_ld_requests: w[4],
        global_st_requests: w[5],
        global_transactions: w[6],
        readonly_requests: w[7],
        readonly_transactions: w[8],
        local_accesses: w[9],
        atomics: w[10],
        warps: w[11],
        threads: w[12],
    }
}

impl LaunchCache {
    /// An empty in-memory cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache backed by `path`: existing entries are loaded (a missing
    /// or unparseable file starts empty) and [`LaunchCache::save`]
    /// writes back.
    pub fn with_disk(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let mut cache = Self { disk: Some(path.clone()), ..Self::default() };
        if let Ok(data) = std::fs::read(&path) {
            if let Some(entries) = parse_disk(&data) {
                cache.entries = entries;
            }
        }
        cache
    }

    /// Number of cached launches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Persist to the backing file, if one was configured and anything
    /// changed. Entries are written in sorted key order so the file is
    /// deterministic for a given cache content.
    pub fn save(&mut self) -> std::io::Result<()> {
        let Some(path) = &self.disk else { return Ok(()) };
        if !self.dirty {
            return Ok(());
        }
        let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let e = &self.entries[&k];
            out.extend_from_slice(&k.to_le_bytes());
            for w in stats_to_words(&e.stats) {
                out.extend_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&(e.writes.len() as u32).to_le_bytes());
            for (idx, bytes) in &e.writes {
                out.extend_from_slice(&idx.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(&out)?;
        self.dirty = false;
        Ok(())
    }
}

fn parse_disk(data: &[u8]) -> Option<HashMap<u64, CachedLaunch>> {
    let mut p = data.strip_prefix(MAGIC)?;
    let u64_at = |p: &mut &[u8]| -> Option<u64> {
        let (head, rest) = p.split_first_chunk::<8>()?;
        *p = rest;
        Some(u64::from_le_bytes(*head))
    };
    let u32_at = |p: &mut &[u8]| -> Option<u32> {
        let (head, rest) = p.split_first_chunk::<4>()?;
        *p = rest;
        Some(u32::from_le_bytes(*head))
    };
    let count = u64_at(&mut p)?;
    let mut entries = HashMap::with_capacity(count as usize);
    for _ in 0..count {
        let key = u64_at(&mut p)?;
        let mut words = [0u64; STATS_WORDS];
        for w in &mut words {
            *w = u64_at(&mut p)?;
        }
        let n_writes = u32_at(&mut p)?;
        let mut writes = Vec::with_capacity(n_writes as usize);
        for _ in 0..n_writes {
            let idx = u32_at(&mut p)?;
            let len = u64_at(&mut p)? as usize;
            if p.len() < len {
                return None;
            }
            let (bytes, rest) = p.split_at(len);
            p = rest;
            writes.push((idx, bytes.to_vec()));
        }
        entries.insert(key, CachedLaunch { stats: stats_from_words(&words), writes });
    }
    if p.is_empty() {
        Some(entries)
    } else {
        None
    }
}

/// [`launch`] with memoization: on a content-hash hit the recorded
/// buffer writes are replayed and the recorded stats returned without
/// running the interpreter; on a miss the interpreter runs and its
/// outcome is recorded.
///
/// Errors are never cached — a faulting launch reaches the interpreter
/// every time.
pub fn launch_cached(
    cache: &mut LaunchCache,
    kernel: &KernelVir,
    config: &LaunchConfig,
    params: &[ParamVal],
    mem: &mut DeviceMemory,
    spilled: &[VReg],
) -> Result<LaunchResult, SimError> {
    let key = launch_key(kernel, config, params, mem, spilled);
    if let Some(entry) = cache.entries.get(&key) {
        cache.hits += 1;
        for (idx, bytes) in &entry.writes {
            mem.buffer_bytes_mut(*idx as usize).copy_from_slice(bytes);
        }
        return Ok(LaunchResult { stats: entry.stats });
    }
    cache.misses += 1;
    let before: Vec<Vec<u8>> =
        (0..mem.buffer_count()).map(|i| mem.buffer_bytes(i).to_vec()).collect();
    let result = launch(kernel, config, params, mem, spilled)?;
    let writes: Vec<(u32, Vec<u8>)> = before
        .iter()
        .enumerate()
        .filter(|(i, old)| mem.buffer_bytes(*i) != old.as_slice())
        .map(|(i, _)| (i as u32, mem.buffer_bytes(i).to_vec()))
        .collect();
    cache.entries.insert(key, CachedLaunch { stats: result.stats, writes });
    cache.dirty = true;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vir::{Inst, MemSpace, Operand, ParamDecl, SpecialReg, VType};

    /// out[tid] = a[tid] + 1.0f
    fn add_one_kernel() -> KernelVir {
        use crate::vir::AluOp;
        KernelVir {
            name: "add_one".into(),
            params: vec![ParamDecl::Ptr, ParamDecl::Ptr],
            vregs: vec![VType::B32, VType::B64, VType::B64, VType::F32, VType::B64, VType::F32],
            insts: vec![
                Inst::Special { d: VReg(0), r: SpecialReg::Tid(0) },
                Inst::Cvt { dty: VType::B64, d: VReg(1), aty: VType::B32, a: Operand::Reg(VReg(0)) },
                Inst::Alu {
                    op: AluOp::Mul,
                    ty: VType::B64,
                    d: VReg(1),
                    a: Operand::Reg(VReg(1)),
                    b: Operand::ImmI(4),
                },
                Inst::LdParam { ty: VType::B64, d: VReg(2), index: 0 },
                Inst::Alu {
                    op: AluOp::Add,
                    ty: VType::B64,
                    d: VReg(2),
                    a: Operand::Reg(VReg(2)),
                    b: Operand::Reg(VReg(1)),
                },
                Inst::Ld { space: MemSpace::Global, ty: VType::F32, d: VReg(3), addr: VReg(2) },
                Inst::Alu {
                    op: AluOp::Add,
                    ty: VType::F32,
                    d: VReg(3),
                    a: Operand::Reg(VReg(3)),
                    b: Operand::ImmF(1.0),
                },
                Inst::LdParam { ty: VType::B64, d: VReg(4), index: 1 },
                Inst::Alu {
                    op: AluOp::Add,
                    ty: VType::B64,
                    d: VReg(4),
                    a: Operand::Reg(VReg(4)),
                    b: Operand::Reg(VReg(1)),
                },
                Inst::St { space: MemSpace::Global, ty: VType::F32, addr: VReg(4), a: Operand::Reg(VReg(3)) },
                Inst::Ret,
            ],
        }
    }

    fn setup() -> (DeviceMemory, Vec<ParamVal>, LaunchConfig) {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(32 * 4);
        let out = mem.alloc(32 * 4);
        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        mem.copy_in_f32(a, &data);
        let params = vec![ParamVal::Ptr(mem.base_addr(a)), ParamVal::Ptr(mem.base_addr(out))];
        let config = LaunchConfig::d1(1, 32);
        (mem, params, config)
    }

    #[test]
    fn hit_replays_identical_memory_and_stats() {
        let k = add_one_kernel();
        let mut cache = LaunchCache::new();

        let (mut mem1, params, config) = setup();
        let r1 = launch_cached(&mut cache, &k, &config, &params, &mut mem1, &[]).unwrap();
        assert_eq!((cache.hits, cache.misses), (0, 1));

        let (mut mem2, params2, config2) = setup();
        let r2 = launch_cached(&mut cache, &k, &config2, &params2, &mut mem2, &[]).unwrap();
        assert_eq!((cache.hits, cache.misses), (1, 1));
        assert_eq!(r1.stats, r2.stats);
        for i in 0..mem1.buffer_count() {
            assert_eq!(mem1.buffer_bytes(i), mem2.buffer_bytes(i), "buffer {i}");
        }
    }

    #[test]
    fn different_inputs_miss() {
        let k = add_one_kernel();
        let mut cache = LaunchCache::new();
        let (mut mem1, params, config) = setup();
        launch_cached(&mut cache, &k, &config, &params, &mut mem1, &[]).unwrap();
        let (mut mem2, params2, config2) = setup();
        mem2.copy_in_f32(crate::memory::BufferId(0), &[99.0]);
        launch_cached(&mut cache, &k, &config2, &params2, &mut mem2, &[]).unwrap();
        assert_eq!((cache.hits, cache.misses), (0, 2));
        assert_eq!(mem2.copy_out_f32(crate::memory::BufferId(1))[0], 100.0);
    }

    #[test]
    fn disk_roundtrip_replays() {
        let dir = std::env::temp_dir().join("safara_memo_test");
        let path = dir.join("launches.bin");
        let _ = std::fs::remove_file(&path);
        let k = add_one_kernel();

        let r1 = {
            let mut cache = LaunchCache::with_disk(&path);
            let (mut mem, params, config) = setup();
            let r = launch_cached(&mut cache, &k, &config, &params, &mut mem, &[]).unwrap();
            assert_eq!(cache.misses, 1);
            cache.save().unwrap();
            r
        };

        let mut cache = LaunchCache::with_disk(&path);
        assert_eq!(cache.len(), 1);
        let (mut mem, params, config) = setup();
        let r2 = launch_cached(&mut cache, &k, &config, &params, &mut mem, &[]).unwrap();
        assert_eq!((cache.hits, cache.misses), (1, 0));
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(mem.copy_out_f32(crate::memory::BufferId(1))[5], 6.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_disk_file_starts_empty() {
        let dir = std::env::temp_dir().join("safara_memo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.bin");
        std::fs::write(&path, b"not a cache file").unwrap();
        let cache = LaunchCache::with_disk(&path);
        assert!(cache.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
