//! # safara-gpusim — a Kepler-class GPU substrate in software
//!
//! The paper's toolchain compiles OpenACC regions to PTX, asks NVIDIA's
//! closed-source PTXAS assembler how many *hardware* registers a kernel
//! uses (the "static feedback"), and runs on a K20Xm. None of that exists
//! in a portable Rust environment, so this crate rebuilds each piece:
//!
//! * [`vir`] — **VIR**, a PTX-like typed virtual ISA with unlimited
//!   virtual registers (the compiler's code-generation target),
//! * [`ptxas`] — a register allocator (liveness + linear scan onto 32-bit
//!   physical registers, 64-bit values in aligned pairs, spilling to
//!   local memory) whose report plays the role of `ptxas -v` output in
//!   SAFARA's feedback loop,
//! * [`device`] — the device model: SMX/warp geometry, register file and
//!   occupancy rules of a Kepler K20Xm,
//! * [`memory`] — device global memory (buffers with simulated addresses),
//! * [`interp`] — a warp-aware functional interpreter that executes
//!   kernels over real buffers and records per-warp instruction and
//!   memory-transaction statistics, with *address-accurate* coalescing
//!   (transactions are computed from the 32 lanes' actual addresses),
//! * [`timing`] — an analytic latency/occupancy/bandwidth overlap model
//!   (in the spirit of Hong & Kim's MWP/CWP model) that converts the
//!   interpreter's counts into estimated cycles,
//! * [`microbench`] — pointer-chase-style probes that recover the memory
//!   latency table from the device model, standing in for the Wong et al.
//!   microbenchmarks the paper's cost model cites.

pub(crate) mod decode;
pub mod device;
pub mod exec_options;
pub mod interp;
pub mod memo;
pub mod memory;
pub mod microbench;
pub mod parallel;
pub mod ptxas;
pub mod rng;
pub mod stats;
pub mod superblock;
pub mod timing;
pub mod vir;

pub use device::{DeviceConfig, Occupancy};
pub use interp::{
    current_engine, launch, set_engine, with_engine, Engine, LaunchConfig, LaunchResult,
};
pub use parallel::{
    current_sim_threads, last_parallel_info, max_sim_threads_used, parse_sim_threads,
    reset_max_sim_threads_used, set_sim_threads, with_sim_threads, ParallelInfo,
};
pub use superblock::{
    current_superblock_threshold, fusion_counters, parse_superblock_threshold,
    set_superblock_threshold, with_superblock_threshold, FusionCounters,
    DEFAULT_SUPERBLOCK_THRESHOLD,
};
pub use exec_options::ExecOptions;
pub use memo::{launch_cached, LaunchCache, SharedLaunchCache};
pub use memory::{BufferId, DeviceMemory};
pub use ptxas::{allocate_registers, allocate_registers_with, RegAllocReport, SpillTarget};
pub use rng::SplitMix64;
pub use stats::KernelStats;
pub use timing::{estimate_time, estimate_time_with, TimingBreakdown};
pub use vir::{Inst, KernelVir, VReg, VType};
