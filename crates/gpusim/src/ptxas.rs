//! The PTXAS stand-in: hardware register allocation for VIR kernels.
//!
//! NVIDIA's PTX carries unlimited virtual registers; the closed-source
//! `ptxas` assembler decides how many *hardware* registers a kernel really
//! uses, and `ptxas -v` reports that count — the "static feedback" SAFARA
//! consumes (§III-B.2). This module reproduces the pipeline:
//!
//! 1. instruction-level liveness (backward dataflow to a fixed point,
//!    which handles loops),
//! 2. live-interval construction,
//! 3. linear-scan allocation onto 32-bit physical registers, with 64-bit
//!    values occupying aligned register pairs (GPU registers are 32-bit —
//!    the observation behind the `small` clause, §IV-B),
//! 4. spilling to local memory when demand exceeds the per-thread cap,
//!    reported so the timing model can charge local-memory traffic.
//!
//! Predicate registers live in a separate file (as on real hardware) and
//! do not count against the general-purpose budget.

use crate::vir::{Inst, KernelVir, VReg, VType};
use std::collections::BTreeSet;

/// Where spilled values live, RegDem-style (arXiv 1907.02894): the
/// default local-memory path pays a global-memory round trip per access;
/// `Shared` places per-thread spill slots in a shared-memory slab instead,
/// trading on-chip capacity (and thus possibly occupancy) for ~10× lower
/// spill latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpillTarget {
    /// Spills go to thread-local memory (the hardware default).
    #[default]
    Local,
    /// Spills go to a per-block shared-memory slab, capacity permitting.
    Shared,
}

/// The allocator's report — the simulated `ptxas -v` output.
#[derive(Debug, Clone, PartialEq)]
pub struct RegAllocReport {
    /// Hardware 32-bit registers actually used (≤ the cap).
    pub regs_used: u32,
    /// Registers the kernel *wants* (high-water mark with no cap); when
    /// this exceeds `regs_used` the difference was covered by spilling.
    pub demand: u32,
    /// Virtual registers spilled to local memory.
    pub spilled: Vec<VReg>,
    /// Spill-slot bytes per thread (local bytes under `Local`; the
    /// per-thread share of the shared slab under `Shared`).
    pub spill_bytes: u32,
    /// Static count of spill reloads inserted (uses of spilled vregs).
    pub static_spill_loads: u32,
    /// Static count of spill stores inserted (defs of spilled vregs).
    pub static_spill_stores: u32,
    /// Where the spill slots were placed. `Shared` only when it was
    /// requested *and* the slab fit the device's shared capacity for the
    /// planned block size — otherwise the allocator falls back to `Local`.
    pub spill_target: SpillTarget,
    /// Shared-memory bytes the spill slab reserves per resident block
    /// (`spill_bytes × threads_per_block`); zero under `Local`.
    pub shared_spill_bytes_per_block: u32,
}

impl RegAllocReport {
    /// True if the kernel fit without spilling.
    pub fn fits(&self) -> bool {
        self.spilled.is_empty()
    }
}

/// Per-vreg live interval over linearized instruction indices.
#[derive(Debug, Clone, Copy)]
struct Interval {
    vreg: VReg,
    start: usize,
    end: usize,
    pair: bool, // needs an aligned 64-bit register pair
    uses: u32,  // static use+def count (spill-cost heuristic)
}

/// Run register allocation with the given per-thread register cap.
///
/// `max_regs` models the hardware cap (255 on Kepler) or a launch-bound
/// imposed cap; values are clamped to at least 4 so degenerate settings
/// cannot wedge the allocator.
pub fn allocate_registers(kernel: &KernelVir, max_regs: u32) -> RegAllocReport {
    allocate_registers_with(kernel, max_regs, SpillTarget::Local, 0, 0)
}

/// [`allocate_registers`] with an explicit spill target.
///
/// Under [`SpillTarget::Shared`] the spill slab is sized as
/// `spill_bytes × threads_per_block` and checked against
/// `shared_mem_per_sm`: if it would not leave room for even one resident
/// block, the allocator falls back to `Local` (recorded in the report) —
/// shared spilling must never make a kernel unlaunchable.
pub fn allocate_registers_with(
    kernel: &KernelVir,
    max_regs: u32,
    target: SpillTarget,
    threads_per_block: u32,
    shared_mem_per_sm: u32,
) -> RegAllocReport {
    let cap = max_regs.clamp(4, 255) as usize;
    let live = liveness(kernel);
    let mut intervals = build_intervals(kernel, &live);

    // Linear scan (Poletto–Sarkar), intervals sorted by start.
    intervals.sort_by_key(|iv| (iv.start, iv.vreg.0));

    let mut free: BTreeSet<usize> = (0..cap).collect();
    let mut active: Vec<(Interval, usize)> = Vec::new(); // (interval, first phys reg)
    let mut spilled: Vec<Interval> = Vec::new();
    let mut high_water = 0usize;
    let mut demand_water = 0usize;
    let mut demand_active: Vec<Interval> = Vec::new();

    for iv in &intervals {
        // Expire intervals that ended before this start.
        let mut expired: Vec<usize> = Vec::new();
        active.retain(|(a, first)| {
            if a.end < iv.start {
                expired.push(*first);
                if a.pair {
                    expired.push(first + 1);
                }
                false
            } else {
                true
            }
        });
        for r in expired {
            free.insert(r);
        }
        demand_active.retain(|a| a.end >= iv.start);

        // Unbounded-demand bookkeeping.
        demand_active.push(*iv);
        let want: usize = demand_active.iter().map(|a| if a.pair { 2 } else { 1 }).sum();
        demand_water = demand_water.max(want);

        // Try to allocate.
        let slot = if iv.pair { take_pair(&mut free) } else { take_single(&mut free) };
        match slot {
            Some(first) => {
                active.push((*iv, first));
                let in_use: usize =
                    active.iter().map(|(a, _)| if a.pair { 2 } else { 1 }).sum();
                high_water = high_water.max(in_use);
            }
            None => {
                // Spill the active interval with the furthest end and the
                // fewest uses (cheapest dynamically), or the new interval
                // itself if it ends last.
                let victim = active
                    .iter()
                    .enumerate()
                    .filter(|(_, (a, _))| a.pair == iv.pair || a.pair)
                    .max_by_key(|(_, (a, _))| (a.end, u32::MAX - a.uses))
                    .map(|(idx, _)| idx);
                match victim {
                    Some(idx) if active[idx].0.end > iv.end => {
                        let (v, first) = active.remove(idx);
                        free.insert(first);
                        if v.pair {
                            free.insert(first + 1);
                        }
                        spilled.push(v);
                        let slot2 =
                            if iv.pair { take_pair(&mut free) } else { take_single(&mut free) };
                        match slot2 {
                            Some(first2) => {
                                active.push((*iv, first2));
                                let in_use: usize = active
                                    .iter()
                                    .map(|(a, _)| if a.pair { 2 } else { 1 })
                                    .sum();
                                high_water = high_water.max(in_use);
                            }
                            None => spilled.push(*iv),
                        }
                    }
                    _ => spilled.push(*iv),
                }
            }
        }
    }

    let mut spill_bytes = 0u32;
    let mut loads = 0u32;
    let mut stores = 0u32;
    let spilled_regs: Vec<VReg> = spilled.iter().map(|iv| iv.vreg).collect();
    for iv in &spilled {
        spill_bytes += if iv.pair { 8 } else { 4 };
    }
    let spillset: BTreeSet<VReg> = spilled_regs.iter().copied().collect();
    for inst in &kernel.insts {
        for u in inst.uses() {
            if spillset.contains(&u) {
                loads += 1;
            }
        }
        if let Some(d) = inst.def() {
            if spillset.contains(&d) {
                stores += 1;
            }
        }
    }

    // Capacity accounting for shared spilling: the slab must fit at
    // least one block on an SM, or we fall back to local memory.
    let slab = spill_bytes.saturating_mul(threads_per_block);
    let (spill_target, shared_slab) = match target {
        SpillTarget::Shared if spill_bytes > 0 && slab > 0 && slab <= shared_mem_per_sm => {
            (SpillTarget::Shared, slab)
        }
        _ => (SpillTarget::Local, 0),
    };

    RegAllocReport {
        regs_used: high_water.min(cap) as u32,
        demand: demand_water as u32,
        spilled: spilled_regs,
        spill_bytes,
        static_spill_loads: loads,
        static_spill_stores: stores,
        spill_target,
        shared_spill_bytes_per_block: shared_slab,
    }
}

fn take_single(free: &mut BTreeSet<usize>) -> Option<usize> {
    let r = *free.iter().next()?;
    free.remove(&r);
    Some(r)
}

fn take_pair(free: &mut BTreeSet<usize>) -> Option<usize> {
    let r = free
        .iter()
        .copied()
        .find(|&r| r % 2 == 0 && free.contains(&(r + 1)))?;
    free.remove(&r);
    free.remove(&(r + 1));
    Some(r)
}

/// Instruction-level liveness: `live[i]` is the set of vregs live *into*
/// instruction `i`, as a bitset.
fn liveness(kernel: &KernelVir) -> Vec<Vec<u64>> {
    let n = kernel.insts.len();
    let nv = kernel.vregs.len();
    let words = nv.div_ceil(64);
    let labels = kernel.label_positions();
    let mut live_in = vec![vec![0u64; words]; n + 1];

    let succs = |i: usize| -> Vec<usize> {
        match &kernel.insts[i] {
            Inst::Ret => vec![],
            Inst::Bra { target, pred } => {
                let t = labels
                    .get(target.0 as usize)
                    .copied()
                    .flatten()
                    .expect("branch to unknown label");
                if pred.is_some() {
                    vec![i + 1, t]
                } else {
                    vec![t]
                }
            }
            _ => vec![i + 1],
        }
    };

    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            // live-out = union of successors' live-in.
            let mut out = vec![0u64; words];
            for s in succs(i) {
                if s <= n {
                    for w in 0..words {
                        out[w] |= live_in[s][w];
                    }
                }
            }
            // live-in = (out - def) ∪ uses.
            if let Some(d) = kernel.insts[i].def() {
                out[d.0 as usize / 64] &= !(1u64 << (d.0 % 64));
            }
            for u in kernel.insts[i].uses() {
                out[u.0 as usize / 64] |= 1u64 << (u.0 % 64);
            }
            if out != live_in[i] {
                live_in[i] = out;
                changed = true;
            }
        }
    }
    live_in.truncate(n);
    live_in
}

fn build_intervals(kernel: &KernelVir, live_in: &[Vec<u64>]) -> Vec<Interval> {
    let nv = kernel.vregs.len();
    let mut start = vec![usize::MAX; nv];
    let mut end = vec![0usize; nv];
    let mut uses = vec![0u32; nv];
    let mut seen = vec![false; nv];

    let touch = |v: usize, i: usize, start: &mut [usize], end: &mut [usize], seen: &mut [bool]| {
        if !seen[v] {
            seen[v] = true;
            start[v] = i;
        }
        start[v] = start[v].min(i);
        end[v] = end[v].max(i);
    };

    for (i, li) in live_in.iter().enumerate() {
        for (w, &bits) in li.iter().enumerate() {
            let mut b = bits;
            while b != 0 {
                let bit = b.trailing_zeros() as usize;
                let v = w * 64 + bit;
                touch(v, i, &mut start, &mut end, &mut seen);
                b &= b - 1;
            }
        }
    }
    for (i, inst) in kernel.insts.iter().enumerate() {
        if let Some(d) = inst.def() {
            touch(d.0 as usize, i, &mut start, &mut end, &mut seen);
            uses[d.0 as usize] += 1;
        }
        for u in inst.uses() {
            touch(u.0 as usize, i, &mut start, &mut end, &mut seen);
            uses[u.0 as usize] += 1;
        }
    }

    (0..nv)
        .filter(|&v| seen[v] && kernel.vregs[v] != VType::Pred)
        .map(|v| Interval {
            vreg: VReg(v as u32),
            start: start[v],
            end: end[v],
            pair: kernel.vregs[v].hw_regs() == 2,
            uses: uses[v],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vir::*;

    /// A straight-line kernel with `n` simultaneously-live f32 values.
    fn pressure_kernel(n: usize) -> KernelVir {
        let mut k = KernelVir { name: "pressure".into(), ..Default::default() };
        let regs: Vec<VReg> = (0..n).map(|_| k.new_vreg(VType::F32)).collect();
        // Define all, then use all: all n live at once.
        for (i, &r) in regs.iter().enumerate() {
            k.insts.push(Inst::Mov { ty: VType::F32, d: r, a: Operand::ImmF(i as f64) });
        }
        let acc = k.new_vreg(VType::F32);
        k.insts.push(Inst::Mov { ty: VType::F32, d: acc, a: Operand::ImmF(0.0) });
        for &r in &regs {
            k.insts.push(Inst::Alu {
                op: AluOp::Add,
                ty: VType::F32,
                d: acc,
                a: acc.into(),
                b: r.into(),
            });
        }
        k.insts.push(Inst::Ret);
        k
    }

    #[test]
    fn demand_matches_pressure() {
        let k = pressure_kernel(10);
        let rep = allocate_registers(&k, 255);
        // 10 values + accumulator live simultaneously.
        assert_eq!(rep.demand, 11);
        assert_eq!(rep.regs_used, 11);
        assert!(rep.fits());
    }

    #[test]
    fn cap_forces_spills() {
        let k = pressure_kernel(30);
        let rep = allocate_registers(&k, 16);
        assert!(!rep.fits());
        assert!(rep.regs_used <= 16);
        assert!(rep.demand > 16);
        assert!(rep.spill_bytes > 0);
        assert!(rep.static_spill_loads > 0);
        // Spilled + resident must cover the demand.
        assert!(rep.spilled.len() as u32 >= rep.demand - 16);
    }

    #[test]
    fn pairs_are_aligned_and_cost_two() {
        let mut k = KernelVir { name: "pairs".into(), ..Default::default() };
        let a = k.new_vreg(VType::F64);
        let b = k.new_vreg(VType::F64);
        let c = k.new_vreg(VType::F64);
        for (i, &r) in [a, b, c].iter().enumerate() {
            k.insts.push(Inst::Mov { ty: VType::F64, d: r, a: Operand::ImmF(i as f64) });
        }
        let d = k.new_vreg(VType::F64);
        k.insts.push(Inst::Alu { op: AluOp::Add, ty: VType::F64, d, a: a.into(), b: b.into() });
        k.insts.push(Inst::Alu { op: AluOp::Add, ty: VType::F64, d, a: d.into(), b: c.into() });
        k.insts.push(Inst::Ret);
        let rep = allocate_registers(&k, 255);
        // a, b, c live together (d overlaps c): 4 × 2 = 8 regs at peak...
        // minimally a,b,c + d = 7–8; pairs mean even count ≥ 6.
        assert!(rep.demand >= 6, "demand {}", rep.demand);
        assert_eq!(rep.demand % 2, 0, "pairs must keep demand even");
        assert!(rep.fits());
    }

    #[test]
    fn predicates_do_not_consume_gprs() {
        let mut k = KernelVir { name: "preds".into(), ..Default::default() };
        let x = k.new_vreg(VType::B32);
        k.insts.push(Inst::Mov { ty: VType::B32, d: x, a: Operand::ImmI(1) });
        let mut preds = Vec::new();
        for _ in 0..10 {
            let p = k.new_vreg(VType::Pred);
            k.insts.push(Inst::Setp {
                op: CmpOp::Lt,
                ty: VType::B32,
                d: p,
                a: x.into(),
                b: Operand::ImmI(5),
            });
            preds.push(p);
        }
        k.insts.push(Inst::Ret);
        let rep = allocate_registers(&k, 255);
        assert_eq!(rep.demand, 1); // only x
    }

    #[test]
    fn liveness_extends_across_loop_backedge() {
        // r is defined before the loop and used inside it: it must stay
        // live across the whole loop body, so demand counts it together
        // with the loop-body temp.
        let mut k = KernelVir { name: "loop".into(), ..Default::default() };
        let r = k.new_vreg(VType::F32);
        let i = k.new_vreg(VType::B32);
        let p = k.new_vreg(VType::Pred);
        let t = k.new_vreg(VType::F32);
        k.insts = vec![
            Inst::Mov { ty: VType::F32, d: r, a: Operand::ImmF(1.0) },
            Inst::Mov { ty: VType::B32, d: i, a: Operand::ImmI(0) },
            Inst::Mark(Label(0)),
            Inst::Setp { op: CmpOp::Ge, ty: VType::B32, d: p, a: i.into(), b: Operand::ImmI(10) },
            Inst::Bra { target: Label(1), pred: Some((p, true)) },
            // t = r + 1  (uses r every iteration)
            Inst::Alu { op: AluOp::Add, ty: VType::F32, d: t, a: r.into(), b: Operand::ImmF(1.0) },
            Inst::Alu { op: AluOp::Add, ty: VType::B32, d: i, a: i.into(), b: Operand::ImmI(1) },
            Inst::Bra { target: Label(0), pred: None },
            Inst::Mark(Label(1)),
            Inst::Ret,
        ];
        let rep = allocate_registers(&k, 255);
        // r, i, t all live in the loop (p is a predicate).
        assert_eq!(rep.demand, 3);
    }

    #[test]
    fn report_regs_never_exceed_cap() {
        for cap in [4, 8, 12, 24, 48] {
            let k = pressure_kernel(40);
            let rep = allocate_registers(&k, cap);
            assert!(rep.regs_used <= cap, "cap {cap} → used {}", rep.regs_used);
        }
    }

    #[test]
    fn shared_spill_target_respects_capacity() {
        let k = pressure_kernel(30);
        // Fits: slab = spill_bytes × 128 threads, well under 48 KiB.
        let rep = allocate_registers_with(&k, 16, SpillTarget::Shared, 128, 49_152);
        assert!(!rep.fits());
        assert_eq!(rep.spill_target, SpillTarget::Shared);
        assert_eq!(rep.shared_spill_bytes_per_block, rep.spill_bytes * 128);
        assert!(rep.shared_spill_bytes_per_block <= 49_152);

        // Too big for the SM: falls back to local, never unlaunchable.
        let rep = allocate_registers_with(&k, 16, SpillTarget::Shared, 1024, 1_024);
        assert!(!rep.fits());
        assert_eq!(rep.spill_target, SpillTarget::Local);
        assert_eq!(rep.shared_spill_bytes_per_block, 0);
    }

    #[test]
    fn shared_target_is_inert_without_spills() {
        let k = pressure_kernel(10);
        let rep = allocate_registers_with(&k, 255, SpillTarget::Shared, 256, 49_152);
        assert!(rep.fits());
        assert_eq!(rep.spill_target, SpillTarget::Local);
        assert_eq!(rep.shared_spill_bytes_per_block, 0);
    }

    #[test]
    fn default_allocation_is_the_local_target() {
        let k = pressure_kernel(30);
        let a = allocate_registers(&k, 16);
        let b = allocate_registers_with(&k, 16, SpillTarget::Local, 256, 49_152);
        assert_eq!(a, b);
        assert_eq!(a.spill_target, SpillTarget::Local);
    }

    #[test]
    fn smaller_types_need_fewer_registers_than_pairs() {
        // The `small` clause effect at the allocator level: the same
        // computation in b32 offsets vs b64 offsets.
        let build = |ty: VType| {
            let mut k = KernelVir { name: "offs".into(), ..Default::default() };
            let regs: Vec<VReg> = (0..6).map(|_| k.new_vreg(ty)).collect();
            for &r in &regs {
                k.insts.push(Inst::Mov { ty, d: r, a: Operand::ImmI(1) });
            }
            let s = k.new_vreg(ty);
            for &r in &regs {
                k.insts.push(Inst::Alu { op: AluOp::Add, ty, d: s, a: s.into(), b: r.into() });
            }
            k.insts.push(Inst::Ret);
            allocate_registers(&k, 255).demand
        };
        let d32 = build(VType::B32);
        let d64 = build(VType::B64);
        assert_eq!(d64, 2 * d32, "64-bit offsets must cost double: {d32} vs {d64}");
    }
}
