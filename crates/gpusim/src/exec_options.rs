//! `ExecOptions` — the unified execution-side knob surface.
//!
//! Three independent knobs accreted over PRs 5–6 (engine selection,
//! block-parallel worker count, superblock hot-block threshold), each
//! with its own env var, process setter, and thread-local scope. This
//! module folds them into one struct with one documented resolution
//! order, applied uniformly to all three:
//!
//! 1. **per-launch** — a `Some` field on the [`ExecOptions`] passed to
//!    [`ExecOptions::scope`] (servers map wire fields here, one request
//!    at a time);
//! 2. **scoped** — an enclosing [`crate::with_engine`] /
//!    [`crate::with_sim_threads`] /
//!    [`crate::superblock::with_superblock_threshold`] on this thread;
//! 3. **env** — `SAFARA_ENGINE`, `SAFARA_SIM_THREADS`,
//!    `SAFARA_SB_THRESHOLD`, read once per process;
//! 4. **default** — decoded+superblock engine, serial execution,
//!    [`crate::DEFAULT_SUPERBLOCK_THRESHOLD`].
//!
//! A `None` field simply falls through to the next layer, so an
//! `ExecOptions::default()` scope is a no-op and the struct can always
//! be applied unconditionally.

use crate::interp::{with_engine, Engine};
use crate::parallel::with_sim_threads;
use crate::superblock::with_superblock_threshold;

/// Per-launch execution options; `None` fields inherit the enclosing
/// scope / environment / default (see the module docs for the order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOptions {
    /// Which interpreter runs the launch.
    pub engine: Option<Engine>,
    /// Block-parallel worker count (`0` = auto: one per CPU).
    pub sim_threads: Option<u32>,
    /// Superblock hot-block threshold (`u64::MAX` disables fusion).
    pub superblock_threshold: Option<u64>,
}

impl ExecOptions {
    /// Options that inherit everything from the enclosing scope.
    pub fn inherit() -> Self {
        Self::default()
    }

    /// Pin the execution engine for this launch.
    pub fn engine(mut self, e: Engine) -> Self {
        self.engine = Some(e);
        self
    }

    /// Pin the block-parallel worker count for this launch.
    pub fn sim_threads(mut self, n: u32) -> Self {
        self.sim_threads = Some(n);
        self
    }

    /// Pin the superblock hot-block threshold for this launch.
    pub fn superblock_threshold(mut self, t: u64) -> Self {
        self.superblock_threshold = Some(t);
        self
    }

    /// True when every field inherits — applying the scope is a no-op.
    pub fn is_inherit(&self) -> bool {
        *self == Self::default()
    }

    /// Run `f` with these options installed as thread-local overrides,
    /// restoring the previous state afterwards (even on unwind). Nesting
    /// works the way the resolution order implies: the innermost `Some`
    /// wins per knob.
    pub fn scope<T>(&self, f: impl FnOnce() -> T) -> T {
        match (self.engine, self.sim_threads, self.superblock_threshold) {
            (None, None, None) => f(),
            (e, s, t) => {
                let with_t = move || match t {
                    Some(t) => with_superblock_threshold(t, f),
                    None => f(),
                };
                let with_s = move || match s {
                    Some(s) => with_sim_threads(s, with_t),
                    None => with_t(),
                };
                match e {
                    Some(e) => with_engine(e, with_s),
                    None => with_s(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::current_engine;
    use crate::parallel::current_sim_threads;
    use crate::superblock::current_superblock_threshold;

    #[test]
    fn inherit_is_a_no_op() {
        let before =
            (current_engine(), current_sim_threads(), current_superblock_threshold());
        let inside = ExecOptions::inherit().scope(|| {
            (current_engine(), current_sim_threads(), current_superblock_threshold())
        });
        assert_eq!(before, inside);
        assert!(ExecOptions::default().is_inherit());
    }

    #[test]
    fn scope_applies_and_restores_every_knob() {
        let before =
            (current_engine(), current_sim_threads(), current_superblock_threshold());
        let opts = ExecOptions::inherit()
            .engine(Engine::Reference)
            .sim_threads(3)
            .superblock_threshold(123);
        opts.scope(|| {
            assert_eq!(current_engine(), Engine::Reference);
            assert_eq!(current_sim_threads(), 3);
            assert_eq!(current_superblock_threshold(), 123);
        });
        let after =
            (current_engine(), current_sim_threads(), current_superblock_threshold());
        assert_eq!(before, after);
    }

    #[test]
    fn per_launch_beats_enclosing_scope() {
        crate::with_engine(Engine::Decoded, || {
            ExecOptions::inherit().engine(Engine::Superblock).scope(|| {
                assert_eq!(current_engine(), Engine::Superblock);
            });
            // A None field falls through to the enclosing scope.
            ExecOptions::inherit().sim_threads(2).scope(|| {
                assert_eq!(current_engine(), Engine::Decoded);
                assert_eq!(current_sim_threads(), 2);
            });
        });
    }
}
