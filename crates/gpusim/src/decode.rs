//! The pre-decoded, direct-threaded execution engine.
//!
//! [`crate::interp::launch_reference`] re-interprets the rich [`Inst`]
//! enum for every executed instruction of every thread: it resolves
//! labels through a side table, converts immediates per use, looks up
//! parameter slots, walks `Inst::uses()` (allocating a `Vec`) to count
//! spill traffic, and allocates a fresh register file per lane. All of
//! that is loop-invariant across the millions of threads of a launch,
//! so this module hoists it: each launch **decodes** the kernel once
//! into a flat stream of fixed-size [`DInst`] records in which
//!
//! * the opcode is fully resolved — one [`Op`] variant per
//!   (operation, type) pair, so execution is a single jump-table
//!   dispatch with no nested operand/type matching,
//! * immediates, kernel parameters, and launch-constant special
//!   registers are interned into a **constant pool** appended to the
//!   register file, making every operand a plain register index,
//! * branch targets are resolved to instruction indices (`Mark`s are
//!   dropped; decoding renumbers consistently, so warp-merge grouping
//!   keys are preserved),
//! * each record carries its issue class and its statically known
//!   number of spilled-register touches (computed once against a spill
//!   **bitset**, replacing the per-instruction `HashSet` probes),
//!
//! and the per-warp scratch (register file, event logs, address
//! buffers) is reused across all blocks of the launch.
//!
//! Warp merging gets a streaming fast path: lanes append only their
//! *addresses* against a shared per-warp prototype event stream, so
//! uniform (and prefix-uniform, e.g. boundary-exit) warps never
//! materialize per-lane `MemEvent` vectors; only genuinely divergent
//! warps reconstruct full logs and fall back to the reference grouping.
//!
//! The engine is **stats- and memory-identical** to the reference
//! interpreter (asserted by differential tests): scalar semantics are
//! shared (`interp::{alu, compare, math, convert, neg, atom_add}`,
//! called with constant operands so the shared dispatch folds away),
//! lanes execute in the same order (so memory side effects are
//! byte-identical), and both warp-merge paths produce the reference
//! partition of accesses into 128-byte transaction groups. Two
//! intentional, error-path-only deviations: parameter slots are
//! validated at decode time (the reference faults lazily on first
//! execution), and dropped `Mark`s no longer count toward the runaway
//! instruction budget.

use crate::interp::{
    account_group_with, alu, compare, convert, math, merge_divergent, neg, operand_bits,
    param_bits, LaneCounts, LaunchConfig, LaunchResult, MemEvent, ParamVal, SimError, FLAG_ATOMIC,
    FLAG_STORE, MAX_INSTS_PER_THREAD, SPACE_GLOBAL, SPACE_LOCAL, SPACE_READONLY,
};
use crate::memory::DeviceMemory;
use crate::parallel::{self, MemAccess};
use crate::stats::KernelStats;
use crate::vir::*;
use std::collections::HashMap;

/// Sentinel for "no second math operand" in [`DInst::b`]. Real register
/// indices are bounded by the virtual-register count plus the constant
/// pool, both far below `u32::MAX`.
pub(crate) const NO_REG: u32 = u32::MAX;

/// Fully resolved opcodes: one variant per (operation, type) pair, so
/// the interpreter loop dispatches through a single jump table and the
/// shared semantics helpers fold to straight-line code under constant
/// arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub(crate) enum Op {
    /// Register (or constant-pool) move.
    Mov,
    /// Logical not.
    Not,
    Ret,
    /// Unconditional branch to `d`.
    Bra,
    /// Branch to `d` when predicate register `a` is true.
    BraT,
    /// Branch to `d` when predicate register `a` is false.
    BraF,
    TidX, TidY, TidZ, CtaX, CtaY, CtaZ,
    LdG1, LdG4, LdG8, LdRo1, LdRo4, LdRo8, LdLoc1, LdLoc4, LdLoc8,
    StG1, StG4, StG8, StRo1, StRo4, StRo8, StLoc1, StLoc4, StLoc8,
    AtomB32, AtomB64, AtomF32, AtomF64, AtomPred,
    AddB32, AddB64, AddF32, AddF64, AddPred, SubB32,
    SubB64, SubF32, SubF64, SubPred, MulB32, MulB64,
    MulF32, MulF64, MulPred, DivB32, DivB64, DivF32,
    DivF64, DivPred, RemB32, RemB64, RemF32, RemF64,
    RemPred, MinB32, MinB64, MinF32, MinF64, MinPred,
    MaxB32, MaxB64, MaxF32, MaxF64, MaxPred, AndB32,
    AndB64, AndF32, AndF64, AndPred, OrB32, OrB64,
    OrF32, OrF64, OrPred, XorB32, XorB64, XorF32,
    XorF64, XorPred, ShlB32, ShlB64, ShlF32, ShlF64,
    ShlPred, ShrB32, ShrB64, ShrF32, ShrF64, ShrPred,
    NegB32, NegB64, NegF32, NegF64, NegPred, SetpLtB32,
    SetpLtB64, SetpLtF32, SetpLtF64, SetpLtPred, SetpLeB32, SetpLeB64,
    SetpLeF32, SetpLeF64, SetpLePred, SetpGtB32, SetpGtB64, SetpGtF32,
    SetpGtF64, SetpGtPred, SetpGeB32, SetpGeB64, SetpGeF32, SetpGeF64,
    SetpGePred, SetpEqB32, SetpEqB64, SetpEqF32, SetpEqF64, SetpEqPred,
    SetpNeB32, SetpNeB64, SetpNeF32, SetpNeF64, SetpNePred, CvtB32B32,
    CvtB64B32, CvtF32B32, CvtF64B32, CvtPredB32, CvtB32B64, CvtB64B64,
    CvtF32B64, CvtF64B64, CvtPredB64, CvtB32F32, CvtB64F32, CvtF32F32,
    CvtF64F32, CvtPredF32, CvtB32F64, CvtB64F64, CvtF32F64, CvtF64F64,
    CvtPredF64, CvtB32Pred, CvtB64Pred, CvtF32Pred, CvtF64Pred, CvtPredPred,
    SqrtB32, SqrtB64, SqrtF32, SqrtF64, SqrtPred, ExpB32,
    ExpB64, ExpF32, ExpF64, ExpPred, LogB32, LogB64,
    LogF32, LogF64, LogPred, SinB32, SinB64, SinF32,
    SinF64, SinPred, CosB32, CosB64, CosF32, CosF64,
    CosPred, AbsB32, AbsB64, AbsF32, AbsF64, AbsPred,
    FloorB32, FloorB64, FloorF32, FloorF64, FloorPred, PowB32,
    PowB64, PowF32, PowF64, PowPred,
}

/// Issue-class codes for [`DInst::cls`]: indices into the per-lane
/// count array (mirroring `interp::count_class` plus `Math` -> SFU and
/// the uncounted `Ret`).
pub(crate) const CLS_SIMPLE: u8 = 0;
pub(crate) const CLS_INT64: u8 = 1;
pub(crate) const CLS_FP64: u8 = 2;
pub(crate) const CLS_SFU: u8 = 3;
pub(crate) const CLS_NONE: u8 = 4;

/// A decoded instruction: 16 bytes, fixed layout. `d`/`a`/`b` are
/// register-file indices (constants live past the virtual registers),
/// except for branches where `d` is the target instruction index.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DInst {
    pub(crate) op: Op,
    pub(crate) cls: u8,
    /// Spilled-register touches (uses + def) of this instruction.
    pub(crate) spill: u8,
    pub(crate) d: u32,
    pub(crate) a: u32,
    pub(crate) b: u32,
}

/// A kernel decoded against one launch's parameters and spill set.
pub(crate) struct Decoded {
    /// Virtual-register count; constants occupy indices past this.
    pub(crate) n_vregs: usize,
    /// Interned constant values, indexed by `reg - n_vregs`.
    pub(crate) consts: Vec<u64>,
    pub(crate) insts: Vec<DInst>,
}

fn class_of(ty: VType) -> u8 {
    match ty {
        VType::B64 => CLS_INT64,
        VType::F64 => CLS_FP64,
        _ => CLS_SIMPLE,
    }
}

fn op_alu(op: AluOp, ty: VType) -> Op {
    match (op, ty) {
        (AluOp::Add, VType::B32) => Op::AddB32, (AluOp::Add, VType::B64) => Op::AddB64, (AluOp::Add, VType::F32) => Op::AddF32, (AluOp::Add, VType::F64) => Op::AddF64, (AluOp::Add, VType::Pred) => Op::AddPred,
        (AluOp::Sub, VType::B32) => Op::SubB32, (AluOp::Sub, VType::B64) => Op::SubB64, (AluOp::Sub, VType::F32) => Op::SubF32, (AluOp::Sub, VType::F64) => Op::SubF64, (AluOp::Sub, VType::Pred) => Op::SubPred,
        (AluOp::Mul, VType::B32) => Op::MulB32, (AluOp::Mul, VType::B64) => Op::MulB64, (AluOp::Mul, VType::F32) => Op::MulF32, (AluOp::Mul, VType::F64) => Op::MulF64, (AluOp::Mul, VType::Pred) => Op::MulPred,
        (AluOp::Div, VType::B32) => Op::DivB32, (AluOp::Div, VType::B64) => Op::DivB64, (AluOp::Div, VType::F32) => Op::DivF32, (AluOp::Div, VType::F64) => Op::DivF64, (AluOp::Div, VType::Pred) => Op::DivPred,
        (AluOp::Rem, VType::B32) => Op::RemB32, (AluOp::Rem, VType::B64) => Op::RemB64, (AluOp::Rem, VType::F32) => Op::RemF32, (AluOp::Rem, VType::F64) => Op::RemF64, (AluOp::Rem, VType::Pred) => Op::RemPred,
        (AluOp::Min, VType::B32) => Op::MinB32, (AluOp::Min, VType::B64) => Op::MinB64, (AluOp::Min, VType::F32) => Op::MinF32, (AluOp::Min, VType::F64) => Op::MinF64, (AluOp::Min, VType::Pred) => Op::MinPred,
        (AluOp::Max, VType::B32) => Op::MaxB32, (AluOp::Max, VType::B64) => Op::MaxB64, (AluOp::Max, VType::F32) => Op::MaxF32, (AluOp::Max, VType::F64) => Op::MaxF64, (AluOp::Max, VType::Pred) => Op::MaxPred,
        (AluOp::And, VType::B32) => Op::AndB32, (AluOp::And, VType::B64) => Op::AndB64, (AluOp::And, VType::F32) => Op::AndF32, (AluOp::And, VType::F64) => Op::AndF64, (AluOp::And, VType::Pred) => Op::AndPred,
        (AluOp::Or, VType::B32) => Op::OrB32, (AluOp::Or, VType::B64) => Op::OrB64, (AluOp::Or, VType::F32) => Op::OrF32, (AluOp::Or, VType::F64) => Op::OrF64, (AluOp::Or, VType::Pred) => Op::OrPred,
        (AluOp::Xor, VType::B32) => Op::XorB32, (AluOp::Xor, VType::B64) => Op::XorB64, (AluOp::Xor, VType::F32) => Op::XorF32, (AluOp::Xor, VType::F64) => Op::XorF64, (AluOp::Xor, VType::Pred) => Op::XorPred,
        (AluOp::Shl, VType::B32) => Op::ShlB32, (AluOp::Shl, VType::B64) => Op::ShlB64, (AluOp::Shl, VType::F32) => Op::ShlF32, (AluOp::Shl, VType::F64) => Op::ShlF64, (AluOp::Shl, VType::Pred) => Op::ShlPred,
        (AluOp::Shr, VType::B32) => Op::ShrB32, (AluOp::Shr, VType::B64) => Op::ShrB64, (AluOp::Shr, VType::F32) => Op::ShrF32, (AluOp::Shr, VType::F64) => Op::ShrF64, (AluOp::Shr, VType::Pred) => Op::ShrPred,
    }
}

fn op_neg(ty: VType) -> Op {
    match ty {
        VType::B32 => Op::NegB32, VType::B64 => Op::NegB64, VType::F32 => Op::NegF32, VType::F64 => Op::NegF64, VType::Pred => Op::NegPred,
    }
}

fn op_setp(op: CmpOp, ty: VType) -> Op {
    match (op, ty) {
        (CmpOp::Lt, VType::B32) => Op::SetpLtB32, (CmpOp::Lt, VType::B64) => Op::SetpLtB64, (CmpOp::Lt, VType::F32) => Op::SetpLtF32, (CmpOp::Lt, VType::F64) => Op::SetpLtF64, (CmpOp::Lt, VType::Pred) => Op::SetpLtPred,
        (CmpOp::Le, VType::B32) => Op::SetpLeB32, (CmpOp::Le, VType::B64) => Op::SetpLeB64, (CmpOp::Le, VType::F32) => Op::SetpLeF32, (CmpOp::Le, VType::F64) => Op::SetpLeF64, (CmpOp::Le, VType::Pred) => Op::SetpLePred,
        (CmpOp::Gt, VType::B32) => Op::SetpGtB32, (CmpOp::Gt, VType::B64) => Op::SetpGtB64, (CmpOp::Gt, VType::F32) => Op::SetpGtF32, (CmpOp::Gt, VType::F64) => Op::SetpGtF64, (CmpOp::Gt, VType::Pred) => Op::SetpGtPred,
        (CmpOp::Ge, VType::B32) => Op::SetpGeB32, (CmpOp::Ge, VType::B64) => Op::SetpGeB64, (CmpOp::Ge, VType::F32) => Op::SetpGeF32, (CmpOp::Ge, VType::F64) => Op::SetpGeF64, (CmpOp::Ge, VType::Pred) => Op::SetpGePred,
        (CmpOp::Eq, VType::B32) => Op::SetpEqB32, (CmpOp::Eq, VType::B64) => Op::SetpEqB64, (CmpOp::Eq, VType::F32) => Op::SetpEqF32, (CmpOp::Eq, VType::F64) => Op::SetpEqF64, (CmpOp::Eq, VType::Pred) => Op::SetpEqPred,
        (CmpOp::Ne, VType::B32) => Op::SetpNeB32, (CmpOp::Ne, VType::B64) => Op::SetpNeB64, (CmpOp::Ne, VType::F32) => Op::SetpNeF32, (CmpOp::Ne, VType::F64) => Op::SetpNeF64, (CmpOp::Ne, VType::Pred) => Op::SetpNePred,
    }
}

fn op_cvt(aty: VType, dty: VType) -> Op {
    match (aty, dty) {
        (VType::B32, VType::B32) => Op::CvtB32B32, (VType::B64, VType::B32) => Op::CvtB64B32, (VType::F32, VType::B32) => Op::CvtF32B32, (VType::F64, VType::B32) => Op::CvtF64B32, (VType::Pred, VType::B32) => Op::CvtPredB32,
        (VType::B32, VType::B64) => Op::CvtB32B64, (VType::B64, VType::B64) => Op::CvtB64B64, (VType::F32, VType::B64) => Op::CvtF32B64, (VType::F64, VType::B64) => Op::CvtF64B64, (VType::Pred, VType::B64) => Op::CvtPredB64,
        (VType::B32, VType::F32) => Op::CvtB32F32, (VType::B64, VType::F32) => Op::CvtB64F32, (VType::F32, VType::F32) => Op::CvtF32F32, (VType::F64, VType::F32) => Op::CvtF64F32, (VType::Pred, VType::F32) => Op::CvtPredF32,
        (VType::B32, VType::F64) => Op::CvtB32F64, (VType::B64, VType::F64) => Op::CvtB64F64, (VType::F32, VType::F64) => Op::CvtF32F64, (VType::F64, VType::F64) => Op::CvtF64F64, (VType::Pred, VType::F64) => Op::CvtPredF64,
        (VType::B32, VType::Pred) => Op::CvtB32Pred, (VType::B64, VType::Pred) => Op::CvtB64Pred, (VType::F32, VType::Pred) => Op::CvtF32Pred, (VType::F64, VType::Pred) => Op::CvtF64Pred, (VType::Pred, VType::Pred) => Op::CvtPredPred,
    }
}

fn op_math(op: MathOp, ty: VType) -> Op {
    match (op, ty) {
        (MathOp::Sqrt, VType::B32) => Op::SqrtB32, (MathOp::Sqrt, VType::B64) => Op::SqrtB64, (MathOp::Sqrt, VType::F32) => Op::SqrtF32, (MathOp::Sqrt, VType::F64) => Op::SqrtF64, (MathOp::Sqrt, VType::Pred) => Op::SqrtPred,
        (MathOp::Exp, VType::B32) => Op::ExpB32, (MathOp::Exp, VType::B64) => Op::ExpB64, (MathOp::Exp, VType::F32) => Op::ExpF32, (MathOp::Exp, VType::F64) => Op::ExpF64, (MathOp::Exp, VType::Pred) => Op::ExpPred,
        (MathOp::Log, VType::B32) => Op::LogB32, (MathOp::Log, VType::B64) => Op::LogB64, (MathOp::Log, VType::F32) => Op::LogF32, (MathOp::Log, VType::F64) => Op::LogF64, (MathOp::Log, VType::Pred) => Op::LogPred,
        (MathOp::Sin, VType::B32) => Op::SinB32, (MathOp::Sin, VType::B64) => Op::SinB64, (MathOp::Sin, VType::F32) => Op::SinF32, (MathOp::Sin, VType::F64) => Op::SinF64, (MathOp::Sin, VType::Pred) => Op::SinPred,
        (MathOp::Cos, VType::B32) => Op::CosB32, (MathOp::Cos, VType::B64) => Op::CosB64, (MathOp::Cos, VType::F32) => Op::CosF32, (MathOp::Cos, VType::F64) => Op::CosF64, (MathOp::Cos, VType::Pred) => Op::CosPred,
        (MathOp::Abs, VType::B32) => Op::AbsB32, (MathOp::Abs, VType::B64) => Op::AbsB64, (MathOp::Abs, VType::F32) => Op::AbsF32, (MathOp::Abs, VType::F64) => Op::AbsF64, (MathOp::Abs, VType::Pred) => Op::AbsPred,
        (MathOp::Floor, VType::B32) => Op::FloorB32, (MathOp::Floor, VType::B64) => Op::FloorB64, (MathOp::Floor, VType::F32) => Op::FloorF32, (MathOp::Floor, VType::F64) => Op::FloorF64, (MathOp::Floor, VType::Pred) => Op::FloorPred,
        (MathOp::Pow, VType::B32) => Op::PowB32, (MathOp::Pow, VType::B64) => Op::PowB64, (MathOp::Pow, VType::F32) => Op::PowF32, (MathOp::Pow, VType::F64) => Op::PowF64, (MathOp::Pow, VType::Pred) => Op::PowPred,
    }
}

fn op_ld(space: MemSpace, bytes: u32) -> Op {
    match (space, bytes) {
        (MemSpace::Global, 1) => Op::LdG1,
        (MemSpace::Global, 4) => Op::LdG4,
        (MemSpace::Global, _) => Op::LdG8,
        (MemSpace::ReadOnly, 1) => Op::LdRo1,
        (MemSpace::ReadOnly, 4) => Op::LdRo4,
        (MemSpace::ReadOnly, _) => Op::LdRo8,
        (MemSpace::Local, 1) => Op::LdLoc1,
        (MemSpace::Local, 4) => Op::LdLoc4,
        (MemSpace::Local, _) => Op::LdLoc8,
    }
}

fn op_st(space: MemSpace, bytes: u32) -> Op {
    match (space, bytes) {
        (MemSpace::Global, 1) => Op::StG1,
        (MemSpace::Global, 4) => Op::StG4,
        (MemSpace::Global, _) => Op::StG8,
        (MemSpace::ReadOnly, 1) => Op::StRo1,
        (MemSpace::ReadOnly, 4) => Op::StRo4,
        (MemSpace::ReadOnly, _) => Op::StRo8,
        (MemSpace::Local, 1) => Op::StLoc1,
        (MemSpace::Local, 4) => Op::StLoc4,
        (MemSpace::Local, _) => Op::StLoc8,
    }
}

fn op_atom(ty: VType) -> Op {
    match ty {
        VType::B32 => Op::AtomB32,
        VType::B64 => Op::AtomB64,
        VType::F32 => Op::AtomF32,
        VType::F64 => Op::AtomF64,
        VType::Pred => Op::AtomPred,
    }
}

/// Interns constant bit patterns into the register file past the
/// virtual registers, deduplicating by value (immediates are
/// pre-converted to their use-site type's bit pattern, so equal bits
/// are interchangeable).
struct ConstPool {
    base: u32,
    map: HashMap<u64, u32>,
    vals: Vec<u64>,
}

impl ConstPool {
    fn intern(&mut self, bits: u64) -> u32 {
        if let Some(&r) = self.map.get(&bits) {
            return r;
        }
        let r = self.base + self.vals.len() as u32;
        self.vals.push(bits);
        self.map.insert(bits, r);
        r
    }

    /// Resolve an operand at use-site type `ty` to a register index.
    fn operand(&mut self, op: &Operand, ty: VType) -> u32 {
        match op {
            Operand::Reg(r) => r.0,
            imm => self.intern(operand_bits(imm, &[], ty)),
        }
    }
}

/// Decode `kernel` for one launch. Branch validation mirrors the
/// reference interpreter; parameters are resolved (and therefore
/// type-checked) eagerly.
pub(crate) fn decode(
    kernel: &KernelVir,
    config: &LaunchConfig,
    params: &[ParamVal],
    spilled: &[VReg],
) -> Result<Decoded, SimError> {
    let labels = kernel.label_positions();
    for inst in &kernel.insts {
        if let Inst::Bra { target, .. } = inst {
            if labels.get(target.0 as usize).copied().flatten().is_none() {
                return Err(SimError::Malformed(format!("branch to undefined label L{}", target.0)));
            }
        }
    }

    // Spill bitset over vreg ids (ids index `kernel.vregs`).
    let n_vregs = kernel.vregs.len();
    let mut spillbits = vec![0u64; n_vregs.div_ceil(64)];
    for r in spilled {
        let i = r.0 as usize;
        if i < n_vregs {
            spillbits[i / 64] |= 1 << (i % 64);
        }
    }
    let is_spilled = |r: VReg| {
        let i = r.0 as usize;
        i < n_vregs && spillbits[i / 64] & (1 << (i % 64)) != 0
    };

    // Original pc -> decoded index (Marks collapse onto their successor).
    let mut pc_map = vec![0u32; kernel.insts.len() + 1];
    let mut di = 0u32;
    for (i, inst) in kernel.insts.iter().enumerate() {
        pc_map[i] = di;
        if !matches!(inst, Inst::Mark(_)) {
            di += 1;
        }
    }
    pc_map[kernel.insts.len()] = di;

    let mut pool = ConstPool { base: n_vregs as u32, map: HashMap::new(), vals: Vec::new() };
    let mut insts = Vec::with_capacity(di as usize);
    for inst in &kernel.insts {
        // (op, cls, d, a, b)
        let (op, cls, d, a, b) = match inst {
            Inst::Mark(_) => continue,
            Inst::Mov { ty, d, a } => {
                (Op::Mov, CLS_SIMPLE, d.0, pool.operand(a, *ty), 0)
            }
            Inst::Alu { op, ty, d, a, b } => (
                op_alu(*op, *ty),
                class_of(*ty),
                d.0,
                pool.operand(a, *ty),
                pool.operand(b, *ty),
            ),
            Inst::Neg { ty, d, a } => {
                (op_neg(*ty), class_of(*ty), d.0, pool.operand(a, *ty), 0)
            }
            Inst::Not { d, a } => (Op::Not, CLS_SIMPLE, d.0, a.0, 0),
            Inst::Cvt { dty, d, aty, a } => {
                (op_cvt(*aty, *dty), class_of(*dty), d.0, pool.operand(a, *aty), 0)
            }
            Inst::Setp { op, ty, d, a, b } => (
                op_setp(*op, *ty),
                CLS_SIMPLE,
                d.0,
                pool.operand(a, *ty),
                pool.operand(b, *ty),
            ),
            Inst::Math { op, ty, d, a, b } => (
                op_math(*op, *ty),
                CLS_SFU,
                d.0,
                pool.operand(a, *ty),
                b.as_ref().map_or(NO_REG, |b| pool.operand(b, *ty)),
            ),
            Inst::Ld { space, ty, d, addr } => {
                (op_ld(*space, ty.size_bytes()), CLS_SIMPLE, d.0, addr.0, 0)
            }
            Inst::St { space, ty, addr, a } => (
                op_st(*space, ty.size_bytes()),
                CLS_SIMPLE,
                0,
                addr.0,
                pool.operand(a, *ty),
            ),
            Inst::LdParam { ty, d, index } => {
                let p = params.get(*index as usize).ok_or_else(|| {
                    SimError::Malformed(format!("param index {index} out of range"))
                })?;
                (Op::Mov, CLS_SIMPLE, d.0, pool.intern(param_bits(p, *ty)?), 0)
            }
            Inst::Special { d, r } => {
                let axis = |i: u8| -> usize {
                    match i {
                        0 => 0,
                        1 => 1,
                        _ => 2,
                    }
                };
                match r {
                    SpecialReg::Tid(i) => {
                        ([Op::TidX, Op::TidY, Op::TidZ][axis(*i)], CLS_SIMPLE, d.0, 0, 0)
                    }
                    SpecialReg::CtaId(i) => {
                        ([Op::CtaX, Op::CtaY, Op::CtaZ][axis(*i)], CLS_SIMPLE, d.0, 0, 0)
                    }
                    SpecialReg::NTid(i) => {
                        let v = [config.block.0, config.block.1, config.block.2][axis(*i)];
                        (Op::Mov, CLS_SIMPLE, d.0, pool.intern(v as u64), 0)
                    }
                    SpecialReg::NCtaId(i) => {
                        let v = [config.grid.0, config.grid.1, config.grid.2][axis(*i)];
                        (Op::Mov, CLS_SIMPLE, d.0, pool.intern(v as u64), 0)
                    }
                }
            }
            Inst::Bra { target, pred } => {
                let orig = labels[target.0 as usize].expect("validated above");
                match pred {
                    None => (Op::Bra, CLS_SIMPLE, pc_map[orig], 0, 0),
                    Some((p, true)) => (Op::BraT, CLS_SIMPLE, pc_map[orig], p.0, 0),
                    Some((p, false)) => (Op::BraF, CLS_SIMPLE, pc_map[orig], p.0, 0),
                }
            }
            Inst::AtomAdd { ty, addr, a } => {
                (op_atom(*ty), CLS_SIMPLE, 0, addr.0, pool.operand(a, *ty))
            }
            Inst::Ret => (Op::Ret, CLS_NONE, 0, 0, 0),
        };
        let mut spill = inst.uses().iter().filter(|r| is_spilled(**r)).count();
        if let Some(dreg) = inst.def() {
            if is_spilled(dreg) {
                spill += 1;
            }
        }
        insts.push(DInst { op, cls, spill: spill as u8, d, a, b });
    }

    Ok(Decoded { n_vregs, consts: pool.vals, insts })
}

pub(crate) const WARP_SIZE: usize = 32;

/// Per-warp streaming merge state, reused across all warps of a launch.
///
/// While no divergence has been observed, lanes append only addresses
/// (`lane_addrs`) against the shared `proto` event stream — a lane that
/// runs past the prototype extends it (prefix-matching shorter lanes
/// group identically to the reference `(inst, occurrence)` alignment).
/// Prototype comparison is by instruction index alone: a decoded pc
/// uniquely determines the event's width and space. On the first
/// mismatch the warp is marked diverged: the offending lane (and any
/// lane that later mismatches) logs full events into its `tail`, and
/// the merge reconstructs per-lane logs and reuses the reference
/// divergent grouping.
pub(crate) struct WarpMerge {
    proto: Vec<MemEvent>,
    lane_addrs: Vec<Vec<u64>>,
    tails: Vec<Vec<MemEvent>>,
    diverged: bool,
    gather: Vec<u64>,
    segs: Vec<u64>,
}

impl WarpMerge {
    pub(crate) fn new() -> Self {
        WarpMerge {
            proto: Vec::new(),
            lane_addrs: (0..WARP_SIZE).map(|_| Vec::with_capacity(64)).collect(),
            tails: (0..WARP_SIZE).map(|_| Vec::new()).collect(),
            diverged: false,
            gather: Vec::with_capacity(WARP_SIZE),
            segs: Vec::with_capacity(2 * WARP_SIZE),
        }
    }

    pub(crate) fn begin_warp(&mut self) {
        self.proto.clear();
        for a in &mut self.lane_addrs {
            a.clear();
        }
        for t in &mut self.tails {
            t.clear();
        }
        self.diverged = false;
    }

    #[inline]
    pub(crate) fn log(&mut self, lane: usize, ev: MemEvent) {
        if !self.tails[lane].is_empty() {
            self.tails[lane].push(ev);
            return;
        }
        let cursor = self.lane_addrs[lane].len();
        if cursor < self.proto.len() {
            if self.proto[cursor].inst == ev.inst {
                self.lane_addrs[lane].push(ev.addr);
            } else {
                self.diverged = true;
                self.tails[lane].push(ev);
            }
        } else if !self.diverged {
            // First lane to reach this depth extends the prototype.
            self.proto.push(ev);
            self.lane_addrs[lane].push(ev.addr);
        } else {
            self.tails[lane].push(ev);
        }
    }

    pub(crate) fn merge(&mut self, lanes: usize, stats: &mut KernelStats) {
        if !self.diverged {
            // Streaming path: event `i` groups the addresses of every
            // lane that logged at least `i+1` events — identical to the
            // reference `(inst, occurrence)` partition for
            // prefix-matching lanes.
            for (i, ev) in self.proto.iter().enumerate() {
                self.gather.clear();
                for addrs in &self.lane_addrs[..lanes] {
                    if let Some(&a) = addrs.get(i) {
                        self.gather.push(a);
                    }
                }
                if !self.gather.is_empty() {
                    account_group_with(*ev, &self.gather, &mut self.segs, stats);
                }
            }
            return;
        }
        // Divergent fallback: reconstruct each lane's full log
        // (prototype prefix + tail) and use the reference grouping.
        let logs: Vec<Vec<MemEvent>> = (0..lanes)
            .map(|l| {
                let prefix = self.lane_addrs[l].iter().enumerate().map(|(i, &a)| {
                    let mut ev = self.proto[i];
                    ev.addr = a;
                    ev
                });
                prefix.chain(self.tails[l].iter().copied()).collect()
            })
            .collect();
        merge_divergent(&logs, stats);
    }
}

/// Execute a kernel launch on the pre-decoded engine. Public entry is
/// [`crate::interp::launch`], which dispatches here by default.
pub(crate) fn launch_decoded(
    kernel: &KernelVir,
    config: &LaunchConfig,
    params: &[ParamVal],
    mem: &mut DeviceMemory,
    spilled: &[VReg],
) -> Result<LaunchResult, SimError> {
    if params.len() != kernel.params.len() {
        return Err(SimError::Malformed(format!(
            "kernel `{}` expects {} params, got {}",
            kernel.name,
            kernel.params.len(),
            params.len()
        )));
    }
    let decoded = decode(kernel, config, params, spilled)?;

    let n_blocks = config.total_blocks();
    let threads = parallel::resolve_sim_threads(config);
    if threads > 1 && n_blocks > 1 {
        let decoded = &decoded;
        let (stats, _scratch) = parallel::run_blocks_parallel(
            mem,
            0,
            n_blocks,
            threads,
            |_worker| BlockScratch::new(decoded),
            |b, scratch, worker_mem| {
                let mut stats = KernelStats::default();
                run_block(decoded, &kernel.name, config, b, worker_mem, scratch, &mut stats)?;
                Ok(stats)
            },
        )?;
        return Ok(LaunchResult { stats });
    }

    let mut stats = KernelStats::default();
    // Launch-lifetime scratch, reused across every warp of every block.
    let mut scratch = BlockScratch::new(&decoded);
    // Linear block ids enumerate the grid in the historical z→y→x
    // nesting order.
    for b in 0..n_blocks {
        run_block(&decoded, &kernel.name, config, b, mem, &mut scratch, &mut stats)?;
    }
    Ok(LaunchResult { stats })
}

/// Per-worker execution scratch: the flat register file (constants live
/// past the virtual registers and are written once), the warp
/// transaction-merge buffers, and the per-lane issue counters. One of
/// these exists per serial launch — and one per pool worker, which is
/// exactly the state split that makes block execution `Send`.
pub(crate) struct BlockScratch {
    regs: Vec<u64>,
    warp: WarpMerge,
    lane_counts: [LaneCounts; WARP_SIZE],
}

impl BlockScratch {
    pub(crate) fn new(d: &Decoded) -> Self {
        let mut regs = vec![0u64; d.n_vregs + d.consts.len()];
        regs[d.n_vregs..].copy_from_slice(&d.consts);
        BlockScratch { regs, warp: WarpMerge::new(), lane_counts: [LaneCounts::default(); WARP_SIZE] }
    }
}

/// Execute one block (linear id `block`, z→y→x order) and accumulate its
/// warps into `stats`. Generic over the memory port so the serial path
/// (direct [`DeviceMemory`]) monomorphizes to the historical code and
/// pool workers run against their [`parallel::WorkerMem`] view.
pub(crate) fn run_block<M: MemAccess>(
    d: &Decoded,
    kernel_name: &str,
    config: &LaunchConfig,
    block: u64,
    mem: &mut M,
    s: &mut BlockScratch,
    stats: &mut KernelStats,
) -> Result<(), SimError> {
    let (gx, gy) = (config.grid.0 as u64, config.grid.1 as u64);
    let bx = (block % gx) as u32;
    let by = ((block / gx) % gy) as u32;
    let bz = (block / (gx * gy)) as u32;
    let tpb = config.threads_per_block();
    let mut linear = 0u32;
    while linear < tpb {
        let lanes_in_warp = (tpb - linear).min(WARP_SIZE as u32);
        s.warp.begin_warp();
        for lane in 0..lanes_in_warp {
            let t = linear + lane;
            let tx = t % config.block.0;
            let ty = (t / config.block.0) % config.block.1;
            let tz = t / (config.block.0 * config.block.1);
            s.lane_counts[lane as usize] = run_lane::<false, false, M>(
                d,
                kernel_name,
                [tx, ty, tz, bx, by, bz],
                mem,
                &mut s.regs,
                lane as usize,
                &mut s.warp,
                0,
                true,
                ExecSeed::default(),
                None,
            )?;
        }
        // Issue counts: per-class max across lanes (as the reference
        // `merge_warp` does), then the streaming transaction merge.
        let mut wc = LaneCounts::default();
        for lc in &s.lane_counts[..lanes_in_warp as usize] {
            wc.max_with(lc);
        }
        stats.simple_insts += wc.simple;
        stats.int64_insts += wc.int64;
        stats.fp64_insts += wc.fp64;
        stats.sfu_insts += wc.sfu;
        stats.local_accesses += wc.spill_touches;
        s.warp.merge(lanes_in_warp as usize, stats);
        stats.warps += 1;
        stats.threads += lanes_in_warp as u64;
        linear += lanes_in_warp;
    }
    Ok(())
}

/// Counter seeds for [`run_lane`]: zero for a fresh lane, or the
/// lockstep-common prefix when the superblock engine peels a lane
/// mid-kernel.
#[derive(Clone, Copy, Default)]
pub(crate) struct ExecSeed {
    pub(crate) executed: u64,
    pub(crate) cnt: [u64; 8],
    pub(crate) spill: u64,
}

/// One lane, from `start_pc` to completion. Generic axes: `SOA` selects
/// the superblock engine's structure-of-arrays register layout
/// (`reg * 32 + lane`) over the decoded engine's flat file, and `PROF`
/// compiles in the superblock profiler's block/branch counters; both
/// fold away for the decoded engine's `<false, false>` instantiation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_lane<const SOA: bool, const PROF: bool, M: MemAccess>(
    d: &Decoded,
    kernel_name: &str,
    ids: [u32; 6], // tid.xyz, ctaid.xyz
    mem: &mut M,
    regs: &mut [u64],
    lane: usize,
    warp: &mut WarpMerge,
    start_pc: usize,
    zero_init: bool,
    seed: ExecSeed,
    mut prof: Option<&mut crate::superblock::ProfileCounters>,
) -> Result<LaneCounts, SimError> {
    let ix = |r: u32| -> usize {
        if SOA {
            r as usize * WARP_SIZE + lane
        } else {
            r as usize
        }
    };
    if zero_init {
        if SOA {
            for r in 0..d.n_vregs {
                regs[r * WARP_SIZE + lane] = 0;
            }
        } else {
            regs[..d.n_vregs].fill(0);
        }
    }
    let insts = &d.insts;
    let mut pc = start_pc;
    let mut executed = seed.executed;
    // Per-class issue counts, indexed by `DInst::cls` (masked so the
    // compiler drops the bounds check; `CLS_NONE` lands in a dead slot).
    let mut cnt = seed.cnt;
    let mut spill_touches = seed.spill;

    while pc < insts.len() {
        if PROF {
            if let Some(p) = prof.as_deref_mut() {
                let b = p.leader_block[pc];
                if b != 0 {
                    p.counts[b as usize - 1] += 1;
                }
            }
        }
        executed += 1;
        if executed > MAX_INSTS_PER_THREAD {
            return Err(SimError::Runaway { kernel: kernel_name.to_string() });
        }
        let i = insts[pc];
        cnt[(i.cls & 7) as usize] += 1;
        spill_touches += i.spill as u64;
        match i.op {
            Op::Mov => regs[ix(i.d)] = regs[ix(i.a)],
            Op::Not => regs[ix(i.d)] = u64::from(regs[ix(i.a)] == 0),
            Op::Ret => break,
            Op::Bra => {
                pc = i.d as usize;
                continue;
            }
            Op::BraT => {
                let t = regs[ix(i.a)] != 0;
                if PROF {
                    if let Some(p) = prof.as_deref_mut() {
                        p.seen[pc] += 1;
                        p.taken[pc] += t as u64;
                    }
                }
                if t {
                    pc = i.d as usize;
                    continue;
                }
            }
            Op::BraF => {
                let t = regs[ix(i.a)] == 0;
                if PROF {
                    if let Some(p) = prof.as_deref_mut() {
                        p.seen[pc] += 1;
                        p.taken[pc] += t as u64;
                    }
                }
                if t {
                    pc = i.d as usize;
                    continue;
                }
            }
            Op::TidX => regs[ix(i.d)] = ids[0] as u64,
            Op::TidY => regs[ix(i.d)] = ids[1] as u64,
            Op::TidZ => regs[ix(i.d)] = ids[2] as u64,
            Op::CtaX => regs[ix(i.d)] = ids[3] as u64,
            Op::CtaY => regs[ix(i.d)] = ids[4] as u64,
            Op::CtaZ => regs[ix(i.d)] = ids[5] as u64,
            Op::LdG1 => ld(regs, mem, warp, lane, pc, ix(i.d), ix(i.a), 1, SPACE_GLOBAL)?,
            Op::LdG4 => ld(regs, mem, warp, lane, pc, ix(i.d), ix(i.a), 4, SPACE_GLOBAL)?,
            Op::LdG8 => ld(regs, mem, warp, lane, pc, ix(i.d), ix(i.a), 8, SPACE_GLOBAL)?,
            Op::LdRo1 => ld(regs, mem, warp, lane, pc, ix(i.d), ix(i.a), 1, SPACE_READONLY)?,
            Op::LdRo4 => ld(regs, mem, warp, lane, pc, ix(i.d), ix(i.a), 4, SPACE_READONLY)?,
            Op::LdRo8 => ld(regs, mem, warp, lane, pc, ix(i.d), ix(i.a), 8, SPACE_READONLY)?,
            Op::LdLoc1 => ld(regs, mem, warp, lane, pc, ix(i.d), ix(i.a), 1, SPACE_LOCAL)?,
            Op::LdLoc4 => ld(regs, mem, warp, lane, pc, ix(i.d), ix(i.a), 4, SPACE_LOCAL)?,
            Op::LdLoc8 => ld(regs, mem, warp, lane, pc, ix(i.d), ix(i.a), 8, SPACE_LOCAL)?,
            Op::StG1 => st(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), 1, SPACE_GLOBAL | FLAG_STORE)?,
            Op::StG4 => st(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), 4, SPACE_GLOBAL | FLAG_STORE)?,
            Op::StG8 => st(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), 8, SPACE_GLOBAL | FLAG_STORE)?,
            Op::StRo1 => st(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), 1, SPACE_READONLY | FLAG_STORE)?,
            Op::StRo4 => st(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), 4, SPACE_READONLY | FLAG_STORE)?,
            Op::StRo8 => st(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), 8, SPACE_READONLY | FLAG_STORE)?,
            Op::StLoc1 => st(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), 1, SPACE_LOCAL | FLAG_STORE)?,
            Op::StLoc4 => st(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), 4, SPACE_LOCAL | FLAG_STORE)?,
            Op::StLoc8 => st(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), 8, SPACE_LOCAL | FLAG_STORE)?,
            Op::AtomB32 => atom(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), VType::B32)?,
            Op::AtomB64 => atom(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), VType::B64)?,
            Op::AtomF32 => atom(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), VType::F32)?,
            Op::AtomF64 => atom(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), VType::F64)?,
            Op::AtomPred => atom(regs, mem, warp, lane, pc, ix(i.a), ix(i.b), VType::Pred)?,
            Op::AddB32 => regs[ix(i.d)] = alu(AluOp::Add, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::AddB64 => regs[ix(i.d)] = alu(AluOp::Add, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::AddF32 => regs[ix(i.d)] = alu(AluOp::Add, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::AddF64 => regs[ix(i.d)] = alu(AluOp::Add, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::AddPred => regs[ix(i.d)] = alu(AluOp::Add, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::SubB32 => regs[ix(i.d)] = alu(AluOp::Sub, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::SubB64 => regs[ix(i.d)] = alu(AluOp::Sub, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::SubF32 => regs[ix(i.d)] = alu(AluOp::Sub, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::SubF64 => regs[ix(i.d)] = alu(AluOp::Sub, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::SubPred => regs[ix(i.d)] = alu(AluOp::Sub, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MulB32 => regs[ix(i.d)] = alu(AluOp::Mul, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MulB64 => regs[ix(i.d)] = alu(AluOp::Mul, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MulF32 => regs[ix(i.d)] = alu(AluOp::Mul, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MulF64 => regs[ix(i.d)] = alu(AluOp::Mul, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MulPred => regs[ix(i.d)] = alu(AluOp::Mul, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::DivB32 => regs[ix(i.d)] = alu(AluOp::Div, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::DivB64 => regs[ix(i.d)] = alu(AluOp::Div, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::DivF32 => regs[ix(i.d)] = alu(AluOp::Div, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::DivF64 => regs[ix(i.d)] = alu(AluOp::Div, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::DivPred => regs[ix(i.d)] = alu(AluOp::Div, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::RemB32 => regs[ix(i.d)] = alu(AluOp::Rem, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::RemB64 => regs[ix(i.d)] = alu(AluOp::Rem, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::RemF32 => regs[ix(i.d)] = alu(AluOp::Rem, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::RemF64 => regs[ix(i.d)] = alu(AluOp::Rem, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::RemPred => regs[ix(i.d)] = alu(AluOp::Rem, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MinB32 => regs[ix(i.d)] = alu(AluOp::Min, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MinB64 => regs[ix(i.d)] = alu(AluOp::Min, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MinF32 => regs[ix(i.d)] = alu(AluOp::Min, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MinF64 => regs[ix(i.d)] = alu(AluOp::Min, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MinPred => regs[ix(i.d)] = alu(AluOp::Min, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MaxB32 => regs[ix(i.d)] = alu(AluOp::Max, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MaxB64 => regs[ix(i.d)] = alu(AluOp::Max, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MaxF32 => regs[ix(i.d)] = alu(AluOp::Max, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MaxF64 => regs[ix(i.d)] = alu(AluOp::Max, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::MaxPred => regs[ix(i.d)] = alu(AluOp::Max, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::AndB32 => regs[ix(i.d)] = alu(AluOp::And, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::AndB64 => regs[ix(i.d)] = alu(AluOp::And, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::AndF32 => regs[ix(i.d)] = alu(AluOp::And, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::AndF64 => regs[ix(i.d)] = alu(AluOp::And, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::AndPred => regs[ix(i.d)] = alu(AluOp::And, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::OrB32 => regs[ix(i.d)] = alu(AluOp::Or, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::OrB64 => regs[ix(i.d)] = alu(AluOp::Or, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::OrF32 => regs[ix(i.d)] = alu(AluOp::Or, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::OrF64 => regs[ix(i.d)] = alu(AluOp::Or, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::OrPred => regs[ix(i.d)] = alu(AluOp::Or, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::XorB32 => regs[ix(i.d)] = alu(AluOp::Xor, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::XorB64 => regs[ix(i.d)] = alu(AluOp::Xor, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::XorF32 => regs[ix(i.d)] = alu(AluOp::Xor, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::XorF64 => regs[ix(i.d)] = alu(AluOp::Xor, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::XorPred => regs[ix(i.d)] = alu(AluOp::Xor, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::ShlB32 => regs[ix(i.d)] = alu(AluOp::Shl, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::ShlB64 => regs[ix(i.d)] = alu(AluOp::Shl, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::ShlF32 => regs[ix(i.d)] = alu(AluOp::Shl, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::ShlF64 => regs[ix(i.d)] = alu(AluOp::Shl, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::ShlPred => regs[ix(i.d)] = alu(AluOp::Shl, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::ShrB32 => regs[ix(i.d)] = alu(AluOp::Shr, VType::B32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::ShrB64 => regs[ix(i.d)] = alu(AluOp::Shr, VType::B64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::ShrF32 => regs[ix(i.d)] = alu(AluOp::Shr, VType::F32, regs[ix(i.a)], regs[ix(i.b)]),
            Op::ShrF64 => regs[ix(i.d)] = alu(AluOp::Shr, VType::F64, regs[ix(i.a)], regs[ix(i.b)]),
            Op::ShrPred => regs[ix(i.d)] = alu(AluOp::Shr, VType::Pred, regs[ix(i.a)], regs[ix(i.b)]),
            Op::NegB32 => regs[ix(i.d)] = neg(VType::B32, regs[ix(i.a)]),
            Op::NegB64 => regs[ix(i.d)] = neg(VType::B64, regs[ix(i.a)]),
            Op::NegF32 => regs[ix(i.d)] = neg(VType::F32, regs[ix(i.a)]),
            Op::NegF64 => regs[ix(i.d)] = neg(VType::F64, regs[ix(i.a)]),
            Op::NegPred => regs[ix(i.d)] = neg(VType::Pred, regs[ix(i.a)]),
            Op::SetpLtB32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Lt, VType::B32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpLtB64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Lt, VType::B64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpLtF32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Lt, VType::F32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpLtF64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Lt, VType::F64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpLtPred => regs[ix(i.d)] = u64::from(compare(CmpOp::Lt, VType::Pred, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpLeB32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Le, VType::B32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpLeB64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Le, VType::B64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpLeF32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Le, VType::F32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpLeF64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Le, VType::F64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpLePred => regs[ix(i.d)] = u64::from(compare(CmpOp::Le, VType::Pred, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpGtB32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Gt, VType::B32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpGtB64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Gt, VType::B64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpGtF32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Gt, VType::F32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpGtF64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Gt, VType::F64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpGtPred => regs[ix(i.d)] = u64::from(compare(CmpOp::Gt, VType::Pred, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpGeB32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Ge, VType::B32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpGeB64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Ge, VType::B64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpGeF32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Ge, VType::F32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpGeF64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Ge, VType::F64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpGePred => regs[ix(i.d)] = u64::from(compare(CmpOp::Ge, VType::Pred, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpEqB32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Eq, VType::B32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpEqB64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Eq, VType::B64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpEqF32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Eq, VType::F32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpEqF64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Eq, VType::F64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpEqPred => regs[ix(i.d)] = u64::from(compare(CmpOp::Eq, VType::Pred, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpNeB32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Ne, VType::B32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpNeB64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Ne, VType::B64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpNeF32 => regs[ix(i.d)] = u64::from(compare(CmpOp::Ne, VType::F32, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpNeF64 => regs[ix(i.d)] = u64::from(compare(CmpOp::Ne, VType::F64, regs[ix(i.a)], regs[ix(i.b)])),
            Op::SetpNePred => regs[ix(i.d)] = u64::from(compare(CmpOp::Ne, VType::Pred, regs[ix(i.a)], regs[ix(i.b)])),
            Op::CvtB32B32 => regs[ix(i.d)] = convert(VType::B32, VType::B32, regs[ix(i.a)]),
            Op::CvtB64B32 => regs[ix(i.d)] = convert(VType::B64, VType::B32, regs[ix(i.a)]),
            Op::CvtF32B32 => regs[ix(i.d)] = convert(VType::F32, VType::B32, regs[ix(i.a)]),
            Op::CvtF64B32 => regs[ix(i.d)] = convert(VType::F64, VType::B32, regs[ix(i.a)]),
            Op::CvtPredB32 => regs[ix(i.d)] = convert(VType::Pred, VType::B32, regs[ix(i.a)]),
            Op::CvtB32B64 => regs[ix(i.d)] = convert(VType::B32, VType::B64, regs[ix(i.a)]),
            Op::CvtB64B64 => regs[ix(i.d)] = convert(VType::B64, VType::B64, regs[ix(i.a)]),
            Op::CvtF32B64 => regs[ix(i.d)] = convert(VType::F32, VType::B64, regs[ix(i.a)]),
            Op::CvtF64B64 => regs[ix(i.d)] = convert(VType::F64, VType::B64, regs[ix(i.a)]),
            Op::CvtPredB64 => regs[ix(i.d)] = convert(VType::Pred, VType::B64, regs[ix(i.a)]),
            Op::CvtB32F32 => regs[ix(i.d)] = convert(VType::B32, VType::F32, regs[ix(i.a)]),
            Op::CvtB64F32 => regs[ix(i.d)] = convert(VType::B64, VType::F32, regs[ix(i.a)]),
            Op::CvtF32F32 => regs[ix(i.d)] = convert(VType::F32, VType::F32, regs[ix(i.a)]),
            Op::CvtF64F32 => regs[ix(i.d)] = convert(VType::F64, VType::F32, regs[ix(i.a)]),
            Op::CvtPredF32 => regs[ix(i.d)] = convert(VType::Pred, VType::F32, regs[ix(i.a)]),
            Op::CvtB32F64 => regs[ix(i.d)] = convert(VType::B32, VType::F64, regs[ix(i.a)]),
            Op::CvtB64F64 => regs[ix(i.d)] = convert(VType::B64, VType::F64, regs[ix(i.a)]),
            Op::CvtF32F64 => regs[ix(i.d)] = convert(VType::F32, VType::F64, regs[ix(i.a)]),
            Op::CvtF64F64 => regs[ix(i.d)] = convert(VType::F64, VType::F64, regs[ix(i.a)]),
            Op::CvtPredF64 => regs[ix(i.d)] = convert(VType::Pred, VType::F64, regs[ix(i.a)]),
            Op::CvtB32Pred => regs[ix(i.d)] = convert(VType::B32, VType::Pred, regs[ix(i.a)]),
            Op::CvtB64Pred => regs[ix(i.d)] = convert(VType::B64, VType::Pred, regs[ix(i.a)]),
            Op::CvtF32Pred => regs[ix(i.d)] = convert(VType::F32, VType::Pred, regs[ix(i.a)]),
            Op::CvtF64Pred => regs[ix(i.d)] = convert(VType::F64, VType::Pred, regs[ix(i.a)]),
            Op::CvtPredPred => regs[ix(i.d)] = convert(VType::Pred, VType::Pred, regs[ix(i.a)]),
            Op::SqrtB32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Sqrt, VType::B32, regs[ix(i.a)], y); }
            Op::SqrtB64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Sqrt, VType::B64, regs[ix(i.a)], y); }
            Op::SqrtF32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Sqrt, VType::F32, regs[ix(i.a)], y); }
            Op::SqrtF64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Sqrt, VType::F64, regs[ix(i.a)], y); }
            Op::SqrtPred => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Sqrt, VType::Pred, regs[ix(i.a)], y); }
            Op::ExpB32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Exp, VType::B32, regs[ix(i.a)], y); }
            Op::ExpB64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Exp, VType::B64, regs[ix(i.a)], y); }
            Op::ExpF32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Exp, VType::F32, regs[ix(i.a)], y); }
            Op::ExpF64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Exp, VType::F64, regs[ix(i.a)], y); }
            Op::ExpPred => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Exp, VType::Pred, regs[ix(i.a)], y); }
            Op::LogB32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Log, VType::B32, regs[ix(i.a)], y); }
            Op::LogB64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Log, VType::B64, regs[ix(i.a)], y); }
            Op::LogF32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Log, VType::F32, regs[ix(i.a)], y); }
            Op::LogF64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Log, VType::F64, regs[ix(i.a)], y); }
            Op::LogPred => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Log, VType::Pred, regs[ix(i.a)], y); }
            Op::SinB32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Sin, VType::B32, regs[ix(i.a)], y); }
            Op::SinB64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Sin, VType::B64, regs[ix(i.a)], y); }
            Op::SinF32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Sin, VType::F32, regs[ix(i.a)], y); }
            Op::SinF64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Sin, VType::F64, regs[ix(i.a)], y); }
            Op::SinPred => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Sin, VType::Pred, regs[ix(i.a)], y); }
            Op::CosB32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Cos, VType::B32, regs[ix(i.a)], y); }
            Op::CosB64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Cos, VType::B64, regs[ix(i.a)], y); }
            Op::CosF32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Cos, VType::F32, regs[ix(i.a)], y); }
            Op::CosF64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Cos, VType::F64, regs[ix(i.a)], y); }
            Op::CosPred => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Cos, VType::Pred, regs[ix(i.a)], y); }
            Op::AbsB32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Abs, VType::B32, regs[ix(i.a)], y); }
            Op::AbsB64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Abs, VType::B64, regs[ix(i.a)], y); }
            Op::AbsF32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Abs, VType::F32, regs[ix(i.a)], y); }
            Op::AbsF64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Abs, VType::F64, regs[ix(i.a)], y); }
            Op::AbsPred => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Abs, VType::Pred, regs[ix(i.a)], y); }
            Op::FloorB32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Floor, VType::B32, regs[ix(i.a)], y); }
            Op::FloorB64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Floor, VType::B64, regs[ix(i.a)], y); }
            Op::FloorF32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Floor, VType::F32, regs[ix(i.a)], y); }
            Op::FloorF64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Floor, VType::F64, regs[ix(i.a)], y); }
            Op::FloorPred => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Floor, VType::Pred, regs[ix(i.a)], y); }
            Op::PowB32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Pow, VType::B32, regs[ix(i.a)], y); }
            Op::PowB64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Pow, VType::B64, regs[ix(i.a)], y); }
            Op::PowF32 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Pow, VType::F32, regs[ix(i.a)], y); }
            Op::PowF64 => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Pow, VType::F64, regs[ix(i.a)], y); }
            Op::PowPred => { let y = if i.b == NO_REG { None } else { Some(regs[ix(i.b)]) }; regs[ix(i.d)] = math(MathOp::Pow, VType::Pred, regs[ix(i.a)], y); }
        }
        pc += 1;
    }

    Ok(LaneCounts {
        simple: cnt[CLS_SIMPLE as usize],
        int64: cnt[CLS_INT64 as usize],
        fp64: cnt[CLS_FP64 as usize],
        sfu: cnt[CLS_SFU as usize],
        spill_touches,
    })
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn ld<M: MemAccess>(
    regs: &mut [u64],
    mem: &mut M,
    warp: &mut WarpMerge,
    lane: usize,
    pc: usize,
    d_idx: usize,
    a_idx: usize,
    bytes: u8,
    space_store: u8,
) -> Result<(), SimError> {
    let addr = regs[a_idx];
    regs[d_idx] = mem.read(addr, bytes as u32)?;
    warp.log(lane, MemEvent { inst: pc as u32, addr, bytes, space_store });
    Ok(())
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn st<M: MemAccess>(
    regs: &mut [u64],
    mem: &mut M,
    warp: &mut WarpMerge,
    lane: usize,
    pc: usize,
    a_idx: usize,
    b_idx: usize,
    bytes: u8,
    space_store: u8,
) -> Result<(), SimError> {
    let addr = regs[a_idx];
    mem.write(addr, bytes as u32, regs[b_idx])?;
    warp.log(lane, MemEvent { inst: pc as u32, addr, bytes, space_store });
    Ok(())
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn atom<M: MemAccess>(
    regs: &mut [u64],
    mem: &mut M,
    warp: &mut WarpMerge,
    lane: usize,
    pc: usize,
    a_idx: usize,
    b_idx: usize,
    ty: VType,
) -> Result<(), SimError> {
    let bytes = ty.size_bytes() as u8;
    let addr = regs[a_idx];
    mem.atom_add(ty, addr, bytes as u32, regs[b_idx])?;
    warp.log(
        lane,
        MemEvent { inst: pc as u32, addr, bytes, space_store: SPACE_GLOBAL | FLAG_STORE | FLAG_ATOMIC },
    );
    Ok(())
}
