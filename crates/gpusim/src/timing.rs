//! The analytic timing model.
//!
//! Converts the interpreter's dynamic counts into estimated execution
//! cycles using a compute/memory overlap model in the spirit of Hong &
//! Kim's MWP/CWP analysis:
//!
//! * **compute time** — issued warp instructions weighted by per-class
//!   throughput, divided over the SMs' issue slots;
//! * **memory latency time** — each memory request carries its space's
//!   latency plus a serialization penalty for every extra transaction an
//!   uncoalesced access generates; the total latency pool is hidden by
//!   however many warps are resident, so **occupancy directly scales
//!   memory-bound performance** (this is what makes register pressure
//!   matter, and what the `small`/`dim` clauses buy back);
//! * **bandwidth time** — total bytes moved over the device interface at
//!   peak bandwidth (a floor for transaction-heavy kernels);
//! * the kernel time is `max` of the three (full overlap assumption) plus
//!   a fixed launch overhead.
//!
//! The model does not try to match absolute hardware numbers — it
//! reproduces the *relationships* the paper's evaluation depends on:
//! fewer loads → faster memory-bound kernels; uncoalesced accesses are
//! an order of magnitude more expensive; fewer registers → more resident
//! warps → better latency hiding; spills add local traffic.

use crate::device::DeviceConfig;
use crate::stats::KernelStats;

/// A cycle estimate with its components, for reports and ablations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingBreakdown {
    /// Compute-side cycles.
    pub compute_cycles: f64,
    /// Latency-side cycles after latency hiding.
    pub memory_cycles: f64,
    /// Bandwidth-floor cycles.
    pub bandwidth_cycles: f64,
    /// Fixed launch overhead cycles.
    pub overhead_cycles: f64,
    /// The modelled kernel time (max of the above + overhead).
    pub total_cycles: f64,
    /// Resident warps per SM used for latency hiding.
    pub active_warps: u32,
    /// Occupancy fraction.
    pub occupancy: f64,
}

impl TimingBreakdown {
    /// Convert cycles to milliseconds at the device clock.
    pub fn millis(&self, dev: &DeviceConfig) -> f64 {
        self.total_cycles / (dev.clock_mhz as f64 * 1e3)
    }

    /// Which side dominates (for reports).
    pub fn bound(&self) -> &'static str {
        if self.compute_cycles >= self.memory_cycles && self.compute_cycles >= self.bandwidth_cycles
        {
            "compute"
        } else if self.memory_cycles >= self.bandwidth_cycles {
            "latency"
        } else {
            "bandwidth"
        }
    }
}

/// Estimate kernel execution time.
///
/// * `stats` — interpreter counts for the launch,
/// * `regs_per_thread` — from the [`crate::ptxas`] report,
/// * `threads_per_block` — launch geometry.
pub fn estimate_time(
    dev: &DeviceConfig,
    stats: &KernelStats,
    regs_per_thread: u32,
    threads_per_block: u32,
) -> TimingBreakdown {
    estimate_time_with(dev, stats, regs_per_thread, threads_per_block, 0)
}

/// Like [`estimate_time`], but additionally accounts for a per-block
/// shared-memory reservation (e.g. a RegDem-style shared spill slab):
/// shared demand limits residency via
/// [`DeviceConfig::occupancy_with_shared`], and `stats.shared_accesses`
/// enter the latency pool at `lat_shared` instead of `lat_local`.
pub fn estimate_time_with(
    dev: &DeviceConfig,
    stats: &KernelStats,
    regs_per_thread: u32,
    threads_per_block: u32,
    shared_bytes_per_block: u32,
) -> TimingBreakdown {
    let occ = dev.occupancy_with_shared(regs_per_thread, threads_per_block, shared_bytes_per_block);
    let active = occ.active_warps_per_sm.max(1);

    // ---- compute side -------------------------------------------------
    let issue_cycles = stats.simple_insts as f64 * dev.cpi_simple
        + stats.int64_insts as f64 * dev.cpi_int64
        + stats.fp64_insts as f64 * dev.cpi_fp64
        + stats.sfu_insts as f64 * dev.cpi_sfu;
    // Each SM has (on Kepler) four warp schedulers; fold that into an
    // effective per-SM issue rate of 4 warp-instructions per cycle.
    let issue_rate_per_sm = 4.0;
    let compute_cycles = issue_cycles / (dev.sm_count as f64 * issue_rate_per_sm);

    // ---- latency side --------------------------------------------------
    // Per-request latency: base latency of the space + departure delay for
    // every transaction beyond the first (uncoalesced serialization).
    let gl_req = (stats.global_ld_requests + stats.global_st_requests) as f64;
    let ro_req = stats.readonly_requests as f64;
    let extra_gl = (stats.global_transactions as f64
        - (stats.global_ld_requests + stats.global_st_requests) as f64)
        .max(0.0);
    let extra_ro = (stats.readonly_transactions as f64 - stats.readonly_requests as f64).max(0.0);
    let latency_pool = gl_req * dev.lat_global as f64
        + extra_gl * dev.uncoalesced_penalty as f64
        + ro_req * dev.lat_readonly as f64
        + extra_ro * dev.uncoalesced_penalty as f64
        + stats.local_accesses as f64 * dev.lat_local as f64
        + stats.shared_accesses as f64 * dev.lat_shared as f64
        + stats.atomics as f64 * (dev.lat_global as f64 * 1.5);
    // Latency is hidden by the resident warps on each SM: with N warps in
    // flight an SM overlaps ~N outstanding requests.
    let memory_cycles = latency_pool / (dev.sm_count as f64 * active as f64);

    // ---- bandwidth floor -----------------------------------------------
    // Achievable bandwidth scales with memory-level parallelism (resident
    // warps) until the interface saturates — Little's law. This is why
    // register savings speed up even bandwidth-bound kernels.
    let bytes = stats.global_bytes(dev.transaction_bytes) as f64;
    let bw_frac = (active as f64 / dev.bw_saturation_warps as f64).min(1.0);
    let bandwidth_cycles = bytes / (dev.bytes_per_cycle * bw_frac);

    let total = compute_cycles.max(memory_cycles).max(bandwidth_cycles)
        + dev.launch_overhead as f64;
    TimingBreakdown {
        compute_cycles,
        memory_cycles,
        bandwidth_cycles,
        overhead_cycles: dev.launch_overhead as f64,
        total_cycles: total,
        active_warps: active,
        occupancy: occ.occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_stats(ld: u64, txn: u64) -> KernelStats {
        KernelStats {
            simple_insts: ld * 4,
            global_ld_requests: ld,
            global_transactions: txn,
            warps: 64,
            threads: 2048,
            ..Default::default()
        }
    }

    #[test]
    fn fewer_loads_is_faster_when_memory_bound() {
        let d = DeviceConfig::k20xm();
        let many = estimate_time(&d, &mem_stats(100_000, 100_000), 32, 256);
        let few = estimate_time(&d, &mem_stats(50_000, 50_000), 32, 256);
        assert!(few.total_cycles < many.total_cycles);
        assert_eq!(many.bound(), "latency");
    }

    #[test]
    fn uncoalesced_transactions_cost_more() {
        let d = DeviceConfig::k20xm();
        let coal = estimate_time(&d, &mem_stats(10_000, 10_000), 32, 256);
        let unco = estimate_time(&d, &mem_stats(10_000, 320_000), 32, 256);
        assert!(unco.total_cycles > 2.0 * coal.total_cycles);
    }

    #[test]
    fn register_pressure_slows_memory_bound_kernels() {
        let d = DeviceConfig::k20xm();
        let s = mem_stats(200_000, 200_000);
        let low = estimate_time(&d, &s, 32, 256);
        let high = estimate_time(&d, &s, 200, 256);
        assert!(high.total_cycles > low.total_cycles);
        assert!(high.active_warps < low.active_warps);
    }

    #[test]
    fn register_pressure_does_not_hurt_compute_bound_kernels() {
        let d = DeviceConfig::k20xm();
        let s = KernelStats {
            simple_insts: 10_000_000,
            sfu_insts: 1_000_000,
            warps: 64,
            ..Default::default()
        };
        let low = estimate_time(&d, &s, 32, 256);
        let high = estimate_time(&d, &s, 128, 256);
        assert_eq!(low.bound(), "compute");
        assert!((high.total_cycles - low.total_cycles).abs() < 1e-6);
    }

    #[test]
    fn readonly_loads_cheaper_than_global() {
        let d = DeviceConfig::k20xm();
        let glob = mem_stats(50_000, 50_000);
        let ro = KernelStats {
            simple_insts: glob.simple_insts,
            readonly_requests: 50_000,
            readonly_transactions: 50_000,
            warps: 64,
            threads: 2048,
            ..Default::default()
        };
        let tg = estimate_time(&d, &glob, 32, 256);
        let tr = estimate_time(&d, &ro, 32, 256);
        assert!(tr.total_cycles < tg.total_cycles);
    }

    #[test]
    fn spill_traffic_adds_time() {
        let d = DeviceConfig::k20xm();
        let clean = mem_stats(10_000, 10_000);
        let mut spilled = clean;
        spilled.local_accesses = 100_000;
        let tc = estimate_time(&d, &clean, 32, 256);
        let ts = estimate_time(&d, &spilled, 32, 256);
        assert!(ts.total_cycles > tc.total_cycles);
    }

    #[test]
    fn shared_spills_cheaper_than_local_spills() {
        let d = DeviceConfig::k20xm();
        let mut local = mem_stats(10_000, 10_000);
        local.local_accesses = 100_000;
        let mut shared = mem_stats(10_000, 10_000);
        shared.shared_accesses = 100_000;
        let tl = estimate_time(&d, &local, 32, 256);
        // Even paying the residency cost of a 4 KiB spill slab per block,
        // shared-latency spills beat local-memory round trips.
        let ts = estimate_time_with(&d, &shared, 32, 256, 4096);
        assert!(ts.total_cycles < tl.total_cycles);
    }

    #[test]
    fn shared_slab_can_limit_occupancy() {
        let d = DeviceConfig::k20xm();
        let s = mem_stats(200_000, 200_000);
        let free = estimate_time_with(&d, &s, 32, 256, 0);
        let heavy = estimate_time_with(&d, &s, 32, 256, 24_576);
        assert!(heavy.active_warps < free.active_warps);
        assert!(heavy.total_cycles > free.total_cycles);
    }

    #[test]
    fn millis_conversion_positive() {
        let d = DeviceConfig::k20xm();
        let t = estimate_time(&d, &mem_stats(1000, 1000), 32, 256);
        assert!(t.millis(&d) > 0.0);
    }
}
