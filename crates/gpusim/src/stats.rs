//! Dynamic execution statistics gathered by the interpreter and consumed
//! by the timing model.

/// Warp-level dynamic counts for one kernel launch.
///
/// Instruction counts are *issued warp instructions* (one per warp per
/// executed instruction under uniform control flow; under divergence the
/// per-class maximum across lanes is used, a standard approximation).
/// Memory counts distinguish *requests* (one per warp access) from
/// *transactions* (128-byte segments actually touched, computed from the
/// 32 lanes' addresses — this is where uncoalesced access patterns show
/// up as 32× traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// int32 / fp32 / mov / cvt / setp / branch issues.
    pub simple_insts: u64,
    /// 64-bit integer ALU issues (register pairs → half throughput).
    pub int64_insts: u64,
    /// fp64 issues.
    pub fp64_insts: u64,
    /// Special-function (sqrt, exp, sin, ...) issues.
    pub sfu_insts: u64,
    /// Global-memory load requests (warp accesses).
    pub global_ld_requests: u64,
    /// Global-memory store requests.
    pub global_st_requests: u64,
    /// Global-memory 128-byte transactions (loads + stores).
    pub global_transactions: u64,
    /// Read-only-cache load requests.
    pub readonly_requests: u64,
    /// Read-only-cache transactions.
    pub readonly_transactions: u64,
    /// Local-memory (spill) accesses.
    pub local_accesses: u64,
    /// Shared-memory accesses (spills under `SpillTarget::Shared`; zero
    /// for kernels compiled with the default local spill target).
    pub shared_accesses: u64,
    /// Global atomic operations (each serializes to one transaction).
    pub atomics: u64,
    /// Warps executed.
    pub warps: u64,
    /// Threads executed.
    pub threads: u64,
}

impl KernelStats {
    /// Accumulate another stats record into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.simple_insts += other.simple_insts;
        self.int64_insts += other.int64_insts;
        self.fp64_insts += other.fp64_insts;
        self.sfu_insts += other.sfu_insts;
        self.global_ld_requests += other.global_ld_requests;
        self.global_st_requests += other.global_st_requests;
        self.global_transactions += other.global_transactions;
        self.readonly_requests += other.readonly_requests;
        self.readonly_transactions += other.readonly_transactions;
        self.local_accesses += other.local_accesses;
        self.shared_accesses += other.shared_accesses;
        self.atomics += other.atomics;
        self.warps += other.warps;
        self.threads += other.threads;
    }

    /// Total issued warp instructions of all classes.
    pub fn total_issued(&self) -> u64 {
        self.simple_insts + self.int64_insts + self.fp64_insts + self.sfu_insts
    }

    /// Total memory requests of all spaces.
    pub fn total_mem_requests(&self) -> u64 {
        self.global_ld_requests
            + self.global_st_requests
            + self.readonly_requests
            + self.local_accesses
            + self.shared_accesses
            + self.atomics
    }

    /// Bytes moved over the global-memory interface.
    pub fn global_bytes(&self, transaction_bytes: u32) -> u64 {
        (self.global_transactions + self.readonly_transactions + self.atomics)
            * transaction_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = KernelStats { simple_insts: 1, warps: 2, ..Default::default() };
        let b = KernelStats {
            simple_insts: 10,
            fp64_insts: 3,
            global_transactions: 7,
            warps: 4,
            threads: 128,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.simple_insts, 11);
        assert_eq!(a.fp64_insts, 3);
        assert_eq!(a.global_transactions, 7);
        assert_eq!(a.warps, 6);
        assert_eq!(a.threads, 128);
    }

    #[test]
    fn totals() {
        let s = KernelStats {
            simple_insts: 5,
            int64_insts: 1,
            fp64_insts: 2,
            sfu_insts: 3,
            global_ld_requests: 4,
            readonly_requests: 2,
            atomics: 1,
            global_transactions: 9,
            readonly_transactions: 2,
            ..Default::default()
        };
        assert_eq!(s.total_issued(), 11);
        assert_eq!(s.total_mem_requests(), 7);
        assert_eq!(s.global_bytes(128), (9 + 2 + 1) * 128);
    }
}
