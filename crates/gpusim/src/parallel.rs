//! Block-parallel launch execution: a scoped worker pool that runs a
//! launch's blocks concurrently while keeping every observable output —
//! result buffers, statistics, error values — bitwise-identical to the
//! serial engines.
//!
//! CUDA's execution model makes blocks within a launch independent: they
//! interact only through global memory and atomics. The simulator
//! exploits exactly that independence. The one hazard is the
//! read-modify-write of `AtomAdd`, whose result depends on execution
//! order; floating-point addition is not associative, so a naive
//! parallel merge would change bits. The scheme here:
//!
//! * every worker sees device memory through a [`WorkerMem`] view:
//!   plain loads and stores go straight to the shared buffers (relaxed
//!   per-byte atomics — blocks of a race-free launch never touch the
//!   same bytes), while `AtomAdd` operands are *recorded* per block and
//!   applied to a private overlay so the block observes its own adds;
//! * after the join, the recorded operand logs are replayed against
//!   real device memory **in block-ID order** — precisely the sequence
//!   the serial interpreter would have produced, so even `f32`
//!   accumulation matches bit-for-bit.
//!
//! Blocks are handed out through a monotonic claim counter, so when a
//! block fails every lower-numbered block has already been claimed and
//! is allowed to finish; returning the lowest-numbered failing block's
//! error therefore reproduces the serial engine's first-error exactly.
//!
//! The guarantee covers launches that are race-free across blocks (all
//! shipped workloads): a kernel that plain-loads bytes plain-stored by a
//! *different* block mid-launch is scheduling-dependent on real
//! hardware, and is out of scope here too.

use crate::interp::{atom_add, LaunchConfig, SimError};
use crate::memory::{DeviceMemory, MemFault, OFFSET_BITS};
use crate::stats::KernelStats;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Once;

// ---------------------------------------------------------------------------
// sim-threads knobs: env, process default, thread-local scope, per-launch
// ---------------------------------------------------------------------------

/// Process-wide sim-threads setting. `0` means *auto* (one worker per
/// available CPU); `u32::MAX` is the uninitialized sentinel replaced by
/// `SAFARA_SIM_THREADS` on first use.
static SIM_THREADS: AtomicU32 = AtomicU32::new(u32::MAX);
static SIM_THREADS_INIT: Once = Once::new();

std::thread_local! {
    static SIM_THREADS_OVERRIDE: Cell<Option<u32>> = const { Cell::new(None) };
    static LAST_PARALLEL: RefCell<Option<ParallelInfo>> = const { RefCell::new(None) };
}

/// High-water mark of worker-pool widths actually used by launches since
/// the last [`reset_max_sim_threads_used`]. Serial launches count as 1.
static MAX_USED: AtomicU32 = AtomicU32::new(1);

/// Parse a sim-threads setting: `auto` (or empty) means one worker per
/// available CPU, otherwise a positive thread count.
pub fn parse_sim_threads(s: &str) -> Option<u32> {
    match s.trim() {
        "auto" | "" => Some(0),
        t => t.parse::<u32>().ok().filter(|n| *n >= 1),
    }
}

fn env_sim_threads_init() {
    SIM_THREADS_INIT.call_once(|| {
        let v = std::env::var("SAFARA_SIM_THREADS")
            .ok()
            .and_then(|s| parse_sim_threads(&s))
            .unwrap_or(0);
        // Lost to an explicit `set_sim_threads` racing ahead of us: keep
        // the explicit setting.
        let _ = SIM_THREADS.compare_exchange(u32::MAX, v, Ordering::SeqCst, Ordering::SeqCst);
    });
}

/// Set the process-wide default worker count for launches (`0` = auto:
/// one worker per available CPU). Overrides `SAFARA_SIM_THREADS`.
pub fn set_sim_threads(n: u32) {
    env_sim_threads_init();
    SIM_THREADS.store(n, Ordering::SeqCst);
}

/// Run `f` with a thread-local sim-threads override (`0` = auto), then
/// restore the previous override even on unwind. Mirrors
/// [`crate::interp::with_engine`].
pub fn with_sim_threads<T>(n: u32, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<u32>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SIM_THREADS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(SIM_THREADS_OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

fn global_sim_threads() -> u32 {
    env_sim_threads_init();
    match SIM_THREADS.load(Ordering::SeqCst) {
        u32::MAX => 0,
        v => v,
    }
}

fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The worker count a launch without a per-launch override would use on
/// the current thread, with `auto` already expanded.
pub fn current_sim_threads() -> u32 {
    let setting = SIM_THREADS_OVERRIDE.with(|c| c.get()).unwrap_or_else(global_sim_threads);
    if setting == 0 {
        auto_threads() as u32
    } else {
        setting
    }
}

/// Resolve the worker count for one launch: per-launch override, then
/// the thread-local scope, then the process default / env, then auto.
pub(crate) fn resolve_sim_threads(config: &LaunchConfig) -> usize {
    let setting = config
        .sim_threads
        .or_else(|| SIM_THREADS_OVERRIDE.with(|c| c.get()))
        .unwrap_or_else(global_sim_threads);
    if setting == 0 {
        auto_threads()
    } else {
        setting as usize
    }
    .max(1)
}

// ---------------------------------------------------------------------------
// Telemetry: what the last launch on this thread actually did
// ---------------------------------------------------------------------------

/// How the most recent launch on this thread distributed its blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelInfo {
    /// Workers actually spawned (after clamping to the block count).
    pub threads: u32,
    /// Blocks executed by each worker, indexed by worker.
    pub per_worker_blocks: Vec<u64>,
}

impl ParallelInfo {
    /// Load-imbalance ratio: max per-worker blocks over the ideal even
    /// share. `1.0` is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.per_worker_blocks.iter().sum();
        let max = self.per_worker_blocks.iter().copied().max().unwrap_or(0);
        if total == 0 || self.per_worker_blocks.is_empty() {
            return 1.0;
        }
        max as f64 / (total as f64 / self.per_worker_blocks.len() as f64)
    }
}

/// Worker-pool telemetry of the most recent launch on this thread, or
/// `None` if it ran serially.
pub fn last_parallel_info() -> Option<ParallelInfo> {
    LAST_PARALLEL.with(|c| c.borrow().clone())
}

pub(crate) fn clear_last_parallel_info() {
    LAST_PARALLEL.with(|c| *c.borrow_mut() = None);
    MAX_USED.fetch_max(1, Ordering::Relaxed);
}

fn set_last_parallel_info(info: ParallelInfo) {
    MAX_USED.fetch_max(info.threads, Ordering::Relaxed);
    LAST_PARALLEL.with(|c| *c.borrow_mut() = Some(info));
}

/// Reset the process-wide high-water mark of worker counts used.
pub fn reset_max_sim_threads_used() {
    MAX_USED.store(1, Ordering::Relaxed);
}

/// Highest worker count any launch used since the last reset (1 if all
/// launches ran serially).
pub fn max_sim_threads_used() -> u32 {
    MAX_USED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// MemAccess: the engines' memory port, generic over serial / worker views
// ---------------------------------------------------------------------------

/// The memory operations an engine needs while executing a block. The
/// serial engines run against [`DeviceMemory`] directly (the impl below
/// monomorphizes to exactly the pre-existing code); parallel workers run
/// against a [`WorkerMem`] view.
pub(crate) trait MemAccess {
    fn read(&mut self, addr: u64, bytes: u32) -> Result<u64, MemFault>;
    fn write(&mut self, addr: u64, bytes: u32, value: u64) -> Result<(), MemFault>;
    /// Atomic read-modify-write add (the only RMW in the ISA).
    fn atom_add(&mut self, ty: crate::vir::VType, addr: u64, bytes: u32, add: u64)
        -> Result<(), MemFault>;
}

impl MemAccess for DeviceMemory {
    #[inline(always)]
    fn read(&mut self, addr: u64, bytes: u32) -> Result<u64, MemFault> {
        DeviceMemory::read(self, addr, bytes)
    }

    #[inline(always)]
    fn write(&mut self, addr: u64, bytes: u32, value: u64) -> Result<(), MemFault> {
        DeviceMemory::write(self, addr, bytes, value)
    }

    #[inline(always)]
    fn atom_add(
        &mut self,
        ty: crate::vir::VType,
        addr: u64,
        bytes: u32,
        add: u64,
    ) -> Result<(), MemFault> {
        // The exact read→add→write sequence the serial engines performed
        // inline before this trait existed.
        let old = DeviceMemory::read(self, addr, bytes)?;
        DeviceMemory::write(self, addr, bytes, atom_add(ty, old, add))
    }
}

// ---------------------------------------------------------------------------
// SharedMem / WorkerMem: the Send-able split of DeviceMemory
// ---------------------------------------------------------------------------

/// Device memory reinterpreted as shared atomic bytes so worker threads
/// can access it concurrently. Construction takes `&mut DeviceMemory`,
/// so no other (non-atomic) access can coexist with the view.
pub(crate) struct SharedMem<'a> {
    bufs: Vec<&'a [AtomicU8]>,
}

fn as_atomic_bytes(s: &mut [u8]) -> &[AtomicU8] {
    // Sound: AtomicU8 has the same size/alignment as u8, and the &mut
    // borrow guarantees exclusive provenance over the region for 'a.
    unsafe { &*(s as *mut [u8] as *const [AtomicU8]) }
}

impl<'a> SharedMem<'a> {
    pub(crate) fn new(mem: &'a mut DeviceMemory) -> Self {
        SharedMem {
            bufs: mem.buffers_mut().iter_mut().map(|b| as_atomic_bytes(b)).collect(),
        }
    }

    /// Address decode with the exact fault messages of
    /// `DeviceMemory::decode`, so parallel faults are byte-identical.
    fn decode(&self, addr: u64, bytes: u32) -> Result<(usize, usize), MemFault> {
        let buf = (addr >> OFFSET_BITS) as usize;
        let off = (addr & ((1u64 << OFFSET_BITS) - 1)) as usize;
        if buf == 0 || buf > self.bufs.len() {
            return Err(MemFault { addr, bytes, message: "unmapped address".into() });
        }
        let b = buf - 1;
        if off + bytes as usize > self.bufs[b].len() {
            return Err(MemFault {
                addr,
                bytes,
                message: format!(
                    "out of bounds: offset {off} + {bytes} > buffer size {}",
                    self.bufs[b].len()
                ),
            });
        }
        Ok((b, off))
    }

    fn load(&self, addr: u64, bytes: u32) -> Result<u64, MemFault> {
        let (b, off) = self.decode(addr, bytes)?;
        let buf = self.bufs[b];
        let mut v = 0u64;
        for i in 0..bytes as usize {
            v |= (buf[off + i].load(Ordering::Relaxed) as u64) << (8 * i);
        }
        Ok(v)
    }

    fn store(&self, addr: u64, bytes: u32, value: u64) -> Result<(), MemFault> {
        let (b, off) = self.decode(addr, bytes)?;
        let buf = self.bufs[b];
        for i in 0..bytes as usize {
            buf[off + i].store((value >> (8 * i)) as u8, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// One deferred read-modify-write (or a plain store ordered after one),
/// recorded during parallel block execution and replayed in block-ID
/// order after the join.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DeferredOp {
    /// An `AtomAdd` — the *operand* is recorded, not the result, so the
    /// replay compounds across blocks exactly as serial execution did.
    Atom { ty: crate::vir::VType, addr: u64, bytes: u32, add: u64 },
    /// A plain store that touched bytes this block had already
    /// atomically updated; kept in the log to preserve program order.
    Store { addr: u64, bytes: u32, value: u64 },
}

/// One worker's view of device memory: pass-through for plain accesses,
/// a private overlay plus an operand log for atomics.
pub(crate) struct WorkerMem<'a, 'sh> {
    shared: &'sh SharedMem<'a>,
    /// Byte address → this block's pending value for that byte.
    overlay: HashMap<u64, u8>,
    log: Vec<DeferredOp>,
    /// Inclusive address range covered by `overlay` (fast rejection).
    lo: u64,
    hi: u64,
}

impl<'a, 'sh> WorkerMem<'a, 'sh> {
    pub(crate) fn new(shared: &'sh SharedMem<'a>) -> Self {
        WorkerMem { shared, overlay: HashMap::new(), log: Vec::new(), lo: u64::MAX, hi: 0 }
    }

    fn overlay_may_cover(&self, addr: u64, bytes: u32) -> bool {
        !self.overlay.is_empty() && addr <= self.hi && addr + bytes as u64 > self.lo
    }

    fn put_overlay(&mut self, addr: u64, bytes: u32, value: u64) {
        for i in 0..bytes as u64 {
            self.overlay.insert(addr + i, (value >> (8 * i)) as u8);
        }
        self.lo = self.lo.min(addr);
        self.hi = self.hi.max(addr + bytes as u64 - 1);
    }

    /// Drain this block's deferred operations (and reset the overlay)
    /// for the post-join ordered replay.
    pub(crate) fn take_deferred(&mut self) -> Vec<DeferredOp> {
        self.overlay.clear();
        self.lo = u64::MAX;
        self.hi = 0;
        std::mem::take(&mut self.log)
    }
}

impl MemAccess for WorkerMem<'_, '_> {
    fn read(&mut self, addr: u64, bytes: u32) -> Result<u64, MemFault> {
        let mut v = self.shared.load(addr, bytes)?;
        if self.overlay_may_cover(addr, bytes) {
            for i in 0..bytes as u64 {
                if let Some(&b) = self.overlay.get(&(addr + i)) {
                    v = (v & !(0xFFu64 << (8 * i))) | ((b as u64) << (8 * i));
                }
            }
        }
        Ok(v)
    }

    fn write(&mut self, addr: u64, bytes: u32, value: u64) -> Result<(), MemFault> {
        let deferred = self.overlay_may_cover(addr, bytes)
            && (0..bytes as u64).any(|i| self.overlay.contains_key(&(addr + i)));
        if deferred {
            // Ordered after this block's pending atomics on those bytes:
            // keep it in the log so the replay preserves program order.
            self.shared.decode(addr, bytes)?;
            self.log.push(DeferredOp::Store { addr, bytes, value });
            self.put_overlay(addr, bytes, value);
            Ok(())
        } else {
            self.shared.store(addr, bytes, value)
        }
    }

    fn atom_add(
        &mut self,
        ty: crate::vir::VType,
        addr: u64,
        bytes: u32,
        add: u64,
    ) -> Result<(), MemFault> {
        // Apply to the private overlay so the block observes its own
        // adds; record the operand for the ordered replay.
        let old = self.read(addr, bytes)?;
        self.put_overlay(addr, bytes, atom_add(ty, old, add));
        self.log.push(DeferredOp::Atom { ty, addr, bytes, add });
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------------

/// Sets the abort flag if its worker unwinds, so sibling workers stop
/// claiming blocks instead of racing a poisoned launch.
struct AbortOnPanic<'f>(&'f AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

fn apply_deferred(mem: &mut DeviceMemory, op: &DeferredOp) -> Result<(), MemFault> {
    match *op {
        DeferredOp::Atom { ty, addr, bytes, add } => {
            let old = mem.read(addr, bytes)?;
            mem.write(addr, bytes, atom_add(ty, old, add))
        }
        DeferredOp::Store { addr, bytes, value } => mem.write(addr, bytes, value),
    }
}

/// Execute blocks `first_block .. first_block + n_blocks` across a
/// scoped worker pool and perform the deterministic merge.
///
/// `make_state` builds one worker's private scratch (register file, warp
/// merge buffers, counters); `exec` runs one block against a
/// [`WorkerMem`] view and returns the block's stats delta. Returns the
/// summed stats and every worker's final scratch (in worker order, for
/// engine-specific counter flushes).
///
/// Determinism: stats are summed and deferred atomics replayed in
/// block-ID order; on failure the lowest-numbered failing block's error
/// is returned, which the monotonic claim counter makes identical to
/// serial execution's first error.
pub(crate) fn run_blocks_parallel<S, G, E>(
    mem: &mut DeviceMemory,
    first_block: u64,
    n_blocks: u64,
    threads: usize,
    make_state: G,
    exec: E,
) -> Result<(KernelStats, Vec<S>), SimError>
where
    S: Send,
    G: Fn(usize) -> S + Sync,
    E: for<'a, 'sh> Fn(u64, &mut S, &mut WorkerMem<'a, 'sh>) -> Result<KernelStats, SimError>
        + Sync,
{
    type BlockOutcome = (u64, Result<(KernelStats, Vec<DeferredOp>), SimError>);

    let nworkers = threads.min(n_blocks.max(1) as usize).max(1);
    let next = AtomicU64::new(0);
    let abort = AtomicBool::new(false);
    let mut outcomes: Vec<BlockOutcome> = Vec::with_capacity(n_blocks as usize);
    let mut states: Vec<(usize, S)> = Vec::with_capacity(nworkers);
    let mut per_worker = vec![0u64; nworkers];
    {
        let shared = SharedMem::new(mem);
        let shared = &shared;
        let joined = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nworkers)
                .map(|wi| {
                    let (next, abort) = (&next, &abort);
                    let (make_state, exec) = (&make_state, &exec);
                    scope.spawn(move || {
                        let _guard = AbortOnPanic(abort);
                        let mut state = make_state(wi);
                        let mut wm = WorkerMem::new(shared);
                        let mut out: Vec<BlockOutcome> = Vec::new();
                        while !abort.load(Ordering::Relaxed) {
                            // Monotonic claims: when block b fails, every
                            // block below b is already claimed and will
                            // complete — the basis of first-error parity.
                            let b = next.fetch_add(1, Ordering::Relaxed);
                            if b >= n_blocks {
                                break;
                            }
                            match exec(first_block + b, &mut state, &mut wm) {
                                Ok(stats) => {
                                    out.push((first_block + b, Ok((stats, wm.take_deferred()))));
                                }
                                Err(e) => {
                                    wm.take_deferred();
                                    abort.store(true, Ordering::Relaxed);
                                    out.push((first_block + b, Err(e)));
                                    break;
                                }
                            }
                        }
                        (wi, state, out)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        });
        let mut panic_payload = None;
        for j in joined {
            match j {
                Ok((wi, state, out)) => {
                    per_worker[wi] = out.len() as u64;
                    states.push((wi, state));
                    outcomes.extend(out);
                }
                Err(p) => {
                    panic_payload.get_or_insert(p);
                }
            };
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
    }
    set_last_parallel_info(ParallelInfo {
        threads: nworkers as u32,
        per_worker_blocks: per_worker,
    });

    outcomes.sort_by_key(|(b, _)| *b);
    // Lowest failing block wins — the block serial execution would have
    // failed on first. The post-error memory state is unobservable (the
    // pipeline aborts before any download and errors are never cached),
    // so the replay is skipped.
    for (_, r) in &outcomes {
        if let Err(e) = r {
            return Err(e.clone());
        }
    }
    let mut stats = KernelStats::default();
    for (_, r) in outcomes {
        let (block_stats, deferred) = r.expect("errors returned above");
        stats.merge(&block_stats);
        for op in &deferred {
            apply_deferred(mem, op)?;
        }
    }
    states.sort_by_key(|(wi, _)| *wi);
    Ok((stats, states.into_iter().map(|(_, s)| s).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vir::VType;

    fn mem_with_f32(vals: &[f32]) -> (DeviceMemory, u64) {
        let mut mem = DeviceMemory::new();
        let id = mem.alloc(vals.len() * 4);
        mem.copy_in_f32(id, vals);
        let base = mem.base_addr(id);
        (mem, base)
    }

    #[test]
    fn device_memory_atom_matches_read_modify_write() {
        let (mut mem, base) = mem_with_f32(&[1.5]);
        MemAccess::atom_add(&mut mem, VType::F32, base, 4, 2.25f32.to_bits() as u64).unwrap();
        assert_eq!(mem.copy_out_f32(crate::memory::BufferId(0)), vec![3.75]);
    }

    #[test]
    fn worker_mem_observes_its_own_atomics() {
        let (mut mem, base) = mem_with_f32(&[1.0, 10.0]);
        {
            let shared = SharedMem::new(&mut mem);
            let mut wm = WorkerMem::new(&shared);
            wm.atom_add(VType::F32, base, 4, 2.0f32.to_bits() as u64).unwrap();
            wm.atom_add(VType::F32, base, 4, 0.5f32.to_bits() as u64).unwrap();
            // Read-your-own-adds through the overlay...
            assert_eq!(f32::from_bits(wm.read(base, 4).unwrap() as u32), 3.5);
            // ...but the shared bytes still hold the initial value, and a
            // non-overlapping plain store goes straight through.
            wm.write(base + 4, 4, 20.0f32.to_bits() as u64).unwrap();
            assert_eq!(wm.take_deferred().len(), 2);
        }
        assert_eq!(mem.copy_out_f32(crate::memory::BufferId(0)), vec![1.0, 20.0]);
    }

    #[test]
    fn store_after_atom_defers_and_replays_in_order() {
        let (mut mem, base) = mem_with_f32(&[1.0]);
        let ops = {
            let shared = SharedMem::new(&mut mem);
            let mut wm = WorkerMem::new(&shared);
            wm.atom_add(VType::F32, base, 4, 2.0f32.to_bits() as u64).unwrap();
            wm.write(base, 4, 7.0f32.to_bits() as u64).unwrap();
            wm.atom_add(VType::F32, base, 4, 1.0f32.to_bits() as u64).unwrap();
            assert_eq!(f32::from_bits(wm.read(base, 4).unwrap() as u32), 8.0);
            wm.take_deferred()
        };
        assert_eq!(ops.len(), 3);
        for op in &ops {
            apply_deferred(&mut mem, op).unwrap();
        }
        assert_eq!(mem.copy_out_f32(crate::memory::BufferId(0)), vec![8.0]);
    }

    #[test]
    fn worker_mem_faults_match_device_memory() {
        let (mut mem, base) = mem_with_f32(&[0.0; 4]);
        let direct = DeviceMemory::read(&mem, base + 14, 4).unwrap_err();
        let unmapped = DeviceMemory::read(&mem, 0, 4).unwrap_err();
        let shared = SharedMem::new(&mut mem);
        let mut wm = WorkerMem::new(&shared);
        assert_eq!(wm.read(base + 14, 4).unwrap_err(), direct);
        assert_eq!(wm.read(0, 4).unwrap_err(), unmapped);
        assert_eq!(wm.write(base + 14, 4, 0).unwrap_err(), direct);
        assert_eq!(wm.atom_add(VType::B32, base + 14, 4, 1).unwrap_err(), direct);
    }

    /// The heart of the determinism claim: many blocks atomically adding
    /// f32 values merge to exactly the serial left-to-right sum, for any
    /// worker count.
    #[test]
    fn parallel_f32_atomics_replay_bitwise_serial() {
        let n_blocks = 64u64;
        let adds: Vec<f32> = (0..n_blocks).map(|b| 1.0 + (b as f32) * 0.3337).collect();
        // Serial ground truth: strictly ordered accumulation.
        let mut serial = 0.123f32;
        for a in &adds {
            serial += *a;
        }
        for threads in [1usize, 2, 3, 8] {
            let (mut mem, base) = mem_with_f32(&[0.123]);
            let adds = &adds;
            let (stats, _states) = run_blocks_parallel(
                &mut mem,
                0,
                n_blocks,
                threads,
                |_wi| (),
                move |b, _state, wm| {
                    wm.atom_add(VType::F32, base, 4, adds[b as usize].to_bits() as u64)?;
                    Ok(KernelStats { atomics: 1, ..Default::default() })
                },
            )
            .unwrap();
            assert_eq!(stats.atomics, n_blocks);
            let out = mem.copy_out_f32(crate::memory::BufferId(0));
            assert_eq!(
                out[0].to_bits(),
                serial.to_bits(),
                "threads={threads}: parallel atomic merge diverged from serial"
            );
        }
    }

    #[test]
    fn lowest_failing_block_error_wins() {
        let (mut mem, base) = mem_with_f32(&[0.0; 8]);
        let err = run_blocks_parallel(
            &mut mem,
            0,
            16,
            4,
            |_wi| (),
            move |b, _state, wm| {
                if b == 3 || b == 11 {
                    // Out-of-bounds fault; block 3 must win over block 11.
                    wm.read(base + 100 + b, 4)?;
                }
                Ok(KernelStats::default())
            },
        )
        .unwrap_err();
        match err {
            SimError::Fault(f) => assert_eq!(f.addr, base + 103),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let (mut mem, _base) = mem_with_f32(&[0.0]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = run_blocks_parallel(
                &mut mem,
                0,
                32,
                4,
                |_wi| (),
                |b, _state: &mut (), _wm| {
                    if b == 5 {
                        panic!("injected worker panic");
                    }
                    Ok(KernelStats::default())
                },
            );
        }));
        assert!(r.is_err(), "worker panic must resurface on the launching thread");
        // The pool is fully torn down: a fresh launch over the same
        // memory works.
        let (stats, _) = run_blocks_parallel(
            &mut mem,
            0,
            4,
            2,
            |_wi| (),
            |_b, _state: &mut (), _wm| Ok(KernelStats { threads: 1, ..Default::default() }),
        )
        .unwrap();
        assert_eq!(stats.threads, 4);
    }

    #[test]
    fn telemetry_records_threads_and_block_shares() {
        let (mut mem, _base) = mem_with_f32(&[0.0]);
        reset_max_sim_threads_used();
        let (_stats, _) = run_blocks_parallel(
            &mut mem,
            0,
            10,
            3,
            |_wi| (),
            |_b, _state: &mut (), _wm| Ok(KernelStats::default()),
        )
        .unwrap();
        let info = last_parallel_info().expect("parallel launch records info");
        assert_eq!(info.threads, 3);
        assert_eq!(info.per_worker_blocks.iter().sum::<u64>(), 10);
        assert!(info.imbalance() >= 1.0);
        assert_eq!(max_sim_threads_used(), 3);
        reset_max_sim_threads_used();
        assert_eq!(max_sim_threads_used(), 1);
    }

    #[test]
    fn sim_threads_parse_and_scopes() {
        assert_eq!(parse_sim_threads("auto"), Some(0));
        assert_eq!(parse_sim_threads(" 4 "), Some(4));
        assert_eq!(parse_sim_threads("0"), None);
        assert_eq!(parse_sim_threads("lots"), None);
        let cfg = LaunchConfig::d1(8, 32);
        let outer = resolve_sim_threads(&cfg);
        assert!(outer >= 1);
        with_sim_threads(5, || {
            assert_eq!(resolve_sim_threads(&cfg), 5);
            assert_eq!(current_sim_threads(), 5);
            // Per-launch override beats the scope.
            assert_eq!(resolve_sim_threads(&cfg.with_sim_threads(2)), 2);
            with_sim_threads(0, || {
                assert_eq!(resolve_sim_threads(&cfg), auto_threads());
            });
            assert_eq!(resolve_sim_threads(&cfg), 5);
        });
        assert_eq!(resolve_sim_threads(&cfg), outer);
    }
}
