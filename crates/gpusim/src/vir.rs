//! VIR — the PTX-like virtual ISA.
//!
//! Like PTX, VIR is a typed, load/store virtual instruction set with an
//! **unlimited** supply of virtual registers; the actual hardware register
//! budget is decided later by the [`crate::ptxas`] allocator. Types follow
//! PTX conventions: `b32`/`b64` untyped-ish integer bit containers,
//! `f32`/`f64` floats, and 1-bit predicates.

use std::fmt;

/// Value types of virtual registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VType {
    /// 32-bit integer/bits.
    B32,
    /// 64-bit integer/bits (also used for addresses).
    B64,
    /// IEEE binary32.
    F32,
    /// IEEE binary64.
    F64,
    /// 1-bit predicate.
    Pred,
}

impl VType {
    /// Number of 32-bit hardware registers a value of this type occupies.
    /// Predicates live in a separate predicate file and cost 0 here, as on
    /// real NVIDIA hardware.
    pub fn hw_regs(self) -> u32 {
        match self {
            VType::B32 | VType::F32 => 1,
            VType::B64 | VType::F64 => 2,
            VType::Pred => 0,
        }
    }

    /// Size in bytes when stored to memory.
    pub fn size_bytes(self) -> u32 {
        match self {
            VType::B32 | VType::F32 => 4,
            VType::B64 | VType::F64 => 8,
            VType::Pred => 1,
        }
    }

    /// True for the floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, VType::F32 | VType::F64)
    }

    /// PTX-style suffix, for the disassembler.
    pub fn suffix(self) -> &'static str {
        match self {
            VType::B32 => "b32",
            VType::B64 => "b64",
            VType::F32 => "f32",
            VType::F64 => "f64",
            VType::Pred => "pred",
        }
    }
}

/// A virtual register id. Its type lives in [`KernelVir::vregs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

/// Instruction operands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A virtual register.
    Reg(VReg),
    /// Integer immediate.
    ImmI(i64),
    /// Float immediate.
    ImmF(f64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn reg(&self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

/// Two-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division truncates toward zero).
    Div,
    /// Remainder (integers only).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise/logical and.
    And,
    /// Bitwise/logical or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
}

/// Comparison operators for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Special-function-unit math operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathOp {
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Absolute value.
    Abs,
    /// Floor.
    Floor,
    /// Power (two-operand).
    Pow,
}

/// Built-in special registers (thread/block coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// `threadIdx.{x,y,z}`
    Tid(u8),
    /// `blockIdx.{x,y,z}`
    CtaId(u8),
    /// `blockDim.{x,y,z}`
    NTid(u8),
    /// `gridDim.{x,y,z}`
    NCtaId(u8),
}

/// Memory spaces for loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Read/write global memory (L2-cached on Kepler).
    Global,
    /// Read-only global data served by the 48 KB read-only data cache
    /// (`__ldg`); only valid for loads.
    ReadOnly,
    /// Per-thread local memory (register spills).
    Local,
}

/// A branch target label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// VIR instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `mov.ty d, a`
    Mov {
        /// Result type.
        ty: VType,
        /// Destination.
        d: VReg,
        /// Source.
        a: Operand,
    },
    /// `op.ty d, a, b`
    Alu {
        /// Operation.
        op: AluOp,
        /// Operand/result type.
        ty: VType,
        /// Destination.
        d: VReg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `neg.ty d, a`
    Neg {
        /// Operand/result type.
        ty: VType,
        /// Destination.
        d: VReg,
        /// Source.
        a: Operand,
    },
    /// `not.pred d, a`
    Not {
        /// Destination predicate.
        d: VReg,
        /// Source predicate.
        a: VReg,
    },
    /// `cvt.dty.aty d, a` — numeric conversion.
    Cvt {
        /// Destination type.
        dty: VType,
        /// Destination.
        d: VReg,
        /// Source type.
        aty: VType,
        /// Source.
        a: Operand,
    },
    /// `setp.op.ty d, a, b` — set predicate from comparison.
    Setp {
        /// Comparison.
        op: CmpOp,
        /// Operand type.
        ty: VType,
        /// Destination predicate.
        d: VReg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Special-function math (`sqrt`, `exp`, ... `pow` takes `b`).
    Math {
        /// Operation.
        op: MathOp,
        /// Operand/result type (f32/f64).
        ty: VType,
        /// Destination.
        d: VReg,
        /// First operand.
        a: Operand,
        /// Second operand (for `Pow`).
        b: Option<Operand>,
    },
    /// `ld.space.ty d, [addr]`
    Ld {
        /// Memory space.
        space: MemSpace,
        /// Loaded type.
        ty: VType,
        /// Destination.
        d: VReg,
        /// Byte address (b64 register).
        addr: VReg,
    },
    /// `st.space.ty [addr], a`
    St {
        /// Memory space (never `ReadOnly`).
        space: MemSpace,
        /// Stored type.
        ty: VType,
        /// Byte address (b64 register).
        addr: VReg,
        /// Value to store.
        a: Operand,
    },
    /// Load a kernel parameter (by parameter index).
    LdParam {
        /// Parameter value type (pointers are b64).
        ty: VType,
        /// Destination.
        d: VReg,
        /// Index into the launch parameter list.
        index: u32,
    },
    /// Read a special register into a b32 destination.
    Special {
        /// Destination.
        d: VReg,
        /// Which special register.
        r: SpecialReg,
    },
    /// Conditional or unconditional branch.
    Bra {
        /// Jump target.
        target: Label,
        /// Optional guard: `(predicate register, expected value)`.
        pred: Option<(VReg, bool)>,
    },
    /// A label marker (no-op at execution).
    Mark(Label),
    /// `atom.global.add.ty [addr], a` — used for reductions.
    AtomAdd {
        /// Element type.
        ty: VType,
        /// Byte address (b64 register).
        addr: VReg,
        /// Addend.
        a: Operand,
    },
    /// Return from the kernel (thread exit).
    Ret,
}

impl Inst {
    /// Virtual registers read by this instruction.
    pub fn uses(&self) -> Vec<VReg> {
        fn op(out: &mut Vec<VReg>, o: &Operand) {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        }
        let mut out = Vec::new();
        match self {
            Inst::Mov { a, .. } | Inst::Neg { a, .. } | Inst::Cvt { a, .. } => op(&mut out, a),
            Inst::Not { a, .. } => out.push(*a),
            Inst::Alu { a, b, .. } | Inst::Setp { a, b, .. } => {
                op(&mut out, a);
                op(&mut out, b);
            }
            Inst::Math { a, b, .. } => {
                op(&mut out, a);
                if let Some(b) = b {
                    op(&mut out, b);
                }
            }
            Inst::Ld { addr, .. } => out.push(*addr),
            Inst::St { addr, a, .. } => {
                out.push(*addr);
                op(&mut out, a);
            }
            Inst::AtomAdd { addr, a, .. } => {
                out.push(*addr);
                op(&mut out, a);
            }
            Inst::Bra { pred, .. } => {
                if let Some((p, _)) = pred {
                    out.push(*p);
                }
            }
            Inst::LdParam { .. } | Inst::Special { .. } | Inst::Mark(_) | Inst::Ret => {}
        }
        out
    }

    /// The virtual register written by this instruction, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::Mov { d, .. }
            | Inst::Alu { d, .. }
            | Inst::Neg { d, .. }
            | Inst::Not { d, .. }
            | Inst::Cvt { d, .. }
            | Inst::Setp { d, .. }
            | Inst::Math { d, .. }
            | Inst::Ld { d, .. }
            | Inst::LdParam { d, .. }
            | Inst::Special { d, .. } => Some(*d),
            _ => None,
        }
    }
}

/// Kernel parameter declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamDecl {
    /// A by-value scalar.
    Scalar(VType),
    /// A pointer to a device buffer (b64 base address).
    Ptr,
}

/// A compiled kernel in VIR form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelVir {
    /// Kernel name (for reports and tables).
    pub name: String,
    /// Parameter list.
    pub params: Vec<ParamDecl>,
    /// Type of each virtual register, indexed by `VReg.0`.
    pub vregs: Vec<VType>,
    /// Instruction stream.
    pub insts: Vec<Inst>,
}

impl KernelVir {
    /// Allocate a fresh virtual register of type `ty`.
    pub fn new_vreg(&mut self, ty: VType) -> VReg {
        let r = VReg(self.vregs.len() as u32);
        self.vregs.push(ty);
        r
    }

    /// Type of a virtual register.
    pub fn vtype(&self, r: VReg) -> VType {
        self.vregs[r.0 as usize]
    }

    /// Map from label to instruction index, for branch resolution.
    pub fn label_positions(&self) -> Vec<Option<usize>> {
        let max = self
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Mark(Label(l)) => Some(*l as usize),
                _ => None,
            })
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let mut pos = vec![None; max];
        for (ix, i) in self.insts.iter().enumerate() {
            if let Inst::Mark(Label(l)) = i {
                pos[*l as usize] = Some(ix);
            }
        }
        pos
    }

    /// A PTX-flavoured disassembly, for debugging and golden tests.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, ".kernel {} (params: {})", self.name, self.params.len()).unwrap();
        for (ix, i) in self.insts.iter().enumerate() {
            writeln!(s, "  {ix:4}: {}", format_inst(i)).unwrap();
        }
        s
    }
}

fn format_operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => r.to_string(),
        Operand::ImmI(v) => v.to_string(),
        Operand::ImmF(v) => format!("{v:?}"),
    }
}

fn format_inst(i: &Inst) -> String {
    match i {
        Inst::Mov { ty, d, a } => format!("mov.{} {d}, {}", ty.suffix(), format_operand(a)),
        Inst::Alu { op, ty, d, a, b } => format!(
            "{}.{} {d}, {}, {}",
            format!("{op:?}").to_lowercase(),
            ty.suffix(),
            format_operand(a),
            format_operand(b)
        ),
        Inst::Neg { ty, d, a } => format!("neg.{} {d}, {}", ty.suffix(), format_operand(a)),
        Inst::Not { d, a } => format!("not.pred {d}, {a}"),
        Inst::Cvt { dty, d, aty, a } => {
            format!("cvt.{}.{} {d}, {}", dty.suffix(), aty.suffix(), format_operand(a))
        }
        Inst::Setp { op, ty, d, a, b } => format!(
            "setp.{}.{} {d}, {}, {}",
            format!("{op:?}").to_lowercase(),
            ty.suffix(),
            format_operand(a),
            format_operand(b)
        ),
        Inst::Math { op, ty, d, a, b } => {
            let mut s = format!(
                "{}.{} {d}, {}",
                format!("{op:?}").to_lowercase(),
                ty.suffix(),
                format_operand(a)
            );
            if let Some(b) = b {
                s.push_str(&format!(", {}", format_operand(b)));
            }
            s
        }
        Inst::Ld { space, ty, d, addr } => format!(
            "ld.{}.{} {d}, [{addr}]",
            format!("{space:?}").to_lowercase(),
            ty.suffix()
        ),
        Inst::St { space, ty, addr, a } => format!(
            "st.{}.{} [{addr}], {}",
            format!("{space:?}").to_lowercase(),
            ty.suffix(),
            format_operand(a)
        ),
        Inst::LdParam { ty, d, index } => {
            format!("ld.param.{} {d}, [param{index}]", ty.suffix())
        }
        Inst::Special { d, r } => format!("mov.b32 {d}, %{r:?}"),
        Inst::Bra { target, pred } => match pred {
            Some((p, true)) => format!("@{p} bra L{}", target.0),
            Some((p, false)) => format!("@!{p} bra L{}", target.0),
            None => format!("bra L{}", target.0),
        },
        Inst::Mark(l) => format!("L{}:", l.0),
        Inst::AtomAdd { ty, addr, a } => {
            format!("atom.global.add.{} [{addr}], {}", ty.suffix(), format_operand(a))
        }
        Inst::Ret => "ret".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtype_register_cost() {
        assert_eq!(VType::B32.hw_regs(), 1);
        assert_eq!(VType::F64.hw_regs(), 2);
        assert_eq!(VType::B64.hw_regs(), 2);
        assert_eq!(VType::Pred.hw_regs(), 0);
    }

    #[test]
    fn uses_and_defs() {
        let mut k = KernelVir::default();
        let a = k.new_vreg(VType::F32);
        let b = k.new_vreg(VType::F32);
        let d = k.new_vreg(VType::F32);
        let i = Inst::Alu { op: AluOp::Add, ty: VType::F32, d, a: a.into(), b: b.into() };
        assert_eq!(i.uses(), vec![a, b]);
        assert_eq!(i.def(), Some(d));

        let addr = k.new_vreg(VType::B64);
        let st = Inst::St { space: MemSpace::Global, ty: VType::F32, addr, a: d.into() };
        assert_eq!(st.uses(), vec![addr, d]);
        assert_eq!(st.def(), None);
    }

    #[test]
    fn label_positions_resolve() {
        let mut k = KernelVir::default();
        let p = k.new_vreg(VType::Pred);
        k.insts = vec![
            Inst::Mark(Label(0)),
            Inst::Bra { target: Label(1), pred: Some((p, true)) },
            Inst::Bra { target: Label(0), pred: None },
            Inst::Mark(Label(1)),
            Inst::Ret,
        ];
        let pos = k.label_positions();
        assert_eq!(pos[0], Some(0));
        assert_eq!(pos[1], Some(3));
    }

    #[test]
    fn disassembly_smoke() {
        let mut k = KernelVir { name: "t".into(), ..Default::default() };
        let d = k.new_vreg(VType::B32);
        k.insts.push(Inst::Special { d, r: SpecialReg::Tid(0) });
        k.insts.push(Inst::Ret);
        let dis = k.disassemble();
        assert!(dis.contains(".kernel t"));
        assert!(dis.contains("ret"));
    }

    #[test]
    fn imm_operands_have_no_regs() {
        assert_eq!(Operand::ImmI(4).reg(), None);
        let r = VReg(7);
        assert_eq!(Operand::Reg(r).reg(), Some(r));
    }
}
