//! Memory-latency microbenchmarks.
//!
//! The paper parameterizes SAFARA's cost model with memory latencies
//! measured by the microbenchmarks of Wong et al. (ISPASS 2010). We do
//! the same against our device model: tiny probe kernels with known
//! access patterns (coalesced, strided/uncoalesced, broadcast; global vs
//! read-only) are executed on the simulator, and the modelled cycles per
//! access are extracted into a latency table the compiler's
//! [`safara_analysis`-style] cost model consumes.
//!
//! This closes the same loop the paper describes: the *compiler* never
//! hard-codes latencies; it asks the *machine* (here, the machine model).

use crate::device::DeviceConfig;
use crate::interp::{launch, LaunchConfig, ParamVal};
use crate::memory::DeviceMemory;
use crate::timing::estimate_time;
use crate::vir::*;

/// Measured per-access-class latencies (cycles per warp access).
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredLatencies {
    /// Coalesced global load.
    pub global_coalesced: f64,
    /// Fully-strided (32-transaction) global load.
    pub global_uncoalesced: f64,
    /// Broadcast global load.
    pub global_broadcast: f64,
    /// Coalesced read-only load.
    pub readonly_coalesced: f64,
    /// Strided read-only load.
    pub readonly_uncoalesced: f64,
}

/// Build a probe kernel: each thread loads `reps` times from
/// `base + (tid * stride_elems) * 4` (f32) in `space` and accumulates, then
/// stores once (so loads are not dead).
fn probe_kernel(space: MemSpace, stride_elems: i64, reps: u32) -> KernelVir {
    let mut k = KernelVir {
        name: format!("probe_{space:?}_{stride_elems}"),
        params: vec![ParamDecl::Ptr, ParamDecl::Ptr],
        ..Default::default()
    };
    let pin = k.new_vreg(VType::B64);
    let pout = k.new_vreg(VType::B64);
    let tid = k.new_vreg(VType::B32);
    let off = k.new_vreg(VType::B64);
    let addr = k.new_vreg(VType::B64);
    let i = k.new_vreg(VType::B32);
    let p = k.new_vreg(VType::Pred);
    let acc = k.new_vreg(VType::F32);
    let v = k.new_vreg(VType::F32);
    let oaddr = k.new_vreg(VType::B64);
    use Inst::*;
    k.insts = vec![
        LdParam { ty: VType::B64, d: pin, index: 0 },
        LdParam { ty: VType::B64, d: pout, index: 1 },
        Special { d: tid, r: SpecialReg::Tid(0) },
        Cvt { dty: VType::B64, d: off, aty: VType::B32, a: tid.into() },
        Alu { op: AluOp::Mul, ty: VType::B64, d: off, a: off.into(), b: Operand::ImmI(4 * stride_elems) },
        Alu { op: AluOp::Add, ty: VType::B64, d: addr, a: pin.into(), b: off.into() },
        Mov { ty: VType::F32, d: acc, a: Operand::ImmF(0.0) },
        Mov { ty: VType::B32, d: i, a: Operand::ImmI(0) },
        Mark(Label(0)),
        Setp { op: CmpOp::Ge, ty: VType::B32, d: p, a: i.into(), b: Operand::ImmI(reps as i64) },
        Bra { target: Label(1), pred: Some((p, true)) },
        Ld { space, ty: VType::F32, d: v, addr },
        Alu { op: AluOp::Add, ty: VType::F32, d: acc, a: acc.into(), b: v.into() },
        Alu { op: AluOp::Add, ty: VType::B32, d: i, a: i.into(), b: Operand::ImmI(1) },
        Bra { target: Label(0), pred: None },
        Mark(Label(1)),
        Cvt { dty: VType::B64, d: off, aty: VType::B32, a: tid.into() },
        Alu { op: AluOp::Mul, ty: VType::B64, d: off, a: off.into(), b: Operand::ImmI(4) },
        Alu { op: AluOp::Add, ty: VType::B64, d: oaddr, a: pout.into(), b: off.into() },
        St { space: MemSpace::Global, ty: VType::F32, addr: oaddr, a: acc.into() },
        Ret,
    ];
    k
}

/// Cycles per warp load for one probe configuration.
fn measure(dev: &DeviceConfig, space: MemSpace, stride: i64) -> f64 {
    let reps = 64u32;
    let k = probe_kernel(space, stride, reps);
    let mut mem = DeviceMemory::new();
    let max_stride = stride.max(1) as usize;
    let input = mem.alloc(32 * 4 * max_stride);
    let out = mem.alloc(32 * 4);
    let cfg = LaunchConfig::d1(1, 32);
    let res = launch(
        &k,
        &cfg,
        &[ParamVal::Ptr(mem.base_addr(input)), ParamVal::Ptr(mem.base_addr(out))],
        &mut mem,
        &[],
    )
    .expect("probe kernel runs");
    // Subtract a no-load baseline: same kernel with zero reps.
    let k0 = probe_kernel(space, stride, 0);
    let res0 = launch(
        &k0,
        &cfg,
        &[ParamVal::Ptr(mem.base_addr(input)), ParamVal::Ptr(mem.base_addr(out))],
        &mut mem,
        &[],
    )
    .expect("baseline kernel runs");
    // Use a single resident warp (regs high enough to disallow more would
    // be artificial; instead we model with one block of one warp, which
    // the occupancy model maps to one active warp... we pass regs=255).
    let t = estimate_time(dev, &res.stats, 255, 32);
    let t0 = estimate_time(dev, &res0.stats, 255, 32);
    (t.total_cycles - t0.total_cycles) / reps as f64
}

/// Run the full probe suite.
pub fn run_probes(dev: &DeviceConfig) -> MeasuredLatencies {
    MeasuredLatencies {
        global_coalesced: measure(dev, MemSpace::Global, 1),
        global_uncoalesced: measure(dev, MemSpace::Global, 32),
        global_broadcast: measure(dev, MemSpace::Global, 0),
        readonly_coalesced: measure(dev, MemSpace::ReadOnly, 1),
        readonly_uncoalesced: measure(dev, MemSpace::ReadOnly, 32),
    }
}

impl MeasuredLatencies {
    /// Render as the table printed by the `latency_microbench` binary.
    pub fn to_table(&self) -> String {
        format!(
            "access class            cycles/warp-access\n\
             global coalesced        {:10.1}\n\
             global uncoalesced      {:10.1}\n\
             global broadcast        {:10.1}\n\
             read-only coalesced     {:10.1}\n\
             read-only uncoalesced   {:10.1}\n",
            self.global_coalesced,
            self.global_uncoalesced,
            self.global_broadcast,
            self.readonly_coalesced,
            self.readonly_uncoalesced,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_ordering_matches_hardware_expectations() {
        let dev = DeviceConfig::k20xm();
        let m = run_probes(&dev);
        assert!(
            m.global_uncoalesced > m.global_coalesced,
            "uncoalesced must be slower: {m:?}"
        );
        assert!(
            m.readonly_coalesced < m.global_coalesced,
            "read-only cache must be faster than global: {m:?}"
        );
        assert!(
            m.readonly_uncoalesced > m.readonly_coalesced,
            "striding must hurt the read-only path too: {m:?}"
        );
        // Broadcast ≈ coalesced (one transaction either way).
        assert!((m.global_broadcast - m.global_coalesced).abs() < 1.0);
    }

    #[test]
    fn probes_are_positive_and_finite() {
        let dev = DeviceConfig::k20xm();
        let m = run_probes(&dev);
        for v in [
            m.global_coalesced,
            m.global_uncoalesced,
            m.global_broadcast,
            m.readonly_coalesced,
            m.readonly_uncoalesced,
        ] {
            assert!(v.is_finite() && v > 0.0, "{m:?}");
        }
    }

    #[test]
    fn table_renders() {
        let dev = DeviceConfig::k20xm();
        let t = run_probes(&dev).to_table();
        assert!(t.contains("global uncoalesced"));
    }
}
