//! The functional interpreter: executes VIR kernels over simulated device
//! memory, warp by warp, while collecting the statistics the timing model
//! needs.
//!
//! Each lane (thread) runs to completion independently, logging its memory
//! events; the 32 logs of a warp are then merged to compute *actual*
//! 128-byte transactions from the lanes' addresses. This gives
//! address-accurate coalescing measurements, independent of the compiler's
//! static coalescing analysis (the two are cross-validated in tests).

use crate::memory::{DeviceMemory, MemFault};
use crate::stats::KernelStats;
use crate::vir::*;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU8, Ordering};

/// Kernel launch geometry.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Grid dimensions (blocks).
    pub grid: (u32, u32, u32),
    /// Block dimensions (threads).
    pub block: (u32, u32, u32),
    /// Per-launch worker-pool override: `Some(0)` means auto (one worker
    /// per CPU), `Some(1)` forces the serial path, `None` defers to the
    /// thread-local / process-wide setting (see [`crate::parallel`]).
    pub sim_threads: Option<u32>,
}

/// Manual `Debug` reproducing the pre-`sim_threads` derived format. The
/// memo content key hashes `format!("{config:?}")`, and the worker count
/// must never change a launch's content hash — identical inputs produce
/// identical results at any thread count, so they must share a cache
/// entry.
impl std::fmt::Debug for LaunchConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaunchConfig")
            .field("grid", &self.grid)
            .field("block", &self.block)
            .finish()
    }
}

impl LaunchConfig {
    /// 1-D launch helper.
    pub fn d1(grid: u32, block: u32) -> Self {
        LaunchConfig { grid: (grid, 1, 1), block: (block, 1, 1), sim_threads: None }
    }

    /// 2-D launch helper.
    pub fn d2(grid: (u32, u32), block: (u32, u32)) -> Self {
        LaunchConfig { grid: (grid.0, grid.1, 1), block: (block.0, block.1, 1), sim_threads: None }
    }

    /// Builder: pin this launch's worker count (`0` = auto).
    pub fn with_sim_threads(mut self, n: u32) -> Self {
        self.sim_threads = Some(n);
        self
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.0 * self.block.1 * self.block.2
    }

    /// Total blocks in the grid.
    pub fn total_blocks(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64 * self.grid.2 as u64
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.threads_per_block() as u64 * (self.grid.0 as u64 * self.grid.1 as u64 * self.grid.2 as u64)
    }
}

/// Launch-time parameter values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamVal {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// binary32 float.
    F32(f32),
    /// binary64 float.
    F64(f64),
    /// Device pointer (synthetic byte address).
    Ptr(u64),
}

/// Result of a launch: the gathered statistics (the numerical results are
/// in device memory).
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchResult {
    /// Aggregated dynamic statistics.
    pub stats: KernelStats,
}

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Memory fault from a load/store.
    Fault(MemFault),
    /// A thread exceeded the per-thread instruction budget.
    Runaway {
        /// The kernel that ran away.
        kernel: String,
    },
    /// Malformed kernel (bad label, bad param index, type confusion).
    Malformed(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Fault(m) => write!(f, "{m}"),
            SimError::Runaway { kernel } => {
                write!(f, "kernel `{kernel}` exceeded the instruction budget (infinite loop?)")
            }
            SimError::Malformed(m) => write!(f, "malformed kernel: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemFault> for SimError {
    fn from(m: MemFault) -> Self {
        SimError::Fault(m)
    }
}

/// Per-thread dynamic instruction budget (runaway guard).
pub(crate) const MAX_INSTS_PER_THREAD: u64 = 50_000_000;

/// One logged memory event of a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MemEvent {
    pub(crate) inst: u32,
    pub(crate) addr: u64,
    pub(crate) bytes: u8,
    pub(crate) space_store: u8, // space in low 4 bits, is_store in bit 4, atomic bit 5
}

pub(crate) const SPACE_GLOBAL: u8 = 0;
pub(crate) const SPACE_READONLY: u8 = 1;
pub(crate) const SPACE_LOCAL: u8 = 2;
pub(crate) const FLAG_STORE: u8 = 0x10;
pub(crate) const FLAG_ATOMIC: u8 = 0x20;

/// Per-lane instruction-class counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LaneCounts {
    pub(crate) simple: u64,
    pub(crate) int64: u64,
    pub(crate) fp64: u64,
    pub(crate) sfu: u64,
    pub(crate) spill_touches: u64,
}

impl LaneCounts {
    pub(crate) fn max_with(&mut self, o: &LaneCounts) {
        self.simple = self.simple.max(o.simple);
        self.int64 = self.int64.max(o.int64);
        self.fp64 = self.fp64.max(o.fp64);
        self.sfu = self.sfu.max(o.sfu);
        self.spill_touches = self.spill_touches.max(o.spill_touches);
    }
}

/// Which execution engine [`launch`] dispatches to. All three are
/// stats- and memory-identical (asserted by differential tests); the
/// selection exists so benchmarks can time one against another and so
/// any future regression can be bisected to an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The original lane-at-a-time tree-walking interpreter.
    Reference,
    /// The pre-decoded direct-threaded engine (the default).
    Decoded,
    /// The profile-guided superblock-fused, lane-vectorized engine.
    Superblock,
}

impl Engine {
    /// Parse a wire/env engine name (`reference` / `decoded` /
    /// `superblock`).
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "reference" => Some(Engine::Reference),
            "decoded" => Some(Engine::Decoded),
            "superblock" => Some(Engine::Superblock),
            _ => None,
        }
    }

    /// The canonical wire/env name of this engine.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Reference => "reference",
            Engine::Decoded => "decoded",
            Engine::Superblock => "superblock",
        }
    }

    fn from_code(c: u8) -> Engine {
        match c {
            1 => Engine::Reference,
            2 => Engine::Superblock,
            _ => Engine::Decoded,
        }
    }

    fn code(self) -> u8 {
        match self {
            Engine::Decoded => 0,
            Engine::Reference => 1,
            Engine::Superblock => 2,
        }
    }
}

/// The process-wide engine selection (an [`Engine::code`]).
static ENGINE: AtomicU8 = AtomicU8::new(0);

std::thread_local! {
    /// Per-thread engine override installed by [`with_engine`]: lets a
    /// server worker honor a per-request engine without racing other
    /// workers on the process-wide selection.
    static ENGINE_OVERRIDE: std::cell::Cell<Option<Engine>> = const { std::cell::Cell::new(None) };
}

/// Select the process-wide execution engine for subsequent [`launch`]
/// calls (on any thread without a [`with_engine`] override in effect).
pub fn set_engine(e: Engine) {
    env_engine_init();
    ENGINE.store(e.code(), Ordering::Relaxed);
}

/// Run `f` with `e` as this thread's engine, restoring the previous
/// override afterwards (even on unwind). Launches performed by `f` on
/// *this* thread — including through memoized paths, which funnel into
/// [`launch`] — use `e`; other threads are unaffected.
pub fn with_engine<R>(e: Engine, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Engine>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ENGINE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(ENGINE_OVERRIDE.with(|c| c.replace(Some(e))));
    f()
}

fn env_engine_init() {
    static ENV_INIT: std::sync::Once = std::sync::Once::new();
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("SAFARA_ENGINE") {
            if let Some(e) = Engine::parse(&v) {
                ENGINE.store(e.code(), Ordering::Relaxed);
                return;
            }
        }
        if let Ok(v) = std::env::var("SAFARA_REFERENCE_ENGINE") {
            if v == "1" || v.eq_ignore_ascii_case("true") {
                ENGINE.store(Engine::Reference.code(), Ordering::Relaxed);
            }
        }
    });
}

/// The engine [`launch`] will dispatch to on this thread: the
/// [`with_engine`] override if one is in effect, else the process-wide
/// selection. On first call the process-wide default is taken from the
/// `SAFARA_ENGINE` environment variable (`reference` / `decoded` /
/// `superblock`), falling back to the legacy `SAFARA_REFERENCE_ENGINE`
/// (`1` / `true` selects the reference interpreter), so every binary in
/// the workspace can be A/B-timed without code changes.
pub fn current_engine() -> Engine {
    if let Some(e) = ENGINE_OVERRIDE.with(|c| c.get()) {
        return e;
    }
    env_engine_init();
    Engine::from_code(ENGINE.load(Ordering::Relaxed))
}

/// Select the execution engine for subsequent [`launch`] calls:
/// `true` = the original (reference) interpreter, `false` (default) =
/// the pre-decoded direct-threaded engine. Legacy shim over
/// [`set_engine`].
pub fn set_reference_engine(on: bool) {
    set_engine(if on { Engine::Reference } else { Engine::Decoded });
}

/// Is the reference engine currently selected? Legacy shim over
/// [`current_engine`].
pub fn reference_engine_enabled() -> bool {
    current_engine() == Engine::Reference
}

/// Execute a kernel launch.
///
/// `spilled` lists virtual registers the register allocator spilled; the
/// interpreter still keeps their values in the (unlimited) virtual file
/// for functional correctness but counts their touches as local-memory
/// traffic, mirroring what PTXAS-inserted reload/spill code would do.
///
/// Dispatches to the engine selected by [`set_engine`] /
/// [`with_engine`] (default: the pre-decoded engine,
/// [`crate::decode`]).
pub fn launch(
    kernel: &KernelVir,
    config: &LaunchConfig,
    params: &[ParamVal],
    mem: &mut DeviceMemory,
    spilled: &[VReg],
) -> Result<LaunchResult, SimError> {
    crate::parallel::clear_last_parallel_info();
    match current_engine() {
        Engine::Reference => {
            // The tree-walker keeps no decoded program that a worker
            // pool could share; a multi-threaded launch delegates to the
            // decoded engine, which is stats- and memory-identical
            // (asserted by the engine differential suite). At one thread
            // the historical reference path runs untouched.
            if crate::parallel::resolve_sim_threads(config) > 1 && config.total_blocks() > 1 {
                crate::decode::launch_decoded(kernel, config, params, mem, spilled)
            } else {
                launch_reference(kernel, config, params, mem, spilled)
            }
        }
        Engine::Decoded => crate::decode::launch_decoded(kernel, config, params, mem, spilled),
        Engine::Superblock => {
            crate::superblock::launch_superblock(kernel, config, params, mem, spilled)
        }
    }
}

/// The original lane-at-a-time interpreter, retained verbatim as the
/// reference semantics the decoded engine is differentially tested
/// against (and as the baseline for wall-clock comparisons).
pub fn launch_reference(
    kernel: &KernelVir,
    config: &LaunchConfig,
    params: &[ParamVal],
    mem: &mut DeviceMemory,
    spilled: &[VReg],
) -> Result<LaunchResult, SimError> {
    if params.len() != kernel.params.len() {
        return Err(SimError::Malformed(format!(
            "kernel `{}` expects {} params, got {}",
            kernel.name,
            kernel.params.len(),
            params.len()
        )));
    }
    let labels = kernel.label_positions();
    for inst in &kernel.insts {
        if let Inst::Bra { target, .. } = inst {
            if labels.get(target.0 as usize).copied().flatten().is_none() {
                return Err(SimError::Malformed(format!("branch to undefined label L{}", target.0)));
            }
        }
    }
    let spillset: HashSet<u32> = spilled.iter().map(|r| r.0).collect();
    let warp_size = 32u32;
    let tpb = config.threads_per_block();
    let mut stats = KernelStats::default();

    let mut lane_logs: Vec<Vec<MemEvent>> = vec![Vec::new(); warp_size as usize];
    let mut lane_counts = vec![LaneCounts::default(); warp_size as usize];

    for bz in 0..config.grid.2 {
        for by in 0..config.grid.1 {
            for bx in 0..config.grid.0 {
                // Enumerate the block's threads in linear order and chop
                // into warps of 32 (x fastest, as on hardware).
                let mut linear = 0u32;
                while linear < tpb {
                    let lanes_in_warp = (tpb - linear).min(warp_size);
                    for log in lane_logs.iter_mut() {
                        log.clear();
                    }
                    for lc in lane_counts.iter_mut() {
                        *lc = LaneCounts::default();
                    }
                    for lane in 0..lanes_in_warp {
                        let t = linear + lane;
                        let tx = t % config.block.0;
                        let ty = (t / config.block.0) % config.block.1;
                        let tz = t / (config.block.0 * config.block.1);
                        run_lane(
                            kernel,
                            &labels,
                            params,
                            mem,
                            (tx, ty, tz),
                            (bx, by, bz),
                            config,
                            &spillset,
                            &mut lane_logs[lane as usize],
                            &mut lane_counts[lane as usize],
                        )?;
                    }
                    merge_warp(
                        &lane_logs[..lanes_in_warp as usize],
                        &lane_counts[..lanes_in_warp as usize],
                        &mut stats,
                    );
                    stats.warps += 1;
                    stats.threads += lanes_in_warp as u64;
                    linear += lanes_in_warp;
                }
            }
        }
    }
    Ok(LaunchResult { stats })
}

/// Merge one warp's lane logs into transactions and issue counts.
fn merge_warp(logs: &[Vec<MemEvent>], counts: &[LaneCounts], stats: &mut KernelStats) {
    // Instruction issues: per-class max across lanes (exact under uniform
    // control flow).
    let mut warp = LaneCounts::default();
    for c in counts {
        warp.max_with(c);
    }
    stats.simple_insts += warp.simple;
    stats.int64_insts += warp.int64;
    stats.fp64_insts += warp.fp64;
    stats.sfu_insts += warp.sfu;
    stats.local_accesses += warp.spill_touches;

    // Fast path: uniform logs (same length and instruction sequence).
    let uniform = logs.len() > 1
        && logs.windows(2).all(|w| {
            w[0].len() == w[1].len()
                && w[0]
                    .iter()
                    .zip(&w[1])
                    .all(|(a, b)| a.inst == b.inst && a.space_store == b.space_store)
        });
    if logs.len() == 1 || uniform {
        let n = logs[0].len();
        let mut addrs = Vec::with_capacity(logs.len());
        for i in 0..n {
            addrs.clear();
            addrs.extend(logs.iter().map(|l| l[i].addr));
            account_group(logs[0][i], &addrs, stats);
        }
        return;
    }

    merge_divergent(logs, stats);
}

/// Divergent-warp merge: align the lanes' logs by (inst, per-inst
/// occurrence) and account each group. Shared with the decoded engine's
/// fallback path so both engines group identically.
pub(crate) fn merge_divergent(logs: &[Vec<MemEvent>], stats: &mut KernelStats) {
    let mut groups: BTreeMap<(u32, u32), (MemEvent, Vec<u64>)> = BTreeMap::new();
    for log in logs {
        let mut occ: BTreeMap<u32, u32> = BTreeMap::new();
        for ev in log {
            let k = occ.entry(ev.inst).or_insert(0);
            let key = (ev.inst, *k);
            *k += 1;
            groups.entry(key).or_insert_with(|| (*ev, Vec::new())).1.push(ev.addr);
        }
    }
    for (ev, addrs) in groups.values() {
        account_group(*ev, addrs, stats);
    }
}

/// Account one warp-level access group: compute 128-byte transactions
/// from the participating addresses.
pub(crate) fn account_group(ev: MemEvent, addrs: &[u64], stats: &mut KernelStats) {
    account_group_with(ev, addrs, &mut Vec::new(), stats)
}

/// [`account_group`] with a caller-provided segment scratch buffer, so
/// hot merge loops don't allocate per group.
pub(crate) fn account_group_with(
    ev: MemEvent,
    addrs: &[u64],
    segs: &mut Vec<u64>,
    stats: &mut KernelStats,
) {
    let space = ev.space_store & 0x0F;
    let is_store = ev.space_store & FLAG_STORE != 0;
    let is_atomic = ev.space_store & FLAG_ATOMIC != 0;
    if is_atomic {
        // Atomics serialize: one transaction per participating lane.
        stats.atomics += addrs.len() as u64;
        return;
    }
    match space {
        SPACE_LOCAL => {
            stats.local_accesses += 1;
        }
        _ => {
            segs.clear();
            let mut sorted = true;
            let mut prev = 0u64;
            for &a in addrs {
                // An access can straddle a segment boundary.
                let first = a / 128;
                let last = (a + ev.bytes as u64 - 1) / 128;
                sorted &= first >= prev;
                prev = last;
                segs.push(first);
                segs.push(last);
            }
            // Coalesced accesses arrive in ascending order; count their
            // distinct segments in one pass and only sort otherwise.
            let txns = if sorted {
                let mut n = 0u64;
                let mut prev = u64::MAX;
                for &s in segs.iter() {
                    n += u64::from(s != prev);
                    prev = s;
                }
                n
            } else {
                segs.sort_unstable();
                segs.dedup();
                segs.len() as u64
            };
            if space == SPACE_READONLY {
                stats.readonly_requests += 1;
                stats.readonly_transactions += txns;
            } else {
                if is_store {
                    stats.global_st_requests += 1;
                } else {
                    stats.global_ld_requests += 1;
                }
                stats.global_transactions += txns;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_lane(
    kernel: &KernelVir,
    labels: &[Option<usize>],
    params: &[ParamVal],
    mem: &mut DeviceMemory,
    tid: (u32, u32, u32),
    ctaid: (u32, u32, u32),
    config: &LaunchConfig,
    spillset: &HashSet<u32>,
    log: &mut Vec<MemEvent>,
    counts: &mut LaneCounts,
) -> Result<(), SimError> {
    let mut regs = vec![0u64; kernel.vregs.len()];
    let mut pc = 0usize;
    let mut executed = 0u64;

    macro_rules! val {
        ($op:expr, $ty:expr) => {
            operand_bits($op, &regs, $ty)
        };
    }

    while pc < kernel.insts.len() {
        executed += 1;
        if executed > MAX_INSTS_PER_THREAD {
            return Err(SimError::Runaway { kernel: kernel.name.clone() });
        }
        let inst = &kernel.insts[pc];
        // Count spill traffic: any executed use/def of a spilled vreg.
        if !spillset.is_empty() {
            let mut touches = 0u64;
            for u in inst.uses() {
                if spillset.contains(&u.0) {
                    touches += 1;
                }
            }
            if let Some(d) = inst.def() {
                if spillset.contains(&d.0) {
                    touches += 1;
                }
            }
            counts.spill_touches += touches;
        }
        match inst {
            Inst::Mov { ty, d, a } => {
                counts.simple += 1;
                regs[d.0 as usize] = val!(a, *ty);
            }
            Inst::Alu { op, ty, d, a, b } => {
                count_class(counts, *ty);
                let (x, y) = (val!(a, *ty), val!(b, *ty));
                regs[d.0 as usize] = alu(*op, *ty, x, y);
            }
            Inst::Neg { ty, d, a } => {
                count_class(counts, *ty);
                let x = val!(a, *ty);
                regs[d.0 as usize] = neg(*ty, x);
            }
            Inst::Not { d, a } => {
                counts.simple += 1;
                regs[d.0 as usize] = u64::from(regs[a.0 as usize] == 0);
            }
            Inst::Cvt { dty, d, aty, a } => {
                count_class(counts, *dty);
                let x = val!(a, *aty);
                regs[d.0 as usize] = convert(*aty, *dty, x);
            }
            Inst::Setp { op, ty, d, a, b } => {
                counts.simple += 1;
                let (x, y) = (val!(a, *ty), val!(b, *ty));
                regs[d.0 as usize] = u64::from(compare(*op, *ty, x, y));
            }
            Inst::Math { op, ty, d, a, b } => {
                counts.sfu += 1;
                let x = val!(a, *ty);
                let y = b.map(|b| val!(&b, *ty));
                regs[d.0 as usize] = math(*op, *ty, x, y);
            }
            Inst::Ld { space, ty, d, addr } => {
                counts.simple += 1;
                let a = regs[addr.0 as usize];
                let bytes = ty.size_bytes();
                let v = mem.read(a, bytes)?;
                regs[d.0 as usize] = v;
                log.push(MemEvent {
                    inst: pc as u32,
                    addr: a,
                    bytes: bytes as u8,
                    space_store: space_code(*space),
                });
            }
            Inst::St { space, ty, addr, a } => {
                counts.simple += 1;
                let ad = regs[addr.0 as usize];
                let bytes = ty.size_bytes();
                let v = val!(a, *ty);
                mem.write(ad, bytes, v)?;
                log.push(MemEvent {
                    inst: pc as u32,
                    addr: ad,
                    bytes: bytes as u8,
                    space_store: space_code(*space) | FLAG_STORE,
                });
            }
            Inst::LdParam { ty, d, index } => {
                counts.simple += 1;
                let p = params
                    .get(*index as usize)
                    .ok_or_else(|| SimError::Malformed(format!("param index {index} out of range")))?;
                regs[d.0 as usize] = param_bits(p, *ty)?;
            }
            Inst::Special { d, r } => {
                counts.simple += 1;
                let v = match r {
                    SpecialReg::Tid(0) => tid.0,
                    SpecialReg::Tid(1) => tid.1,
                    SpecialReg::Tid(_) => tid.2,
                    SpecialReg::CtaId(0) => ctaid.0,
                    SpecialReg::CtaId(1) => ctaid.1,
                    SpecialReg::CtaId(_) => ctaid.2,
                    SpecialReg::NTid(0) => config.block.0,
                    SpecialReg::NTid(1) => config.block.1,
                    SpecialReg::NTid(_) => config.block.2,
                    SpecialReg::NCtaId(0) => config.grid.0,
                    SpecialReg::NCtaId(1) => config.grid.1,
                    SpecialReg::NCtaId(_) => config.grid.2,
                };
                regs[d.0 as usize] = v as u64;
            }
            Inst::Bra { target, pred } => {
                counts.simple += 1;
                let taken = match pred {
                    None => true,
                    Some((p, want)) => (regs[p.0 as usize] != 0) == *want,
                };
                if taken {
                    pc = labels[target.0 as usize].expect("validated above");
                    continue;
                }
            }
            Inst::Mark(_) => {}
            Inst::AtomAdd { ty, addr, a } => {
                counts.simple += 1;
                let ad = regs[addr.0 as usize];
                let bytes = ty.size_bytes();
                let old = mem.read(ad, bytes)?;
                let add = val!(a, *ty);
                mem.write(ad, bytes, atom_add(*ty, old, add))?;
                log.push(MemEvent {
                    inst: pc as u32,
                    addr: ad,
                    bytes: bytes as u8,
                    space_store: SPACE_GLOBAL | FLAG_STORE | FLAG_ATOMIC,
                });
            }
            Inst::Ret => break,
        }
        pc += 1;
    }
    Ok(())
}

#[inline(always)]
pub(crate) fn neg(ty: VType, x: u64) -> u64 {
    match ty {
        VType::B32 => (-(x as u32 as i32)) as u32 as u64,
        VType::B64 => (-(x as i64)) as u64,
        VType::F32 => (-f32::from_bits(x as u32)).to_bits() as u64,
        VType::F64 => (-f64::from_bits(x)).to_bits(),
        VType::Pred => u64::from(x == 0),
    }
}

#[inline(always)]
pub(crate) fn atom_add(ty: VType, old: u64, add: u64) -> u64 {
    match ty {
        VType::F32 => (f32::from_bits(old as u32) + f32::from_bits(add as u32)).to_bits() as u64,
        VType::F64 => (f64::from_bits(old) + f64::from_bits(add)).to_bits(),
        VType::B32 => ((old as u32).wrapping_add(add as u32)) as u64,
        _ => old.wrapping_add(add),
    }
}

pub(crate) fn space_code(s: MemSpace) -> u8 {
    match s {
        MemSpace::Global => SPACE_GLOBAL,
        MemSpace::ReadOnly => SPACE_READONLY,
        MemSpace::Local => SPACE_LOCAL,
    }
}

pub(crate) fn count_class(c: &mut LaneCounts, ty: VType) {
    match ty {
        VType::B64 => c.int64 += 1,
        VType::F64 => c.fp64 += 1,
        _ => c.simple += 1,
    }
}

pub(crate) fn operand_bits(op: &Operand, regs: &[u64], ty: VType) -> u64 {
    match op {
        Operand::Reg(r) => regs[r.0 as usize],
        Operand::ImmI(v) => match ty {
            VType::B32 => (*v as i32) as u32 as u64,
            VType::F32 => (*v as f32).to_bits() as u64,
            VType::F64 => (*v as f64).to_bits(),
            _ => *v as u64,
        },
        Operand::ImmF(v) => match ty {
            VType::F32 => (*v as f32).to_bits() as u64,
            _ => v.to_bits(),
        },
    }
}

pub(crate) fn param_bits(p: &ParamVal, ty: VType) -> Result<u64, SimError> {
    Ok(match (p, ty) {
        (ParamVal::I32(v), VType::B32) => *v as u32 as u64,
        (ParamVal::I32(v), VType::B64) => *v as i64 as u64,
        (ParamVal::I64(v), VType::B64) => *v as u64,
        (ParamVal::F32(v), VType::F32) => v.to_bits() as u64,
        (ParamVal::F64(v), VType::F64) => v.to_bits(),
        (ParamVal::Ptr(v), VType::B64) => *v,
        (p, ty) => {
            return Err(SimError::Malformed(format!("param {p:?} loaded as {ty:?}")));
        }
    })
}

#[inline(always)]
pub(crate) fn alu(op: AluOp, ty: VType, x: u64, y: u64) -> u64 {
    match ty {
        VType::F32 => {
            let (a, b) = (f32::from_bits(x as u32), f32::from_bits(y as u32));
            let r = match op {
                AluOp::Add => a + b,
                AluOp::Sub => a - b,
                AluOp::Mul => a * b,
                AluOp::Div => a / b,
                AluOp::Min => a.min(b),
                AluOp::Max => a.max(b),
                AluOp::Rem => a % b,
                _ => f32::from_bits(int_alu32(op, x as u32, y as u32)),
            };
            r.to_bits() as u64
        }
        VType::F64 => {
            let (a, b) = (f64::from_bits(x), f64::from_bits(y));
            let r = match op {
                AluOp::Add => a + b,
                AluOp::Sub => a - b,
                AluOp::Mul => a * b,
                AluOp::Div => a / b,
                AluOp::Min => a.min(b),
                AluOp::Max => a.max(b),
                AluOp::Rem => a % b,
                _ => return int_alu64(op, x, y),
            };
            r.to_bits()
        }
        VType::B32 => int_alu32(op, x as u32, y as u32) as u64,
        VType::B64 => int_alu64(op, x, y),
        VType::Pred => {
            let (a, b) = (x != 0, y != 0);
            u64::from(match op {
                AluOp::And => a && b,
                AluOp::Or => a || b,
                AluOp::Xor => a ^ b,
                _ => a,
            })
        }
    }
}

fn int_alu32(op: AluOp, x: u32, y: u32) -> u32 {
    let (a, b) = (x as i32, y as i32);
    (match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(y & 31),
        AluOp::Shr => a.wrapping_shr(y & 31),
    }) as u32
}

fn int_alu64(op: AluOp, x: u64, y: u64) -> u64 {
    let (a, b) = (x as i64, y as i64);
    (match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((y & 63) as u32),
        AluOp::Shr => a.wrapping_shr((y & 63) as u32),
    }) as u64
}

#[inline(always)]
pub(crate) fn compare(op: CmpOp, ty: VType, x: u64, y: u64) -> bool {
    match ty {
        VType::F32 => {
            let (a, b) = (f32::from_bits(x as u32), f32::from_bits(y as u32));
            cmp_f(op, a as f64, b as f64)
        }
        VType::F64 => cmp_f(op, f64::from_bits(x), f64::from_bits(y)),
        VType::B32 => cmp_i(op, x as u32 as i32 as i64, y as u32 as i32 as i64),
        _ => cmp_i(op, x as i64, y as i64),
    }
}

fn cmp_f(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

fn cmp_i(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

#[inline]
pub(crate) fn math(op: MathOp, ty: VType, x: u64, y: Option<u64>) -> u64 {
    match ty {
        VType::F32 => {
            let a = f32::from_bits(x as u32);
            let r = match op {
                MathOp::Sqrt => a.sqrt(),
                MathOp::Exp => a.exp(),
                MathOp::Log => a.ln(),
                MathOp::Sin => a.sin(),
                MathOp::Cos => a.cos(),
                MathOp::Abs => a.abs(),
                MathOp::Floor => a.floor(),
                MathOp::Pow => a.powf(f32::from_bits(y.unwrap_or(0) as u32)),
            };
            r.to_bits() as u64
        }
        _ => {
            let a = f64::from_bits(x);
            let r = match op {
                MathOp::Sqrt => a.sqrt(),
                MathOp::Exp => a.exp(),
                MathOp::Log => a.ln(),
                MathOp::Sin => a.sin(),
                MathOp::Cos => a.cos(),
                MathOp::Abs => a.abs(),
                MathOp::Floor => a.floor(),
                MathOp::Pow => a.powf(f64::from_bits(y.unwrap_or(0))),
            };
            r.to_bits()
        }
    }
}

#[inline(always)]
pub(crate) fn convert(aty: VType, dty: VType, x: u64) -> u64 {
    // Normalize the source to a canonical value first.
    #[derive(Clone, Copy)]
    enum V {
        I(i64),
        F(f64),
    }
    let v = match aty {
        VType::B32 => V::I(x as u32 as i32 as i64),
        VType::B64 => V::I(x as i64),
        VType::F32 => V::F(f32::from_bits(x as u32) as f64),
        VType::F64 => V::F(f64::from_bits(x)),
        VType::Pred => V::I(i64::from(x != 0)),
    };
    match (v, dty) {
        (V::I(i), VType::B32) => i as i32 as u32 as u64,
        (V::I(i), VType::B64) => i as u64,
        (V::I(i), VType::F32) => (i as f32).to_bits() as u64,
        (V::I(i), VType::F64) => (i as f64).to_bits(),
        (V::I(i), VType::Pred) => u64::from(i != 0),
        (V::F(f), VType::B32) => (f as i32) as u32 as u64,
        (V::F(f), VType::B64) => (f as i64) as u64,
        (V::F(f), VType::F32) => (f as f32).to_bits() as u64,
        (V::F(f), VType::F64) => f.to_bits(),
        (V::F(f), VType::Pred) => u64::from(f != 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DeviceMemory;

    /// Build a kernel: out[gid] = in[gid] * 2 + 1 (f32), 1-D.
    fn saxpy_like(space_in: MemSpace) -> KernelVir {
        let mut k = KernelVir { name: "k".into(), params: vec![ParamDecl::Ptr, ParamDecl::Ptr, ParamDecl::Scalar(VType::B32)], ..Default::default() };
        let pin = k.new_vreg(VType::B64);
        let pout = k.new_vreg(VType::B64);
        let n = k.new_vreg(VType::B32);
        let tid = k.new_vreg(VType::B32);
        let bid = k.new_vreg(VType::B32);
        let bdim = k.new_vreg(VType::B32);
        let gid = k.new_vreg(VType::B32);
        let t0 = k.new_vreg(VType::B32);
        let p = k.new_vreg(VType::Pred);
        let off64 = k.new_vreg(VType::B64);
        let addr_in = k.new_vreg(VType::B64);
        let addr_out = k.new_vreg(VType::B64);
        let v = k.new_vreg(VType::F32);
        let v2 = k.new_vreg(VType::F32);
        use Inst::*;
        k.insts = vec![
            LdParam { ty: VType::B64, d: pin, index: 0 },
            LdParam { ty: VType::B64, d: pout, index: 1 },
            LdParam { ty: VType::B32, d: n, index: 2 },
            Special { d: tid, r: SpecialReg::Tid(0) },
            Special { d: bid, r: SpecialReg::CtaId(0) },
            Special { d: bdim, r: SpecialReg::NTid(0) },
            Alu { op: AluOp::Mul, ty: VType::B32, d: t0, a: bid.into(), b: bdim.into() },
            Alu { op: AluOp::Add, ty: VType::B32, d: gid, a: t0.into(), b: tid.into() },
            Setp { op: CmpOp::Ge, ty: VType::B32, d: p, a: gid.into(), b: n.into() },
            Bra { target: Label(0), pred: Some((p, true)) },
            Cvt { dty: VType::B64, d: off64, aty: VType::B32, a: gid.into() },
            Alu { op: AluOp::Mul, ty: VType::B64, d: off64, a: off64.into(), b: Operand::ImmI(4) },
            Alu { op: AluOp::Add, ty: VType::B64, d: addr_in, a: pin.into(), b: off64.into() },
            Alu { op: AluOp::Add, ty: VType::B64, d: addr_out, a: pout.into(), b: off64.into() },
            Ld { space: space_in, ty: VType::F32, d: v, addr: addr_in },
            Alu { op: AluOp::Mul, ty: VType::F32, d: v2, a: v.into(), b: Operand::ImmF(2.0) },
            Alu { op: AluOp::Add, ty: VType::F32, d: v2, a: v2.into(), b: Operand::ImmF(1.0) },
            St { space: MemSpace::Global, ty: VType::F32, addr: addr_out, a: v2.into() },
            Mark(Label(0)),
            Ret,
        ];
        k
    }

    #[test]
    fn functional_result_correct() {
        let k = saxpy_like(MemSpace::Global);
        let mut mem = DeviceMemory::new();
        let n = 100usize;
        let a = mem.alloc(n * 4);
        let b = mem.alloc(n * 4);
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        mem.copy_in_f32(a, &input);
        let cfg = LaunchConfig::d1(4, 32); // 128 threads ≥ 100
        let params = [
            ParamVal::Ptr(mem.base_addr(a)),
            ParamVal::Ptr(mem.base_addr(b)),
            ParamVal::I32(n as i32),
        ];
        launch(&k, &cfg, &params, &mut mem, &[]).unwrap();
        let out = mem.copy_out_f32(b);
        for i in 0..n {
            assert_eq!(out[i], input[i] * 2.0 + 1.0, "index {i}");
        }
    }

    #[test]
    fn coalesced_loads_make_one_transaction_per_warp() {
        let k = saxpy_like(MemSpace::Global);
        let mut mem = DeviceMemory::new();
        let n = 128;
        let a = mem.alloc(n * 4);
        let b = mem.alloc(n * 4);
        let cfg = LaunchConfig::d1(4, 32);
        let params = [
            ParamVal::Ptr(mem.base_addr(a)),
            ParamVal::Ptr(mem.base_addr(b)),
            ParamVal::I32(n as i32),
        ];
        let res = launch(&k, &cfg, &params, &mut mem, &[]).unwrap();
        let s = res.stats;
        assert_eq!(s.warps, 4);
        assert_eq!(s.threads, 128);
        // Each warp: one ld request + one st request, 1 txn each
        // (32 lanes × 4 B = 128 B aligned).
        assert_eq!(s.global_ld_requests, 4);
        assert_eq!(s.global_st_requests, 4);
        assert_eq!(s.global_transactions, 8);
    }

    #[test]
    fn readonly_space_counts_separately() {
        let k = saxpy_like(MemSpace::ReadOnly);
        let mut mem = DeviceMemory::new();
        let n = 64;
        let a = mem.alloc(n * 4);
        let b = mem.alloc(n * 4);
        let cfg = LaunchConfig::d1(2, 32);
        let params = [
            ParamVal::Ptr(mem.base_addr(a)),
            ParamVal::Ptr(mem.base_addr(b)),
            ParamVal::I32(n as i32),
        ];
        let res = launch(&k, &cfg, &params, &mut mem, &[]).unwrap();
        assert_eq!(res.stats.readonly_requests, 2);
        assert_eq!(res.stats.readonly_transactions, 2);
        assert_eq!(res.stats.global_ld_requests, 0);
    }

    /// Strided kernel: out[gid*stride] = 1.0 — uncoalesced stores.
    fn strided_store(stride: i64) -> KernelVir {
        let mut k = KernelVir { name: "strided".into(), params: vec![ParamDecl::Ptr], ..Default::default() };
        let pout = k.new_vreg(VType::B64);
        let tid = k.new_vreg(VType::B32);
        let off = k.new_vreg(VType::B64);
        let addr = k.new_vreg(VType::B64);
        use Inst::*;
        k.insts = vec![
            LdParam { ty: VType::B64, d: pout, index: 0 },
            Special { d: tid, r: SpecialReg::Tid(0) },
            Cvt { dty: VType::B64, d: off, aty: VType::B32, a: tid.into() },
            Alu { op: AluOp::Mul, ty: VType::B64, d: off, a: off.into(), b: Operand::ImmI(4 * stride) },
            Alu { op: AluOp::Add, ty: VType::B64, d: addr, a: pout.into(), b: off.into() },
            St { space: MemSpace::Global, ty: VType::F32, addr, a: Operand::ImmF(1.0) },
            Ret,
        ];
        k
    }

    #[test]
    fn strided_stores_explode_transactions() {
        for (stride, expect_txn) in [(1i64, 1u64), (2, 2), (32, 32)] {
            let k = strided_store(stride);
            let mut mem = DeviceMemory::new();
            let buf = mem.alloc(32 * 4 * stride as usize);
            let cfg = LaunchConfig::d1(1, 32);
            let res = launch(&k, &cfg, &[ParamVal::Ptr(mem.base_addr(buf))], &mut mem, &[]).unwrap();
            assert_eq!(
                res.stats.global_transactions, expect_txn,
                "stride {stride}"
            );
        }
    }

    #[test]
    fn broadcast_access_is_single_transaction() {
        let k = strided_store(0);
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(4);
        let cfg = LaunchConfig::d1(1, 32);
        let res = launch(&k, &cfg, &[ParamVal::Ptr(mem.base_addr(buf))], &mut mem, &[]).unwrap();
        assert_eq!(res.stats.global_transactions, 1);
    }

    #[test]
    fn divergent_warp_counts_every_path_access() {
        // Odd lanes store, even lanes don't: 16 addresses in the group.
        let mut k = KernelVir { name: "div".into(), params: vec![ParamDecl::Ptr], ..Default::default() };
        let pout = k.new_vreg(VType::B64);
        let tid = k.new_vreg(VType::B32);
        let bit = k.new_vreg(VType::B32);
        let p = k.new_vreg(VType::Pred);
        let off = k.new_vreg(VType::B64);
        let addr = k.new_vreg(VType::B64);
        use Inst::*;
        k.insts = vec![
            LdParam { ty: VType::B64, d: pout, index: 0 },
            Special { d: tid, r: SpecialReg::Tid(0) },
            Alu { op: AluOp::And, ty: VType::B32, d: bit, a: tid.into(), b: Operand::ImmI(1) },
            Setp { op: CmpOp::Eq, ty: VType::B32, d: p, a: bit.into(), b: Operand::ImmI(0) },
            Bra { target: Label(0), pred: Some((p, true)) },
            Cvt { dty: VType::B64, d: off, aty: VType::B32, a: tid.into() },
            Alu { op: AluOp::Mul, ty: VType::B64, d: off, a: off.into(), b: Operand::ImmI(4) },
            Alu { op: AluOp::Add, ty: VType::B64, d: addr, a: pout.into(), b: off.into() },
            St { space: MemSpace::Global, ty: VType::F32, addr, a: Operand::ImmF(3.0) },
            Mark(Label(0)),
            Ret,
        ];
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(32 * 4);
        let cfg = LaunchConfig::d1(1, 32);
        let res = launch(&k, &cfg, &[ParamVal::Ptr(mem.base_addr(buf))], &mut mem, &[]).unwrap();
        assert_eq!(res.stats.global_st_requests, 1);
        // 16 odd lanes × 4 B within one 128-B segment → 1 transaction.
        assert_eq!(res.stats.global_transactions, 1);
        let out = mem.copy_out_f32(buf);
        for (i, v) in out.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(*v, 3.0);
            } else {
                assert_eq!(*v, 0.0);
            }
        }
    }

    #[test]
    fn atomics_serialize_and_accumulate() {
        let mut k = KernelVir { name: "red".into(), params: vec![ParamDecl::Ptr], ..Default::default() };
        let pout = k.new_vreg(VType::B64);
        use Inst::*;
        k.insts = vec![
            LdParam { ty: VType::B64, d: pout, index: 0 },
            AtomAdd { ty: VType::F32, addr: pout, a: Operand::ImmF(1.0) },
            Ret,
        ];
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(4);
        let cfg = LaunchConfig::d1(2, 64);
        let res = launch(&k, &cfg, &[ParamVal::Ptr(mem.base_addr(buf))], &mut mem, &[]).unwrap();
        assert_eq!(mem.copy_out_f32(buf)[0], 128.0);
        assert_eq!(res.stats.atomics, 128);
    }

    #[test]
    fn spilled_registers_count_local_traffic() {
        let k = saxpy_like(MemSpace::Global);
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(32 * 4);
        let b = mem.alloc(32 * 4);
        let cfg = LaunchConfig::d1(1, 32);
        let params = [
            ParamVal::Ptr(mem.base_addr(a)),
            ParamVal::Ptr(mem.base_addr(b)),
            ParamVal::I32(32),
        ];
        let no_spill = launch(&k, &cfg, &params, &mut mem, &[]).unwrap();
        assert_eq!(no_spill.stats.local_accesses, 0);
        // Declare the f32 value register spilled: every use/def now counts.
        let spill = launch(&k, &cfg, &params, &mut mem, &[VReg(13)]).unwrap();
        assert!(spill.stats.local_accesses > 0);
    }

    #[test]
    fn runaway_loop_detected() {
        let mut k = KernelVir { name: "inf".into(), ..Default::default() };
        k.insts = vec![Inst::Mark(Label(0)), Inst::Bra { target: Label(0), pred: None }];
        let mut mem = DeviceMemory::new();
        let cfg = LaunchConfig::d1(1, 1);
        let err = launch(&k, &cfg, &[], &mut mem, &[]).unwrap_err();
        assert!(matches!(err, SimError::Runaway { .. }));
    }

    #[test]
    fn param_count_mismatch_rejected() {
        let k = saxpy_like(MemSpace::Global);
        let mut mem = DeviceMemory::new();
        let cfg = LaunchConfig::d1(1, 1);
        let err = launch(&k, &cfg, &[], &mut mem, &[]).unwrap_err();
        assert!(matches!(err, SimError::Malformed(_)));
    }

    #[test]
    fn branch_to_missing_label_rejected() {
        let mut k = KernelVir { name: "bad".into(), ..Default::default() };
        k.insts = vec![Inst::Bra { target: Label(9), pred: None }];
        let mut mem = DeviceMemory::new();
        let err = launch(&k, &LaunchConfig::d1(1, 1), &[], &mut mem, &[]).unwrap_err();
        assert!(matches!(err, SimError::Malformed(_)));
    }

    #[test]
    fn f64_arithmetic_and_conversion() {
        // out[i] = sqrt((double) i) as double
        let mut k = KernelVir { name: "dbl".into(), params: vec![ParamDecl::Ptr], ..Default::default() };
        let pout = k.new_vreg(VType::B64);
        let tid = k.new_vreg(VType::B32);
        let d = k.new_vreg(VType::F64);
        let r = k.new_vreg(VType::F64);
        let off = k.new_vreg(VType::B64);
        let addr = k.new_vreg(VType::B64);
        use Inst::*;
        k.insts = vec![
            LdParam { ty: VType::B64, d: pout, index: 0 },
            Special { d: tid, r: SpecialReg::Tid(0) },
            Cvt { dty: VType::F64, d, aty: VType::B32, a: tid.into() },
            Math { op: MathOp::Sqrt, ty: VType::F64, d: r, a: d.into(), b: None },
            Cvt { dty: VType::B64, d: off, aty: VType::B32, a: tid.into() },
            Alu { op: AluOp::Mul, ty: VType::B64, d: off, a: off.into(), b: Operand::ImmI(8) },
            Alu { op: AluOp::Add, ty: VType::B64, d: addr, a: pout.into(), b: off.into() },
            St { space: MemSpace::Global, ty: VType::F64, addr, a: r.into() },
            Ret,
        ];
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(8 * 8);
        let res = launch(&k, &LaunchConfig::d1(1, 8), &[ParamVal::Ptr(mem.base_addr(buf))], &mut mem, &[]).unwrap();
        let out = mem.copy_out_f64(buf);
        for (i, v) in out.iter().enumerate() {
            assert!((v - (i as f64).sqrt()).abs() < 1e-12);
        }
        assert!(res.stats.sfu_insts >= 1);
        assert!(res.stats.int64_insts >= 2);
        // 8 lanes × 8 B f64 = 64 B in one segment → 1 txn.
        assert_eq!(res.stats.global_transactions, 1);
    }
}
