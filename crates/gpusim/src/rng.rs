//! A tiny deterministic PRNG — SplitMix64 (Steele, Lea & Flood 2014).
//!
//! The repository must build and test **offline** (no crates.io access),
//! so the `rand` crate is replaced by this in-tree generator. Every
//! consumer that needs reproducible pseudo-random data — workload input
//! generation, property-style randomized tests — seeds a `SplitMix64`
//! explicitly, so all data is a pure function of the seed.
//!
//! SplitMix64 is the standard seeding generator of the xoshiro family:
//! one 64-bit state word, an additive Weyl sequence, and a finalizing
//! mix. It passes BigCrush and is more than adequate for generating test
//! inputs (it is *not* a cryptographic generator).

/// SplitMix64 generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.gen_range_f64(lo as f64, hi as f64) as f32
    }

    /// Uniform `i64` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi as i128 - lo as i128) as u128;
        // Multiply-shift bounded generation (Lemire); the tiny modulo
        // bias of a plain `%` would be fine for test data, but this is
        // just as cheap and exact enough.
        let r = ((self.next_u64() as u128 * span) >> 64) as i128;
        (lo as i128 + r) as i64
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn gen_range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.gen_range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range_i64(0, n as i64) as usize
    }

    /// A uniformly random boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn reference_vector() {
        // Published SplitMix64 outputs for seed 0 (xoshiro reference
        // implementation); pinned so the stream can never change
        // silently — workload inputs depend on it.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let f = r.gen_range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = r.gen_range_i64(-5, 7);
            assert!((-5..7).contains(&i));
            let u = r.gen_index(13);
            assert!(u < 13);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SplitMix64::new(77);
        let mean: f64 = (0..4096).map(|_| r.next_f64()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
