//! # safara-runtime — the host-side OpenACC runtime
//!
//! Plays the role of the OpenACC runtime library in the paper's Fig. 2:
//! it owns device memory, marshals kernel parameters according to the
//! [`safara_codegen::abi::KernelAbi`] recipe, computes launch geometry
//! from the mapped-loop specifications, manages reduction buffers, and
//! drives the simulator.
//!
//! A "function run" mirrors OpenACC data semantics at region granularity:
//! all array arguments are uploaded to the device before the first kernel
//! and downloaded after the last (the data clauses of the source are
//! validated but transfers are not further optimized — transfer time is
//! not part of the paper's figures, which report kernel execution).

pub mod args;
pub mod exec;

pub use args::{ArgValue, Args, HostArray};
pub use exec::{
    run_function, run_function_cached, run_function_shared, run_function_traced, KernelRun,
    RunReport, RuntimeError,
};
pub use safara_gpusim::memo::{LaunchCache, SharedLaunchCache};
