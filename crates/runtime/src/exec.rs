//! Function execution: marshaling, launch geometry, reductions, timing.

use crate::args::{ArgValue, Args};
use safara_codegen::abi::{AbiParam, DimOwner};
use safara_codegen::lower::{CompiledKernel, MappedLoopSpec};
use safara_gpusim::device::DeviceConfig;
use safara_gpusim::interp::{launch, LaunchConfig, ParamVal};
use safara_gpusim::memo::{launch_cached, LaunchCache, SharedLaunchCache};
use safara_gpusim::memory::{BufferId, DeviceMemory};
use safara_gpusim::ptxas::{RegAllocReport, SpillTarget};
use safara_gpusim::stats::KernelStats;
use safara_gpusim::timing::{estimate_time_with, TimingBreakdown};
use safara_ir::*;
use safara_obs::Tracer;
use std::collections::BTreeMap;
use std::fmt;

/// Runtime errors.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    /// Human-readable message.
    pub message: String,
}

impl RuntimeError {
    fn new(m: impl Into<String>) -> Self {
        RuntimeError { message: m.into() }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// Per-kernel outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun {
    /// Kernel name.
    pub name: String,
    /// Launch geometry used.
    pub config: LaunchConfig,
    /// Hardware registers per thread (from the PTXAS-sim report).
    pub regs_used: u32,
    /// Dynamic statistics.
    pub stats: KernelStats,
    /// Modelled time.
    pub timing: TimingBreakdown,
}

/// The outcome of a function run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// One entry per kernel launch, in execution order.
    pub kernels: Vec<KernelRun>,
    /// Bytes uploaded host→device.
    pub h2d_bytes: u64,
    /// Bytes downloaded device→host.
    pub d2h_bytes: u64,
}

impl RunReport {
    /// Sum of modelled kernel cycles.
    pub fn total_cycles(&self) -> f64 {
        self.kernels.iter().map(|k| k.timing.total_cycles).sum()
    }

    /// Sum of modelled kernel time in milliseconds.
    pub fn total_millis(&self, dev: &DeviceConfig) -> f64 {
        self.kernels.iter().map(|k| k.timing.millis(dev)).sum()
    }
}

/// Execute all offload kernels of `func` against `args`.
///
/// `compiled` pairs each kernel with its register-allocation report (the
/// compiler driver produces both); the report supplies the register count
/// for occupancy and the spill set for local-traffic accounting.
pub fn run_function(
    dev: &DeviceConfig,
    func: &Function,
    compiled: &[(CompiledKernel, RegAllocReport)],
    args: &mut Args,
) -> Result<RunReport, RuntimeError> {
    run_function_impl(dev, func, compiled, args, CacheRef::None, &mut Tracer::disabled())
}

/// [`run_function`] with optional launch memoization: pass a
/// [`LaunchCache`] and each kernel launch is answered from the cache
/// when its content key (VIR, spills, geometry, params, input buffers)
/// has been seen before — see [`safara_gpusim::memo`].
pub fn run_function_cached(
    dev: &DeviceConfig,
    func: &Function,
    compiled: &[(CompiledKernel, RegAllocReport)],
    args: &mut Args,
    cache: Option<&mut LaunchCache>,
) -> Result<RunReport, RuntimeError> {
    let cache = match cache {
        Some(c) => CacheRef::Exclusive(c),
        None => CacheRef::None,
    };
    run_function_impl(dev, func, compiled, args, cache, &mut Tracer::disabled())
}

/// [`run_function`] with launch memoization through a thread-shared
/// [`SharedLaunchCache`] — the long-lived-service path: many concurrent
/// runs amortize into one process-wide cache.
pub fn run_function_shared(
    dev: &DeviceConfig,
    func: &Function,
    compiled: &[(CompiledKernel, RegAllocReport)],
    args: &mut Args,
    cache: &SharedLaunchCache,
) -> Result<RunReport, RuntimeError> {
    run_function_impl(dev, func, compiled, args, CacheRef::Shared(cache), &mut Tracer::disabled())
}

/// [`run_function`] recording `h2d` → one `launch` per kernel (with
/// cache hit/miss metadata) → `d2h` spans into `tracer`, optionally
/// memoizing through a thread-shared cache. With a disabled tracer this
/// is exactly the untraced path.
pub fn run_function_traced(
    dev: &DeviceConfig,
    func: &Function,
    compiled: &[(CompiledKernel, RegAllocReport)],
    args: &mut Args,
    cache: Option<&SharedLaunchCache>,
    tracer: &mut Tracer,
) -> Result<RunReport, RuntimeError> {
    let cache = match cache {
        Some(c) => CacheRef::Shared(c),
        None => CacheRef::None,
    };
    run_function_impl(dev, func, compiled, args, cache, tracer)
}

/// How launches consult the memo cache, if at all.
enum CacheRef<'a> {
    None,
    Exclusive(&'a mut LaunchCache),
    Shared(&'a SharedLaunchCache),
}

fn run_function_impl(
    dev: &DeviceConfig,
    func: &Function,
    compiled: &[(CompiledKernel, RegAllocReport)],
    args: &mut Args,
    mut cache: CacheRef<'_>,
    tracer: &mut Tracer,
) -> Result<RunReport, RuntimeError> {
    // ---- resolve array shapes and upload -------------------------------
    let scalar_env = build_scalar_env(func, args)?;
    let mut mem = DeviceMemory::new();
    let mut buffers: BTreeMap<Ident, BufferId> = BTreeMap::new();
    let mut report = RunReport::default();

    tracer.begin("h2d");
    let mut resolved_dims: BTreeMap<Ident, Vec<(i64, i64)>> = BTreeMap::new();
    for p in &func.params {
        if let Param::Array { name, ty, .. } = p {
            let host = args
                .arrays
                .get(name)
                .ok_or_else(|| RuntimeError::new(format!("missing array argument `{name}`")))?;
            if host.elem != ty.elem {
                return Err(RuntimeError::new(format!(
                    "array `{name}` element type mismatch: declared {}, bound {}",
                    ty.elem, host.elem
                )));
            }
            let dims = resolve_dims(ty, &scalar_env)
                .map_err(|m| RuntimeError::new(format!("array `{name}`: {m}")))?;
            let elems: i64 = dims.iter().map(|(_, e)| *e).product();
            if elems < 0 || host.len() as i64 != elems {
                return Err(RuntimeError::new(format!(
                    "array `{name}` size mismatch: dims give {elems} elements, host data has {}",
                    host.len()
                )));
            }
            let id = mem.alloc(host.bytes.len());
            mem.copy_in(id, &host.bytes);
            report.h2d_bytes += host.bytes.len() as u64;
            buffers.insert(name.clone(), id);
            resolved_dims.insert(name.clone(), dims);
        }
    }
    tracer.meta_int("bytes", report.h2d_bytes as i64);
    tracer.meta_int("buffers", buffers.len() as i64);
    tracer.end();

    // ---- launch each kernel --------------------------------------------
    for (kernel, alloc) in compiled {
        tracer.begin("launch");
        tracer.meta_str("kernel", kernel.name.as_str());
        let config = launch_geometry(dev, kernel, &scalar_env).inspect_err(|_| tracer.end())?;
        // Reduction slots: allocate + seed with the current scalar value.
        let mut red_bufs: Vec<(Ident, ScalarTy, BufferId)> = Vec::new();
        let mut params: Vec<ParamVal> = Vec::with_capacity(kernel.abi.params.len());
        for p in &kernel.abi.params {
            params.push(match p {
                AbiParam::Scalar { name, ty } => {
                    let v = scalar_env
                        .get(name)
                        .ok_or_else(|| RuntimeError::new(format!("missing scalar `{name}`")))?;
                    match ty {
                        ScalarTy::I32 => ParamVal::I32(v.as_i64() as i32),
                        ScalarTy::I64 => ParamVal::I64(v.as_i64()),
                        ScalarTy::F32 => ParamVal::F32(v.as_f64() as f32),
                        ScalarTy::F64 => ParamVal::F64(v.as_f64()),
                    }
                }
                AbiParam::ArrayBase { array } => {
                    let id = buffers
                        .get(array)
                        .ok_or_else(|| RuntimeError::new(format!("no buffer for `{array}`")))?;
                    ParamVal::Ptr(mem.base_addr(*id))
                }
                AbiParam::DimExtent { owner, dim } => {
                    let arr = owner_array(owner, kernel)?;
                    let dims = resolved_dims
                        .get(&arr)
                        .ok_or_else(|| RuntimeError::new(format!("no dims for `{arr}`")))?;
                    ParamVal::I32(dims[*dim].1 as i32)
                }
                AbiParam::DimLower { owner, dim } => {
                    let arr = owner_array(owner, kernel)?;
                    let dims = resolved_dims
                        .get(&arr)
                        .ok_or_else(|| RuntimeError::new(format!("no dims for `{arr}`")))?;
                    ParamVal::I32(dims[*dim].0 as i32)
                }
                AbiParam::ReductionSlot { var, ty, .. } => {
                    let id = mem.alloc(ty.size_bytes() as usize);
                    let seed = scalar_env
                        .get(var)
                        .copied()
                        .unwrap_or(ArgValue::F64(0.0));
                    match ty {
                        ScalarTy::F32 => mem.copy_in_f32(id, &[seed.as_f64() as f32]),
                        ScalarTy::F64 => mem.copy_in_f64(id, &[seed.as_f64()]),
                        ScalarTy::I32 => mem.copy_in_i32(id, &[seed.as_i64() as i32]),
                        ScalarTy::I64 => {
                            let b = (seed.as_i64() as u64).to_le_bytes();
                            mem.copy_in(id, &b);
                        }
                    }
                    red_bufs.push((var.clone(), *ty, id));
                    ParamVal::Ptr(mem.base_addr(id))
                }
            });
        }

        // Snapshot the superblock engine's fusion counters so the span
        // can carry this launch's deltas. The counters are process-wide,
        // so concurrent launches on other threads can inflate a delta —
        // they are observability, not an exact accounting.
        let engine = safara_gpusim::interp::current_engine();
        let fusion_before = (tracer.is_enabled()
            && engine == safara_gpusim::interp::Engine::Superblock)
            .then(safara_gpusim::superblock::fusion_counters);
        let (result, cache_note) = match &mut cache {
            CacheRef::None => {
                (launch(&kernel.vir, &config, &params, &mut mem, &alloc.spilled), "uncached")
            }
            CacheRef::Exclusive(c) => {
                let hits_before = c.hits;
                let r = launch_cached(c, &kernel.vir, &config, &params, &mut mem, &alloc.spilled);
                (r, if c.hits > hits_before { "hit" } else { "miss" })
            }
            CacheRef::Shared(s) => {
                match s.launch_cached_info(&kernel.vir, &config, &params, &mut mem, &alloc.spilled)
                {
                    Ok((r, hit)) => (Ok(r), if hit { "hit" } else { "miss" }),
                    Err(e) => (Err(e), "miss"),
                }
            }
        };
        tracer.meta_str("cache", cache_note);
        tracer.meta_str("engine", engine.name());
        if tracer.is_enabled() {
            match safara_gpusim::last_parallel_info() {
                Some(info) => {
                    tracer.meta_int("sim_threads", info.threads as i64);
                    for (w, blocks) in info.per_worker_blocks.iter().enumerate() {
                        tracer.meta_int(&format!("worker_{w}_blocks"), *blocks as i64);
                    }
                    tracer.meta_float("imbalance", info.imbalance());
                }
                None => tracer.meta_int("sim_threads", 1),
            }
        }
        if let Some(before) = fusion_before {
            let fc = safara_gpusim::superblock::fusion_counters();
            tracer.meta_int("sb_hot_blocks", (fc.hot_blocks - before.hot_blocks) as i64);
            tracer.meta_int("sb_superblocks", (fc.superblocks - before.superblocks) as i64);
            tracer.meta_int("sb_fused_blocks", (fc.fused_blocks - before.fused_blocks) as i64);
            tracer.meta_int("sb_hoisted", (fc.hoisted - before.hoisted) as i64);
            tracer.meta_int("sb_scalar_execs", (fc.scalar_execs - before.scalar_execs) as i64);
            tracer.meta_int("sb_vector_execs", (fc.vector_execs - before.vector_execs) as i64);
            tracer.meta_int("sb_peels", (fc.peels - before.peels) as i64);
        }
        let result = match result {
            Ok(r) => r,
            Err(e) => {
                tracer.end();
                return Err(RuntimeError::new(format!("kernel `{}`: {e}", kernel.name)));
            }
        };
        // Under a shared spill slab every spill touch is a shared-memory
        // access, not a local one. The engines (and the memo cache) count
        // spill traffic as `local_accesses` regardless of target —
        // compiled kernels never address local memory otherwise — so the
        // reclassification here is exact, and cache hits and misses agree.
        let mut stats = result.stats;
        if alloc.spill_target == SpillTarget::Shared {
            stats.shared_accesses += stats.local_accesses;
            stats.local_accesses = 0;
        }
        let timing = estimate_time_with(
            dev,
            &stats,
            alloc.regs_used.max(16),
            config.threads_per_block(),
            alloc.shared_spill_bytes_per_block,
        );
        tracer.meta_int("regs_used", alloc.regs_used as i64);
        tracer.meta_float("cycles", timing.total_cycles);
        report.kernels.push(KernelRun {
            name: kernel.name.clone(),
            config,
            regs_used: alloc.regs_used,
            stats,
            timing,
        });

        // Read back reductions into the live scalar bindings so later
        // kernels (and the caller) see the combined value.
        for (var, ty, id) in red_bufs {
            let v = match ty {
                ScalarTy::F32 => ArgValue::F32(mem.copy_out_f32(id)[0]),
                ScalarTy::F64 => ArgValue::F64(mem.copy_out_f64(id)[0]),
                ScalarTy::I32 => ArgValue::I32(mem.copy_out_i32(id)[0]),
                ScalarTy::I64 => {
                    let b = mem.copy_out(id);
                    ArgValue::I64(i64::from_le_bytes(b[..8].try_into().expect("8 bytes")))
                }
            };
            args.scalars.insert(var.clone(), v);
        }
        tracer.end();
    }

    // ---- download results ----------------------------------------------
    tracer.begin("d2h");
    for (name, id) in &buffers {
        let bytes = mem.copy_out(*id);
        report.d2h_bytes += bytes.len() as u64;
        if let Some(host) = args.arrays.get_mut(name) {
            host.bytes = bytes;
        }
    }
    tracer.meta_int("bytes", report.d2h_bytes as i64);
    tracer.end();
    Ok(report)
}

fn owner_array(owner: &DimOwner, kernel: &CompiledKernel) -> Result<Ident, RuntimeError> {
    match owner {
        DimOwner::Array(a) => Ok(a.clone()),
        DimOwner::Group(g) => kernel
            .dim_groups
            .get(*g)
            .and_then(|arrays| arrays.first())
            .cloned()
            .ok_or_else(|| RuntimeError::new(format!("dim group {g} has no members"))),
    }
}

fn build_scalar_env(
    func: &Function,
    args: &Args,
) -> Result<BTreeMap<Ident, ArgValue>, RuntimeError> {
    let mut env = BTreeMap::new();
    for p in &func.params {
        if let Param::Scalar { name, ty } = p {
            let v = args
                .scalars
                .get(name)
                .copied()
                .ok_or_else(|| RuntimeError::new(format!("missing scalar argument `{name}`")))?;
            // Normalize to the declared type.
            let v = match ty {
                ScalarTy::I32 => ArgValue::I32(v.as_i64() as i32),
                ScalarTy::I64 => ArgValue::I64(v.as_i64()),
                ScalarTy::F32 => ArgValue::F32(v.as_f64() as f32),
                ScalarTy::F64 => ArgValue::F64(v.as_f64()),
            };
            env.insert(name.clone(), v);
        }
    }
    Ok(env)
}

fn resolve_dims(
    ty: &ArrayTy,
    env: &BTreeMap<Ident, ArgValue>,
) -> Result<Vec<(i64, i64)>, String> {
    ty.dims
        .iter()
        .map(|d| {
            let lb = match &d.lower {
                None => 0,
                Some(e) => eval_i64(e, env)?,
            };
            let ext = match &d.extent {
                Extent::Const(c) => *c,
                Extent::Dynamic(e) => eval_i64(e, env)?,
            };
            if ext <= 0 {
                return Err(format!("non-positive extent {ext}"));
            }
            Ok((lb, ext))
        })
        .collect()
}

/// Evaluate an integer expression over the host scalar environment.
pub fn eval_i64(e: &Expr, env: &BTreeMap<Ident, ArgValue>) -> Result<i64, String> {
    Ok(match e {
        Expr::IntLit(v) => *v,
        Expr::FloatLit(v) => *v as i64,
        Expr::Var(v) => env.get(v).ok_or_else(|| format!("unbound scalar `{v}`"))?.as_i64(),
        Expr::Unary(UnOp::Neg, inner) => -eval_i64(inner, env)?,
        Expr::Unary(UnOp::Not, inner) => i64::from(eval_i64(inner, env)? == 0),
        Expr::Binary(op, l, r) => {
            let (a, b) = (eval_i64(l, env)?, eval_i64(r, env)?);
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0 {
                        return Err("division by zero in host expression".into());
                    }
                    a / b
                }
                BinOp::Rem => {
                    if b == 0 {
                        return Err("remainder by zero in host expression".into());
                    }
                    a % b
                }
                BinOp::Shl => {
                    if !(0..64).contains(&b) {
                        return Err(format!("shift count {b} out of range in host expression"));
                    }
                    a.wrapping_shl(b as u32)
                }
                BinOp::Lt => i64::from(a < b),
                BinOp::Le => i64::from(a <= b),
                BinOp::Gt => i64::from(a > b),
                BinOp::Ge => i64::from(a >= b),
                BinOp::Eq => i64::from(a == b),
                BinOp::Ne => i64::from(a != b),
                BinOp::And => i64::from(a != 0 && b != 0),
                BinOp::Or => i64::from(a != 0 || b != 0),
            }
        }
        Expr::Call(intr, args) => {
            let vals: Vec<i64> = args
                .iter()
                .map(|a| eval_i64(a, env))
                .collect::<Result<_, _>>()?;
            match intr {
                Intrinsic::Min => vals[0].min(vals[1]),
                Intrinsic::Max => vals[0].max(vals[1]),
                Intrinsic::Abs => vals[0].abs(),
                other => return Err(format!("`{}` not usable in host expressions", other.name())),
            }
        }
        Expr::Cast(_, inner) => eval_i64(inner, env)?,
        Expr::ArrayRef(_) => return Err("array reference in host expression".into()),
    })
}

/// Trip count of a mapped loop given its spec.
fn trip_count(spec: &MappedLoopSpec, env: &BTreeMap<Ident, ArgValue>) -> Result<i64, RuntimeError> {
    let lo = eval_i64(&spec.lo, env).map_err(RuntimeError::new)?;
    let bound = eval_i64(&spec.bound, env).map_err(RuntimeError::new)?;
    let span = match spec.cmp {
        LoopCmp::Lt => bound - lo,
        LoopCmp::Le => bound - lo + 1,
        LoopCmp::Gt => lo - bound,
        LoopCmp::Ge => lo - bound + 1,
    };
    if span <= 0 {
        return Ok(0);
    }
    Ok((span + spec.step.abs() - 1) / spec.step.abs())
}

/// Compute the launch geometry for a kernel: block sizes from `vector`
/// clauses (with sensible defaults), grid sizes from trip counts.
fn launch_geometry(
    dev: &DeviceConfig,
    kernel: &CompiledKernel,
    env: &BTreeMap<Ident, ArgValue>,
) -> Result<LaunchConfig, RuntimeError> {
    if kernel.mapped.is_empty() {
        return Ok(LaunchConfig::d1(1, 1));
    }
    // A `launch_bounds(T, ...)` clause is a contract that no block
    // exceeds `T` threads — it tightens the device's own limit.
    let tpb_limit = kernel
        .launch_bounds
        .map(|(t, _)| t.max(1))
        .unwrap_or(u32::MAX)
        .min(dev.max_threads_per_block);
    let ndims = kernel.mapped.len().min(3);
    let default_block: [u32; 3] = match ndims {
        1 => [128, 1, 1],
        2 => [32, 4, 1],
        _ => [16, 4, 2],
    };
    let mut block = [1u32; 3];
    let mut grid = [1u32; 3];
    for (d, spec) in kernel.mapped.iter().take(3).enumerate() {
        let trip = trip_count(spec, env)?.max(0) as u64;
        let vec_len = match &spec.vector {
            Some(e) => eval_i64(e, env).map_err(RuntimeError::new)?.clamp(1, 1024) as u32,
            None => default_block[d],
        };
        block[d] = vec_len.min(tpb_limit);
        grid[d] = ((trip.max(1)).div_ceil(block[d] as u64)) as u32;
    }
    // Respect the threads-per-block limit by shrinking x.
    while block[0] > 1 && block[0] * block[1] * block[2] > tpb_limit {
        block[0] /= 2;
        let spec = &kernel.mapped[0];
        let trip = trip_count(spec, env)?.max(1) as u64;
        grid[0] = (trip.div_ceil(block[0] as u64)) as u32;
    }
    // `sim_threads` stays `None`: the worker count comes from the
    // thread-local / process-wide setting, so identical runs compare
    // equal (`KernelRun` holds this config) regardless of pool width.
    Ok(LaunchConfig {
        grid: (grid[0], grid[1], grid[2]),
        block: (block[0], block[1], block[2]),
        sim_threads: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_codegen::{lower_function, CodegenOptions};
    use safara_gpusim::ptxas::allocate_registers;
    use safara_ir::parse_program;

    fn compile_all(src: &str, opts: &CodegenOptions) -> (Function, Vec<(CompiledKernel, RegAllocReport)>) {
        let p = parse_program(src).unwrap();
        let f = p.functions[0].clone();
        let kernels = lower_function(&f, opts).unwrap();
        let compiled = kernels
            .into_iter()
            .map(|k| {
                let rep = allocate_registers(&k.vir, 255);
                (k, rep)
            })
            .collect();
        (f, compiled)
    }

    #[test]
    fn axpy_end_to_end() {
        let src = r#"
        void axpy(int n, float alpha, const float x[n], float y[n]) {
          #pragma acc kernels copyin(x) copy(y)
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              y[i] = y[i] + alpha * x[i];
            }
          }
        }"#;
        let (f, compiled) = compile_all(src, &CodegenOptions::default());
        let n = 1000;
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..n).map(|i| (i * 2) as f32).collect();
        let mut args = Args::new().i32("n", n as i32).f32("alpha", 3.0).array_f32("x", &x).array_f32("y", &y);
        let dev = DeviceConfig::k20xm();
        let report = run_function(&dev, &f, &compiled, &mut args).unwrap();
        let out = args.array("y").unwrap().as_f32();
        for i in 0..n {
            assert_eq!(out[i], y[i] + 3.0 * x[i], "i={i}");
        }
        assert_eq!(report.kernels.len(), 1);
        assert!(report.total_cycles() > 0.0);
        assert!(report.h2d_bytes > 0 && report.d2h_bytes > 0);
    }

    #[test]
    fn two_dim_kernel_runs() {
        let src = r#"
        void transpose(int n, const float a[n][n], float b[n][n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang
            for (int j = 0; j < n; j++) {
              #pragma acc loop vector
              for (int i = 0; i < n; i++) {
                b[i][j] = a[j][i];
              }
            }
          }
        }"#;
        let (f, compiled) = compile_all(src, &CodegenOptions::default());
        let n = 33usize; // deliberately not a multiple of the block size
        let a: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        let b = vec![0.0f32; n * n];
        let mut args = Args::new().i32("n", n as i32).array_f32("a", &a).array_f32("b", &b);
        let dev = DeviceConfig::k20xm();
        run_function(&dev, &f, &compiled, &mut args).unwrap();
        let out = args.array("b").unwrap().as_f32();
        for j in 0..n {
            for i in 0..n {
                assert_eq!(out[i * n + j], a[j * n + i], "({j},{i})");
            }
        }
    }

    #[test]
    fn reduction_combines_with_host_seed() {
        let src = r#"
        void total(int n, const float x[n], float s) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector reduction(+:s)
            for (int i = 0; i < n; i++) { s += x[i]; }
          }
        }"#;
        let (f, compiled) = compile_all(src, &CodegenOptions::default());
        let n = 500;
        let x = vec![1.0f32; n];
        let mut args = Args::new().i32("n", n as i32).f32("s", 10.0).array_f32("x", &x);
        let dev = DeviceConfig::k20xm();
        run_function(&dev, &f, &compiled, &mut args).unwrap();
        match args.scalar("s") {
            Some(ArgValue::F32(v)) => assert_eq!(v, 10.0 + n as f32),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fortran_lower_bounds_roundtrip() {
        // Fortran-style arrays with lower bound 1 (as in 355.seismic).
        let src = r#"
        void shift(int n, const float a[1:n], float b[1:n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 1; i <= n; i++) {
              b[i] = a[i] * 2.0;
            }
          }
        }"#;
        let (f, compiled) = compile_all(src, &CodegenOptions::default());
        let n = 100;
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b = vec![0.0f32; n];
        let mut args = Args::new().i32("n", n as i32).array_f32("a", &a).array_f32("b", &b);
        let dev = DeviceConfig::k20xm();
        run_function(&dev, &f, &compiled, &mut args).unwrap();
        let out = args.array("b").unwrap().as_f32();
        for i in 0..n {
            assert_eq!(out[i], a[i] * 2.0);
        }
    }

    #[test]
    fn missing_argument_reported() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) { a[i] = 0.0; }
          }
        }"#;
        let (f, compiled) = compile_all(src, &CodegenOptions::default());
        let dev = DeviceConfig::k20xm();
        let mut args = Args::new().i32("n", 8);
        let err = run_function(&dev, &f, &compiled, &mut args).unwrap_err();
        assert!(err.message.contains("missing array"), "{err}");
    }

    #[test]
    fn size_mismatch_reported() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) { a[i] = 0.0; }
          }
        }"#;
        let (f, compiled) = compile_all(src, &CodegenOptions::default());
        let dev = DeviceConfig::k20xm();
        let mut args = Args::new().i32("n", 8).array_f32("a", &[0.0; 4]);
        let err = run_function(&dev, &f, &compiled, &mut args).unwrap_err();
        assert!(err.message.contains("size mismatch"), "{err}");
    }

    #[test]
    fn vector_clause_controls_block_size() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector(64)
            for (int i = 0; i < n; i++) { a[i] = 1.0; }
          }
        }"#;
        let (f, compiled) = compile_all(src, &CodegenOptions::default());
        let dev = DeviceConfig::k20xm();
        let mut args = Args::new().i32("n", 256).array_f32("a", &[0.0; 256]);
        let report = run_function(&dev, &f, &compiled, &mut args).unwrap();
        assert_eq!(report.kernels[0].config.block.0, 64);
        assert_eq!(report.kernels[0].config.grid.0, 4);
    }

    #[test]
    fn seq_only_kernel_runs_single_thread() {
        let src = r#"
        void init(int n, float a[n]) {
          #pragma acc kernels
          {
            #pragma acc loop seq
            for (int i = 0; i < n; i++) { a[i] = (float) i; }
          }
        }"#;
        let (f, compiled) = compile_all(src, &CodegenOptions::default());
        let dev = DeviceConfig::k20xm();
        let mut args = Args::new().i32("n", 16).array_f32("a", &[0.0; 16]);
        let report = run_function(&dev, &f, &compiled, &mut args).unwrap();
        assert_eq!(report.kernels[0].config.total_threads(), 1);
        let out = args.array("a").unwrap().as_f32();
        assert_eq!(out[7], 7.0);
    }
}
