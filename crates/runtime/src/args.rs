//! Host-side argument binding for MiniACC function runs.

use safara_ir::{Ident, ScalarTy};
use std::collections::BTreeMap;

/// A scalar argument value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// `int`
    I32(i32),
    /// `long`
    I64(i64),
    /// `float`
    F32(f32),
    /// `double`
    F64(f64),
}

impl ArgValue {
    /// The value as `i64` (floats truncate).
    pub fn as_i64(&self) -> i64 {
        match self {
            ArgValue::I32(v) => *v as i64,
            ArgValue::I64(v) => *v,
            ArgValue::F32(v) => *v as i64,
            ArgValue::F64(v) => *v as i64,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match self {
            ArgValue::I32(v) => *v as f64,
            ArgValue::I64(v) => *v as f64,
            ArgValue::F32(v) => *v as f64,
            ArgValue::F64(v) => *v,
        }
    }
}

/// A host array argument: element type + raw little-endian bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct HostArray {
    /// Element type.
    pub elem: ScalarTy,
    /// Raw data (length must match the resolved dimensions).
    pub bytes: Vec<u8>,
}

impl HostArray {
    /// Build from `f32` data.
    pub fn from_f32(data: &[f32]) -> Self {
        HostArray {
            elem: ScalarTy::F32,
            bytes: data.iter().flat_map(|v| v.to_le_bytes()).collect(),
        }
    }

    /// Build from `f64` data.
    pub fn from_f64(data: &[f64]) -> Self {
        HostArray {
            elem: ScalarTy::F64,
            bytes: data.iter().flat_map(|v| v.to_le_bytes()).collect(),
        }
    }

    /// Build from `i32` data.
    pub fn from_i32(data: &[i32]) -> Self {
        HostArray {
            elem: ScalarTy::I32,
            bytes: data.iter().flat_map(|v| v.to_le_bytes()).collect(),
        }
    }

    /// Build `f32` data from raw IEEE-754 bit patterns — the lossless
    /// encoding wire protocols use (decimal text can round).
    pub fn from_f32_bits(bits: &[u32]) -> Self {
        HostArray {
            elem: ScalarTy::F32,
            bytes: bits.iter().flat_map(|b| b.to_le_bytes()).collect(),
        }
    }

    /// Build `f64` data from raw IEEE-754 bit patterns.
    pub fn from_f64_bits(bits: &[u64]) -> Self {
        HostArray {
            elem: ScalarTy::F64,
            bytes: bits.iter().flat_map(|b| b.to_le_bytes()).collect(),
        }
    }

    /// The `f32` elements as raw IEEE-754 bit patterns.
    pub fn as_f32_bits(&self) -> Vec<u32> {
        self.bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// The `f64` elements as raw IEEE-754 bit patterns.
    pub fn as_f64_bits(&self) -> Vec<u64> {
        self.bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    }

    /// View as `f32`s.
    pub fn as_f32(&self) -> Vec<f32> {
        self.bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// View as `f64`s.
    pub fn as_f64(&self) -> Vec<f64> {
        self.bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect()
    }

    /// View as `i32`s.
    pub fn as_i32(&self) -> Vec<i32> {
        self.bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.bytes.len() / self.elem.size_bytes() as usize
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// The argument set for one function run. Arrays are moved in, mutated in
/// place by the run (device results are copied back), and can be read out
/// afterwards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// Scalar bindings by parameter name.
    pub scalars: BTreeMap<Ident, ArgValue>,
    /// Array bindings by parameter name.
    pub arrays: BTreeMap<Ident, HostArray>,
}

impl Args {
    /// Empty argument set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind an `int` scalar.
    pub fn i32(mut self, name: &str, v: i32) -> Self {
        self.scalars.insert(Ident::new(name), ArgValue::I32(v));
        self
    }

    /// Bind a `long` scalar.
    pub fn i64(mut self, name: &str, v: i64) -> Self {
        self.scalars.insert(Ident::new(name), ArgValue::I64(v));
        self
    }

    /// Bind a `float` scalar.
    pub fn f32(mut self, name: &str, v: f32) -> Self {
        self.scalars.insert(Ident::new(name), ArgValue::F32(v));
        self
    }

    /// Bind a `double` scalar.
    pub fn f64(mut self, name: &str, v: f64) -> Self {
        self.scalars.insert(Ident::new(name), ArgValue::F64(v));
        self
    }

    /// Bind a `float` array.
    pub fn array_f32(mut self, name: &str, data: &[f32]) -> Self {
        self.arrays.insert(Ident::new(name), HostArray::from_f32(data));
        self
    }

    /// Bind a `double` array.
    pub fn array_f64(mut self, name: &str, data: &[f64]) -> Self {
        self.arrays.insert(Ident::new(name), HostArray::from_f64(data));
        self
    }

    /// Bind an `int` array.
    pub fn array_i32(mut self, name: &str, data: &[i32]) -> Self {
        self.arrays.insert(Ident::new(name), HostArray::from_i32(data));
        self
    }

    /// Read a scalar after the run (reductions update scalars in place).
    pub fn scalar(&self, name: &str) -> Option<ArgValue> {
        self.scalars.get(&Ident::new(name)).copied()
    }

    /// Read an array after the run.
    pub fn array(&self, name: &str) -> Option<&HostArray> {
        self.arrays.get(&Ident::new(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrips() {
        let a = HostArray::from_f32(&[1.0, 2.5]);
        assert_eq!(a.as_f32(), vec![1.0, 2.5]);
        assert_eq!(a.len(), 2);
        let b = HostArray::from_f64(&[1e-3]);
        assert_eq!(b.as_f64(), vec![1e-3]);
        let c = HostArray::from_i32(&[-1, 2]);
        assert_eq!(c.as_i32(), vec![-1, 2]);
    }

    #[test]
    fn bit_pattern_roundtrips_are_lossless() {
        let vals = [0.1f32, -0.0, f32::MIN_POSITIVE / 2.0, 1.0e30];
        let a = HostArray::from_f32(&vals);
        let bits = a.as_f32_bits();
        assert_eq!(HostArray::from_f32_bits(&bits), a);
        let d = HostArray::from_f64(&[0.1, -1.0e-300]);
        assert_eq!(HostArray::from_f64_bits(&d.as_f64_bits()), d);
    }

    #[test]
    fn builder_binds_by_name() {
        let args = Args::new().i32("n", 4).f64("alpha", 1.5).array_f32("x", &[0.0; 4]);
        assert_eq!(args.scalar("n"), Some(ArgValue::I32(4)));
        assert_eq!(args.scalar("alpha"), Some(ArgValue::F64(1.5)));
        assert_eq!(args.array("x").unwrap().len(), 4);
        assert!(args.scalar("missing").is_none());
    }

    #[test]
    fn argvalue_conversions() {
        assert_eq!(ArgValue::F64(2.75).as_i64(), 2);
        assert_eq!(ArgValue::I32(-3).as_f64(), -3.0);
        assert_eq!(ArgValue::I64(1 << 40).as_i64(), 1 << 40);
    }
}
