//! Cost-model calibration — closing the paper's measurement loop.
//!
//! §III-B.3: "the method used to measure the latency of GPU memory
//! accesses employs the microbenchmark proposed by [Wong et al.]". Here
//! the compiler does the same against *our* machine model: run the
//! [`safara_gpusim::microbench`] probes and build the SAFARA cost model's
//! latency table from what they report, instead of the built-in defaults.
//! Only the ratios matter for candidate ranking.

use safara_analysis::cost::{CostModel, LatencyTable};
use safara_gpusim::device::DeviceConfig;
use safara_gpusim::microbench::run_probes;

/// Build a [`CostModel`] whose latency table comes from running the
/// microbenchmark probes on `dev` (values are scaled ×10 to keep integer
/// resolution; ranking only uses ratios).
pub fn calibrated_cost_model(dev: &DeviceConfig) -> CostModel {
    let m = run_probes(dev);
    let cyc = |v: f64| ((v * 10.0).round() as u64).max(1);
    CostModel {
        latencies: LatencyTable {
            ro_coalesced: cyc(m.readonly_coalesced),
            ro_uncoalesced: cyc(m.readonly_uncoalesced),
            ro_broadcast: cyc(m.readonly_coalesced),
            global_coalesced: cyc(m.global_coalesced),
            global_uncoalesced: cyc(m.global_uncoalesced),
            global_broadcast: cyc(m.global_broadcast),
        },
        use_latency: true,
    }
}

/// A compiler configuration whose SAFARA cost model was calibrated by
/// the microbenchmarks (the paper's full methodology, end to end).
pub fn calibrated_config(dev: &DeviceConfig) -> crate::CompilerConfig {
    crate::CompilerConfig {
        name: "SAFARA(calibrated)",
        sr: crate::SrStrategy::Safara { cost_model: calibrated_cost_model(dev), feedback: true },
        ..crate::CompilerConfig::safara_clauses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_analysis::cost::AccessClass;

    #[test]
    fn calibrated_table_preserves_the_orderings() {
        let m = calibrated_cost_model(&DeviceConfig::k20xm());
        let t = &m.latencies;
        assert!(t.global_uncoalesced > t.global_coalesced);
        assert!(t.ro_uncoalesced > t.ro_coalesced);
        assert!(t.ro_coalesced <= t.global_coalesced);
        assert!(t.global_uncoalesced >= 10 * t.global_coalesced);
    }

    #[test]
    fn calibrated_config_compiles_and_matches_defaults_qualitatively() {
        // Compiling the paper's Fig. 5 under the calibrated model must
        // still pick the uncoalesced array first (the §II-A.2 argument).
        let dev = DeviceConfig::k20xm();
        let cfg = calibrated_config(&dev);
        let src = r#"
        void fig5(int jsize, int isize, float a[260][260], float b[260][260]) {
          #pragma acc kernels copy(a, b)
          {
            #pragma acc loop gang vector
            for (int j = 1; j <= jsize; j++) {
              #pragma acc loop seq
              for (int i = 1; i <= isize; i++) {
                a[i][j] += a[i - 1][j] + b[j][i - 1] + a[i + 1][j] + b[j][i + 1];
              }
            }
          }
        }"#;
        let p = crate::compile(src, &cfg).unwrap();
        let f = p.function("fig5").unwrap();
        assert!(f.sr_outcome.temps_added >= 3, "{:?}", f.sr_outcome);
        assert!(f.transformed_source().contains("__sr"));
    }

    #[test]
    fn paper_cost_ranks_uncoalesced_first_under_calibration() {
        let m = calibrated_cost_model(&DeviceConfig::k20xm());
        let l_un = m.latencies.latency(AccessClass::ReadOnlyUncoalesced);
        let l_co = m.latencies.latency(AccessClass::ReadOnlyCoalesced);
        // A single uncoalesced hit must outrank several coalesced hits —
        // the property the paper's Fig. 5 example needs.
        assert!(l_un > 4 * l_co);
    }
}
