//! Report helpers: the register-usage tables of the paper (Tables I/II).

use crate::driver::CompiledProgram;
use std::fmt::Write;

/// One row of a register-usage table: the same kernel compiled under
/// several configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterRow {
    /// Kernel label (e.g. `HOT1`).
    pub label: String,
    /// Registers per configuration, in column order.
    pub regs: Vec<Option<u32>>,
}

/// Build a Table I/II-style register table.
///
/// `programs` are the same source compiled under different configurations
/// (the columns); rows are kernels of `function`, labelled `HOT1…HOTn`.
/// `None` entries mean the kernel does not exist under that configuration
/// (reported as `NA`, as the paper does when `dim` is inapplicable).
pub fn register_table(function: &str, programs: &[&CompiledProgram]) -> Vec<RegisterRow> {
    let nk = programs
        .iter()
        .filter_map(|p| p.function(function).ok())
        .map(|f| f.kernels.len())
        .max()
        .unwrap_or(0);
    (0..nk)
        .map(|i| RegisterRow {
            label: format!("HOT{}", i + 1),
            regs: programs
                .iter()
                .map(|p| {
                    p.function(function)
                        .ok()
                        .and_then(|f| f.kernels.get(i))
                        .map(|k| k.alloc.regs_used)
                })
                .collect(),
        })
        .collect()
}

/// Render a register table as fixed-width text (the shape of Table I).
pub fn format_register_table(headers: &[&str], rows: &[RegisterRow]) -> String {
    let mut s = String::new();
    write!(s, "{:<8}", "Kernel").unwrap();
    for h in headers {
        write!(s, "{h:>14}").unwrap();
    }
    s.push('\n');
    for r in rows {
        write!(s, "{:<8}", r.label).unwrap();
        for v in &r.regs {
            match v {
                Some(x) => write!(s, "{x:>14}").unwrap(),
                None => write!(s, "{:>14}", "NA").unwrap(),
            }
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompilerConfig};

    const SRC: &str = r#"
    void f(int n, const float x[n], float y[n]) {
      #pragma acc kernels small(x, y)
      {
        #pragma acc loop gang vector
        for (int i = 0; i < n; i++) { y[i] = x[i]; }
        #pragma acc loop gang vector
        for (int j = 0; j < n; j++) { y[j] = y[j] * 2.0; }
      }
    }"#;

    #[test]
    fn table_has_row_per_kernel_and_column_per_config() {
        let base = compile(SRC, &CompilerConfig::base()).unwrap();
        let small = compile(SRC, &CompilerConfig::small()).unwrap();
        let rows = register_table("f", &[&base, &small]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "HOT1");
        assert_eq!(rows[0].regs.len(), 2);
        assert!(rows.iter().all(|r| r.regs.iter().all(|v| v.is_some())));
        let txt = format_register_table(&["Base", "+small"], &rows);
        assert!(txt.contains("HOT2"));
        assert!(txt.contains("Base"));
    }

    #[test]
    fn missing_function_renders_na() {
        let base = compile(SRC, &CompilerConfig::base()).unwrap();
        let rows = register_table("nope", &[&base]);
        assert!(rows.is_empty());
    }
}
