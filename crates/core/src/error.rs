//! The typed compile/run error taxonomy.
//!
//! Every failure the pipeline can produce is one [`CompileError`]
//! variant with phase provenance and, where the front-end knows it, a
//! source [`Span`]. Downstream layers (`safara-server`, retrying
//! clients) key decisions off [`CompileError::code`] and
//! [`CompileError::retryable`] instead of scraping message strings:
//! user-input errors (bad source, unknown function) are permanent, while
//! simulator and internal failures are transient — the SAFARA posture of
//! treating a spilling round as recoverable (§III-B.2), generalized to
//! the whole pipeline.

use safara_ir::Span;
use std::fmt;

/// Pipeline phases, for error provenance (mirrors the trace span names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Front-end parse.
    Parse,
    /// Semantic checks.
    Sema,
    /// Reuse analysis.
    Analysis,
    /// Scalar replacement / feedback loop.
    Opt,
    /// VIR lowering.
    Codegen,
    /// PTXAS-sim register allocation.
    RegAlloc,
    /// Simulator execution.
    Sim,
}

impl Phase {
    /// Stable lower-case name (matches the tracer's span names).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Sema => "sema",
            Phase::Analysis => "analysis",
            Phase::Opt => "opt",
            Phase::Codegen => "codegen",
            Phase::RegAlloc => "regalloc",
            Phase::Sim => "sim",
        }
    }
}

/// A typed pipeline failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexical or syntax error in the MiniACC source.
    Parse {
        /// What went wrong.
        message: String,
        /// Where, when the front-end knows.
        span: Option<Span>,
    },
    /// Semantic error (unknown name, type mismatch, bad clause, missing
    /// function).
    Sema {
        /// What went wrong.
        message: String,
        /// Where, when the checker knows.
        span: Option<Span>,
    },
    /// Reuse analysis failed.
    Analysis {
        /// What went wrong.
        message: String,
    },
    /// The register allocator reported spilling it could not recover
    /// from (the feedback loop reverts spilling rounds; this is the
    /// unrecoverable case).
    RegAllocSpill {
        /// The kernel that spilled.
        kernel: String,
        /// Registers the allocation wanted.
        regs_used: u32,
        /// The hardware cap it exceeded.
        reg_cap: u32,
    },
    /// The feedback loop could not compute a register budget.
    Budget {
        /// What went wrong.
        message: String,
    },
    /// An out-of-range `launch_bounds` clause or register-cap override:
    /// a contract the device cannot satisfy (too many threads, too many
    /// resident blocks, or an implied cap the allocator cannot honor).
    /// Surfaced as a typed error instead of silently clamping.
    LaunchBounds {
        /// What went wrong.
        message: String,
        /// The offending region's span, when it came from a clause.
        span: Option<Span>,
    },
    /// Equality saturation hit its e-node cap (or an injected fault) and
    /// aborted. Deterministic on the input — a retry re-derives the same
    /// e-graph — so it is permanent, never a hang.
    Saturate {
        /// What went wrong.
        message: String,
        /// The offending region's span, when the driver knows it.
        span: Option<Span>,
    },
    /// Simulator execution failed (transient by contract: the program
    /// compiled, so a retry may succeed).
    Sim {
        /// What went wrong.
        message: String,
    },
    /// Unexpected internal failure (lowering bug, poisoned state, ...).
    Internal {
        /// What went wrong.
        message: String,
        /// Which phase it surfaced in.
        phase: Phase,
    },
}

impl CompileError {
    /// Stable machine-readable code — the wire protocol's `code` field.
    pub fn code(&self) -> &'static str {
        match self {
            CompileError::Parse { .. } => "parse",
            CompileError::Sema { .. } => "sema",
            CompileError::Analysis { .. } => "analysis",
            CompileError::RegAllocSpill { .. } => "regalloc_spill",
            CompileError::Budget { .. } => "budget",
            CompileError::LaunchBounds { .. } => "launch_bounds",
            CompileError::Saturate { .. } => "saturate",
            CompileError::Sim { .. } => "sim",
            CompileError::Internal { .. } => "internal",
        }
    }

    /// The pipeline phase the error belongs to.
    pub fn phase(&self) -> Phase {
        match self {
            CompileError::Parse { .. } => Phase::Parse,
            CompileError::Sema { .. } => Phase::Sema,
            CompileError::Analysis { .. } => Phase::Analysis,
            CompileError::RegAllocSpill { .. } => Phase::RegAlloc,
            CompileError::Budget { .. } => Phase::Opt,
            CompileError::LaunchBounds { .. } => Phase::Opt,
            CompileError::Saturate { .. } => Phase::Opt,
            CompileError::Sim { .. } => Phase::Sim,
            CompileError::Internal { phase, .. } => *phase,
        }
    }

    /// Whether retrying the identical request can succeed. Deterministic
    /// verdicts on the input (bad source, spilled allocation) are
    /// permanent; execution-time and internal failures are transient.
    pub fn retryable(&self) -> bool {
        matches!(self, CompileError::Sim { .. } | CompileError::Internal { .. })
    }

    /// The source span, when the front-end attached one.
    pub fn span(&self) -> Option<Span> {
        match self {
            CompileError::Parse { span, .. }
            | CompileError::Sema { span, .. }
            | CompileError::LaunchBounds { span, .. }
            | CompileError::Saturate { span, .. } => *span,
            _ => None,
        }
    }

    /// A missing-function lookup, typed as the semantic error it is.
    pub fn no_such_function(name: &str) -> CompileError {
        CompileError::Sema { message: format!("no such function `{name}`"), span: None }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.phase().name())?;
        match self {
            CompileError::Parse { message, span }
            | CompileError::Sema { message, span }
            | CompileError::LaunchBounds { message, span }
            | CompileError::Saturate { message, span } => match span {
                Some(s) => write!(f, "{message} at bytes {}..{}", s.start, s.end),
                None => write!(f, "{message}"),
            },
            CompileError::Analysis { message }
            | CompileError::Budget { message }
            | CompileError::Sim { message }
            | CompileError::Internal { message, .. } => write!(f, "{message}"),
            CompileError::RegAllocSpill { kernel, regs_used, reg_cap } => {
                write!(f, "kernel `{kernel}` spills ({regs_used} regs > cap {reg_cap})")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<safara_ir::CompileError> for CompileError {
    fn from(e: safara_ir::CompileError) -> Self {
        match e {
            safara_ir::CompileError::Lex(l) => {
                CompileError::Parse { message: l.message, span: Some(l.span) }
            }
            safara_ir::CompileError::Parse(p) => {
                CompileError::Parse { message: p.message, span: Some(p.span) }
            }
            safara_ir::CompileError::Sema(s) => {
                CompileError::Sema { message: s.message, span: None }
            }
        }
    }
}

impl From<safara_runtime::RuntimeError> for CompileError {
    fn from(e: safara_runtime::RuntimeError) -> Self {
        CompileError::Sim { message: e.message }
    }
}

impl From<safara_codegen::CodegenError> for CompileError {
    fn from(e: safara_codegen::CodegenError) -> Self {
        CompileError::Internal { message: e.message, phase: Phase::Codegen }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_phases_and_retryability_line_up() {
        let cases: [(CompileError, &str, &str, bool); 9] = [
            (
                CompileError::Parse { message: "x".into(), span: None },
                "parse",
                "parse",
                false,
            ),
            (CompileError::Sema { message: "x".into(), span: None }, "sema", "sema", false),
            (CompileError::Analysis { message: "x".into() }, "analysis", "analysis", false),
            (
                CompileError::RegAllocSpill { kernel: "k".into(), regs_used: 300, reg_cap: 255 },
                "regalloc_spill",
                "regalloc",
                false,
            ),
            (CompileError::Budget { message: "x".into() }, "budget", "opt", false),
            (
                CompileError::LaunchBounds { message: "x".into(), span: None },
                "launch_bounds",
                "opt",
                false,
            ),
            (
                CompileError::Saturate { message: "x".into(), span: None },
                "saturate",
                "opt",
                false,
            ),
            (CompileError::Sim { message: "x".into() }, "sim", "sim", true),
            (
                CompileError::Internal { message: "x".into(), phase: Phase::Codegen },
                "internal",
                "codegen",
                true,
            ),
        ];
        for (e, code, phase, retryable) in cases {
            assert_eq!(e.code(), code);
            assert_eq!(e.phase().name(), phase);
            assert_eq!(e.retryable(), retryable, "{code}");
        }
    }

    #[test]
    fn front_end_errors_carry_spans() {
        let e: CompileError = safara_ir::CompileError::Parse(safara_ir::parser::ParseError {
            message: "expected `)`".into(),
            span: Span { start: 5, end: 6 },
        })
        .into();
        assert_eq!(e.code(), "parse");
        assert_eq!(e.span(), Some(Span { start: 5, end: 6 }));
        assert!(e.to_string().contains("expected `)`"));
        assert!(e.to_string().contains("5..6"), "{e}");
    }

    #[test]
    fn display_is_phase_prefixed() {
        let e = CompileError::RegAllocSpill { kernel: "k0".into(), regs_used: 300, reg_cap: 255 };
        assert_eq!(e.to_string(), "regalloc: kernel `k0` spills (300 regs > cap 255)");
        let e = CompileError::no_such_function("nope");
        assert_eq!(e.to_string(), "sema: no such function `nope`");
    }
}
