//! A reusable one-request pipeline entry point.
//!
//! The bench binaries drive the ir → analysis → opt → codegen → gpusim
//! pipeline through per-figure `main`s; a long-lived service needs the
//! same flow packaged as a single call that takes *one* request
//! (source, profile, arguments) and returns everything a client wants
//! to know: register counts, launch geometry, modelled cycles, and the
//! scalar-replacement story. [`compile_and_run`] is that call;
//! [`run_compiled`] is the half that skips compilation, for callers
//! (like `safara-server`) that cache [`CompiledProgram`]s across
//! requests and only re-execute.

use crate::driver::{compile, CompiledProgram, CoreError};
use crate::profile::CompilerConfig;
use safara_gpusim::device::DeviceConfig;
use safara_gpusim::memo::SharedLaunchCache;
use safara_runtime::Args;

/// One kernel's outcome, flattened for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSummary {
    /// Kernel name.
    pub name: String,
    /// Hardware registers per thread.
    pub regs_used: u32,
    /// Virtual registers spilled to local memory.
    pub spills: u32,
    /// Launch grid (blocks).
    pub grid: (u32, u32, u32),
    /// Launch block (threads).
    pub block: (u32, u32, u32),
    /// Modelled cycles for this launch.
    pub cycles: f64,
}

/// Everything one compile-and-simulate request produces (besides the
/// mutated [`Args`], which the caller owns).
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The function that ran.
    pub function: String,
    /// The profile it was compiled under.
    pub profile: &'static str,
    /// Per-kernel outcomes in launch order.
    pub kernels: Vec<KernelSummary>,
    /// Sum of modelled kernel cycles.
    pub total_cycles: f64,
    /// Bytes uploaded host→device.
    pub h2d_bytes: u64,
    /// Bytes downloaded device→host.
    pub d2h_bytes: u64,
    /// Maximum registers used by any kernel.
    pub max_regs: u32,
    /// Scalar-replacement temporaries SAFARA introduced.
    pub sr_temps_added: u32,
    /// Feedback-loop iterations executed.
    pub feedback_rounds: u32,
}

/// Execute `entry` from an already-compiled program against `args`,
/// optionally memoizing launches through a thread-shared cache, and
/// summarize the run.
pub fn run_compiled(
    program: &CompiledProgram,
    entry: &str,
    args: &mut Args,
    dev: &DeviceConfig,
    cache: Option<&SharedLaunchCache>,
) -> Result<RunOutcome, CoreError> {
    let report = match cache {
        Some(c) => program.run_shared(entry, args, dev, c)?,
        None => program.run(entry, args, dev)?,
    };
    let f = program.function(entry)?;
    let kernels = report
        .kernels
        .iter()
        .zip(&f.kernels)
        .map(|(run, art)| KernelSummary {
            name: run.name.clone(),
            regs_used: run.regs_used,
            spills: art.alloc.spilled.len() as u32,
            grid: run.config.grid,
            block: run.config.block,
            cycles: run.timing.total_cycles,
        })
        .collect();
    Ok(RunOutcome {
        function: f.name.clone(),
        profile: program.config.name,
        kernels,
        total_cycles: report.total_cycles(),
        h2d_bytes: report.h2d_bytes,
        d2h_bytes: report.d2h_bytes,
        max_regs: f.max_regs(),
        sr_temps_added: f.sr_outcome.temps_added,
        feedback_rounds: f.feedback_rounds,
    })
}

/// The full one-request pipeline: compile `source` under `config`, run
/// `entry` against `args`, and summarize. Returns the compiled program
/// too so callers can keep it for subsequent requests.
pub fn compile_and_run(
    source: &str,
    entry: &str,
    config: &CompilerConfig,
    args: &mut Args,
    dev: &DeviceConfig,
    cache: Option<&SharedLaunchCache>,
) -> Result<(CompiledProgram, RunOutcome), CoreError> {
    let program = compile(source, config)?;
    let outcome = run_compiled(&program, entry, args, dev, cache)?;
    Ok((program, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_runtime::ArgValue;

    const AXPY: &str = r#"
    void axpy(int n, float alpha, const float x[n], float y[n]) {
      #pragma acc kernels copyin(x) copy(y)
      {
        #pragma acc loop gang vector
        for (int i = 0; i < n; i++) { y[i] = y[i] + alpha * x[i]; }
      }
    }"#;

    fn axpy_args(n: usize) -> Args {
        Args::new()
            .i32("n", n as i32)
            .f32("alpha", 2.0)
            .array_f32("x", &(0..n).map(|i| i as f32).collect::<Vec<_>>())
            .array_f32("y", &vec![1.0; n])
    }

    #[test]
    fn one_request_pipeline_summarizes_a_run() {
        let dev = DeviceConfig::k20xm();
        let mut args = axpy_args(256);
        let (program, outcome) =
            compile_and_run(AXPY, "axpy", &CompilerConfig::safara_only(), &mut args, &dev, None)
                .unwrap();
        assert_eq!(outcome.function, "axpy");
        assert_eq!(outcome.profile, "OpenUH(SAFARA)");
        assert_eq!(outcome.kernels.len(), 1);
        assert!(outcome.total_cycles > 0.0);
        assert!(outcome.max_regs > 0);
        assert_eq!(args.array("y").unwrap().as_f32()[3], 1.0 + 2.0 * 3.0);

        // The compiled program is reusable without recompiling.
        let mut args2 = axpy_args(256);
        let outcome2 = run_compiled(&program, "axpy", &mut args2, &dev, None).unwrap();
        assert_eq!(outcome, outcome2);
        assert_eq!(args.array("y"), args2.array("y"));
    }

    #[test]
    fn shared_cache_path_is_bit_identical_and_warms() {
        let dev = DeviceConfig::k20xm();
        let cache = SharedLaunchCache::new(4);
        let mut cold = axpy_args(128);
        let (program, _) =
            compile_and_run(AXPY, "axpy", &CompilerConfig::base(), &mut cold, &dev, Some(&cache))
                .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let mut warm = axpy_args(128);
        run_compiled(&program, "axpy", &mut warm, &dev, Some(&cache)).unwrap();
        assert_eq!(cache.hits(), 1, "second identical request replays");
        assert_eq!(
            cold.array("y").unwrap().as_f32_bits(),
            warm.array("y").unwrap().as_f32_bits()
        );

        // And the replayed output matches an uncached run bitwise.
        let mut plain = axpy_args(128);
        run_compiled(&program, "axpy", &mut plain, &dev, None).unwrap();
        assert_eq!(plain.array("y").unwrap().as_f32_bits(), warm.array("y").unwrap().as_f32_bits());
    }

    #[test]
    fn pipeline_errors_propagate() {
        let dev = DeviceConfig::k20xm();
        let mut args = Args::new();
        let err = compile_and_run("void f(", "f", &CompilerConfig::base(), &mut args, &dev, None)
            .unwrap_err();
        assert!(matches!(err, CoreError::Frontend(_)));
        let mut args = axpy_args(8);
        let err = compile_and_run(AXPY, "nope", &CompilerConfig::base(), &mut args, &dev, None)
            .unwrap_err();
        assert!(matches!(err, CoreError::NoSuchFunction(_)));
    }

    #[test]
    fn reductions_surface_through_args() {
        let src = r#"
        void total(int n, const float x[n], float s) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector reduction(+:s)
            for (int i = 0; i < n; i++) { s += x[i]; }
          }
        }"#;
        let dev = DeviceConfig::k20xm();
        let mut args = Args::new().i32("n", 64).f32("s", 1.0).array_f32("x", &[1.0; 64]);
        compile_and_run(src, "total", &CompilerConfig::base(), &mut args, &dev, None).unwrap();
        assert_eq!(args.scalar("s"), Some(ArgValue::F32(65.0)));
    }
}
