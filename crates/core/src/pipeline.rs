//! A reusable one-request pipeline entry point.
//!
//! The bench binaries drive the ir → analysis → opt → codegen → gpusim
//! pipeline through per-figure `main`s; a long-lived service needs the
//! same flow packaged as a single call that takes *one* request
//! (source, profile, arguments) and returns everything a client wants
//! to know: register counts, launch geometry, modelled cycles, and the
//! scalar-replacement story. [`compile_and_run`] is that call;
//! [`run_compiled`] is the half that skips compilation, for callers
//! (like `safara-server`) that cache [`CompiledProgram`]s across
//! requests and only re-execute.

use crate::driver::{compile, compile_impl, fault_at, CompiledProgram};
use crate::error::CompileError;
use crate::profile::CompilerConfig;
use safara_chaos::{FaultAction, FaultPlan, InjectionPoint};
use safara_codegen::lower::CompiledKernel;
use safara_gpusim::device::DeviceConfig;
use safara_gpusim::memo::SharedLaunchCache;
use safara_gpusim::ptxas::RegAllocReport;
use safara_obs::Tracer;
use safara_runtime::{run_function_traced, Args};

/// One kernel's outcome, flattened for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSummary {
    /// Kernel name.
    pub name: String,
    /// Hardware registers per thread.
    pub regs_used: u32,
    /// Virtual registers spilled to local memory.
    pub spills: u32,
    /// Launch grid (blocks).
    pub grid: (u32, u32, u32),
    /// Launch block (threads).
    pub block: (u32, u32, u32),
    /// Modelled cycles for this launch.
    pub cycles: f64,
}

/// Everything one compile-and-simulate request produces (besides the
/// mutated [`Args`], which the caller owns).
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The function that ran.
    pub function: String,
    /// The profile it was compiled under.
    pub profile: &'static str,
    /// Per-kernel outcomes in launch order.
    pub kernels: Vec<KernelSummary>,
    /// Sum of modelled kernel cycles.
    pub total_cycles: f64,
    /// Bytes uploaded host→device.
    pub h2d_bytes: u64,
    /// Bytes downloaded device→host.
    pub d2h_bytes: u64,
    /// Maximum registers used by any kernel.
    pub max_regs: u32,
    /// Scalar-replacement temporaries SAFARA introduced.
    pub sr_temps_added: u32,
    /// Feedback-loop iterations executed.
    pub feedback_rounds: u32,
}

/// Execute `entry` from an already-compiled program against `args`,
/// optionally memoizing launches through a thread-shared cache, and
/// summarize the run.
pub fn run_compiled(
    program: &CompiledProgram,
    entry: &str,
    args: &mut Args,
    dev: &DeviceConfig,
    cache: Option<&SharedLaunchCache>,
) -> Result<RunOutcome, CompileError> {
    run_compiled_impl(program, entry, args, dev, cache, None)
}

/// [`run_compiled`] evaluating `faults` at the `sim` injection point:
/// a scheduled `Fail` becomes a typed (retryable) [`CompileError::Sim`]
/// before any launch; `Delay`/`Hang` stall the simulation.
pub fn run_compiled_with_faults(
    program: &CompiledProgram,
    entry: &str,
    args: &mut Args,
    dev: &DeviceConfig,
    cache: Option<&SharedLaunchCache>,
    faults: &FaultPlan,
) -> Result<RunOutcome, CompileError> {
    run_compiled_impl(program, entry, args, dev, cache, Some(faults))
}

fn run_compiled_impl(
    program: &CompiledProgram,
    entry: &str,
    args: &mut Args,
    dev: &DeviceConfig,
    cache: Option<&SharedLaunchCache>,
    faults: Option<&FaultPlan>,
) -> Result<RunOutcome, CompileError> {
    if let Some(FaultAction::Fail) = fault_at(faults, InjectionPoint::Sim) {
        return Err(CompileError::Sim { message: "injected simulator fault".into() });
    }
    let report = match cache {
        Some(c) => program.run_shared(entry, args, dev, c)?,
        None => program.run(entry, args, dev)?,
    };
    summarize(program, entry, report)
}

/// [`run_compiled`] recording a `sim` span (with `h2d`/`launch`/`d2h`
/// children and per-launch cache hit/miss metadata) into `tracer`.
pub fn run_compiled_traced(
    program: &CompiledProgram,
    entry: &str,
    args: &mut Args,
    dev: &DeviceConfig,
    cache: Option<&SharedLaunchCache>,
    tracer: &mut Tracer,
) -> Result<RunOutcome, CompileError> {
    let f = program.function(entry)?;
    let compiled: Vec<(CompiledKernel, RegAllocReport)> =
        f.kernels.iter().map(|k| (k.kernel.clone(), k.alloc.clone())).collect();
    let report = tracer.span("sim", |t| {
        run_function_traced(dev, &f.transformed, &compiled, args, cache, t)
            .map_err(CompileError::from)
    })?;
    summarize(program, entry, report)
}

fn summarize(
    program: &CompiledProgram,
    entry: &str,
    report: safara_runtime::RunReport,
) -> Result<RunOutcome, CompileError> {
    let f = program.function(entry)?;
    let kernels = report
        .kernels
        .iter()
        .zip(&f.kernels)
        .map(|(run, art)| KernelSummary {
            name: run.name.clone(),
            regs_used: run.regs_used,
            spills: art.alloc.spilled.len() as u32,
            grid: run.config.grid,
            block: run.config.block,
            cycles: run.timing.total_cycles,
        })
        .collect();
    Ok(RunOutcome {
        function: f.name.clone(),
        profile: program.config.name,
        kernels,
        total_cycles: report.total_cycles(),
        h2d_bytes: report.h2d_bytes,
        d2h_bytes: report.d2h_bytes,
        max_regs: f.max_regs(),
        sr_temps_added: f.sr_outcome.temps_added,
        feedback_rounds: f.feedback_rounds,
    })
}

/// The full one-request pipeline: compile `source` under `config`, run
/// `entry` against `args`, and summarize. Returns the compiled program
/// too so callers can keep it for subsequent requests.
pub fn compile_and_run(
    source: &str,
    entry: &str,
    config: &CompilerConfig,
    args: &mut Args,
    dev: &DeviceConfig,
    cache: Option<&SharedLaunchCache>,
) -> Result<(CompiledProgram, RunOutcome), CompileError> {
    let program = compile(source, config)?;
    let outcome = run_compiled(&program, entry, args, dev, cache)?;
    Ok((program, outcome))
}

/// [`compile_and_run`] threading a [`FaultPlan`] through every pipeline
/// injection point (`parse` → ... → `regalloc` → `sim`). The chaos
/// harness's front door: one call that can fail, stall, or spill at any
/// scheduled phase — or, with an inert plan, behaves exactly like
/// [`compile_and_run`].
pub fn compile_and_run_with_faults(
    source: &str,
    entry: &str,
    config: &CompilerConfig,
    args: &mut Args,
    dev: &DeviceConfig,
    cache: Option<&SharedLaunchCache>,
    faults: &FaultPlan,
) -> Result<(CompiledProgram, RunOutcome), CompileError> {
    let program = compile_impl(source, config, &mut Tracer::disabled(), Some(faults))?;
    let outcome = run_compiled_impl(&program, entry, args, dev, cache, Some(faults))?;
    Ok((program, outcome))
}

/// [`compile_and_run`] recording the full span tree into `tracer`:
/// `parse` → `sema` → `analysis` → `opt` (feedback rounds) → `codegen`
/// → `regalloc` → `sim`, each exactly once.
pub fn compile_and_run_traced(
    source: &str,
    entry: &str,
    config: &CompilerConfig,
    args: &mut Args,
    dev: &DeviceConfig,
    cache: Option<&SharedLaunchCache>,
    tracer: &mut Tracer,
) -> Result<(CompiledProgram, RunOutcome), CompileError> {
    let program = compile_impl(source, config, tracer, None)?;
    let outcome = run_compiled_traced(&program, entry, args, dev, cache, tracer)?;
    Ok((program, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_runtime::ArgValue;

    const AXPY: &str = r#"
    void axpy(int n, float alpha, const float x[n], float y[n]) {
      #pragma acc kernels copyin(x) copy(y)
      {
        #pragma acc loop gang vector
        for (int i = 0; i < n; i++) { y[i] = y[i] + alpha * x[i]; }
      }
    }"#;

    fn axpy_args(n: usize) -> Args {
        Args::new()
            .i32("n", n as i32)
            .f32("alpha", 2.0)
            .array_f32("x", &(0..n).map(|i| i as f32).collect::<Vec<_>>())
            .array_f32("y", &vec![1.0; n])
    }

    #[test]
    fn one_request_pipeline_summarizes_a_run() {
        let dev = DeviceConfig::k20xm();
        let mut args = axpy_args(256);
        let (program, outcome) =
            compile_and_run(AXPY, "axpy", &CompilerConfig::safara_only(), &mut args, &dev, None)
                .unwrap();
        assert_eq!(outcome.function, "axpy");
        assert_eq!(outcome.profile, "OpenUH(SAFARA)");
        assert_eq!(outcome.kernels.len(), 1);
        assert!(outcome.total_cycles > 0.0);
        assert!(outcome.max_regs > 0);
        assert_eq!(args.array("y").unwrap().as_f32()[3], 1.0 + 2.0 * 3.0);

        // The compiled program is reusable without recompiling.
        let mut args2 = axpy_args(256);
        let outcome2 = run_compiled(&program, "axpy", &mut args2, &dev, None).unwrap();
        assert_eq!(outcome, outcome2);
        assert_eq!(args.array("y"), args2.array("y"));
    }

    #[test]
    fn shared_cache_path_is_bit_identical_and_warms() {
        let dev = DeviceConfig::k20xm();
        let cache = SharedLaunchCache::new(4);
        let mut cold = axpy_args(128);
        let (program, _) =
            compile_and_run(AXPY, "axpy", &CompilerConfig::base(), &mut cold, &dev, Some(&cache))
                .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let mut warm = axpy_args(128);
        run_compiled(&program, "axpy", &mut warm, &dev, Some(&cache)).unwrap();
        assert_eq!(cache.hits(), 1, "second identical request replays");
        assert_eq!(
            cold.array("y").unwrap().as_f32_bits(),
            warm.array("y").unwrap().as_f32_bits()
        );

        // And the replayed output matches an uncached run bitwise.
        let mut plain = axpy_args(128);
        run_compiled(&program, "axpy", &mut plain, &dev, None).unwrap();
        assert_eq!(plain.array("y").unwrap().as_f32_bits(), warm.array("y").unwrap().as_f32_bits());
    }

    #[test]
    fn traced_pipeline_records_every_phase_once_and_matches_untraced() {
        let dev = DeviceConfig::k20xm();
        let mut args = axpy_args(64);
        let mut tracer = Tracer::new();
        let (_, outcome) = compile_and_run_traced(
            AXPY,
            "axpy",
            &CompilerConfig::safara_only(),
            &mut args,
            &dev,
            None,
            &mut tracer,
        )
        .unwrap();
        let spans = tracer.finish();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["parse", "sema", "analysis", "opt", "codegen", "regalloc", "sim"]);

        let opt = &spans[3];
        assert_eq!(opt.count_named("round") as u32, outcome.feedback_rounds);
        assert!(opt.children[0].meta_get("regs_used").is_some());
        assert!(opt.children[0].meta_get("budget").is_some());

        let sim = &spans[6];
        assert_eq!(sim.count_named("h2d"), 1);
        assert_eq!(sim.count_named("launch"), outcome.kernels.len());
        assert_eq!(sim.count_named("d2h"), 1);
        // Root spans do not overlap: starts are monotone.
        for w in spans.windows(2) {
            assert!(w[1].start_us >= w[0].start_us + w[0].dur_us.saturating_sub(1));
        }

        // Tracing is observation only: outcome and outputs are identical
        // to the untraced pipeline.
        let mut args2 = axpy_args(64);
        let (_, outcome2) = compile_and_run(
            AXPY,
            "axpy",
            &CompilerConfig::safara_only(),
            &mut args2,
            &dev,
            None,
        )
        .unwrap();
        assert_eq!(outcome, outcome2);
        assert_eq!(args.array("y"), args2.array("y"));
    }

    #[test]
    fn pipeline_errors_propagate() {
        let dev = DeviceConfig::k20xm();
        let mut args = Args::new();
        let err = compile_and_run("void f(", "f", &CompilerConfig::base(), &mut args, &dev, None)
            .unwrap_err();
        assert!(matches!(err, CompileError::Parse { .. }), "{err}");
        let mut args = axpy_args(8);
        let err = compile_and_run(AXPY, "nope", &CompilerConfig::base(), &mut args, &dev, None)
            .unwrap_err();
        assert_eq!(err.code(), "sema");
        assert!(!err.retryable());
    }

    #[test]
    fn injected_sim_fault_is_retryable_and_transient() {
        use safara_chaos::Fire;
        let dev = DeviceConfig::k20xm();
        let plan =
            FaultPlan::seeded(3).with(InjectionPoint::Sim, FaultAction::Fail, Fire::First(1));

        let mut args = axpy_args(32);
        let err = compile_and_run_with_faults(
            AXPY,
            "axpy",
            &CompilerConfig::base(),
            &mut args,
            &dev,
            None,
            &plan,
        )
        .unwrap_err();
        assert_eq!(err.code(), "sim");
        assert!(err.retryable(), "sim faults are worth retrying");

        // The retry under the same (now-exhausted) plan succeeds and is
        // bit-identical to a fault-free run.
        let mut again = axpy_args(32);
        let (_, outcome) = compile_and_run_with_faults(
            AXPY,
            "axpy",
            &CompilerConfig::base(),
            &mut again,
            &dev,
            None,
            &plan,
        )
        .unwrap();
        let mut clean = axpy_args(32);
        let (_, want) =
            compile_and_run(AXPY, "axpy", &CompilerConfig::base(), &mut clean, &dev, None)
                .unwrap();
        assert_eq!(outcome, want);
        assert_eq!(
            again.array("y").unwrap().as_f32_bits(),
            clean.array("y").unwrap().as_f32_bits()
        );
    }

    #[test]
    fn reductions_surface_through_args() {
        let src = r#"
        void total(int n, const float x[n], float s) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector reduction(+:s)
            for (int i = 0; i < n; i++) { s += x[i]; }
          }
        }"#;
        let dev = DeviceConfig::k20xm();
        let mut args = Args::new().i32("n", 64).f32("s", 1.0).array_f32("x", &[1.0; 64]);
        compile_and_run(src, "total", &CompilerConfig::base(), &mut args, &dev, None).unwrap();
        assert_eq!(args.scalar("s"), Some(ArgValue::F32(65.0)));
    }
}
