//! # safara-core — the SAFARA compiler driver
//!
//! Ties the whole reproduction together, mirroring the paper's OpenUH
//! pipeline (Fig. 2): MiniACC front-end → analyses → scalar replacement →
//! VIR code generation → PTXAS-sim register allocation, with SAFARA's
//! **iterative static feedback loop** (§III-B.2) in the middle:
//!
//! 1. compile the region with no scalar replacement and ask the
//!    register allocator (our PTXAS stand-in) how many hardware registers
//!    each kernel uses;
//! 2. compute the remaining register budget against the hardware cap;
//! 3. select the most profitable reuse groups under the
//!    `count × latency` cost model and apply scalar replacement;
//! 4. recompile; if registers spill, revert the round; otherwise repeat
//!    until the registers are saturated or no candidates remain.
//!
//! [`CompilerConfig`] packages the named configurations the evaluation
//! uses: the OpenUH baseline, `+small`, `+small+dim`, `+SAFARA`
//! combinations, the classical Carr–Kennedy strategy, and the simulated
//! PGI-like comparator.
//!
//! ## Quickstart
//!
//! ```
//! use safara_core::{compile, Args, CompilerConfig, DeviceConfig};
//!
//! let src = r#"
//! void axpy(int n, float alpha, const float x[n], float y[n]) {
//!   #pragma acc kernels copyin(x) copy(y)
//!   {
//!     #pragma acc loop gang vector
//!     for (int i = 0; i < n; i++) { y[i] = y[i] + alpha * x[i]; }
//!   }
//! }"#;
//! let program = compile(src, &CompilerConfig::safara_clauses()).unwrap();
//! let mut args = Args::new()
//!     .i32("n", 1024)
//!     .f32("alpha", 2.0)
//!     .array_f32("x", &vec![1.0; 1024])
//!     .array_f32("y", &vec![0.0; 1024]);
//! let report = program.run("axpy", &mut args, &DeviceConfig::k20xm()).unwrap();
//! assert_eq!(args.array("y").unwrap().as_f32()[0], 2.0);
//! assert!(report.total_cycles() > 0.0);
//! ```

pub mod calibrate;
pub mod driver;
pub mod error;
pub mod pipeline;
pub mod profile;
pub mod report;

pub use calibrate::{calibrated_config, calibrated_cost_model};
pub use driver::{
    compile, compile_traced, compile_with_faults, CompiledFunction, CompiledProgram,
    KernelArtifact,
};
pub use error::{CompileError, Phase};
pub use pipeline::{
    compile_and_run, compile_and_run_traced, compile_and_run_with_faults, run_compiled,
    run_compiled_traced, run_compiled_with_faults, KernelSummary, RunOutcome,
};
pub use profile::{CompilerConfig, CompilerConfigBuilder, SrStrategy};
pub use report::{register_table, RegisterRow};

// Facade re-exports so downstream users (workloads, benches, examples)
// need only this crate.
pub use safara_analysis as analysis;
pub use safara_chaos as chaos;
pub use safara_codegen as codegen;
pub use safara_gpusim as gpusim;
pub use safara_ir as ir;
pub use safara_obs as obs;
pub use safara_opt as opt;
pub use safara_runtime as runtime;

pub use safara_gpusim::device::DeviceConfig;
pub use safara_gpusim::memo::{LaunchCache, SharedLaunchCache};
pub use safara_gpusim::rng::SplitMix64;
pub use safara_gpusim::timing::TimingBreakdown;
pub use safara_runtime::{Args, RunReport};
